/// \file leq.cpp
/// \brief The `leq` end-user CLI: solve / verify / diagnose / reduce /
/// batch over BLIF/KISS equation pairs.  All logic lives in src/cli/ so the
/// test suite can drive it in-process; this is just the process boundary.

#include "cli/cli.hpp"

#include <iostream>

int main(int argc, char** argv) {
    return leq::run_leq_cli({argv + 1, argv + argc}, std::cout, std::cerr);
}
