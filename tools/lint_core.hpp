/// \file lint_core.hpp
/// \brief The `leq_lint` analysis core: project-invariant checks over the
/// source tree.
///
/// `leq_lint` machine-checks the invariants that docs/ARCHITECTURE.md states
/// in prose, so a violation is a red CI job instead of a review comment:
///
///  * **layering** — every `#include "layer/header.hpp"` between two layer
///    directories under `src/` must be an edge of the sanctioned layer DAG
///    (declared in the `.leq_lint` config, mirroring the ARCHITECTURE.md
///    diagram).  Upward or sideways includes — say `bdd/` reaching into
///    `rel/` — are violations.
///  * **concurrency** — `std::thread`, mutexes, atomics, futures and their
///    headers are confined to the sanctioned concurrency seams (config
///    `allow concurrency <file>` lines; today `src/cli/batch.cpp` plus the
///    `LEQ_CHECKED` instrumentation in `src/bdd/`).  Everything else in the
///    library must stay single-threaded by construction.
///  * **dtor-throw** — no `throw` inside a destructor body: a destructor
///    that throws during unwinding terminates the process.
///  * **pragma-once** — every header carries `#pragma once`.
///  * **using-namespace** — no `using namespace` at header scope.
///  * **include-style** — project includes are layer-qualified
///    (`"bdd/bdd.hpp"`, never `"bdd.hpp"`), so the layer of every edge is
///    visible at the include site.
///
/// The analysis is textual (a comment/string-aware scanner, not a compiler
/// front end) and therefore checks what is *written*, including code behind
/// `#ifdef`s that no configure ever enables.  Header self-containedness is
/// the one hygiene rule that needs a real compiler; the build enforces it
/// separately (the `leq_header_selfcheck` object library compiles every
/// header as its own translation unit).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace leq_lint {

/// One rule violation at a source location.
struct violation {
    std::string file; ///< path relative to the lint root
    int line = 0;     ///< 1-based; 0 = whole-file violation
    std::string rule; ///< machine-stable rule id (see lint_core.hpp doc)
    std::string message;
};

/// Parsed `.leq_lint` configuration: the sanctioned layer DAG plus per-rule
/// file exceptions.
struct lint_config {
    /// Allowed include edges between layer directories; a `to` of "*" allows
    /// every target (used for the `src/leq.hpp` umbrella's `root` layer).
    std::vector<std::pair<std::string, std::string>> layer_edges;
    /// (rule id, file) pairs exempted from that rule.
    std::vector<std::pair<std::string, std::string>> allows;

    [[nodiscard]] bool edge_allowed(const std::string& from,
                                    const std::string& to) const;
    [[nodiscard]] bool is_allowed(const std::string& rule,
                                  const std::string& file) const;
};

/// Parse a config text.  Directives, one per line, `#` comments:
///   layer-edge FROM TO      sanction the include edge FROM -> TO ("*" = any)
///   allow RULE FILE         exempt FILE from RULE
/// Unknown directives are appended to `errors`.
lint_config parse_config(const std::string& text,
                         std::vector<std::string>& errors);

/// Load and parse the config file at `path`.  A missing file is an error —
/// the sanctioned-edge list is part of the contract, not an optional extra.
lint_config load_config(const std::string& path,
                        std::vector<std::string>& errors);

/// Result of linting a tree.
struct lint_report {
    std::vector<violation> violations; ///< sorted by (file, line, rule)
    std::size_t files_scanned = 0;
};

/// Lint every C++ source file under `root`/src.
lint_report lint_tree(const std::string& root, const lint_config& config);

/// Lint one in-memory file (exposed for the self-test fixture and unit
/// tests).  `path` is the root-relative path used for layer resolution and
/// exception matching; `layers` is the set of known layer directory names.
void lint_file(const std::string& path, const std::string& content,
               const std::vector<std::string>& layers,
               const lint_config& config, std::vector<violation>& out);

/// Machine-readable report: {"files_scanned": N, "violations": [...]}.
std::string to_json(const lint_report& report);

/// Replace comments, string literals and character literals with spaces,
/// preserving line structure.  String literals on preprocessor lines (first
/// non-blank char `#`) are kept so `#include "..."` paths stay readable.
/// Exposed for tests.
std::string strip_comments_and_strings(const std::string& text);

} // namespace leq_lint
