/// \file leq_bench_run.cpp
/// \brief The standard benchmark runner: executes the pinned workloads and
/// gates reports against a baseline.
///
/// This is the single entry point of the perf trajectory (see
/// src/cli/bench.hpp).  Modes:
///
///   leq_bench_run [--filter SUBSTR] [--repeat N] [--out FILE]
///       Run the pinned workloads (optionally only those whose id contains
///       SUBSTR) and write the leq-bench-v1 JSON report to FILE (stdout by
///       default).  Progress goes to stderr.  With --repeat N each workload
///       runs N times and reports the median seconds (counters come from
///       the first run — they are deterministic, repetition only steadies
///       the wall clock); use --filter + --repeat to profile one hot
///       workload without paying for the full sweep.
///
///   leq_bench_run --list
///       Print the pinned workload ids, one per line.
///
///   leq_bench_run --compare BASELINE CURRENT
///       Gate CURRENT against BASELINE (two report files).  Exit 0 when no
///       gated metric regressed, 1 otherwise, printing one line per
///       regression.  Wall-clock seconds are never gated — only the
///       deterministic work counters are, so the gate behaves identically
///       on every machine.
///
///   leq_bench_run --delta BASELINE CURRENT
///       Print a Markdown table of every gated metric's movement between
///       the two reports (no gating, exit 0) — what scripts/bench_run.sh
///       and the CI job summary show.
///
///   leq_bench_run --write-corpus DIR
///       (Re)write the deterministic corpus files into DIR
///       (bench/corpus/ in the repo).  The checked-in copies must be
///       byte-identical to this output; tests/test_bench.cpp pins that.
///
/// The intended trajectory: every PR that touches performance-relevant
/// code refreshes BENCH_PR10.json deliberately (run the tool, commit the
/// report, explain the movement in the PR); CI runs the compare on every
/// push and refuses accidental movement.

#include "cli/bench.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

int usage(std::ostream& err) {
    err << "usage: leq_bench_run [--filter SUBSTR] [--repeat N] "
           "[--out FILE]\n"
        << "       leq_bench_run --list\n"
        << "       leq_bench_run --compare BASELINE CURRENT\n"
        << "       leq_bench_run --delta BASELINE CURRENT\n"
        << "       leq_bench_run --write-corpus DIR\n";
    return 2;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot read '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

int run_mode(const std::string& filter, std::size_t repeat,
             const std::string& out_path) {
    leq::bench_report report;
    for (const std::string& name : leq::bench_workload_names()) {
        if (!filter.empty() && name.find(filter) == std::string::npos) {
            continue;
        }
        std::cerr << "bench: " << name << "..." << std::flush;
        leq::bench_report one = leq::run_bench(name);
        if (one.rows.size() != 1) {
            std::cerr << " filter error\n";
            return 1;
        }
        if (repeat > 1) {
            // counters are deterministic — keep the first run's row and
            // only re-measure the wall clock, reporting the median
            std::vector<double> seconds{one.rows.front().seconds};
            for (std::size_t r = 1; r < repeat; ++r) {
                leq::bench_report again = leq::run_bench(name);
                seconds.push_back(again.rows.front().seconds);
            }
            std::sort(seconds.begin(), seconds.end());
            const std::size_t mid = seconds.size() / 2;
            one.rows.front().seconds =
                seconds.size() % 2 == 1
                    ? seconds[mid]
                    : (seconds[mid - 1] + seconds[mid]) / 2.0;
        }
        std::cerr << " " << one.rows.front().seconds << "s"
                  << (repeat > 1
                          ? " (median of " + std::to_string(repeat) + ")"
                          : "")
                  << "\n";
        report.rows.push_back(std::move(one.rows.front()));
    }
    const std::string json = leq::bench_report_to_json(report);
    if (out_path.empty()) {
        std::cout << json;
    } else {
        std::ofstream out(out_path, std::ios::binary);
        out << json;
        if (!out) {
            std::cerr << "leq_bench_run: cannot write '" << out_path
                      << "'\n";
            return 1;
        }
        std::cerr << "bench: wrote " << out_path << "\n";
    }
    return 0;
}

int compare_mode(const std::string& base_path,
                 const std::string& current_path) {
    const leq::bench_report base =
        leq::parse_bench_report(slurp(base_path));
    const leq::bench_report current =
        leq::parse_bench_report(slurp(current_path));
    const leq::bench_compare_result result =
        leq::compare_bench_reports(base, current);
    std::cout << leq::to_string(result);
    return result.ok() ? 0 : 1;
}

int delta_mode(const std::string& base_path,
               const std::string& current_path) {
    const leq::bench_report base =
        leq::parse_bench_report(slurp(base_path));
    const leq::bench_report current =
        leq::parse_bench_report(slurp(current_path));
    std::cout << leq::bench_delta_table(base, current);
    return 0;
}

int write_corpus_mode(const std::string& dir) {
    for (const leq::bench_corpus_file& file : leq::bench_corpus_files()) {
        const std::string path = dir + "/" + file.name;
        std::ofstream out(path, std::ios::binary);
        out << file.text;
        if (!out) {
            std::cerr << "leq_bench_run: cannot write '" << path << "'\n";
            return 1;
        }
        std::cerr << "bench: wrote " << path << " (" << file.text.size()
                  << " bytes)\n";
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    std::string filter;
    std::string out_path;
    std::size_t repeat = 1;
    try {
        for (std::size_t k = 0; k < args.size(); ++k) {
            const std::string& arg = args[k];
            const auto value = [&](const char* flag) -> const std::string& {
                if (k + 1 >= args.size()) {
                    throw std::runtime_error(std::string(flag) +
                                             " needs a value");
                }
                return args[++k];
            };
            if (arg == "--list") {
                for (const std::string& name : leq::bench_workload_names()) {
                    std::cout << name << "\n";
                }
                return 0;
            }
            if (arg == "--compare") {
                if (k + 2 >= args.size()) {
                    return usage(std::cerr);
                }
                return compare_mode(args[k + 1], args[k + 2]);
            }
            if (arg == "--delta") {
                if (k + 2 >= args.size()) {
                    return usage(std::cerr);
                }
                return delta_mode(args[k + 1], args[k + 2]);
            }
            if (arg == "--write-corpus") {
                return write_corpus_mode(value("--write-corpus"));
            }
            if (arg == "--filter") {
                filter = value("--filter");
            } else if (arg == "--repeat") {
                const std::string& v = value("--repeat");
                std::size_t end = 0;
                repeat = std::stoul(v, &end);
                if (end != v.size() || repeat == 0) {
                    throw std::runtime_error("--repeat needs a count >= 1");
                }
            } else if (arg == "--out") {
                out_path = value("--out");
            } else if (arg == "--help" || arg == "-h") {
                usage(std::cerr);
                return 0;
            } else {
                std::cerr << "leq_bench_run: unknown option '" << arg
                          << "'\n";
                return usage(std::cerr);
            }
        }
        return run_mode(filter, repeat, out_path);
    } catch (const std::exception& e) {
        std::cerr << "leq_bench_run: " << e.what() << "\n";
        return 1;
    }
}
