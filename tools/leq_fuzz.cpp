/// \file leq_fuzz.cpp
/// \brief Standalone differential fuzzer: manufacture equation scenarios,
/// cross-examine the solver flows, shrink any failure to a minimal KISS/BLIF
/// reproducer.  The binary behind the nightly CI job.
///
/// Usage:
///   leq_fuzz [--seeds N] [--family F] [--seed-base B] [--no-shrink]
///            [--out STEM] [--time-limit SECONDS] [--no-explicit]
///            [--quiet] [--list-families]
///
/// Exit status: 0 all scenarios clean, 1 failures found (reproducers
/// written when --out is given), 2 usage error.

#include "gen/fuzz.hpp"

#include <cstring>
#include <iostream>
#include <string>

namespace {

using namespace leq;

int usage() {
    std::cerr
        << "usage: leq_fuzz [options]\n"
        << "  --seeds N         seeds per family (default 20)\n"
        << "  --seed-base B     first seed (default 1; nightly CI derives\n"
        << "                    this from the run number)\n"
        << "  --family F        run one family (repeatable); default all\n"
        << "  --no-shrink       report failures without shrinking\n"
        << "  --out STEM        write reproducer files as STEM-<family>-"
           "<seed>*\n"
        << "  --time-limit S    per-solve wall-clock limit (default 60)\n"
        << "  --no-explicit     skip the explicit Algorithm-1 oracle\n"
        << "  --quiet           only print the final summary\n"
        << "  --list-families   print the family names and exit\n";
    return 2;
}

/// Fill `options` from argv.  Returns an exit code to bail out with, or -1
/// to proceed.  std::stoul/std::stod throw on malformed numbers; the caller
/// maps that to the usage exit code.
int parse_args(int argc, char** argv, fuzz_options& options, bool& quiet) {
    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        const auto value = [&]() -> const char* {
            if (k + 1 >= argc) { return nullptr; }
            return argv[++k];
        };
        if (arg == "--list-families") {
            for (const scenario_family f : all_scenario_families) {
                std::cout << to_string(f) << "\n";
            }
            return 0;
        }
        if (arg == "--quiet") {
            quiet = true;
            continue;
        }
        if (arg == "--seeds") {
            const char* v = value();
            if (v == nullptr) { return usage(); }
            options.seeds = std::stoul(v);
        } else if (arg == "--seed-base") {
            const char* v = value();
            if (v == nullptr) { return usage(); }
            options.seed_base = static_cast<std::uint32_t>(std::stoul(v));
        } else if (arg == "--family") {
            const char* v = value();
            if (v == nullptr) { return usage(); }
            const auto family = scenario_family_from_string(v);
            if (!family.has_value()) {
                std::cerr << "leq_fuzz: unknown family '" << v
                          << "' (--list-families)\n";
                return 2;
            }
            options.families.push_back(*family);
        } else if (arg == "--no-shrink") {
            options.shrink_failures = false;
        } else if (arg == "--out") {
            const char* v = value();
            if (v == nullptr) { return usage(); }
            options.reproducer_stem = v;
        } else if (arg == "--time-limit") {
            const char* v = value();
            if (v == nullptr) { return usage(); }
            options.diff.time_limit_seconds = std::stod(v);
        } else if (arg == "--no-explicit") {
            options.diff.with_explicit = false;
        } else {
            std::cerr << "leq_fuzz: unknown option '" << arg << "'\n";
            return usage();
        }
    }
    return -1;
}

} // namespace

int main(int argc, char** argv) {
    fuzz_options options;
    bool quiet = false;
    try {
        const int bail = parse_args(argc, argv, options, quiet);
        if (bail >= 0) { return bail; }
    } catch (const std::exception&) {
        std::cerr << "leq_fuzz: malformed numeric argument\n";
        return usage();
    }

    if (!quiet) { options.log = &std::cout; }
    try {
        const fuzz_report report = run_fuzz(options);
        std::cout << "leq_fuzz: " << report.scenarios_run << " scenarios, "
                  << report.failures.size() << " failure(s)\n";
        for (const fuzz_failure& f : report.failures) {
            std::cout << "  " << to_string(f.family) << ":" << f.seed << " — "
                      << f.failure
                      << (f.shrunk ? " (shrunk, spec " +
                                         std::to_string(f.repro.spec_states) +
                                         " states)"
                                   : "")
                      << "\n";
        }
        return report.ok() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "leq_fuzz: " << e.what() << "\n";
        return 2;
    }
}
