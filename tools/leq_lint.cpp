/// \file leq_lint.cpp
/// \brief Project-invariant linter CLI (see lint_core.hpp for the rules).
///
/// Usage:
///   leq_lint [--root DIR] [--config FILE] [--json FILE] [--quiet]
///   leq_lint --list-rules
///
/// Scans DIR/src (default: the current directory) against the sanctioned
/// layer DAG and per-rule exceptions in DIR/.leq_lint, prints one
/// `file:line: [rule] message` line per violation, and exits nonzero when
/// anything is flagged — CI runs exactly this.  `--json` additionally writes
/// the machine-readable report.

#include "lint_core.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

constexpr const char* kRuleHelp =
    "rules checked by leq_lint (exempt a file with 'allow RULE FILE' in "
    ".leq_lint):\n"
    "  layering        quoted includes between src/ layer directories must\n"
    "                  follow the 'layer-edge FROM TO' DAG in .leq_lint\n"
    "  concurrency     std::thread/mutex/atomic/... and their headers are\n"
    "                  confined to files sanctioned by 'allow concurrency'\n"
    "  dtor-throw      no 'throw' inside a destructor body\n"
    "  pragma-once     every header carries '#pragma once'\n"
    "  using-namespace no 'using namespace' at header scope\n"
    "  include-style   project includes are layer-qualified\n"
    "                  (\"bdd/bdd.hpp\", never \"bdd.hpp\")\n";

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--config FILE] [--json FILE] "
                 "[--quiet]\n       %s --list-rules\n",
                 argv0, argv0);
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    std::string root = ".";
    std::string config_path;
    std::string json_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            std::fputs(kRuleHelp, stdout);
            return 0;
        }
        if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--config" && i + 1 < argc) {
            config_path = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }
    if (config_path.empty()) { config_path = root + "/.leq_lint"; }

    std::vector<std::string> config_errors;
    const leq_lint::lint_config config =
        leq_lint::load_config(config_path, config_errors);
    if (!config_errors.empty()) {
        for (const std::string& error : config_errors) {
            std::fprintf(stderr, "leq_lint: %s\n", error.c_str());
        }
        return 2;
    }

    leq_lint::lint_report report;
    try {
        report = leq_lint::lint_tree(root, config);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "leq_lint: %s\n", e.what());
        return 2;
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "leq_lint: cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << leq_lint::to_json(report) << "\n";
    }

    for (const leq_lint::violation& v : report.violations) {
        std::fprintf(stdout, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                     v.rule.c_str(), v.message.c_str());
    }
    if (!quiet) {
        std::fprintf(stdout, "leq_lint: %zu violation(s) in %zu file(s)\n",
                     report.violations.size(), report.files_scanned);
    }
    return report.violations.empty() ? 0 : 1;
}
