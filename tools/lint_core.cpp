/// \file lint_core.cpp
/// \brief Implementation of the `leq_lint` checks (see lint_core.hpp).

#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace leq_lint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// configuration
// ---------------------------------------------------------------------------

bool lint_config::edge_allowed(const std::string& from,
                               const std::string& to) const {
    for (const auto& [f, t] : layer_edges) {
        if (f == from && (t == "*" || t == to)) { return true; }
    }
    return false;
}

bool lint_config::is_allowed(const std::string& rule,
                             const std::string& file) const {
    for (const auto& [r, f] : allows) {
        if (r == rule && f == file) { return true; }
    }
    return false;
}

lint_config parse_config(const std::string& text,
                         std::vector<std::string>& errors) {
    lint_config config;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) { line.erase(hash); }
        std::istringstream row(line);
        std::string directive;
        if (!(row >> directive)) { continue; } // blank / comment-only
        std::string a, b, extra;
        if (directive == "layer-edge") {
            if (!(row >> a >> b) || (row >> extra)) {
                errors.push_back(".leq_lint:" + std::to_string(line_no) +
                                 ": expected 'layer-edge FROM TO'");
                continue;
            }
            config.layer_edges.emplace_back(a, b);
        } else if (directive == "allow") {
            if (!(row >> a >> b) || (row >> extra)) {
                errors.push_back(".leq_lint:" + std::to_string(line_no) +
                                 ": expected 'allow RULE FILE'");
                continue;
            }
            config.allows.emplace_back(a, b);
        } else {
            errors.push_back(".leq_lint:" + std::to_string(line_no) +
                             ": unknown directive '" + directive + "'");
        }
    }
    return config;
}

lint_config load_config(const std::string& path,
                        std::vector<std::string>& errors) {
    std::ifstream in(path);
    if (!in) {
        errors.push_back("cannot open lint config '" + path + "'");
        return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_config(buffer.str(), errors);
}

// ---------------------------------------------------------------------------
// lexical preprocessing
// ---------------------------------------------------------------------------

std::string strip_comments_and_strings(const std::string& text) {
    std::string out = text;
    enum class state { code, line_comment, block_comment, dquote, squote };
    state s = state::code;
    // preprocessor lines keep their string literals (#include "..." paths)
    bool line_is_preproc = false;
    bool line_started = false;
    const std::size_t n = text.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = text[i];
        const char next = i + 1 < n ? text[i + 1] : '\0';
        if (c == '\n') {
            if (s == state::line_comment) { s = state::code; }
            // unterminated string literals do not cross lines in valid code
            if (s == state::dquote || s == state::squote) { s = state::code; }
            line_is_preproc = false;
            line_started = false;
            continue;
        }
        if (!line_started && !std::isspace(static_cast<unsigned char>(c))) {
            line_started = true;
            line_is_preproc = c == '#';
        }
        switch (s) {
        case state::code:
            if (c == '/' && next == '/') {
                s = state::line_comment;
                out[i] = ' ';
            } else if (c == '/' && next == '*') {
                s = state::block_comment;
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                s = state::dquote;
            } else if (c == '\'') {
                // heuristically distinguish char literals from digit
                // separators (1'000'000): a quote directly after an
                // alphanumeric char inside a number is a separator
                const char prev = i > 0 ? text[i - 1] : '\0';
                if (!std::isalnum(static_cast<unsigned char>(prev))) {
                    s = state::squote;
                }
            }
            break;
        case state::line_comment:
            out[i] = ' ';
            break;
        case state::block_comment:
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                s = state::code;
            } else {
                out[i] = ' ';
            }
            break;
        case state::dquote:
            if (c == '\\') {
                if (!line_is_preproc) {
                    out[i] = ' ';
                    if (next != '\n') { out[i + 1] = ' '; }
                }
                ++i;
            } else if (c == '"') {
                s = state::code;
            } else if (!line_is_preproc) {
                out[i] = ' ';
            }
            break;
        case state::squote:
            if (c == '\\') {
                out[i] = ' ';
                if (next != '\n') { out[i + 1] = ' '; }
                ++i;
            } else if (c == '\'') {
                s = state::code;
            } else {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

namespace {

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find whole-token occurrences of `token` in `line` (no identifier char on
/// either side).
bool contains_token(const std::string& line, const std::string& token) {
    std::size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
        if (left_ok && right_ok) { return true; }
        pos = end;
    }
    return false;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/// `#include` directive on a line, if any.  Returns true and fills `target`
/// (the path) and `quoted` (quote form vs angle form).
bool parse_include(const std::string& line, std::string& target,
                   bool& quoted) {
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
    }
    if (i >= line.size() || line[i] != '#') { return false; }
    ++i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
    }
    if (line.compare(i, 7, "include") != 0) { return false; }
    i += 7;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
    }
    if (i >= line.size()) { return false; }
    const char open = line[i];
    const char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
    if (close == '\0') { return false; }
    const std::size_t end = line.find(close, i + 1);
    if (end == std::string::npos) { return false; }
    target = line.substr(i + 1, end - i - 1);
    quoted = open == '"';
    return true;
}

/// Layer of a root-relative path: "src/bdd/bdd.cpp" -> "bdd",
/// "src/leq.hpp" -> "root", anything else -> "".
std::string layer_of_path(const std::string& path) {
    if (path.compare(0, 4, "src/") != 0) { return ""; }
    const std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos) { return "root"; }
    return path.substr(4, slash - 4);
}

bool is_header(const std::string& path) {
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos) { return false; }
    const std::string ext = path.substr(dot);
    return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

// the concurrency vocabulary: simple tokens are matched whole-word in the
// stripped text; headers are matched against parsed #include targets
const char* const kConcurrencyTokens[] = {
    "std::thread",     "std::jthread",        "std::mutex",
    "std::timed_mutex", "std::recursive_mutex", "std::shared_mutex",
    "std::condition_variable", "std::condition_variable_any",
    "std::atomic",     "std::atomic_flag",    "std::this_thread",
    "std::lock_guard", "std::scoped_lock",    "std::unique_lock",
    "std::shared_lock", "std::future",        "std::promise",
    "std::async",      "std::counting_semaphore", "std::binary_semaphore",
    "std::latch",      "std::barrier",        "std::stop_token",
    "std::call_once",  "std::once_flag",
};

const char* const kConcurrencyHeaders[] = {
    "thread", "mutex", "atomic", "condition_variable", "future",
    "shared_mutex", "semaphore", "latch", "barrier", "stop_token",
};

// `std::atomic<...>` templates begin with "std::atomic"; contains_token
// requires a non-identifier char after the token, so "std::atomic_flag"
// still needs its own entry but "std::atomic<int>" matches "std::atomic".

/// Destructor-with-throw scan over the stripped text.  A destructor
/// definition is `~Identifier (` preceded (ignoring whitespace) by one of
/// `{` `}` `;` `:` or the token `virtual` — which separates it from bitwise
/// NOT in expressions, where `~` follows an operator or `(`.
void scan_dtor_throw(const std::string& path, const std::string& stripped,
                     std::vector<violation>& out) {
    const std::size_t n = stripped.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (stripped[i] != '~') { continue; }
        // previous meaningful character
        std::size_t p = i;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(stripped[p - 1]))) {
            --p;
        }
        bool definition_context = p == 0;
        if (p > 0) {
            const char prev = stripped[p - 1];
            definition_context =
                prev == '{' || prev == '}' || prev == ';' || prev == ':';
            if (!definition_context && is_ident_char(prev)) {
                // token ending at p: "virtual" introduces a dtor declaration
                std::size_t b = p;
                while (b > 0 && is_ident_char(stripped[b - 1])) { --b; }
                definition_context = stripped.compare(b, p - b, "virtual") == 0;
            }
        }
        if (!definition_context) { continue; }
        // ~ Identifier ( ... )
        std::size_t j = i + 1;
        while (j < n && std::isspace(static_cast<unsigned char>(stripped[j]))) {
            ++j;
        }
        const std::size_t name_begin = j;
        while (j < n && is_ident_char(stripped[j])) { ++j; }
        if (j == name_begin) { continue; }
        while (j < n && std::isspace(static_cast<unsigned char>(stripped[j]))) {
            ++j;
        }
        if (j >= n || stripped[j] != '(') { continue; }
        // skip the (empty) parameter list
        int depth = 1;
        ++j;
        while (j < n && depth > 0) {
            if (stripped[j] == '(') { ++depth; }
            if (stripped[j] == ')') { --depth; }
            ++j;
        }
        // skip specifiers (noexcept, override, ...) up to `{`, `;` or `=`
        while (j < n && stripped[j] != '{' && stripped[j] != ';' &&
               stripped[j] != '=') {
            if (stripped[j] == '(') { // noexcept(expr)
                int d = 1;
                ++j;
                while (j < n && d > 0) {
                    if (stripped[j] == '(') { ++d; }
                    if (stripped[j] == ')') { --d; }
                    ++j;
                }
                continue;
            }
            ++j;
        }
        if (j >= n || stripped[j] != '{') { continue; } // declaration only
        // scan the body for a `throw` token
        const std::size_t body_begin = j;
        depth = 1;
        ++j;
        while (j < n && depth > 0) {
            if (stripped[j] == '{') { ++depth; }
            if (stripped[j] == '}') { --depth; }
            if (stripped[j] == 't' &&
                stripped.compare(j, 5, "throw") == 0 &&
                !is_ident_char(stripped[j + 5 < n ? j + 5 : n - 1]) &&
                !is_ident_char(stripped[j - 1])) {
                const int line = 1 + static_cast<int>(std::count(
                    stripped.begin(),
                    stripped.begin() + static_cast<std::ptrdiff_t>(j), '\n'));
                out.push_back({path, line, "dtor-throw",
                               "'throw' inside a destructor body: a "
                               "destructor that throws during unwinding "
                               "terminates the process"});
                j = body_begin; // report once per destructor
                break;
            }
            ++j;
        }
        if (j == body_begin) {
            // violation reported; resume after the body
            depth = 1;
            j = body_begin + 1;
            while (j < n && depth > 0) {
                if (stripped[j] == '{') { ++depth; }
                if (stripped[j] == '}') { --depth; }
                ++j;
            }
        }
        i = j;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// per-file checks
// ---------------------------------------------------------------------------

void lint_file(const std::string& path, const std::string& content,
               const std::vector<std::string>& layers,
               const lint_config& config, std::vector<violation>& out) {
    const std::string stripped = strip_comments_and_strings(content);
    const std::vector<std::string> lines = split_lines(stripped);
    const std::string layer = layer_of_path(path);
    const bool header = is_header(path);

    bool saw_pragma_once = false;
    for (std::size_t k = 0; k < lines.size(); ++k) {
        const std::string& line = lines[k];
        const int line_no = static_cast<int>(k) + 1;

        std::string target;
        bool quoted = false;
        if (parse_include(line, target, quoted)) {
            if (quoted) {
                const std::size_t slash = target.find('/');
                if (slash == std::string::npos) {
                    if (!config.is_allowed("include-style", path)) {
                        out.push_back(
                            {path, line_no, "include-style",
                             "project include '" + target +
                                 "' is not layer-qualified (expected "
                                 "\"<layer>/" + target + "\")"});
                    }
                } else {
                    const std::string to = target.substr(0, slash);
                    const bool known =
                        std::find(layers.begin(), layers.end(), to) !=
                        layers.end();
                    if (known && to != layer &&
                        !config.edge_allowed(layer, to) &&
                        !config.is_allowed("layering", path)) {
                        out.push_back(
                            {path, line_no, "layering",
                             "layer '" + layer + "' must not include '" +
                                 target + "': edge " + layer + " -> " + to +
                                 " is not in the sanctioned layer DAG "
                                 "(.leq_lint)"});
                    }
                }
            } else if (!config.is_allowed("concurrency", path)) {
                for (const char* h : kConcurrencyHeaders) {
                    if (target == h) {
                        out.push_back(
                            {path, line_no, "concurrency",
                             "concurrency header <" + target +
                                 "> outside the sanctioned seams (see "
                                 "'allow concurrency' in .leq_lint)"});
                    }
                }
            }
        }

        if (contains_token(line, "pragma") && contains_token(line, "once")) {
            saw_pragma_once = true;
        }
        if (!config.is_allowed("concurrency", path)) {
            for (const char* token : kConcurrencyTokens) {
                if (contains_token(line, token)) {
                    out.push_back(
                        {path, line_no, "concurrency",
                         std::string(token) +
                             " outside the sanctioned seams (see 'allow "
                             "concurrency' in .leq_lint)"});
                    break; // one report per line
                }
            }
        }
        if (header && contains_token(line, "using") &&
            line.find("namespace") != std::string::npos &&
            contains_token(line, "using namespace") &&
            !config.is_allowed("using-namespace", path)) {
            out.push_back({path, line_no, "using-namespace",
                           "'using namespace' at header scope leaks into "
                           "every includer"});
        }
    }

    if (header && !saw_pragma_once &&
        !config.is_allowed("pragma-once", path)) {
        out.push_back({path, 1, "pragma-once",
                       "header is missing '#pragma once'"});
    }
    if (!config.is_allowed("dtor-throw", path)) {
        scan_dtor_throw(path, stripped, out);
    }
}

// ---------------------------------------------------------------------------
// tree walk
// ---------------------------------------------------------------------------

lint_report lint_tree(const std::string& root, const lint_config& config) {
    const fs::path src = fs::path(root) / "src";
    if (!fs::is_directory(src)) {
        throw std::runtime_error("leq_lint: no src/ directory under '" +
                                 root + "'");
    }

    std::vector<std::string> files; // root-relative, sorted for determinism
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file()) { continue; }
        const std::string ext = entry.path().extension().string();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc" &&
            ext != ".hh" && ext != ".cxx") {
            continue;
        }
        files.push_back(
            fs::relative(entry.path(), fs::path(root)).generic_string());
    }
    std::sort(files.begin(), files.end());

    std::vector<std::string> layers;
    for (const std::string& file : files) {
        const std::string layer = layer_of_path(file);
        if (!layer.empty() &&
            std::find(layers.begin(), layers.end(), layer) == layers.end()) {
            layers.push_back(layer);
        }
    }

    lint_report report;
    for (const std::string& file : files) {
        std::ifstream in(fs::path(root) / file, std::ios::binary);
        if (!in) {
            throw std::runtime_error("leq_lint: cannot read '" + file + "'");
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        lint_file(file, buffer.str(), layers, config, report.violations);
        ++report.files_scanned;
    }
    std::sort(report.violations.begin(), report.violations.end(),
              [](const violation& a, const violation& b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return report;
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string to_json(const lint_report& report) {
    std::ostringstream out;
    out << "{\"files_scanned\":" << report.files_scanned
        << ",\"violation_count\":" << report.violations.size()
        << ",\"violations\":[";
    for (std::size_t i = 0; i < report.violations.size(); ++i) {
        const violation& v = report.violations[i];
        if (i != 0) { out << ","; }
        out << "{\"file\":\"" << json_escape(v.file) << "\",\"line\":"
            << v.line << ",\"rule\":\"" << json_escape(v.rule)
            << "\",\"message\":\"" << json_escape(v.message) << "\"}";
    }
    out << "]}";
    return out.str();
}

} // namespace leq_lint
