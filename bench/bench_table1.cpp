/// \file bench_table1.cpp
/// \brief Reproduces Table 1 of the paper: partitioned vs monolithic
/// computation of the CSF on latch-split circuits.
///
/// Columns match the paper: Name, i/o/cs, Fcs/Xcs, States(X), Part(s),
/// Mono(s), Ratio.  "CNC" marks a flow that could not complete within the
/// time limit (the paper's monolithic flow reports CNC on s444/s526).
///
/// The circuits are synthetic stand-ins with the paper's interface
/// dimensions (see DESIGN.md, substitution note); absolute numbers differ
/// from the paper's testbed, the claim under test is the shape: the
/// partitioned flow wins, the gap grows with size, and the monolithic flow
/// stops completing first.
///
/// Usage: bench_table1 [time_limit_seconds] (default 120)

#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

std::string format_time(const leq::solve_result& r) {
    if (r.status == leq::solve_status::timeout) { return "CNC"; }
    if (r.status == leq::solve_status::state_limit) { return "SLIM"; }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", r.seconds);
    return buf;
}

} // namespace

int main(int argc, char** argv) {
    const double limit = argc > 1 ? std::atof(argv[1]) : 120.0;

    std::printf("Table 1: partitioned vs monolithic CSF computation "
                "(time limit %.0fs per flow)\n\n", limit);
    std::printf("%-8s %-10s %-8s %12s %10s %10s %8s  %s\n", "Name", "i/o/cs",
                "Fcs/Xcs", "States(X)", "Part,s", "Mono,s", "Ratio",
                "Checks");
    std::printf("%s\n", std::string(88, '-').c_str());

    for (const leq::table1_instance& inst : leq::make_table1_suite()) {
        const leq::split_result split =
            leq::split_last_latches(inst.circuit, inst.x_latches);
        const leq::equation_problem problem(split.fixed, inst.circuit);

        leq::solve_options options;
        options.time_limit_seconds = limit;
        const leq::solve_result part = solve_partitioned(problem, options);
        const leq::solve_result mono = solve_monolithic(problem, options);

        std::string states = "-";
        std::string checks = "-";
        if (part.status == leq::solve_status::ok) {
            states = std::to_string(part.csf_states);
            const bool c1 = verify_particular_contained(
                problem, *part.csf, split.part.initial_state());
            const bool c2 = verify_composition_contained(problem, *part.csf);
            checks = std::string(c1 ? "Xp<=X ok" : "Xp<=X FAIL") +
                     (c2 ? ", FX<=S ok" : ", FX<=S FAIL");
        }
        std::string ratio = "-";
        if (part.status == leq::solve_status::ok &&
            mono.status == leq::solve_status::ok && part.seconds > 0) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1f", mono.seconds / part.seconds);
            ratio = buf;
        }
        const std::string dims = std::to_string(inst.circuit.num_inputs()) +
                                 "/" +
                                 std::to_string(inst.circuit.num_outputs()) +
                                 "/" +
                                 std::to_string(inst.circuit.num_latches());
        const std::string fx = std::to_string(inst.f_latches) + "/" +
                               std::to_string(inst.x_latches);
        std::printf("%-8s %-10s %-8s %12s %10s %10s %8s  %s\n",
                    inst.name.c_str(), dims.c_str(), fx.c_str(),
                    states.c_str(), format_time(part).c_str(),
                    format_time(mono).c_str(), ratio.c_str(), checks.c_str());
        std::fflush(stdout);
    }
    std::printf("\nPaper's reference (1.6GHz, MCNC originals): s510 54st "
                "0.3/0.2s; s208 497st 0.4/0.8s; s298 553st 0.9/2.7s;\n"
                "s349 2626st 37.7/810.3s (21.5x); s444 17730st 25.9s/CNC; "
                "s526 141829st 276.7s/CNC\n");
    return 0;
}
