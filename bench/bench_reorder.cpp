/// \file bench_reorder.cpp
/// \brief Ablation D: dynamic variable reordering in the BDD substrate.
///
/// The solver pins its (u,v)-block order and never reorders (DESIGN.md,
/// Section 2), so reordering is evaluated where it is safe: on standalone
/// function builds and on symbolic reachability of the generator circuits.
/// Three orders are compared per workload:
///
///   natural   the order the variables were created in
///   scrambled a deterministic bad permutation (worst-case stand-in)
///   sifted    scrambled, then one Rudell sifting pass
///
/// Reported: live BDD nodes for the swept functions under each order, the
/// sifting time, and the node count recovered by sifting.  The claim under
/// test: sifting recovers most of the size lost to a bad order, at a cost
/// that is small against the blowup it removes.
///
/// Usage: bench_reorder [max_bits] (default 12)

#include "gen/scenario.hpp"
#include "img/image.hpp"
#include "net/generator.hpp"
#include "net/netbdd.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace {

using namespace leq;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// Deterministic "bad" permutation: reverse-interleave the ids.
std::vector<std::uint32_t> scramble(std::uint32_t n) {
    std::vector<std::uint32_t> order;
    order.reserve(n);
    for (std::uint32_t v = 0; v < n; v += 2) { order.push_back(v); }
    for (std::uint32_t v = 1; v < n; v += 2) { order.push_back(v); }
    std::reverse(order.begin() + n / 3, order.end());
    return order;
}

struct row {
    const char* name;
    std::size_t natural;
    std::size_t scrambled;
    std::size_t sifted;
    double sift_seconds;
};

/// Sweep a network's output/next-state functions under three orders.
row measure_network(const char* name, const network& net) {
    row r{name, 0, 0, 0, 0.0};
    const auto sweep_nodes = [&](bdd_manager& mgr) {
        std::vector<std::uint32_t> ins, css;
        for (std::size_t k = 0; k < net.num_inputs(); ++k) {
            ins.push_back(k);
        }
        for (std::size_t k = 0; k < net.num_latches(); ++k) {
            css.push_back(net.num_inputs() + k);
        }
        const net_bdds fns = build_net_bdds(mgr, net, ins, css);
        std::size_t live = mgr.live_node_count();
        return std::pair{fns, live};
    };
    const auto nvars =
        static_cast<std::uint32_t>(net.num_inputs() + net.num_latches());
    {
        bdd_manager mgr(nvars);
        r.natural = sweep_nodes(mgr).second;
    }
    {
        bdd_manager mgr(nvars);
        mgr.set_var_order(scramble(nvars));
        auto [fns, live] = sweep_nodes(mgr);
        r.scrambled = live;
        const auto start = std::chrono::steady_clock::now();
        r.sifted = mgr.reorder_sift();
        r.sift_seconds = seconds_since(start);
    }
    return r;
}

/// The classic x0&x1 | x2&x3 | ... function under the three orders.
row measure_chain(std::uint32_t pairs) {
    static char label[32];
    std::snprintf(label, sizeof label, "chain%u", pairs);
    row r{label, 0, 0, 0, 0.0};
    const auto build = [&](bdd_manager& mgr) {
        bdd f = mgr.zero();
        for (std::uint32_t p = 0; p < pairs; ++p) {
            f |= mgr.var(2 * p) & mgr.var(2 * p + 1);
        }
        return f;
    };
    {
        bdd_manager mgr(2 * pairs);
        const bdd f = build(mgr);
        r.natural = mgr.dag_size(f);
    }
    {
        bdd_manager mgr(2 * pairs);
        // all even variables above all odd ones: exponential
        std::vector<std::uint32_t> order;
        for (std::uint32_t v = 0; v < 2 * pairs; v += 2) {
            order.push_back(v);
        }
        for (std::uint32_t v = 1; v < 2 * pairs; v += 2) {
            order.push_back(v);
        }
        mgr.set_var_order(order);
        const bdd f = build(mgr);
        r.scrambled = mgr.dag_size(f);
        const auto start = std::chrono::steady_clock::now();
        mgr.reorder_sift();
        r.sift_seconds = seconds_since(start);
        r.sifted = mgr.dag_size(f);
    }
    return r;
}

void print_row(const row& r) {
    std::printf("%-10s %10zu %12zu %10zu %10.3f %9.1fx\n", r.name, r.natural,
                r.scrambled, r.sifted, r.sift_seconds,
                r.sifted > 0 ? static_cast<double>(r.scrambled) /
                                   static_cast<double>(r.sifted)
                             : 0.0);
}

} // namespace

int main(int argc, char** argv) {
    const auto max_bits =
        static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 12);

    std::printf("Ablation D: dynamic variable reordering (sifting)\n");
    std::printf("%-10s %10s %12s %10s %10s %10s\n", "workload", "natural",
                "scrambled", "sifted", "sift,s", "recovery");

    for (std::uint32_t pairs = 4; pairs <= max_bits; pairs += 2) {
        print_row(measure_chain(pairs));
    }
    print_row(measure_network("counter8", make_counter(8)));
    print_row(measure_network("counter12", make_counter(12)));
    print_row(measure_network("lfsr10", make_lfsr(10, {2, 6})));
    print_row(measure_network("shiftxor9", make_shift_xor(9)));
    {
        structured_spec spec;
        spec.num_inputs = 3;
        spec.num_outputs = 6;
        spec.num_latches = 14;
        // LEQ_TEST_SEED shifts the generated circuit (0 when unset)
        spec.seed = test_seed(0) + 14;
        print_row(measure_network("mix14", make_structured_mix(spec)));
    }
    std::printf("\nclaim: sifting recovers most of the blowup a bad order "
                "causes;\nthe solver itself keeps its pinned (u,v) order "
                "(see DESIGN.md).\n");
    return 0;
}
