/// \file bench_batch.cpp
/// \brief Batch-campaign throughput series: the same manifest of generated
/// equations solved with a growing worker pool, one BDD manager per worker.
///
/// Prints a markdown table of wall time, equations/second and speedup over
/// the single-worker run.  Because workers share nothing, the series
/// measures pure scheduling overhead plus memory-bandwidth contention —
/// the scaling headroom available to campaign sharding.
///
/// Usage: leq_bench_batch [jobs-per-family]   (default 6)

#include "cli/batch.hpp"
#include "gen/scenario.hpp"

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace leq;

std::vector<batch_job> make_jobs(std::size_t per_family) {
    const char* families[] = {"random", "counter", "arbiter", "pipeline",
                              "nondet", "mutant"};
    // LEQ_TEST_SEED shifts the whole seed range (0 when unset: seeds 1..N)
    const std::size_t base = test_seed(0);
    std::vector<batch_job> jobs;
    for (const char* family : families) {
        for (std::size_t seed = 1; seed <= per_family; ++seed) {
            const std::string spec = "gen:" + std::string(family) + ":" +
                                     std::to_string(base + seed);
            generated_pair pair = make_gen_pair(spec);
            batch_job job;
            job.name = spec.substr(4);
            job.fixed = std::move(pair.fixed);
            job.spec = std::move(pair.spec);
            job.has_choice_inputs = true;
            job.choice_inputs = pair.num_choice_inputs;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace

int main(int argc, char** argv) {
    std::size_t per_family = 6;
    if (argc > 1) { per_family = std::strtoul(argv[1], nullptr, 10); }
    const std::vector<batch_job> jobs = make_jobs(per_family);

    batch_options options;
    options.config.timing = false;
    options.config.solve.time_limit_seconds = 60.0;

    std::vector<std::size_t> worker_counts = {1, 2, 4};
    const std::size_t hw = std::thread::hardware_concurrency();
    if (hw > 4) { worker_counts.push_back(hw); }

    std::cout << "batch throughput: " << jobs.size()
              << " generated equations (6 families x " << per_family
              << " seeds)\n\n"
              << "| workers | wall s | eq/s | speedup |\n"
              << "| --- | --- | --- | --- |\n";
    double base_seconds = 0.0;
    for (const std::size_t workers : worker_counts) {
        options.jobs = workers;
        const batch_report report = run_batch(jobs, options);
        if (!report.all_ok()) {
            std::cerr << "bench_batch: " << report.gave_up << " gave up, "
                      << report.errors << " errors\n";
            return 1;
        }
        if (base_seconds == 0.0) { base_seconds = report.wall_seconds; }
        std::cout << "| " << workers << " | " << report.wall_seconds << " | "
                  << static_cast<double>(jobs.size()) / report.wall_seconds
                  << " | " << base_seconds / report.wall_seconds << "x |\n";
    }
    return 0;
}
