/// \file bench_image.cpp
/// \brief google-benchmark micro suite for the image-computation substrate:
/// early-quantification scheduling vs naive conjoin-then-quantify, cluster
/// limits, and full reachability sweeps.

#include "gen/scenario.hpp"
#include "img/image.hpp"
#include "net/generator.hpp"
#include "net/netbdd.hpp"

#include <benchmark/benchmark.h>

#include <string>

namespace {

using namespace leq;

struct setup {
    bdd_manager mgr;
    std::vector<std::uint32_t> in, cs, ns;
    net_bdds fns;
    bdd init;

    explicit setup(const network& net) : mgr(0, 20), init(mgr.one()) {
        for (std::size_t k = 0; k < net.num_inputs(); ++k) {
            in.push_back(mgr.new_var());
        }
        for (std::size_t k = 0; k < net.num_latches(); ++k) {
            cs.push_back(mgr.new_var());
            ns.push_back(mgr.new_var());
        }
        fns = build_net_bdds(mgr, net, in, cs);
        init = state_cube(mgr, cs, net.initial_state());
    }

    [[nodiscard]] std::vector<bdd> parts() {
        std::vector<bdd> p;
        for (std::size_t k = 0; k < fns.next_state.size(); ++k) {
            p.push_back(mgr.var(ns[k]).iff(fns.next_state[k]));
        }
        return p;
    }
    [[nodiscard]] std::vector<std::uint32_t> quantify() const {
        std::vector<std::uint32_t> q = in;
        q.insert(q.end(), cs.begin(), cs.end());
        return q;
    }
    [[nodiscard]] std::vector<std::uint32_t> cs_ns_swap() const {
        std::vector<std::uint32_t> p(mgr.num_vars());
        for (std::uint32_t v = 0; v < p.size(); ++v) { p[v] = v; }
        for (std::size_t k = 0; k < cs.size(); ++k) {
            p[ns[k]] = cs[k];
            p[cs[k]] = ns[k];
        }
        return p;
    }
    /// `init` advanced a few image steps (a non-trivial frontier).
    [[nodiscard]] bdd advanced_frontier(const image_engine& engine,
                                        int steps = 3) {
        const std::vector<std::uint32_t> perm = cs_ns_swap();
        bdd from = init;
        for (int k = 0; k < steps; ++k) {
            from |= mgr.permute(engine.image(from), perm);
        }
        return from;
    }
};

network bench_circuit(int size) {
    structured_spec spec;
    spec.num_inputs = 4;
    spec.num_outputs = 4;
    spec.num_latches = static_cast<std::size_t>(size);
    // LEQ_TEST_SEED shifts the generated circuits (0 when unset)
    spec.seed = test_seed(0) + 17;
    return make_structured_mix(spec);
}

void bm_image_scheduled(benchmark::State& state) {
    setup s(bench_circuit(static_cast<int>(state.range(0))));
    image_options options;
    const image_engine engine(s.mgr, s.parts(), s.quantify(), options);
    // image from a frontier after a few steps (more interesting than init)
    const bdd from = s.advanced_frontier(engine);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.image(from));
    }
}
BENCHMARK(bm_image_scheduled)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void bm_image_naive(benchmark::State& state) {
    setup s(bench_circuit(static_cast<int>(state.range(0))));
    image_options options;
    options.early_quantification = false;
    const image_engine engine(s.mgr, s.parts(), s.quantify(), options);
    bdd from = s.init;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.image(from));
    }
}
BENCHMARK(bm_image_naive)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void bm_reachability(benchmark::State& state) {
    const network net = bench_circuit(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        setup s(net);
        benchmark::DoNotOptimize(
            reachable_states(s.mgr, s.fns.next_state, s.cs, s.ns, s.in,
                             s.init));
    }
}
BENCHMARK(bm_reachability)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

/// Per-strategy reachability comparison (one row per (workload, size,
/// strategy); the label column names the strategy).  range(1) indexes
/// all_reach_strategies.
void run_reach_strategy(benchmark::State& state, const network& net) {
    const auto strategy = static_cast<reach_strategy>(state.range(1));
    state.SetLabel(to_string(strategy));
    image_options options;
    options.strategy = strategy;
    for (auto _ : state) {
        setup s(net);
        benchmark::DoNotOptimize(reachable_states(
            s.mgr, s.fns.next_state, s.cs, s.ns, s.in, s.init, options));
    }
}

/// Deep-sequential workload: an n-bit counter — 2^n sequential depth, tiny
/// frontiers, the regime where frontier/chaining shine over full-set bfs.
void bm_reach_strategy_deep(benchmark::State& state) {
    run_reach_strategy(state,
                       make_counter(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(bm_reach_strategy_deep)
    ->ArgsProduct({{6, 8, 10}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

/// Deep-irregular workload: an n-bit LFSR — one fresh state per step like
/// the counter, but the reached-set BDD grows irregularly instead of
/// staying a compact {0..k} prefix, so full-set bfs re-imaging cannot hide
/// behind the computed cache.  This is the saturation strategy's regime.
void bm_reach_strategy_lfsr(benchmark::State& state) {
    run_reach_strategy(
        state, make_lfsr(static_cast<std::size_t>(state.range(0)), {2, 0}));
}
BENCHMARK(bm_reach_strategy_lfsr)
    ->ArgsProduct({{10, 12}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

/// Wide-parallel workload: a structured mix of weakly coupled blocks —
/// shallow depth, wide frontiers, many latches updating in parallel, the
/// regime that stresses the within-step schedule (greedy vs chaining).
/// Above ~24 latches reachability takes minutes; keep the sweep below that.
void bm_reach_strategy_wide(benchmark::State& state) {
    structured_spec spec;
    spec.num_inputs = 4;
    spec.num_outputs = 4;
    spec.num_latches = static_cast<std::size_t>(state.range(0));
    spec.seed = test_seed(0) + 23;
    run_reach_strategy(state, make_structured_mix(spec));
}
BENCHMARK(bm_reach_strategy_wide)
    ->ArgsProduct({{12, 16, 24}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void bm_cluster_limit(benchmark::State& state) {
    setup s(bench_circuit(20));
    image_options options;
    options.cluster_limit = static_cast<std::size_t>(state.range(0));
    const image_engine engine(s.mgr, s.parts(), s.quantify(), options);
    bdd from = s.init;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.image(from));
    }
}
BENCHMARK(bm_cluster_limit)->Arg(0)->Arg(500)->Arg(2500)->Arg(10000);

/// Greedy-vs-affinity cluster comparison table (one row per (size, policy);
/// the label column names the policy and the resulting cluster count).
/// range(1) indexes all_cluster_policies.  The from-set is advanced a few
/// steps so the image sees a non-trivial frontier.
void bm_cluster_policy(benchmark::State& state) {
    setup s(bench_circuit(static_cast<int>(state.range(0))));
    image_options options;
    options.policy = static_cast<cluster_policy>(state.range(1));
    // a limit where the policies actually produce different clusterings on
    // these sizes (the default 2500 merges everything into one cluster,
    // which would compare identical schedules)
    options.cluster_limit = 600;
    const image_engine engine(s.mgr, s.parts(), s.quantify(), options);
    state.SetLabel(std::string(to_string(options.policy)) + "/" +
                   std::to_string(engine.num_clusters()) + "cl");
    const bdd from = s.advanced_frontier(engine);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.image(from));
    }
}
BENCHMARK(bm_cluster_policy)->ArgsProduct({{16, 24, 32}, {0, 1, 2}});

/// The same policy comparison on a full reachability fixpoint over a
/// structured mix of weakly coupled blocks: adjacent greedy merging is at
/// the mercy of declaration order, affinity regroups parts by support.
void bm_cluster_policy_reach(benchmark::State& state) {
    structured_spec spec;
    spec.num_inputs = 4;
    spec.num_outputs = 4;
    spec.num_latches = static_cast<std::size_t>(state.range(0));
    spec.seed = test_seed(0) + 29;
    const network net = make_structured_mix(spec);
    image_options options;
    options.policy = static_cast<cluster_policy>(state.range(1));
    state.SetLabel(to_string(options.policy));
    for (auto _ : state) {
        setup s(net);
        benchmark::DoNotOptimize(reachable_states(
            s.mgr, s.fns.next_state, s.cs, s.ns, s.in, s.init, options));
    }
}
BENCHMARK(bm_cluster_policy_reach)
    ->ArgsProduct({{12, 16}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
