/// \file bench_negation.cpp
/// \brief Negation-heavy workloads: the benchmark behind the complement-edge
/// decision.  Plain executable (no google-benchmark dependency) printing a
/// markdown table so before/after runs can be diffed directly.
///
/// Workloads mirror the negation-heavy steps of the X = A-solve-B flow:
/// completion and complementation negate large intermediate languages over
/// and over, and De Morgan-shaped rewrites (~(~f | ~g) vs f & g) either hit
/// one shared cache line (complement edges) or recompute (without).

#include "bdd/bdd.hpp"
#include "gen/scenario.hpp"

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

namespace {

using namespace leq;

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/// n-bit ripple-carry adder sum bits conjoined: a classic mid-size function.
bdd adder_conjunction(bdd_manager& mgr, std::uint32_t bits) {
    bdd carry = mgr.zero();
    bdd acc = mgr.one();
    for (std::uint32_t k = 0; k < bits; ++k) {
        const bdd a = mgr.var(2 * k);
        const bdd b = mgr.var(2 * k + 1);
        acc &= (a ^ b ^ carry);
        carry = (a & b) | (carry & (a ^ b));
    }
    return acc;
}

bdd random_function(bdd_manager& mgr, std::uint32_t nvars, std::uint32_t seed,
                    std::size_t ops) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::uint32_t> pick_var(0, nvars - 1);
    std::uniform_int_distribution<int> pick_op(0, 2);
    bdd f = mgr.literal(pick_var(rng), (rng() & 1u) != 0);
    for (std::size_t k = 0; k < ops; ++k) {
        const bdd lit = mgr.literal(pick_var(rng), (rng() & 1u) != 0);
        switch (pick_op(rng)) {
        case 0: f = f & lit; break;
        case 1: f = f | lit; break;
        default: f = f ^ lit; break;
        }
    }
    return f;
}

void row(const char* name, double ms, std::size_t nodes) {
    std::printf("| %-34s | %10.3f | %10zu |\n", name, ms, nodes);
}

} // namespace

int main() {
    // LEQ_TEST_SEED shifts every seeded workload (0 when unset: the
    // canonical numbers below)
    const std::uint32_t base = test_seed(0);
    std::printf("| workload                           |    time ms |      nodes |\n");
    std::printf("| ---------------------------------- | ---------- | ---------- |\n");

    // 1. repeated negation of one large function (hot loop of completion)
    {
        bdd_manager mgr(40);
        const bdd f = adder_conjunction(mgr, 20);
        volatile bool sink = false;
        const auto t0 = std::chrono::steady_clock::now();
        for (int k = 0; k < 200000; ++k) {
            const bdd nf = !f;
            sink = nf.is_zero();
        }
        (void)sink;
        row("negate x200k (adder-20)", ms_since(t0), mgr.live_node_count());
    }

    // 2. f and !f held together: node cost of keeping both phases live
    {
        bdd_manager mgr(24);
        std::vector<bdd> keep;
        for (std::uint32_t s = 0; s < 24; ++s) {
            const bdd f = random_function(mgr, 24, base + 1000 + s, 90);
            keep.push_back(f);
            keep.push_back(!f);
        }
        row("24 random f plus !f live", 0.0, mgr.live_node_count());
    }

    // 3. fresh negations, cold cache each round (GC clears the cache):
    //    negation cost that a computed cache cannot amortize.  Only the
    //    negation loop is timed; the cache-clearing GC between rounds is not.
    {
        bdd_manager mgr(20);
        std::vector<bdd> funcs;
        for (std::uint32_t s = 0; s < 64; ++s) {
            funcs.push_back(random_function(mgr, 20, base + 77 * s + 3, 70));
        }
        double negate_ms = 0.0;
        double checksum = 0.0;
        for (int round = 0; round < 40; ++round) {
            mgr.collect_garbage(); // clears the computed cache (untimed)
            const auto t0 = std::chrono::steady_clock::now();
            for (const bdd& f : funcs) { checksum += (!f).is_one() ? 1 : 0; }
            negate_ms += ms_since(t0);
        }
        (void)checksum;
        row("cold-cache negate 64x40", negate_ms, mgr.live_node_count());
    }

    // 4. De Morgan sharing: compute f&g then ~(~f | ~g) for many pairs; with
    //    complement edges the second form is the same cache line
    {
        bdd_manager mgr(18);
        std::vector<bdd> fs, gs;
        for (std::uint32_t s = 0; s < 48; ++s) {
            fs.push_back(random_function(mgr, 18, base + 5000 + s, 60));
            gs.push_back(random_function(mgr, 18, base + 6000 + s, 60));
        }
        const auto t0 = std::chrono::steady_clock::now();
        std::size_t mismatches = 0;
        for (int round = 0; round < 60; ++round) {
            for (std::size_t k = 0; k < fs.size(); ++k) {
                const bdd direct = fs[k] & gs[k];
                const bdd demorgan = !((!fs[k]) | (!gs[k]));
                mismatches += direct == demorgan ? 0 : 1;
            }
        }
        std::uint64_t lookups = mgr.stats().cache_lookups;
        (void)lookups;
        row(mismatches == 0 ? "demorgan and-pairs 48x60"
                            : "demorgan and-pairs 48x60 (MISMATCH)",
            ms_since(t0), mgr.live_node_count());
    }

    // 5. xor-complement identities: parity chains and their negations
    {
        bdd_manager mgr(64);
        const auto t0 = std::chrono::steady_clock::now();
        bdd acc = mgr.zero();
        for (int round = 0; round < 300; ++round) {
            acc = mgr.zero();
            for (std::uint32_t v = 0; v < 64; ++v) {
                acc ^= (v & 1) ? !mgr.var(v) : mgr.var(v);
            }
        }
        row("negated-literal parity-64 x300", ms_since(t0),
            mgr.dag_size(acc));
    }

    return 0;
}
