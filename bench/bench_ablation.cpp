/// \file bench_ablation.cpp
/// \brief Ablations of the design choices DESIGN.md calls out.
///
///  A. DCN trimming (paper, Section 3.2): in the monolithic flow, replacing
///     subsets that contain an (a,DC1) product state by DCN on the fly
///     avoids exploring them; the baseline explores them and prefix-closes
///     at the end.
///  B. Deferred completion (paper, Appendix / Corollary 1): the partitioned
///     flow never completes F or S; the monolithic flow completes S eagerly.
///     The flows' time difference on the same instance bounds the saving.
///  C. Early quantification (paper, Section 1): the partitioned flow with
///     IWLS95-style scheduling vs conjoin-then-quantify inside the same
///     subset construction.
///
/// Usage: bench_ablation [time_limit_seconds] (default 100)

#include "eq/solver.hpp"
#include "eq/reduce.hpp"
#include "eq/subsolution.hpp"
#include "gen/scenario.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

std::string cell(const leq::solve_result& r) {
    if (r.status != leq::solve_status::ok) { return "CNC"; }
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.2fs/%zu", r.seconds,
                  r.subset_states_explored);
    return buf;
}

} // namespace

int main(int argc, char** argv) {
    using namespace leq;
    const double limit = argc > 1 ? std::atof(argv[1]) : 100.0;
    // LEQ_TEST_SEED shifts the generated circuits (0 when unset)
    const std::uint32_t base = test_seed(0);

    struct workload {
        std::string name;
        network circuit;
        std::size_t x_latches;
    };
    std::vector<workload> workloads;
    {
        // calibrated instances (same generators as Table 1, known to be
        // enumerable): a 14-latch mix, a 15-latch mix, a counter top-bit
        // split and an LFSR half split
        structured_spec spec;
        spec.num_inputs = 3;
        spec.num_outputs = 6;
        spec.num_latches = 14;
        spec.seed = base + 14;
        workloads.push_back({"mix14", make_structured_mix(spec), 7});
        spec.num_inputs = 9;
        spec.num_outputs = 11;
        spec.num_latches = 15;
        spec.seed = base + 349;
        workloads.push_back({"mix15", make_structured_mix(spec), 10});
        workloads.push_back({"cnt8", make_counter(8), 2});
        workloads.push_back({"lfsr10", make_lfsr(10, {2, 6}), 5});
    }

    std::printf("Ablation A: monolithic flow, DCN trimming on vs off "
                "(time/subsets)\n");
    std::printf("%-8s %16s %16s\n", "name", "trim on", "trim off");
    for (const workload& w : workloads) {
        const split_result split = split_last_latches(w.circuit, w.x_latches);
        const equation_problem problem(split.fixed, w.circuit);
        solve_options on, off;
        on.time_limit_seconds = off.time_limit_seconds = limit;
        off.trim_nonconforming = false;
        const solve_result a = solve_monolithic(problem, on);
        const solve_result b = solve_monolithic(problem, off);
        std::printf("%-8s %16s %16s\n", w.name.c_str(), cell(a).c_str(),
                    cell(b).c_str());
        std::fflush(stdout);
    }

    std::printf("\nAblation B: deferred completion (partitioned) vs eager "
                "completion of S (monolithic), same instance\n");
    std::printf("%-8s %16s %16s\n", "name", "deferred", "eager");
    for (const workload& w : workloads) {
        const split_result split = split_last_latches(w.circuit, w.x_latches);
        const equation_problem problem(split.fixed, w.circuit);
        solve_options options;
        options.time_limit_seconds = limit;
        const solve_result a = solve_partitioned(problem, options);
        const solve_result b = solve_monolithic(problem, options);
        std::printf("%-8s %16s %16s\n", w.name.c_str(), cell(a).c_str(),
                    cell(b).c_str());
        std::fflush(stdout);
    }

    std::printf("\nAblation C: partitioned flow, early quantification vs "
                "conjoin-then-quantify\n");
    std::printf("%-8s %16s %16s\n", "name", "scheduled", "naive");
    for (const workload& w : workloads) {
        const split_result split = split_last_latches(w.circuit, w.x_latches);
        const equation_problem problem(split.fixed, w.circuit);
        solve_options early, naive;
        early.time_limit_seconds = naive.time_limit_seconds = limit;
        naive.img.early_quantification = false;
        const solve_result a = solve_partitioned(problem, early);
        const solve_result b = solve_partitioned(problem, naive);
        std::printf("%-8s %16s %16s\n", w.name.c_str(), cell(a).c_str(),
                    cell(b).c_str());
        std::fflush(stdout);
    }

    std::printf("\nAblation E: sub-solution extraction policies "
                "(minimized FSM states; the paper's future-work baseline)\n");
    std::printf("%-8s", "name");
    for (const extraction_policy p : all_extraction_policies()) {
        std::printf(" %16s", to_string(p));
    }
    std::printf(" %16s %16s\n", "winner", "cover_reduce");
    for (const workload& w : workloads) {
        const split_result split = split_last_latches(w.circuit, w.x_latches);
        const equation_problem problem(split.fixed, w.circuit);
        solve_options options;
        options.time_limit_seconds = limit;
        const solve_result r = solve_partitioned(problem, options);
        if (r.status != solve_status::ok || r.empty_solution ||
            problem.u_vars.size() > 12) {
            std::printf("%-8s %16s\n", w.name.c_str(), "-");
            continue;
        }
        const subsolution_result sel = select_small_subsolution(
            *r.csf, problem.u_vars, problem.v_vars);
        std::printf("%-8s", w.name.c_str());
        for (const subsolution_candidate& c : sel.candidates) {
            std::printf(" %16zu", c.minimized_states);
        }
        std::printf(" %16s", to_string(sel.policy));
        reduction_options ropt;
        ropt.max_states = 2048;
        const auto reduced = reduce_subsolution(*r.csf, problem.u_vars,
                                                problem.v_vars, ropt);
        if (reduced.has_value()) {
            std::printf(" %16zu\n", reduced->num_states());
        } else {
            std::printf(" %16s\n", "-");
        }
        std::fflush(stdout);
    }
    return 0;
}
