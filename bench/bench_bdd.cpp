/// \file bench_bdd.cpp
/// \brief google-benchmark micro suite for the BDD substrate: connective
/// throughput, quantification, relational product and renaming on
/// structured functions (adders, parities, comparators).

#include "bdd/bdd.hpp"

#include <benchmark/benchmark.h>

#include <memory>

namespace {

using namespace leq;

/// n-bit ripple-carry adder sum and carry bits: classic BDD stress shape.
std::vector<bdd> adder_sums(bdd_manager& mgr, std::uint32_t bits) {
    std::vector<bdd> sums;
    bdd carry = mgr.zero();
    for (std::uint32_t k = 0; k < bits; ++k) {
        const bdd a = mgr.var(2 * k);
        const bdd b = mgr.var(2 * k + 1);
        sums.push_back(a ^ b ^ carry);
        carry = (a & b) | (carry & (a ^ b));
    }
    sums.push_back(carry);
    return sums;
}

void bm_adder_build(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        bdd_manager mgr(2 * bits);
        benchmark::DoNotOptimize(adder_sums(mgr, bits));
    }
}
BENCHMARK(bm_adder_build)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_and_chain(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(2 * bits);
    const std::vector<bdd> sums = adder_sums(mgr, bits);
    for (auto _ : state) {
        bdd acc = mgr.one();
        for (const bdd& s : sums) { acc &= s; }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(bm_and_chain)->Arg(8)->Arg(16)->Arg(32);

void bm_xor_parity(benchmark::State& state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(n);
    for (auto _ : state) {
        bdd acc = mgr.zero();
        for (std::uint32_t v = 0; v < n; ++v) { acc ^= mgr.var(v); }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(bm_xor_parity)->Arg(16)->Arg(64)->Arg(128);

void bm_exists(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(2 * bits);
    const std::vector<bdd> sums = adder_sums(mgr, bits);
    bdd f = mgr.one();
    for (const bdd& s : sums) { f &= s; }
    std::vector<std::uint32_t> evens;
    for (std::uint32_t v = 0; v < 2 * bits; v += 2) { evens.push_back(v); }
    const bdd cube = mgr.cube(evens);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mgr.exists(f, cube));
    }
}
BENCHMARK(bm_exists)->Arg(8)->Arg(16)->Arg(32);

void bm_and_exists_vs_two_step(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(2 * bits);
    const std::vector<bdd> sums = adder_sums(mgr, bits);
    bdd f = mgr.one(), g = mgr.one();
    for (std::uint32_t k = 0; k < sums.size(); ++k) {
        (k % 2 ? f : g) &= sums[k];
    }
    std::vector<std::uint32_t> evens;
    for (std::uint32_t v = 0; v < 2 * bits; v += 2) { evens.push_back(v); }
    const bdd cube = mgr.cube(evens);
    const bool fused = state.range(1) != 0;
    for (auto _ : state) {
        if (fused) {
            benchmark::DoNotOptimize(mgr.and_exists(f, g, cube));
        } else {
            benchmark::DoNotOptimize(mgr.exists(f & g, cube));
        }
    }
}
BENCHMARK(bm_and_exists_vs_two_step)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1});

void bm_permute(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(2 * bits);
    const std::vector<bdd> sums = adder_sums(mgr, bits);
    bdd f = mgr.one();
    for (const bdd& s : sums) { f &= s; }
    std::vector<std::uint32_t> perm(2 * bits);
    for (std::uint32_t v = 0; v < 2 * bits; ++v) { perm[v] = v ^ 1u; }
    for (auto _ : state) {
        benchmark::DoNotOptimize(mgr.permute(f, perm));
    }
}
BENCHMARK(bm_permute)->Arg(8)->Arg(16)->Arg(32);

/// Negation throughput: with complement edges this is a bit flip per call.
void bm_not(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(2 * bits);
    const std::vector<bdd> sums = adder_sums(mgr, bits);
    // conjoin the sum bits but not the carry-out (that would force zero)
    bdd f = mgr.one();
    for (std::size_t k = 0; k + 1 < sums.size(); ++k) { f &= sums[k]; }
    for (auto _ : state) {
        benchmark::DoNotOptimize(!f);
    }
    state.counters["nodes_f"] = static_cast<double>(mgr.dag_size(f));
    state.counters["nodes_not_f"] = static_cast<double>(mgr.dag_size(!f));
}
BENCHMARK(bm_not)->Arg(8)->Arg(16)->Arg(32);

/// Both phases of many functions held live: complement edges keep the node
/// count flat where a phase-blind package stores f and !f separately.
void bm_phase_pairs_live(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        // manager/adder construction, the GC inside live_node_count, and the
        // manager teardown are all kept out of the timed region: the subject
        // is only the cost of materializing both phases
        state.PauseTiming();
        auto mgr = std::make_unique<bdd_manager>(2 * bits);
        std::vector<bdd> sums = adder_sums(*mgr, bits);
        std::vector<bdd> keep;
        state.ResumeTiming();
        for (const bdd& s : sums) {
            keep.push_back(s);
            keep.push_back(!s);
        }
        benchmark::DoNotOptimize(keep);
        state.PauseTiming();
        state.counters["live_nodes"] =
            static_cast<double>(mgr->live_node_count());
        keep.clear();
        sums.clear();
        mgr.reset();
        state.ResumeTiming();
    }
}
BENCHMARK(bm_phase_pairs_live)->Arg(8)->Arg(16)->Arg(32);

/// De Morgan-shaped recomputation: ~(~f | ~g) after f & g should be pure
/// cache hits under ITE standard triples.
void bm_demorgan_refold(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(2 * bits);
    const std::vector<bdd> sums = adder_sums(mgr, bits);
    bdd f = mgr.one(), g = mgr.one();
    for (std::uint32_t k = 0; k < sums.size(); ++k) {
        (k % 2 ? f : g) &= sums[k];
    }
    for (auto _ : state) {
        const bdd direct = f & g;
        const bdd refolded = !((!f) | (!g));
        benchmark::DoNotOptimize(direct == refolded);
    }
}
BENCHMARK(bm_demorgan_refold)->Arg(8)->Arg(16)->Arg(32);

void bm_gc_pressure(benchmark::State& state) {
    bdd_manager mgr(32);
    for (auto _ : state) {
        bdd junk = mgr.zero();
        for (std::uint32_t v = 0; v + 2 < 32; ++v) {
            junk |= mgr.var(v) & mgr.var(v + 1) & !mgr.var(v + 2);
        }
        benchmark::DoNotOptimize(junk);
    }
    state.counters["gc_runs"] =
        static_cast<double>(mgr.stats().gc_runs);
}
BENCHMARK(bm_gc_pressure);

void bm_sift_chain(benchmark::State& state) {
    const auto pairs = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        bdd_manager mgr(2 * pairs);
        // build in the worst order: evens above odds
        std::vector<std::uint32_t> order;
        for (std::uint32_t v = 0; v < 2 * pairs; v += 2) { order.push_back(v); }
        for (std::uint32_t v = 1; v < 2 * pairs; v += 2) { order.push_back(v); }
        mgr.set_var_order(order);
        bdd f = mgr.zero();
        for (std::uint32_t v = 0; v < pairs; ++v) {
            f |= mgr.var(2 * v) & mgr.var(2 * v + 1);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(mgr.reorder_sift());
        state.counters["nodes"] = static_cast<double>(mgr.dag_size(f));
    }
}
BENCHMARK(bm_sift_chain)->Arg(6)->Arg(8)->Arg(10);

void bm_compose_vector_vs_chain(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    bdd_manager mgr(3 * bits);
    const std::vector<bdd> sums = adder_sums(mgr, bits);
    bdd f = mgr.one();
    for (const bdd& s : sums) { f &= s; }
    std::vector<std::pair<std::uint32_t, bdd>> subs;
    for (std::uint32_t k = 0; k < bits; ++k) {
        subs.emplace_back(k, mgr.var(2 * bits + k) ^ mgr.var(k + bits));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(mgr.compose_vector(f, subs));
    }
}
BENCHMARK(bm_compose_vector_vs_chain)->Arg(8)->Arg(16);

} // namespace

BENCHMARK_MAIN();
