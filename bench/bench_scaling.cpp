/// \file bench_scaling.cpp
/// \brief Figure-style scaling series: partitioned vs monolithic runtime as
/// the unknown component grows.
///
/// Table 1 samples six points; this bench sweeps in between them on two of
/// the table's circuit families:
///
///   series A  the s298 stand-in (3/6/14): full sweep, Xcs = 2..12.  The
///             claim under test is the growth of the partitioned advantage
///             with instance size.
///   series B  the s444 stand-in (3/6/21, paired mixes): tail sweep,
///             Xcs = 16..20.  Mid-size splits of this family leave F with a
///             product space neither flow can enumerate (both CNC — printed
///             once for honesty); the sweep covers the paper's actual
///             operating point and beyond.
///
/// Usage: bench_scaling [time_limit_seconds] (default 60)

#include "eq/solver.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

using namespace leq;

std::string cell(const solve_result& r) {
    if (r.status != solve_status::ok) { return "CNC"; }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", r.seconds);
    return buf;
}

void sweep(const network& original, std::size_t x_from, std::size_t x_to,
           std::size_t x_step, double limit) {
    std::printf("%-6s %10s %10s %10s %10s\n", "Xcs", "States(X)", "Part,s",
                "Mono,s", "Ratio");
    solve_options options;
    options.time_limit_seconds = limit;
    for (std::size_t x = x_from; x <= x_to && x < original.num_latches();
         x += x_step) {
        const split_result split = split_last_latches(original, x);
        const equation_problem problem(split.fixed, original);
        const solve_result part = solve_partitioned(problem, options);
        const solve_result mono = solve_monolithic(problem, options);

        std::string ratio = "-";
        if (part.status == solve_status::ok &&
            mono.status == solve_status::ok && part.seconds > 0) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1fx",
                          mono.seconds / part.seconds);
            ratio = buf;
        }
        std::string states = "-";
        if (part.status == solve_status::ok) {
            states = std::to_string(part.csf_states);
        }
        std::printf("%-6zu %10s %10s %10s %10s\n", x, states.c_str(),
                    cell(part).c_str(), cell(mono).c_str(), ratio.c_str());
        std::fflush(stdout);
        if (part.status != solve_status::ok &&
            mono.status != solve_status::ok) {
            break; // both flows out of steam: the series is over
        }
    }
}

} // namespace

int main(int argc, char** argv) {
    const double limit = argc > 1 ? std::atof(argv[1]) : 60.0;

    {
        structured_spec spec;
        spec.num_inputs = 3;
        spec.num_outputs = 6;
        spec.num_latches = 14;
        spec.seed = 14;
        const network original = make_structured_mix(spec);
        std::printf("Series A: s298 family, i/o/cs = %zu/%zu/%zu\n",
                    original.num_inputs(), original.num_outputs(),
                    original.num_latches());
        sweep(original, 2, 12, 2, limit);
    }
    {
        structured_spec a, b;
        a.num_inputs = b.num_inputs = 3;
        a.num_outputs = b.num_outputs = 6;
        a.num_latches = 11;
        b.num_latches = 10;
        a.seed = 6;
        b.seed = 1;
        a.chained_enables = b.chained_enables = true;
        const network original = make_paired_mix(a, b);
        std::printf("\nSeries B: s444 family, i/o/cs = %zu/%zu/%zu "
                    "(tail sweep; the mid-size splits leave F too large for "
                    "either flow)\n",
                    original.num_inputs(), original.num_outputs(),
                    original.num_latches());
        sweep(original, 16, 20, 1, limit);
    }
    return 0;
}
