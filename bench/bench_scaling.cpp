/// \file bench_scaling.cpp
/// \brief Figure-style scaling series: partitioned vs monolithic runtime as
/// the unknown component grows.
///
/// Table 1 samples six points; this bench sweeps in between them on two of
/// the table's circuit families:
///
///   series A  the s298 stand-in (3/6/14): full sweep, Xcs = 2..12.  The
///             claim under test is the growth of the partitioned advantage
///             with instance size.
///   series B  the s444 stand-in (3/6/21, paired mixes): tail sweep,
///             Xcs = 16..20.  Mid-size splits of this family leave F with a
///             product space neither flow can enumerate (both CNC — printed
///             once for honesty); the sweep covers the paper's actual
///             operating point and beyond.
///
/// Usage: bench_scaling [time_limit_seconds] (default 60)

#include "eq/solver.hpp"
#include "gen/scenario.hpp"
#include "img/image.hpp"
#include "rel/relation.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

using namespace leq;

std::string cell(const solve_result& r) {
    if (r.status != solve_status::ok) { return "CNC"; }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", r.seconds);
    return buf;
}

void sweep(const network& original, std::size_t x_from, std::size_t x_to,
           std::size_t x_step, double limit) {
    std::printf("%-6s %10s %10s %10s %10s\n", "Xcs", "States(X)", "Part,s",
                "Mono,s", "Ratio");
    solve_options options;
    options.time_limit_seconds = limit;
    for (std::size_t x = x_from; x <= x_to && x < original.num_latches();
         x += x_step) {
        const split_result split = split_last_latches(original, x);
        const equation_problem problem(split.fixed, original);
        const solve_result part = solve_partitioned(problem, options);
        const solve_result mono = solve_monolithic(problem, options);

        std::string ratio = "-";
        if (part.status == solve_status::ok &&
            mono.status == solve_status::ok && part.seconds > 0) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1fx",
                          mono.seconds / part.seconds);
            ratio = buf;
        }
        std::string states = "-";
        if (part.status == solve_status::ok) {
            states = std::to_string(part.csf_states);
        }
        std::printf("%-6zu %10s %10s %10s %10s\n", x, states.c_str(),
                    cell(part).c_str(), cell(mono).c_str(), ratio.c_str());
        std::fflush(stdout);
        if (part.status != solve_status::ok &&
            mono.status != solve_status::ok) {
            break; // both flows out of steam: the series is over
        }
    }
}

/// Compiled reachability workload shared by the series C and D sweeps: one
/// manager, inputs then interleaved cs/ns variables, the partitioned
/// next-state functions and the initial-state cube.
struct reach_setup {
    bdd_manager mgr{0, 20};
    std::vector<std::uint32_t> in, cs, ns;
    net_bdds fns;
    bdd init;

    explicit reach_setup(const network& net) {
        for (std::size_t k = 0; k < net.num_inputs(); ++k) {
            in.push_back(mgr.new_var());
        }
        for (std::size_t k = 0; k < net.num_latches(); ++k) {
            cs.push_back(mgr.new_var());
            ns.push_back(mgr.new_var());
        }
        fns = build_net_bdds(mgr, net, in, cs);
        init = state_cube(mgr, cs, net.initial_state());
    }
};

/// Per-strategy reachability comparison table (series C): the same fixpoint
/// under the three exploration strategies, on a deep-sequential workload
/// (n-bit counters: 2^n depth, tiny frontiers) and a wide-parallel one
/// (structured mixes: shallow depth, wide frontiers).  Every row reaches the
/// identical state set; only the BDD operation schedule differs.
/// Runs the three strategies on one workload; returns the total seconds spent
/// so the caller can stop a series that outgrew the time limit.
double strategy_sweep(const char* label, const network& net) {
    reach_setup s(net);
    double total = 0;
    for (const reach_strategy strategy : all_reach_strategies) {
        image_options options;
        options.strategy = strategy;
        const auto t0 = std::chrono::steady_clock::now();
        const reach_info info = reachable_states_layered(
            s.mgr, s.fns.next_state, s.cs, s.ns, s.in, s.init, options);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        std::printf("%-18s %-10s %8zu %12.0f %10.3f\n", label,
                    to_string(strategy), info.depth, info.total_states,
                    seconds);
        std::fflush(stdout);
        total += seconds;
    }
    return total;
}

/// Cluster-policy comparison (series D): greedy adjacent merge vs affinity
/// pairing by shared support, on the same reachability fixpoints.  Every row
/// reaches the identical state set; only the partition clustering — and
/// therefore the quantification schedule — differs.  Returns total seconds.
double policy_sweep(const char* label, const network& net) {
    reach_setup s(net);
    double total = 0;
    for (const cluster_policy policy : all_cluster_policies) {
        image_options options;
        options.policy = policy;
        // the timer covers relation construction too: clustering cost is
        // part of what distinguishes the policies
        const auto t0 = std::chrono::steady_clock::now();
        transition_relation rel = transition_relation::next_state(
            s.mgr, s.fns.next_state, s.cs, s.ns, s.in, options);
        rel.rename_image_to_current();
        const reach_info info = reachable_states_layered(
            rel, s.init, static_cast<std::uint32_t>(s.cs.size()));
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        std::printf("%-18s %-10s %8zu %12.0f %10.3f\n", label,
                    to_string(policy), rel.num_clusters(), info.total_states,
                    seconds);
        std::fflush(stdout);
        total += seconds;
    }
    return total;
}

} // namespace

int main(int argc, char** argv) {
    const double limit = argc > 1 ? std::atof(argv[1]) : 60.0;
    // LEQ_TEST_SEED shifts every series (0 when unset: canonical circuits)
    const std::uint32_t base = test_seed(0);

    {
        structured_spec spec;
        spec.num_inputs = 3;
        spec.num_outputs = 6;
        spec.num_latches = 14;
        spec.seed = base + 14;
        const network original = make_structured_mix(spec);
        std::printf("Series A: s298 family, i/o/cs = %zu/%zu/%zu\n",
                    original.num_inputs(), original.num_outputs(),
                    original.num_latches());
        sweep(original, 2, 12, 2, limit);
    }
    {
        structured_spec a, b;
        a.num_inputs = b.num_inputs = 3;
        a.num_outputs = b.num_outputs = 6;
        a.num_latches = 11;
        b.num_latches = 10;
        a.seed = base + 6;
        b.seed = base + 1;
        a.chained_enables = b.chained_enables = true;
        const network original = make_paired_mix(a, b);
        std::printf("\nSeries B: s444 family, i/o/cs = %zu/%zu/%zu "
                    "(tail sweep; the mid-size splits leave F too large for "
                    "either flow)\n",
                    original.num_inputs(), original.num_outputs(),
                    original.num_latches());
        sweep(original, 16, 20, 1, limit);
    }
    {
        std::printf("\nSeries C: reachability strategy comparison "
                    "(identical fixpoints, different schedules)\n");
        std::printf("%-18s %-10s %8s %12s %10s\n", "workload", "strategy",
                    "depth", "states", "time,s");
        // each family grows until one workload's three strategies together
        // exceed the per-solve time limit, mirroring the CNC cutoff above
        for (const std::size_t bits : {10, 12, 14}) {
            if (strategy_sweep(("counter-" + std::to_string(bits)).c_str(),
                               make_counter(bits)) > limit) {
                break;
            }
        }
        for (const std::size_t latches : {16, 20, 24}) {
            structured_spec spec;
            spec.num_inputs = 4;
            spec.num_outputs = 4;
            spec.num_latches = latches;
            spec.seed = base + 23;
            if (strategy_sweep(("mix-" + std::to_string(latches)).c_str(),
                               make_structured_mix(spec)) > limit) {
                break;
            }
        }
    }
    {
        std::printf("\nSeries D: cluster-policy comparison "
                    "(identical fixpoints, different partition clustering)\n");
        std::printf("%-18s %-10s %8s %12s %10s\n", "workload", "policy",
                    "clusters", "states", "time,s");
        for (const std::size_t latches : {12, 16, 20}) {
            structured_spec spec;
            spec.num_inputs = 4;
            spec.num_outputs = 4;
            spec.num_latches = latches;
            spec.seed = base + 29;
            if (policy_sweep(("mix-" + std::to_string(latches)).c_str(),
                             make_structured_mix(spec)) > limit) {
                break;
            }
        }
    }
    return 0;
}
