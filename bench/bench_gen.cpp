/// \file bench_gen.cpp
/// \brief Throughput of the fuzz harness per scenario family: scenarios
/// generated and differentials executed per second.  Sizes the nightly
/// campaign — `leq_fuzz --seeds N` across families costs N x the per-family
/// differential time below.
///
/// Usage: leq_bench_gen [seeds-per-family (default 25)]

#include "gen/differential.hpp"
#include "gen/scenario.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace leq;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t seeds =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 25;
    // LEQ_TEST_SEED shifts the whole seed range (0 when unset: seeds 1..N)
    const std::uint32_t base = test_seed(0);
    std::printf("%-10s %8s %12s %12s %10s\n", "family", "seeds", "gen/s",
                "diff/s", "oracle%");
    for (const scenario_family family : all_scenario_families) {
        auto start = std::chrono::steady_clock::now();
        for (std::size_t k = 1; k <= seeds; ++k) {
            const scenario sc =
                make_scenario(family, base + static_cast<std::uint32_t>(k));
            (void)sc;
        }
        const double gen_s = seconds_since(start);

        std::size_t oracle = 0;
        std::size_t failures = 0;
        start = std::chrono::steady_clock::now();
        for (std::size_t k = 1; k <= seeds; ++k) {
            const scenario sc =
                make_scenario(family, base + static_cast<std::uint32_t>(k));
            const differential_outcome out = run_differential(sc);
            oracle += out.oracle_run ? 1 : 0;
            failures += out.ok ? 0 : 1;
        }
        const double diff_s = seconds_since(start);

        std::printf("%-10s %8zu %12.0f %12.1f %9.0f%%\n", to_string(family),
                    seeds, seeds / (gen_s > 0 ? gen_s : 1e-9),
                    seeds / (diff_s > 0 ? diff_s : 1e-9),
                    100.0 * static_cast<double>(oracle) /
                        static_cast<double>(seeds));
        if (failures != 0) {
            std::printf("  !! %zu differential failure(s) — run leq_fuzz "
                        "--family %s to investigate\n",
                        failures, to_string(family));
        }
    }
    return 0;
}
