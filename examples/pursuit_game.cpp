/// \file pursuit_game.cpp
/// \brief Game solving — another of the intro's motivating applications.
///
/// A safety game on a 4-cycle: a cat (the environment) and a mouse (the
/// unknown component) each sit on one of four positions arranged in a ring.
/// Every cycle the cat either stays or steps forward (environment input i),
/// and the mouse either stays or steps forward (X's output v).  The mouse
/// loses when both occupy the same position.
///
/// The game arena is a plain sequential network (four position latches and
/// two mod-4 incrementers), the winning condition "never caught" is the
/// specification "the safe flag is constantly 1", and the set of ALL
/// winning strategies is the CSF of the language equation
/// arena . X <= spec over the controller topology.  A concrete strategy is
/// extracted, a pursuit is simulated against an adversarial cat, and a
/// deliberately bad strategy ("never move") is diagnosed with the concrete
/// losing run.

#include "automata/automaton_io.hpp"
#include "eq/subsolution.hpp"
#include "eq/topology.hpp"
#include "eq/verify.hpp"

#include <iostream>
#include <vector>

namespace {

using namespace leq;

/// The game arena: latches (m0,m1) mouse position, (c0,c1) cat position;
/// inputs (cat_go, mouse_go); output safe = !(m == c).
/// Mouse starts at 0, cat at 2 (encoded in the latch init values).
network make_arena() {
    network arena("ring_arena");
    arena.add_input("cat_go");   // i: environment decision
    arena.add_input("mouse_go"); // c: the strategy's decision
    // mouse position, initial 0
    arena.add_latch("m0n", "m0", false);
    arena.add_latch("m1n", "m1", false);
    // cat position, initial 2 (bits: m0 low, m1 high)
    arena.add_latch("c0n", "c0", false);
    arena.add_latch("c1n", "c1", true);
    // mod-4 increment when go: p0' = p0 ^ go; p1' = p1 ^ (p0 & go)
    arena.add_node("m0n", {"m0", "mouse_go"}, {"01", "10"});
    arena.add_node("m1n", {"m1", "m0", "mouse_go"}, {"011", "10-", "110"});
    arena.add_node("c0n", {"c0", "cat_go"}, {"01", "10"});
    arena.add_node("c1n", {"c1", "c0", "cat_go"}, {"011", "10-", "110"});
    // safe = !(m0 == c0 & m1 == c1)
    arena.add_node("same0", {"m0", "c0"}, {"00", "11"});
    arena.add_node("same1", {"m1", "c1"}, {"00", "11"});
    arena.add_node("safe", {"same0", "same1"}, {"11"}, true); // NAND
    arena.add_output("safe");
    arena.validate();
    return arena;
}

/// spec: safe must be constantly 1.
network make_safety_spec() {
    network spec("always_safe");
    spec.add_input("cat_go");
    spec.add_latch("cat_go", "dummy", false);
    spec.add_node("safe", {"dummy"}, {"0", "1"}); // constant 1
    spec.add_output("safe");
    spec.validate();
    return spec;
}

int position(bool b0, bool b1) { return (b1 ? 2 : 0) + (b0 ? 1 : 0); }

} // namespace

int main() {
    const network arena = make_arena();
    const network spec = make_safety_spec();

    std::cout << "pursuit game on a 4-ring: cat starts at 2, mouse at 0;\n"
                 "mouse loses on contact; strategies = solutions of\n"
                 "arena . X <= always_safe\n\n";

    auto sol = solve_controller(arena, spec);
    if (sol.result.status != solve_status::ok || sol.result.empty_solution) {
        std::cout << "the mouse cannot win\n";
        return 1;
    }
    equation_problem& problem = *sol.problem;
    const automaton& csf = *sol.result.csf;
    std::cout << "CSF (all winning strategies): " << csf.num_states()
              << " states\n";

    // extract a small concrete strategy and verify it
    const subsolution_result strategy =
        select_small_subsolution(csf, problem.u_vars, problem.v_vars);
    std::cout << "extracted strategy: " << strategy.fsm.num_states()
              << " state(s), policy " << to_string(strategy.policy) << ", "
              << (verify_composition_contained(problem, strategy.fsm)
                      ? "verified"
                      : "FAILED")
              << "\n\n";

    // simulate 12 rounds against an adversarial cat that always advances
    {
        std::vector<bool> state = arena.initial_state();
        std::uint32_t q = strategy.fsm.initial();
        bdd_manager& mgr = problem.mgr();
        std::cout << "pursuit against an always-advancing cat:\n";
        for (int round = 0; round < 12; ++round) {
            const bool cat_go = true;
            // strategy reads u = cat_go and commits to one v
            bool mouse_go = false;
            std::uint32_t next_q = q;
            for (const transition& t : strategy.fsm.transitions(q)) {
                std::vector<bool> letter(mgr.num_vars(), false);
                letter[problem.u_vars[0]] = cat_go;
                for (int v = 0; v < 2; ++v) {
                    letter[problem.v_vars[0]] = v != 0;
                    if (mgr.eval(t.label, letter)) {
                        mouse_go = v != 0;
                        next_q = t.dest;
                    }
                }
            }
            const auto r = arena.simulate(state, {cat_go, mouse_go});
            // latch order: m0, m1, c0, c1
            std::cout << "  round " << round << ": mouse at "
                      << position(state[0], state[1]) << (mouse_go ? " ->" : "  ")
                      << " cat at " << position(state[2], state[3])
                      << (cat_go ? " ->" : "  ")
                      << (r.outputs[0] ? "  safe" : "  CAUGHT") << '\n';
            if (!r.outputs[0]) { return 1; }
            state = r.next_state;
            q = next_q;
        }
    }

    // a bad strategy: the mouse never moves; the diagnosis prints the
    // concrete losing run (the cat walks two steps and eats it)
    {
        automaton lazy(problem.mgr(), csf.label_vars());
        lazy.add_state(true);
        lazy.set_initial(0);
        lazy.add_transition(0, 0, problem.mgr().nvar(problem.v_vars[0]));
        const verify_diagnosis d = diagnose_composition_contained(problem, lazy);
        std::cout << "\n'never move' strategy diagnosis (i=cat_go, "
                     "v=mouse_go, o=safe):\n"
                  << format_diagnosis(d);
    }
    return 0;
}
