/// \file resynthesis.cpp
/// \brief Sequential resynthesis scenario: how much flexibility does a
/// sub-circuit of a working design really have?
///
/// This is the workload the paper's introduction motivates: in sequential
/// synthesis, the CSF of a sub-part captures every legitimate replacement
/// behaviour — any FSM contained in it can be dropped in without changing
/// what the environment observes.  We take the traffic-light controller,
/// extract different latch subsets, and report how the flexibility (CSF
/// size vs the particular solution's size) varies with the cut.

#include "automata/automaton.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <iostream>
#include <vector>

namespace {

void analyze(const leq::network& circuit,
             const std::vector<std::size_t>& cut) {
    using namespace leq;
    const split_result split = split_latches(circuit, cut);
    const equation_problem problem(split.fixed, circuit);
    solve_options options;
    options.time_limit_seconds = 20;
    const solve_result result = solve_partitioned(problem, options);
    if (result.status != solve_status::ok) {
        std::cout << "  cut of " << cut.size() << " latch(es): flexibility "
                  << "space too large to enumerate in 20s ("
                  << result.subset_states_explored
                  << "+ CSF states) -- a genuinely huge don't-care space\n";
        return;
    }
    std::cout << "  cut {";
    for (std::size_t k = 0; k < cut.size(); ++k) {
        std::cout << (k ? "," : "") << cut[k];
    }
    std::cout << "}: X_P has " << (1u << cut.size())
              << " latch states; CSF has " << result.csf_states
              << " states / " << result.csf->num_transitions()
              << " transitions";
    // flexibility sanity: the particular solution must always fit
    const bool ok = verify_particular_contained(problem, *result.csf,
                                                split.part.initial_state()) &&
                    verify_composition_contained(problem, *result.csf);
    std::cout << (ok ? "  [verified]" : "  [VERIFICATION FAILED]") << "\n";
}

} // namespace

int main() {
    using namespace leq;
    std::cout << "traffic-light controller: flexibility of latch cuts\n";
    const network traffic = make_traffic_controller();
    analyze(traffic, {0});
    analyze(traffic, {1});
    analyze(traffic, {2});
    analyze(traffic, {0, 1});
    analyze(traffic, {1, 2});

    std::cout << "\n6-bit counter: flexibility of latch cuts\n";
    const network counter = make_counter(6);
    analyze(counter, {5});       // top bit: observable through the carry
    analyze(counter, {3, 4, 5}); // upper half
    // the low bits are barely observable from the outputs, so their
    // flexibility class count explodes; reported as too-large
    analyze(counter, {0, 1});

    std::cout << "\nLFSR: flexibility of latch cuts\n";
    const network lfsr = make_lfsr(6, {1, 4});
    analyze(lfsr, {5});
    analyze(lfsr, {2, 3});
    return 0;
}
