/// \file supervisor.cpp
/// \brief Discrete-control scenario: synthesize an unknown controller.
///
/// One of the intro's motivating applications: the plant F is fixed, the
/// specification S constrains the externally visible behaviour, and the
/// language equation F . X <= S is solved for the controller X.
///
/// Plant: a one-latch "server" whose busy flag is commanded by the
/// controller (busy' = v); the environment sees o = busy and the controller
/// observes the request line (u = i).  Specification: the server must be
/// busy exactly one cycle after each request (o_t+1 = i_t), i.e. S is a
/// single register.  The synthesized CSF contains every controller that
/// meets the spec; a concrete implementation is then extracted greedily.

#include "automata/automaton_io.hpp"
#include "eq/extract.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/blif.hpp"

#include <iostream>

int main() {
    using namespace leq;

    // plant F: inputs (i, v), outputs (o, u)
    network plant("plant");
    plant.add_input("req");     // i: request line
    plant.add_input("cmd");     // v: controller's command
    plant.add_output("busy_o"); // o: observable busy flag
    plant.add_output("obs");    // u: what the controller observes
    plant.add_latch("busy_n", "busy", false);
    plant.add_node("busy_o", {"busy"}, {"1"});
    plant.add_node("obs", {"req"}, {"1"});
    plant.add_node("busy_n", {"cmd"}, {"1"});
    plant.validate();

    // specification S: o must equal i delayed by one cycle
    network spec("spec");
    spec.add_input("req");
    spec.add_output("busy_o");
    spec.add_latch("d_n", "d", false);
    spec.add_node("d_n", {"req"}, {"1"});
    spec.add_node("busy_o", {"d"}, {"1"});
    spec.validate();

    std::cout << "plant F:\n" << write_blif_string(plant)
              << "\nspecification S:\n" << write_blif_string(spec) << "\n";

    const equation_problem problem(plant, spec);
    const solve_result result = solve_partitioned(problem);
    if (result.status != solve_status::ok || result.empty_solution) {
        std::cerr << "no controller exists\n";
        return 1;
    }

    var_names names(problem.mgr().num_vars());
    names.label(problem.u_vars, "u");
    names.label(problem.v_vars, "v");
    std::cout << "=== all admissible controllers (CSF, " << result.csf_states
              << " states) ===\n";
    print_automaton(std::cout, *result.csf, names.get());

    std::cout << "\n=== one concrete controller (greedy extraction) ===\n";
    const automaton fsm =
        extract_fsm(*result.csf, problem.u_vars, problem.v_vars);
    print_automaton(std::cout, fsm, names.get());
    std::cout << "extracted FSM contained in CSF: "
              << (language_contained(fsm, *result.csf) ? "yes" : "NO") << "\n";

    const bool sound = verify_composition_contained(problem, *result.csf);
    std::cout << "plant . CSF <= spec: " << (sound ? "verified" : "FAILED")
              << "\n";
    return sound ? 0 : 1;
}
