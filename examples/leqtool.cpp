/// \file leqtool.cpp
/// \brief Command-line driver for the library: solve, extract, resynth,
/// check, subsol, reach, stg, gen.  The tool a downstream user scripts
/// against.
///
/// Usage:
///   leqtool solve <circuit.blif> --xlatches N [--flow part|mono|both]
///                 [--limit SECONDS] [--dot FILE] [--no-verify]
///   leqtool extract <circuit.blif> --xlatches N --out IMPL.blif
///   leqtool resynth <circuit.blif> --xlatches N [--out FILE]
///                   [--no-minimize] [--limit SECONDS]
///   leqtool check <circuit.blif> --xlatches N --impl IMPL.blif
///   leqtool subsol <circuit.blif> --xlatches N [--out IMPL.blif]
///   leqtool reach <circuit.blif>
///   leqtool stg <circuit.blif> --dot FILE
///   leqtool gen <counter|lfsr|shiftxor|traffic|mix> [--bits N]
///               [--inputs N --outputs N --latches N --seed S] --out FILE
///
/// `solve` latch-splits the circuit (last N latches become the unknown),
/// computes the CSF, optionally cross-checks both flows and runs the
/// paper's verification.  `extract` additionally picks one implementation
/// FSM and writes it back as BLIF.  `resynth` runs the full rebuild
/// pipeline (Moore extraction, encoding, composition, verification).
/// `check` verifies a user-supplied implementation BLIF against the spec
/// and prints a counterexample trace when it fails.  `subsol` sweeps the
/// extraction policies and writes the smallest implementation found.

#include "automata/automaton_io.hpp"
#include "automata/encode.hpp"
#include "automata/kiss.hpp"
#include "automata/stg.hpp"
#include "eq/extract.hpp"
#include "eq/kiss_flow.hpp"
#include "eq/resynth.hpp"
#include "eq/solver.hpp"
#include "eq/subsolution.hpp"
#include "eq/verify.hpp"
#include "img/image.hpp"
#include "net/blif.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"
#include "net/sweep.hpp"

#include <cstring>
#include <optional>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace leq;

struct args {
    std::vector<std::string> positional;
    std::map<std::string, std::string> options;
    bool flag(const std::string& name) const {
        return options.count(name) != 0;
    }
    std::string get(const std::string& name, const std::string& dflt) const {
        const auto it = options.find(name);
        return it == options.end() ? dflt : it->second;
    }
};

args parse(int argc, char** argv) {
    args a;
    for (int k = 2; k < argc; ++k) {
        const std::string tok = argv[k];
        if (tok.rfind("--", 0) == 0) {
            const std::string name = tok.substr(2);
            if (k + 1 < argc && argv[k + 1][0] != '-') {
                a.options[name] = argv[++k];
            } else {
                a.options[name] = "1";
            }
        } else {
            a.positional.push_back(tok);
        }
    }
    return a;
}

int usage() {
    std::cerr <<
        "usage:\n"
        "  leqtool solve <circuit.blif> --xlatches N [--flow part|mono|both]\n"
        "                [--limit SECONDS] [--dot FILE] [--no-verify]\n"
        "  leqtool extract <circuit.blif> --xlatches N --out IMPL.blif\n"
        "  leqtool resynth <circuit.blif> --xlatches N [--out FILE]\n"
        "                  [--no-minimize] [--limit SECONDS]\n"
        "  leqtool check <circuit.blif> --xlatches N --impl IMPL.blif\n"
        "  leqtool subsol <circuit.blif> --xlatches N [--out IMPL.blif]\n"
        "  leqtool sweep <circuit.blif> --out FILE\n"
        "  leqtool solvekiss <F.kiss> <S.kiss> [--limit SECONDS]\n"
        "                    [--out X.kiss]\n"
        "  leqtool reach <circuit.blif> [--layers]\n"
        "  leqtool stg <circuit.blif> --dot FILE\n"
        "  leqtool gen <counter|lfsr|shiftxor|traffic|mix> [--bits N]\n"
        "              [--inputs N --outputs N --latches N --seed S] --out FILE\n";
    return 2;
}

/// Shared front end for the split-based commands: read, range-check, split.
struct split_setup {
    network circuit;
    split_result split;
};

std::optional<split_setup> load_split(const args& a) {
    if (a.positional.empty() || !a.flag("xlatches")) { return std::nullopt; }
    network circuit = read_blif_file(a.positional[0]);
    const auto xl =
        static_cast<std::size_t>(std::stoul(a.get("xlatches", "1")));
    if (xl == 0 || xl > circuit.num_latches()) {
        std::cerr << "leqtool: --xlatches out of range (circuit has "
                  << circuit.num_latches() << " latches)\n";
        return std::nullopt;
    }
    split_result split = split_last_latches(circuit, xl);
    return split_setup{std::move(circuit), std::move(split)};
}

int cmd_resynth(const args& a) {
    const auto setup = load_split(a);
    if (!setup.has_value()) { return usage(); }
    resynth_options options;
    options.solve.time_limit_seconds = std::stod(a.get("limit", "300"));
    options.minimize_states = !a.flag("no-minimize");
    std::vector<std::size_t> cut;
    for (std::size_t k = setup->split.part.num_latches(); k > 0; --k) {
        cut.push_back(setup->circuit.num_latches() - k);
    }
    const resynth_result r = resynthesize(setup->circuit, cut, options);
    if (!r.solved) {
        std::cout << "did not complete within limits\n";
        return 1;
    }
    std::cout << "CSF: " << r.csf_states << " states\n";
    if (!r.rebuilt) {
        std::cout << "no greedy Moore sub-solution; circuit not rebuilt\n";
        return 1;
    }
    std::cout << "replacement: " << r.x_states << " states, "
              << r.x_latches_after << " latches (cut had "
              << r.x_latches_before << ")\n"
              << "verification: " << (r.verified ? "ok" : "FAILED") << "\n";
    const std::string path = a.get("out", "resynth.blif");
    std::ofstream out(path);
    write_blif(r.optimized, out);
    std::cout << "wrote " << path << "\n";
    return r.verified ? 0 : 1;
}

int cmd_check(const args& a) {
    const auto setup = load_split(a);
    if (!setup.has_value() || !a.flag("impl")) { return usage(); }
    const network impl = read_blif_file(a.get("impl", ""));
    const equation_problem problem(setup->split.fixed, setup->circuit);
    if (impl.num_inputs() != problem.u_vars.size() ||
        impl.num_outputs() != problem.v_vars.size()) {
        std::cerr << "leqtool: implementation must have " <<
            problem.u_vars.size() << " inputs / " << problem.v_vars.size()
                  << " outputs\n";
        return 2;
    }
    const automaton x = network_to_automaton(problem.mgr(), impl,
                                             problem.u_vars, problem.v_vars);
    std::cout << "implementation: " << x.num_states() << " states\n";
    const verify_diagnosis d = diagnose_composition_contained(problem, x);
    std::cout << format_diagnosis(d);
    return d.ok ? 0 : 1;
}

int cmd_subsol(const args& a) {
    const auto setup = load_split(a);
    if (!setup.has_value()) { return usage(); }
    const equation_problem problem(setup->split.fixed, setup->circuit);
    solve_options options;
    options.time_limit_seconds = std::stod(a.get("limit", "300"));
    const solve_result result = solve_partitioned(problem, options);
    if (result.status != solve_status::ok) {
        std::cout << "did not complete within limits\n";
        return 1;
    }
    if (result.empty_solution) {
        std::cout << "the equation has no solution\n";
        return 1;
    }
    std::cout << "CSF: " << result.csf_states << " states\n";
    const subsolution_result sel = select_small_subsolution(
        *result.csf, problem.u_vars, problem.v_vars);
    for (const subsolution_candidate& c : sel.candidates) {
        std::cout << "  " << to_string(c.policy) << ": " << c.raw_states
                  << " -> " << c.minimized_states << " states\n";
    }
    std::cout << "winner: " << to_string(sel.policy) << " ("
              << sel.fsm.num_states() << " states)\n";
    // quantitative flexibility: how many behaviours the commitment kept
    for (const std::size_t len : {2, 4, 6}) {
        std::cout << "  words@" << len << ": CSF "
                  << count_words(*result.csf, len) << ", winner "
                  << count_words(sel.fsm, len) << "\n";
    }
    if (a.flag("out")) {
        std::vector<std::string> ins, outs;
        for (std::size_t k = 0; k < problem.u_vars.size(); ++k) {
            ins.push_back("u" + std::to_string(k));
        }
        for (std::size_t k = 0; k < problem.v_vars.size(); ++k) {
            outs.push_back("v" + std::to_string(k));
        }
        const network impl = automaton_to_network(
            sel.fsm, problem.u_vars, problem.v_vars, ins, outs,
            setup->circuit.name() + "_xsmall");
        const std::string path = a.get("out", "impl.blif");
        std::ofstream out(path);
        write_blif(impl, out);
        std::cout << "wrote " << path << "\n";
    }
    return 0;
}

int cmd_solve(const args& a, bool do_extract) {
    if (a.positional.empty() || !a.flag("xlatches")) { return usage(); }
    const network circuit = read_blif_file(a.positional[0]);
    const auto xl = static_cast<std::size_t>(std::stoul(a.get("xlatches", "1")));
    if (xl == 0 || xl > circuit.num_latches()) {
        std::cerr << "leqtool: --xlatches out of range (circuit has "
                  << circuit.num_latches() << " latches)\n";
        return 2;
    }
    const split_result split = split_last_latches(circuit, xl);
    const equation_problem problem(split.fixed, circuit);
    solve_options options;
    options.time_limit_seconds = std::stod(a.get("limit", "300"));

    const std::string flow = a.get("flow", "part");
    solve_result result = flow == "mono" ? solve_monolithic(problem, options)
                                         : solve_partitioned(problem, options);
    if (result.status != solve_status::ok) {
        std::cout << "did not complete within limits\n";
        return 1;
    }
    std::cout << "CSF: " << result.csf_states << " states, "
              << result.csf->num_transitions() << " transitions, "
              << result.seconds << "s ("
              << result.subset_states_explored << " subsets)\n";
    if (result.empty_solution) {
        std::cout << "the equation has no prefix-closed progressive solution\n";
        return 0;
    }
    if (flow == "both") {
        const solve_result mono = solve_monolithic(problem, options);
        if (mono.status == solve_status::ok) {
            std::cout << "monolithic: " << mono.seconds << "s; languages "
                      << (language_equivalent(*result.csf, *mono.csf)
                              ? "agree"
                              : "DISAGREE")
                      << "\n";
        } else {
            std::cout << "monolithic: did not complete (CNC)\n";
        }
    }
    if (!a.flag("no-verify")) {
        const bool c1 = verify_particular_contained(
            problem, *result.csf, split.part.initial_state());
        const bool c2 = verify_composition_contained(problem, *result.csf);
        std::cout << "verify: Xp<=X " << (c1 ? "ok" : "FAIL") << ", F.X<=S "
                  << (c2 ? "ok" : "FAIL") << "\n";
        if (!c1 || !c2) { return 1; }
    }
    var_names names(problem.mgr().num_vars());
    names.label(problem.u_vars, "u");
    names.label(problem.v_vars, "v");
    if (a.flag("dot")) {
        std::ofstream out(a.get("dot", "csf.dot"));
        write_dot(out, *result.csf, names.get(), "csf");
        std::cout << "wrote " << a.get("dot", "csf.dot") << "\n";
    }
    if (do_extract) {
        const automaton fsm =
            extract_fsm(*result.csf, problem.u_vars, problem.v_vars);
        std::vector<std::string> ins, outs;
        for (std::size_t k = 0; k < problem.u_vars.size(); ++k) {
            ins.push_back("u" + std::to_string(k));
        }
        for (std::size_t k = 0; k < problem.v_vars.size(); ++k) {
            outs.push_back("v" + std::to_string(k));
        }
        const network impl = automaton_to_network(
            fsm, problem.u_vars, problem.v_vars, ins, outs,
            circuit.name() + "_ximpl");
        const std::string path = a.get("out", "impl.blif");
        std::ofstream out(path);
        write_blif(impl, out);
        std::cout << "extracted " << fsm.num_states()
                  << "-state implementation -> " << path << "\n";
    }
    return 0;
}

int cmd_solvekiss(const args& a) {
    if (a.positional.size() < 2) { return usage(); }
    const auto slurp = [](const std::string& path) {
        std::ifstream in(path);
        if (!in) {
            throw std::runtime_error("cannot open " + path);
        }
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    };
    solve_options options;
    options.time_limit_seconds = std::stod(a.get("limit", "300"));
    const kiss_solution sol = solve_kiss(slurp(a.positional[0]),
                                         slurp(a.positional[1]), options);
    if (sol.result.status != solve_status::ok) {
        std::cout << "did not complete within limits\n";
        return 1;
    }
    std::cout << "CSF: " << sol.result.csf_states << " states ("
              << sol.result.seconds << "s)\n";
    if (sol.result.empty_solution) {
        std::cout << "the equation has no solution\n";
        return 1;
    }
    const equation_problem& problem = *sol.instance.problem;
    if (a.flag("out")) {
        const subsolution_result sel = select_small_subsolution(
            *sol.result.csf, problem.u_vars, problem.v_vars);
        const std::string path = a.get("out", "x.kiss");
        std::ofstream out(path);
        write_kiss(out, sel.fsm, problem.u_vars, problem.v_vars);
        std::cout << "wrote " << sel.fsm.num_states() << "-state solution -> "
                  << path << "\n";
    }
    return 0;
}

int cmd_sweep(const args& a) {
    if (a.positional.empty()) { return usage(); }
    const network net = read_blif_file(a.positional[0]);
    sweep_stats stats;
    const network swept = sweep_network(net, &stats);
    std::cout << net.name() << ": nodes " << stats.nodes_before << " -> "
              << stats.nodes_after << ", latches " << stats.latches_before
              << " -> " << stats.latches_after << " (constants "
              << stats.constants_propagated << ", wires "
              << stats.wires_collapsed << ")\n";
    const std::string path = a.get("out", "swept.blif");
    std::ofstream out(path);
    write_blif(swept, out);
    std::cout << "wrote " << path << "\n";
    return 0;
}

int cmd_reach(const args& a) {
    if (a.positional.empty()) { return usage(); }
    const network net = read_blif_file(a.positional[0]);
    bdd_manager mgr(0, 20);
    std::vector<std::uint32_t> in, cs, ns;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        in.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        cs.push_back(mgr.new_var());
        ns.push_back(mgr.new_var());
    }
    const net_bdds fns = build_net_bdds(mgr, net, in, cs);
    const bdd init = state_cube(mgr, cs, net.initial_state());
    const reach_info info =
        reachable_states_layered(mgr, fns.next_state, cs, ns, in, init);
    std::cout << net.name() << ": " << info.total_states
              << " reachable states out of " << (1ull << cs.size()) << " ("
              << mgr.dag_size(info.reached) << " BDD nodes), sequential depth "
              << info.depth << "\n";
    if (a.flag("layers")) {
        for (std::size_t d = 0; d < info.layer_states.size(); ++d) {
            std::cout << "  layer " << d << ": " << info.layer_states[d]
                      << " new state(s)\n";
        }
    }
    return 0;
}

int cmd_stg(const args& a) {
    if (a.positional.empty()) { return usage(); }
    const network net = read_blif_file(a.positional[0]);
    bdd_manager mgr;
    std::vector<std::uint32_t> in, out;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        in.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_outputs(); ++k) {
        out.push_back(mgr.new_var());
    }
    const automaton aut = network_to_automaton(mgr, net, in, out);
    std::cout << net.name() << ": " << aut.num_states() << " states, "
              << aut.num_transitions() << " transitions\n";
    var_names names(mgr.num_vars());
    names.label(in, "i");
    names.label(out, "o");
    if (a.flag("dot")) {
        std::ofstream dot(a.get("dot", "stg.dot"));
        write_dot(dot, aut, names.get(), "stg");
        std::cout << "wrote " << a.get("dot", "stg.dot") << "\n";
    }
    return 0;
}

int cmd_gen(const args& a) {
    if (a.positional.empty()) { return usage(); }
    const std::string family = a.positional[0];
    const auto bits = static_cast<std::size_t>(std::stoul(a.get("bits", "8")));
    network net;
    if (family == "counter") {
        net = make_counter(bits);
    } else if (family == "lfsr") {
        net = make_lfsr(bits, {1, bits / 2});
    } else if (family == "shiftxor") {
        net = make_shift_xor(bits);
    } else if (family == "traffic") {
        net = make_traffic_controller();
    } else if (family == "mix") {
        structured_spec spec;
        spec.num_inputs =
            static_cast<std::size_t>(std::stoul(a.get("inputs", "3")));
        spec.num_outputs =
            static_cast<std::size_t>(std::stoul(a.get("outputs", "6")));
        spec.num_latches =
            static_cast<std::size_t>(std::stoul(a.get("latches", "12")));
        spec.seed = static_cast<std::uint32_t>(std::stoul(a.get("seed", "1")));
        net = make_structured_mix(spec);
    } else {
        return usage();
    }
    const std::string path = a.get("out", family + ".blif");
    std::ofstream out(path);
    write_blif(net, out);
    std::cout << "wrote " << path << " (" << net.num_inputs() << "/"
              << net.num_outputs() << "/" << net.num_latches() << ")\n";
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) { return usage(); }
    const std::string cmd = argv[1];
    const args a = parse(argc, argv);
    try {
        if (cmd == "solve") { return cmd_solve(a, false); }
        if (cmd == "extract") { return cmd_solve(a, true); }
        if (cmd == "resynth") { return cmd_resynth(a); }
        if (cmd == "check") { return cmd_check(a); }
        if (cmd == "subsol") { return cmd_subsol(a); }
        if (cmd == "sweep") { return cmd_sweep(a); }
        if (cmd == "solvekiss") { return cmd_solvekiss(a); }
        if (cmd == "reach") { return cmd_reach(a); }
        if (cmd == "stg") { return cmd_stg(a); }
        if (cmd == "gen") { return cmd_gen(a); }
    } catch (const std::exception& e) {
        std::cerr << "leqtool: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
