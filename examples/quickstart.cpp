/// \file quickstart.cpp
/// \brief The paper's worked example (Figure 3) end to end.
///
/// Takes the two-latch circuit of Figure 3 (T1 = i & cs2, T2 = !i | cs1,
/// o = cs1 & cs2), splits the second latch into the unknown-component
/// position, computes the Complete Sequential Flexibility with the
/// partitioned flow, prints the CSF automaton, and runs the paper's
/// verification checks.

#include "automata/automaton_io.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/blif.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <iostream>

int main() {
    using namespace leq;

    // 1. the original circuit (Figure 3) is the specification S
    const network original = make_paper_example();
    std::cout << "=== specification S (the paper's Figure-3 circuit) ===\n"
              << write_blif_string(original) << "\n";

    // 2. latch splitting: extract latch #1 as the particular solution X_P;
    //    the remaining circuit (logic + latch #0) is the fixed component F
    const split_result split = split_latches(original, {1});
    std::cout << "=== fixed component F (u = " << split.u_names[0]
              << ", v = " << split.v_names[0] << ") ===\n"
              << write_blif_string(split.fixed) << "\n";

    // 3. solve F . X <= S for the most general prefix-closed,
    //    input-progressive X (the CSF) with the partitioned flow
    const equation_problem problem(split.fixed, original);
    const solve_result result = solve_partitioned(problem);
    if (result.status != solve_status::ok) {
        std::cerr << "solver did not finish\n";
        return 1;
    }
    std::cout << "=== CSF: " << result.csf_states << " states (explored "
              << result.subset_states_explored << " subsets in "
              << result.seconds << "s) ===\n";

    var_names names(problem.mgr().num_vars());
    names.label(problem.u_vars, "u");
    names.label(problem.v_vars, "v");
    print_automaton(std::cout, *result.csf, names.get());

    // 4. the paper's checks: X_P <= X and F . X <= S
    const bool check1 = verify_particular_contained(
        problem, *result.csf, split.part.initial_state());
    const bool check2 = verify_composition_contained(problem, *result.csf);
    std::cout << "\ncheck (1) X_P <= X:   " << (check1 ? "ok" : "FAILED")
              << "\ncheck (2) F.X <= S:   " << (check2 ? "ok" : "FAILED")
              << "\n";

    // 5. cross-check against the monolithic baseline
    const solve_result mono = solve_monolithic(problem);
    std::cout << "monolithic flow agrees: "
              << (language_equivalent(*result.csf, *mono.csf) ? "yes" : "NO")
              << "\n";
    return check1 && check2 ? 0 : 1;
}
