/// \file bus_converter.cpp
/// \brief Protocol conversion — one of the intro's motivating applications —
/// via the controller topology (footnote 6).
///
/// A bus slave raises `ack` one cycle after a request *only if* the gate
/// logic enables it: the plant computes ack' = req & gate, where `gate` is a
/// control input nobody has designed yet.  The protocol specification says
/// every request is acknowledged exactly one cycle later, unconditionally:
/// ack_t = req_{t-1}.
///
/// Solving the language equation plant . X <= spec over the controller
/// topology yields the complete sequential flexibility of the gate driver:
/// every gate behaviour that makes the slave speak the target protocol.
/// The example then picks the smallest implementation with the sub-solution
/// search, prints it, and demonstrates the diagnostic counterexample a
/// wrong gate driver produces.

#include "automata/automaton_io.hpp"
#include "eq/subsolution.hpp"
#include "eq/topology.hpp"
#include "eq/verify.hpp"

#include <iostream>

int main() {
    using namespace leq;

    // the plant: a bus slave with an undesigned gate input
    network plant("bus_slave");
    plant.add_input("req");  // i: the master's request line
    plant.add_input("gate"); // c: the control X must drive
    plant.add_latch("pend", "ack", false); // ack' = pend
    plant.add_node("pend", {"req", "gate"}, {"11"}); // pend = req & gate
    plant.add_output("ack");
    plant.validate();

    // the protocol spec: ack_t = req_{t-1}
    network spec("protocol");
    spec.add_input("req");
    spec.add_latch("req", "seen", false);
    spec.add_node("ack", {"seen"}, {"1"});
    spec.add_output("ack");
    spec.validate();

    std::cout << "bus slave: ack' = req & gate;  spec: ack_t = req_{t-1}\n\n";

    // solve over the controller topology: X observes req (as u), drives gate
    auto sol = solve_controller(plant, spec);
    if (sol.result.status != solve_status::ok || sol.result.empty_solution) {
        std::cout << "no gate driver exists\n";
        return 1;
    }
    const automaton& csf = *sol.result.csf;
    equation_problem& problem = *sol.problem;
    std::cout << "CSF of the gate driver: " << csf.num_states()
              << " states (every correct gate behaviour)\n";

    var_names names(problem.mgr().num_vars());
    names.label(problem.u_vars, "req");
    names.label(problem.v_vars, "gate");
    print_automaton(std::cout, csf, names.get());

    // the always-on gate must be among the allowed behaviours
    {
        automaton always_on(problem.mgr(), csf.label_vars());
        always_on.add_state(true);
        always_on.set_initial(0);
        always_on.add_transition(0, 0, problem.mgr().var(problem.v_vars[0]));
        std::cout << "\n'gate = 1 always' allowed: "
                  << (language_contained(always_on, csf) ? "yes" : "no")
                  << '\n';
    }

    // pick the smallest implementation
    const subsolution_result small =
        select_small_subsolution(csf, problem.u_vars, problem.v_vars);
    std::cout << "smallest extracted gate driver: " << small.fsm.num_states()
              << " state(s), policy " << to_string(small.policy) << '\n';
    print_automaton(std::cout, small.fsm, names.get());
    std::cout << "composition check: "
              << (verify_composition_contained(problem, small.fsm) ? "ok"
                                                                   : "FAILED")
              << '\n';

    // a wrong driver: gate stuck at 0 — the diagnosis shows the protocol
    // violation as a concrete (req, gate, ack) run
    {
        automaton stuck(problem.mgr(), csf.label_vars());
        stuck.add_state(true);
        stuck.set_initial(0);
        stuck.add_transition(0, 0, problem.mgr().nvar(problem.v_vars[0]));
        const verify_diagnosis d =
            diagnose_composition_contained(problem, stuck);
        std::cout << "\n'gate = 0 always' diagnosis:\n" << format_diagnosis(d);
    }
    return 0;
}
