/// \file blif_flow.cpp
/// \brief End-to-end BLIF tool flow: read a circuit from a BLIF file (or
/// generate a demo one), latch-split it, solve with both flows, compare,
/// and dump the CSF as Graphviz dot.
///
/// Usage: blif_flow [circuit.blif] [num_x_latches] [out.dot]
/// With no arguments a demo circuit is generated.

#include "automata/automaton_io.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/blif.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <fstream>
#include <iostream>

int main(int argc, char** argv) {
    using namespace leq;

    network circuit = argc > 1 ? read_blif_file(argv[1])
                               : make_lfsr(5, {1, 3});
    const std::size_t x_count =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                 : circuit.num_latches() / 2;
    if (x_count == 0 || x_count > circuit.num_latches()) {
        std::cerr << "bad latch count\n";
        return 1;
    }
    std::cout << "circuit '" << circuit.name() << "': "
              << circuit.num_inputs() << " inputs, " << circuit.num_outputs()
              << " outputs, " << circuit.num_latches() << " latches; "
              << "extracting the last " << x_count << " latches as X\n";

    const split_result split = split_last_latches(circuit, x_count);
    const equation_problem problem(split.fixed, circuit);

    solve_options options;
    options.time_limit_seconds = 120;
    const solve_result part = solve_partitioned(problem, options);
    const solve_result mono = solve_monolithic(problem, options);

    const auto report = [](const char* name, const solve_result& r) {
        std::cout << name << ": ";
        if (r.status == solve_status::ok) {
            std::cout << r.csf_states << " CSF states in " << r.seconds
                      << "s (" << r.subset_states_explored
                      << " subsets explored)\n";
        } else {
            std::cout << "did not complete\n";
        }
    };
    report("partitioned", part);
    report("monolithic ", mono);

    if (part.status != solve_status::ok) { return 1; }
    if (mono.status == solve_status::ok) {
        std::cout << "flows agree on the language: "
                  << (language_equivalent(*part.csf, *mono.csf) ? "yes" : "NO")
                  << "\n";
    }
    const bool c1 = verify_particular_contained(problem, *part.csf,
                                                split.part.initial_state());
    const bool c2 = verify_composition_contained(problem, *part.csf);
    std::cout << "checks: X_P<=X " << (c1 ? "ok" : "FAIL") << ", F.X<=S "
              << (c2 ? "ok" : "FAIL") << "\n";

    if (argc > 3 && part.csf->num_states() <= 200) {
        var_names names(problem.mgr().num_vars());
        names.label(problem.u_vars, "u");
        names.label(problem.v_vars, "v");
        std::ofstream dot(argv[3]);
        write_dot(dot, *part.csf, names.get(), "csf");
        std::cout << "wrote " << argv[3] << "\n";
    }
    return c1 && c2 ? 0 : 1;
}
