#!/usr/bin/env bash
# Docs-drift gate, run by the CI docs job from the repository root:
#
#   1. extract the README quickstart block (between the quickstart:begin /
#      quickstart:end markers) and execute it verbatim with bash -e — a
#      renamed flag, moved example, or broken subcommand fails here;
#   2. check every relative markdown link in README.md and docs/*.md
#      resolves to an existing file.
#
# Usage: scripts/check_docs.sh   (expects ./build/leq to exist)
set -euo pipefail

fail() { echo "check_docs: $*" >&2; exit 1; }

[ -x build/leq ] || fail "./build/leq not built (cmake --build build first)"

# ---- 1. run the quickstart verbatim -----------------------------------------
quickstart=$(awk '/<!-- quickstart:begin -->/,/<!-- quickstart:end -->/' \
                 README.md | sed -n '/^```sh$/,/^```$/p' | sed '1d;$d')
[ -n "$quickstart" ] || fail "no quickstart block found in README.md"

echo "== running README quickstart =="
printf '%s\n' "$quickstart"
bash -euo pipefail -c "$quickstart" ||
    fail "README quickstart drifted from the built leq binary"
echo "== quickstart ok =="

# ---- 2. markdown link check -------------------------------------------------
status=0
for doc in README.md docs/*.md; do
    dir=$(dirname "$doc")
    # markdown links, minus web URLs and intra-page anchors
    while IFS= read -r target; do
        # strip a trailing #anchor
        file=${target%%#*}
        [ -n "$file" ] || continue
        if [ ! -e "$dir/$file" ]; then
            echo "check_docs: $doc links to missing file '$target'" >&2
            status=1
        fi
    done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' |
             grep -v '^https\?://' || true)
done
[ "$status" -eq 0 ] || fail "broken markdown links"
echo "== links ok =="
