#!/usr/bin/env bash
# The pinned-benchmark driver, mirroring what the CI bench job does:
#
#   1. build the standard runner (Release) into build-bench/;
#   2. replay the pinned workloads into bench-current.json;
#   3. print the per-workload delta table for every gated metric (the same
#      Markdown the CI job drops into its job summary);
#   4. gate the run against the checked-in BENCH_PR10.json baseline —
#      exit 1 when any gated deterministic counter regresses past its
#      budget (wall clock is recorded but never gated).
#
# Usage: scripts/bench_run.sh [--update-baseline]
#
#   --update-baseline  rewrite BENCH_PR10.json (and bench/corpus/) from this
#                      run instead of comparing — for PRs that intentionally
#                      change a pinned metric.  Review the diff before
#                      committing: shrinking counters are wins, growing ones
#                      need a story.
set -euo pipefail

cd "$(dirname "$0")/.."

update=0
[ "${1:-}" = "--update-baseline" ] && update=1

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release -DBUILD_TESTING=OFF \
      -DLEQ_BUILD_BENCH=OFF -DLEQ_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-bench -j --target leq_bench_run >/dev/null

./build-bench/leq_bench_run --out bench-current.json

if [ "$update" = 1 ]; then
    if [ -f BENCH_PR10.json ]; then
        echo "bench_run: delta vs the old baseline:"
        ./build-bench/leq_bench_run --delta BENCH_PR10.json bench-current.json
    fi
    mv bench-current.json BENCH_PR10.json
    ./build-bench/leq_bench_run --write-corpus bench/corpus
    echo "bench_run: BENCH_PR10.json and bench/corpus/ rewritten from this run"
else
    ./build-bench/leq_bench_run --delta BENCH_PR10.json bench-current.json
    ./build-bench/leq_bench_run --compare BENCH_PR10.json bench-current.json
fi
