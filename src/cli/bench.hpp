/// \file bench.hpp
/// \brief The pinned benchmark trajectory: fixed workloads, a stable JSON
/// schema, and a regression gate.
///
/// The perf story of this codebase is only as good as its ability to notice
/// when a "harmless" change doubles the GC count or halves the cache hit
/// rate.  This module pins a small corpus of large-but-tractable workloads
/// (scaled gen/ scenarios, a structured-mix reachability sweep, a KISS
/// pair with hundreds of explicit states, a mixed batch campaign) and runs
/// them under `tools/leq_bench_run`, emitting one schema-stable JSON report
/// (`leq-bench-v1`).  A checked-in baseline (BENCH_PR10.json at the repo
/// root) plus `leq_bench_run --compare BASE NEW` turn the report into a CI
/// gate: any gated metric that moves the wrong way by more than 10% (plus a
/// small absolute slack) fails the build.
///
/// What makes this workable across machines and compilers is that every
/// *gated* metric is a deterministic work counter read off the BDD manager
/// (cache lookups, hit rate, GC runs, allocated nodes) or the solver
/// (subset states, CSF states, reachability depth) — identical on every
/// host.  Wall-clock seconds are recorded for humans but never gated.
///
/// The `cachefix/*` rows pin the before/after story of the PR that
/// introduced this file: the same workloads run under the historical memory
/// discipline (fixed-size direct-mapped computed cache, fixed-doubling GC
/// trigger — reconstructed via `bdd_manager_options`) and under the current
/// one, so the win stays measurable in every future baseline.  The
/// `cacheways/*` rows do the same for the set-associative cache: identical
/// sizing, associativity 1 (the historical single-slot geometry) versus the
/// default 4-way aged bucket.
#pragma once

#include "bdd/bdd.hpp"

#include <string>
#include <vector>

namespace leq {

/// One measured value.  The schema keys metrics by name; `metric_policy`
/// decides which names the compare gate looks at.
struct bench_metric {
    std::string name;
    double value = 0.0;
};

/// One workload's measurements.
struct bench_row {
    std::string workload; ///< stable id, e.g. "solve/counter_x256"
    double seconds = 0.0; ///< wall clock; informational, never gated
    std::vector<bench_metric> metrics;

    /// nullptr when the row does not carry the metric.
    [[nodiscard]] const bench_metric* find(const std::string& name) const;
};

/// A full run: the JSON document `bench_report_to_json` emits and
/// `parse_bench_report` reads back.
struct bench_report {
    std::string schema = "leq-bench-v1";
    std::vector<bench_row> rows;
};

/// How the compare gate treats a metric.
enum class metric_direction : std::uint8_t {
    info,    ///< recorded, never gated (wall clock, cache geometry)
    up_bad,  ///< regression = grew past base * (1+tol) + slack
    down_bad,///< regression = shrank past base * (1-tol) - slack
    exact,   ///< deterministic pin: any drift beyond slack fails
};

struct metric_policy {
    metric_direction direction = metric_direction::info;
    double rel_tol = 0.10; ///< the 10% budget (unused for exact)
    double abs_slack = 0.0;
};

/// Policy for a metric name; unknown names are informational.
[[nodiscard]] metric_policy bench_metric_policy(const std::string& name);

/// The pinned workload ids, in run order.
[[nodiscard]] std::vector<std::string> bench_workload_names();

/// Run one workload by id; throws std::invalid_argument for unknown ids.
[[nodiscard]] bench_row run_bench_workload(const std::string& workload);

/// Run every workload whose id contains `filter` (all when empty).
[[nodiscard]] bench_report run_bench(const std::string& filter = "");

/// Serialize; byte-deterministic for equal reports.
[[nodiscard]] std::string bench_report_to_json(const bench_report& report);

/// Parse a report emitted by `bench_report_to_json` (tolerates added
/// fields).  Throws std::runtime_error on malformed input or a schema
/// mismatch.
[[nodiscard]] bench_report parse_bench_report(const std::string& json);

/// One gated metric that moved the wrong way.
struct bench_regression {
    std::string workload;
    std::string metric;
    double base = 0.0;
    double current = 0.0;
    double limit = 0.0; ///< the value the gate would still have accepted
};

struct bench_compare_result {
    std::vector<bench_regression> regressions;
    /// Non-fatal observations: rows only in one report, improved metrics.
    std::vector<std::string> notes;
    [[nodiscard]] bool ok() const { return regressions.empty(); }
};

/// Gate `current` against `base`.  A workload present in the baseline but
/// missing from the current run is itself a regression (the trajectory
/// must not silently lose coverage).
[[nodiscard]] bench_compare_result
compare_bench_reports(const bench_report& base, const bench_report& current);

/// Render a human-readable summary (one line per regression/note).
[[nodiscard]] std::string to_string(const bench_compare_result& result);

/// Render a per-workload delta table of every gated metric (Markdown, so CI
/// can drop it straight into a job summary): base value, current value, and
/// the relative move.  Workloads missing from either side get a note row.
/// Purely presentational — the gate itself is `compare_bench_reports`.
[[nodiscard]] std::string bench_delta_table(const bench_report& base,
                                            const bench_report& current);

/// A corpus file the benchmark derives its inputs from, regenerated
/// deterministically.  The checked-in copies under bench/corpus/ are
/// byte-identical to this output (pinned by tests/test_bench.cpp); the
/// runner's --write-corpus mode (re)writes them.
struct bench_corpus_file {
    std::string name; ///< filename under bench/corpus/
    std::string text;
};
[[nodiscard]] std::vector<bench_corpus_file> bench_corpus_files();

} // namespace leq
