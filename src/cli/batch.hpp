/// \file batch.hpp
/// \brief The `leq batch` campaign mode: a manifest of independent
/// equations solved across a thread pool, shared-nothing.
///
/// Concurrency model: the BDD manager is single-threaded by design, so the
/// batch runner never shares one — each job builds its own
/// `equation_problem` (its own manager, unique table, caches) inside the
/// worker that claimed it, runs to completion, and returns a plain-data
/// `solve_record`.  Workers claim jobs off one atomic counter; there are no
/// locks and no cross-thread BDD handles.  This is the codebase's first
/// concurrency layer and the scaffold for sharding campaigns across
/// processes later: the unit of distribution is already a self-contained
/// (source text, config) pair.
///
/// Determinism: records are stored by job index and emitted in manifest
/// order, and the per-record JSON excludes wall-clock fields unless timing
/// is requested — so `--jobs N` output is byte-identical for every N.
#pragma once

#include "cli/run.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace leq {

/// One manifest line: an independent equation instance.  Sources are
/// slurped up front (on the calling thread) so workers touch no shared
/// filesystem state and a missing file fails the whole campaign early.
struct batch_job {
    std::string name;
    equation_source fixed;
    equation_source spec;
    /// Set when the job's source dictates the choice-input count (gen:
    /// scenario jobs); overrides the campaign config's value.
    bool has_choice_inputs = false;
    std::size_t choice_inputs = 0;
};

struct batch_options {
    /// Worker threads; 0 = hardware concurrency, 1 = run inline.
    std::size_t jobs = 1;
    /// Per-solve configuration (flow, knobs, limits), shared by all jobs.
    cli_config config;
    /// Subcommand to run per job ("solve" unless overridden).
    std::string command = "solve";
};

struct batch_report {
    std::vector<solve_record> records; ///< one per job, in manifest order
    std::size_t solved = 0;   ///< status ok, solution non-empty
    std::size_t empty = 0;    ///< status ok, no solution exists
    std::size_t gave_up = 0;  ///< timeout / state limit
    std::size_t errors = 0;   ///< load or solver exceptions
    /// Jobs that solved but whose verify/diagnose check failed (counted in
    /// `solved`/`empty` too — the tallies classify the solution, this one
    /// the check).
    std::size_t check_failures = 0;
    double wall_seconds = 0.0;
    [[nodiscard]] bool all_ok() const {
        return gave_up == 0 && errors == 0 && check_failures == 0;
    }
};

/// Parse a manifest: one job per line, `F_PATH S_PATH [NAME]`,
/// whitespace-separated; `#` starts a comment; blank lines are skipped.
/// Relative paths resolve against `base_dir` (the manifest's directory).
/// The default NAME is F_PATH's basename with a trailing `_f` stripped.
/// Throws std::runtime_error on malformed lines or unreadable files.
[[nodiscard]] std::vector<batch_job>
read_manifest(std::istream& in, const std::string& base_dir);

/// Load a manifest file (resolves entries against its own directory).
[[nodiscard]] std::vector<batch_job>
read_manifest_file(const std::string& path);

/// Run every job and collect the ordered report.  Individual job failures
/// land in their records; only campaign-level misuse throws.
[[nodiscard]] batch_report run_batch(const std::vector<batch_job>& jobs,
                                     const batch_options& options);

} // namespace leq
