/// \file equation_io.cpp
/// \brief File loading and KISS/BLIF dispatch for the CLI.

#include "cli/equation_io.hpp"

#include "automata/kiss.hpp"
#include "eq/kiss_flow.hpp"
#include "gen/scenario.hpp"
#include "net/blif.hpp"

#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace leq {

namespace {

/// One parsed side: a BLIF source yields the network directly; a KISS
/// source yields only its header widths here (the network needs the
/// partner's widths to pick port names, so it is encoded later).  Parses
/// each text exactly once either way.
struct parsed_side {
    std::size_t num_inputs = 0;
    std::size_t num_outputs = 0;
    std::optional<network> net; ///< set iff the source was BLIF
};

parsed_side parse_side(const equation_source& src) {
    parsed_side side;
    if (src.format == equation_format::kiss) {
        const kiss_header h = read_kiss_header(src.text);
        side.num_inputs = h.num_inputs;
        side.num_outputs = h.num_outputs;
    } else {
        side.net = read_blif_string(src.text);
        side.num_inputs = side.net->num_inputs();
        side.num_outputs = side.net->num_outputs();
    }
    return side;
}

} // namespace

equation_format detect_format(const std::string& path,
                              const std::string& text) {
    const auto ends_with = [&](const char* suffix) {
        const std::string s = suffix;
        return path.size() >= s.size() &&
               path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    if (ends_with(".blif")) { return equation_format::blif; }
    if (ends_with(".kiss") || ends_with(".kiss2")) {
        return equation_format::kiss;
    }
    return text.find(".model") != std::string::npos ? equation_format::blif
                                                    : equation_format::kiss;
}

std::string default_job_name(const std::string& f_path) {
    std::string name = f_path;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) { name.erase(0, slash + 1); }
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos) { name.erase(dot); }
    if (name.size() > 2 && name.compare(name.size() - 2, 2, "_f") == 0) {
        name.erase(name.size() - 2);
    }
    return name;
}

equation_source read_equation_source(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot open '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    equation_source src{path, text.str(), equation_format::kiss};
    src.format = detect_format(path, src.text);
    return src;
}

loaded_equation load_equation(const equation_source& fixed,
                              const equation_source& spec,
                              std::size_t num_choice_inputs) {
    parsed_side s_side = parse_side(spec);
    parsed_side f_side = parse_side(fixed);
    if (f_side.num_inputs < s_side.num_inputs + num_choice_inputs ||
        f_side.num_outputs < s_side.num_outputs) {
        throw std::invalid_argument(
            "'" + fixed.path + "' cannot embed '" + spec.path +
            "': F needs S's inputs/outputs plus the v/u/w ports");
    }
    const std::size_t num_v =
        f_side.num_inputs - s_side.num_inputs - num_choice_inputs;
    const std::size_t num_u = f_side.num_outputs - s_side.num_outputs;

    loaded_equation eq;
    eq.num_choice_inputs = num_choice_inputs;
    eq.spec = s_side.net
                  ? std::move(*s_side.net)
                  : encode_kiss_spec(spec.text, s_side.num_inputs,
                                     s_side.num_outputs, "eq_s");
    eq.fixed = f_side.net
                   ? std::move(*f_side.net)
                   : encode_kiss_fixed(fixed.text, s_side.num_inputs,
                                       s_side.num_outputs, num_v, num_u,
                                       num_choice_inputs, "eq_f");
    return eq;
}

bool is_gen_spec(const std::string& token) {
    return token.compare(0, 4, "gen:") == 0;
}

generated_pair make_gen_pair(const std::string& token) {
    if (!is_gen_spec(token)) {
        throw std::runtime_error("not a gen: spec: '" + token + "'");
    }
    std::string family_name = token.substr(4);
    // digits only: stoul would wrap "-1" instead of rejecting it
    const auto parse_u32 = [&token](const std::string& text,
                                    const char* what) -> std::uint32_t {
        try {
            if (text.empty() ||
                std::isdigit(static_cast<unsigned char>(text[0])) == 0) {
                throw std::invalid_argument(text);
            }
            std::size_t used = 0;
            const auto value =
                static_cast<std::uint32_t>(std::stoul(text, &used));
            if (used != text.size()) { throw std::invalid_argument(text); }
            return value;
        } catch (const std::exception&) {
            throw std::runtime_error(std::string("bad ") + what + " in '" +
                                     token + "'");
        }
    };
    std::uint32_t seed = 0;
    std::uint32_t scale = 1;
    bool have_seed = false;
    const std::size_t colon = family_name.find(':');
    if (colon != std::string::npos) {
        std::string seed_text = family_name.substr(colon + 1);
        family_name.erase(colon);
        const std::size_t colon2 = seed_text.find(':');
        if (colon2 != std::string::npos) {
            scale = parse_u32(seed_text.substr(colon2 + 1), "scale");
            if (scale == 0) {
                throw std::runtime_error("bad scale in '" + token +
                                         "': must be >= 1");
            }
            seed_text.erase(colon2);
        }
        seed = parse_u32(seed_text, "seed");
        have_seed = true;
    }
    const auto family = scenario_family_from_string(family_name);
    if (!family.has_value()) {
        throw std::runtime_error("unknown scenario family '" + family_name +
                                 "' in '" + token + "'");
    }
    if (!have_seed) { seed = test_seed(1); }

    const scenario s = make_scenario(*family, seed, scale);
    generated_pair pair;
    pair.fixed = {token + "#f", write_blif_string(s.fixed),
                  equation_format::blif};
    pair.spec = {token + "#s", write_blif_string(s.spec),
                 equation_format::blif};
    pair.num_choice_inputs = s.num_choice_inputs;
    return pair;
}

} // namespace leq
