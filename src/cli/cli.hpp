/// \file cli.hpp
/// \brief The `leq` end-user CLI, as a library entry point.
///
/// `tools/leq.cpp` is a two-line main over `run_leq_cli`; the test suite
/// (tests/test_cli.cpp) drives the same entry point in-process, capturing
/// stdout/stderr through the stream parameters, so every subcommand and
/// error path is testable without spawning processes.
///
/// Subcommands (see `leq --help` or docs/ARCHITECTURE.md):
///   solve F S      compute the CSF, emit one JSON stats line
///   verify F S     solve, then check F . X <= S symbolically
///   diagnose F S   solve, then diagnose (optionally a --impl candidate)
///                  with a counterexample trace on failure
///   reduce F S     solve, then reduce the CSF to a small contained FSM
///   batch MANIFEST solve a manifest of equations on a thread pool
///
/// Exit codes: 0 success (an unsolvable equation still exits 0 — the JSON
/// carries `"solution":"empty"`), 1 solver gave up / a check failed / a job
/// errored, 2 usage error, 3 inputs unreadable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace leq {

/// Run the CLI: `args` excludes the program name ({"solve", "f.kiss", ...}).
/// JSON records go to `out`; usage, summaries and errors go to `err`.
[[nodiscard]] int run_leq_cli(const std::vector<std::string>& args,
                              std::ostream& out, std::ostream& err);

} // namespace leq
