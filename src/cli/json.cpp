/// \file json.cpp
/// \brief JSON-line rendering helpers.

#include "cli/json.hpp"

#include <cmath>
#include <cstdio>

namespace leq {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string json_number(double value) {
    if (!std::isfinite(value)) { return "null"; } // JSON has no inf/nan
    char buf[40];
    // shortest of %g that still round-trips; fall back to full precision
    std::snprintf(buf, sizeof buf, "%g", value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed != value) {
        std::snprintf(buf, sizeof buf, "%.17g", value);
    }
    // embedding hosts may have set an LC_NUMERIC whose decimal point is
    // ',' — printf honors it, JSON does not
    for (char* c = buf; *c != '\0'; ++c) {
        if (*c == ',') { *c = '.'; }
    }
    return buf;
}

std::string json_object::str() const {
    std::string out = "{";
    for (std::size_t k = 0; k < fields_.size(); ++k) {
        if (k > 0) { out += ","; }
        out += "\"" + json_escape(fields_[k].first) + "\":" +
               fields_[k].second;
    }
    return out + "}";
}

void json_object::add(const std::string& name, const std::string& rendered) {
    fields_.emplace_back(name, rendered);
}

} // namespace leq
