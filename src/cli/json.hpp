/// \file json.hpp
/// \brief Minimal JSON-line emission for the `leq` CLI.
///
/// The CLI's contract is one JSON object per solve on stdout (JSON Lines),
/// machine-readable and byte-deterministic for equal inputs: fields are
/// emitted in insertion order, numbers avoid locale formatting, and doubles
/// use a fixed shortest-round-trip style.  This is a writer only — the tool
/// never parses JSON.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace leq {

/// Escape a string for embedding in a JSON document (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Render a double the way the CLI emits numbers: shortest form that
/// round-trips ("%.17g" trimmed via "%g" when exact), with the decimal
/// point normalized to '.' whatever the host's LC_NUMERIC says.
[[nodiscard]] std::string json_number(double value);

/// An insertion-ordered JSON object builder.  Values are rendered at
/// insertion; `str()` wraps them in braces.  Nested values (objects,
/// arrays) are added pre-rendered via `field_raw`.
class json_object {
public:
    void field(const std::string& name, const std::string& value) {
        add(name, "\"" + json_escape(value) + "\"");
    }
    void field(const std::string& name, const char* value) {
        field(name, std::string(value));
    }
    void field(const std::string& name, bool value) {
        add(name, value ? "true" : "false");
    }
    void field(const std::string& name, std::size_t value) {
        add(name, std::to_string(value));
    }
    void field(const std::string& name, double value) {
        add(name, json_number(value));
    }
    /// Pre-rendered JSON (a nested object or array).
    void field_raw(const std::string& name, const std::string& json) {
        add(name, json);
    }

    [[nodiscard]] std::string str() const;

private:
    void add(const std::string& name, const std::string& rendered);
    std::vector<std::pair<std::string, std::string>> fields_;
};

} // namespace leq
