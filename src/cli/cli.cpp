/// \file cli.cpp
/// \brief Flag parsing and subcommand dispatch for the `leq` tool.

#include "cli/cli.hpp"

#include "cli/batch.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace leq {

namespace {

int usage(std::ostream& err) {
    err << "usage: leq <command> [arguments] [options]\n"
        << "\n"
        << "commands:\n"
        << "  solve F S        compute the CSF of F . X <= S; one JSON line\n"
        << "  verify F S       solve, then check F . X <= S symbolically\n"
        << "  diagnose F S     solve, then diagnose the CSF (or --impl X)\n"
        << "                   with a counterexample trace on failure\n"
        << "  reduce F S       solve, then reduce the CSF to a small FSM\n"
        << "  batch MANIFEST   run a manifest of equations on a thread pool\n"
        << "\n"
        << "F and S are BLIF or KISS2 files (detected by extension, then\n"
        << "content); `gen:FAMILY[:SEED[:SCALE]]` in place of the pair\n"
        << "generates a fuzz-scenario instance (seed defaults to\n"
        << "LEQ_TEST_SEED or 1; each doubling of SCALE adds a state bit).\n"
        << "\n"
        << "solver options (all commands):\n"
        << "  --flow F         partitioned (default) | monolithic | explicit\n"
        << "                   (explicit is the exponential Algorithm-1\n"
        << "                   oracle for small instances; it ignores\n"
        << "                   --time-limit/--max-states and solver knobs)\n"
        << "  --strategy S     frontier (default) | bfs | chaining |\n"
        << "                   saturation\n"
        << "  --policy P       greedy (default) | affinity | none\n"
        << "  --cluster-limit N   merged-cluster node bound (default 2500)\n"
        << "  --no-early-quant    quantify at the end (ablation baseline)\n"
        << "  --no-trim           explore non-conforming subsets (mono flow)\n"
        << "  --collect-stats     track peak intermediate product sizes\n"
        << "  --time-limit SEC    wall-clock deadline per solve (default 0)\n"
        << "  --max-states N      subset-state cap per solve (default 0)\n"
        << "  --cache-bits B      initial computed-cache size 2^B, 8..30\n"
        << "                   (default 18; the cache grows with the node\n"
        << "                   arena up to --max-cache-bits)\n"
        << "  --max-cache-bits B  computed-cache growth ceiling 2^B, 8..30\n"
        << "                   (default 24; B == --cache-bits pins a fixed\n"
        << "                   cache)\n"
        << "  --gc-threshold N    allocated-node GC trigger floor\n"
        << "                   (default 16384)\n"
        << "  --cache-ways W      computed-cache associativity, power of two\n"
        << "                   in 1..16 (default 4; 1 = direct-mapped)\n"
        << "  --solve-jobs N      image-pool worker threads inside ONE solve\n"
        << "                   (default: off = sequential engine); results\n"
        << "                   are byte-identical for every N >= 1\n"
        << "  --choice-inputs N   trailing F inputs are choice inputs w\n"
        << "  --name NAME         job label in the JSON record\n"
        << "  --timing | --no-timing   include wall-clock fields (default:\n"
        << "                   on, except in batch mode)\n"
        << "\n"
        << "command options:\n"
        << "  diagnose: --impl X.kiss   candidate implementation over (u,v)\n"
        << "  reduce:   --out X.kiss    write the reduced machine\n"
        << "  batch:    --jobs N        worker threads (default 1; 0 = all\n"
        << "                            cores), one BDD manager per worker\n"
        << "            --command C     per-job command (default solve)\n"
        << "\n"
        << "exit codes: 0 solved (JSON carries \"solution\":\"empty\" for\n"
        << "unsolvable equations), 1 gave up or check failed, 2 usage,\n"
        << "3 unreadable inputs\n";
    return 2;
}

/// Everything parsed off the command line.
struct parsed_args {
    std::vector<std::string> positional;
    cli_config config;
    std::string name;
    std::size_t jobs = 1;
    std::string batch_command = "solve";
    bool timing_set = false; ///< explicit --timing/--no-timing
};

/// Parse flags into `parsed`; returns an exit code to bail with, or -1.
int parse_flags(const std::vector<std::string>& args, parsed_args& parsed,
                std::ostream& err) {
    for (std::size_t k = 0; k < args.size(); ++k) {
        const std::string& arg = args[k];
        const auto value = [&]() -> const std::string* {
            if (k + 1 >= args.size()) { return nullptr; }
            return &args[++k];
        };
        const auto numeric = [&](const char* flag,
                                 std::size_t& dst) -> bool {
            const std::string* v = value();
            if (v == nullptr) {
                err << "leq: " << flag << " needs a value\n";
                return false;
            }
            try {
                // stoul would wrap "-1" to 2^64-1: digits only
                if (v->empty() ||
                    std::isdigit(static_cast<unsigned char>((*v)[0])) == 0) {
                    throw std::invalid_argument(*v);
                }
                std::size_t used = 0;
                dst = std::stoul(*v, &used);
                if (used != v->size()) { throw std::invalid_argument(*v); }
            } catch (const std::exception&) {
                err << "leq: bad value for " << flag << ": '" << *v << "'\n";
                return false;
            }
            return true;
        };

        if (arg.empty() || arg[0] != '-') {
            parsed.positional.push_back(arg);
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            usage(err); // asking for help is not a usage *error*
            return 0;
        }
        if (arg == "--flow") {
            const std::string* v = value();
            if (v == nullptr ||
                (*v != "partitioned" && *v != "monolithic" &&
                 *v != "explicit")) {
                err << "leq: --flow needs partitioned|monolithic|explicit\n";
                return 2;
            }
            parsed.config.flow = *v;
        } else if (arg == "--strategy") {
            const std::string* v = value();
            image_options& img = parsed.config.solve.img;
            if (v == nullptr) {
                err << "leq: --strategy needs "
                       "bfs|frontier|chaining|saturation\n";
                return 2;
            } else if (*v == "bfs") {
                img.strategy = reach_strategy::bfs;
            } else if (*v == "frontier") {
                img.strategy = reach_strategy::frontier;
            } else if (*v == "chaining") {
                img.strategy = reach_strategy::chaining;
            } else if (*v == "saturation") {
                img.strategy = reach_strategy::saturation;
            } else {
                err << "leq: unknown strategy '" << *v << "'\n";
                return 2;
            }
        } else if (arg == "--policy") {
            const std::string* v = value();
            image_options& img = parsed.config.solve.img;
            if (v == nullptr) {
                err << "leq: --policy needs none|greedy|affinity\n";
                return 2;
            } else if (*v == "none") {
                img.policy = cluster_policy::none;
            } else if (*v == "greedy") {
                img.policy = cluster_policy::greedy;
            } else if (*v == "affinity") {
                img.policy = cluster_policy::affinity;
            } else {
                err << "leq: unknown cluster policy '" << *v << "'\n";
                return 2;
            }
        } else if (arg == "--cluster-limit") {
            if (!numeric("--cluster-limit",
                         parsed.config.solve.img.cluster_limit)) {
                return 2;
            }
        } else if (arg == "--no-early-quant") {
            parsed.config.solve.img.early_quantification = false;
        } else if (arg == "--no-trim") {
            parsed.config.solve.trim_nonconforming = false;
        } else if (arg == "--collect-stats") {
            parsed.config.solve.img.collect_stats = true;
        } else if (arg == "--time-limit") {
            const std::string* v = value();
            if (v == nullptr) {
                err << "leq: --time-limit needs a value\n";
                return 2;
            }
            try {
                std::size_t used = 0;
                parsed.config.solve.time_limit_seconds = std::stod(*v, &used);
                if (used != v->size() ||
                    parsed.config.solve.time_limit_seconds < 0) {
                    throw std::invalid_argument(*v);
                }
            } catch (const std::exception&) {
                err << "leq: bad value for --time-limit: '" << *v << "'\n";
                return 2;
            }
        } else if (arg == "--max-states") {
            if (!numeric("--max-states",
                         parsed.config.solve.max_subset_states)) {
                return 2;
            }
        } else if (arg == "--cache-bits" || arg == "--max-cache-bits") {
            std::size_t bits = 0;
            if (!numeric(arg.c_str(), bits)) { return 2; }
            if (bits < 8 || bits > 30) {
                err << "leq: " << arg << " must be in 8..30\n";
                return 2;
            }
            if (arg == "--cache-bits") {
                parsed.config.solve.mem.cache_bits =
                    static_cast<unsigned>(bits);
                // keep the pair consistent when only the floor is raised
                parsed.config.solve.mem.max_cache_bits =
                    std::max(parsed.config.solve.mem.max_cache_bits,
                             static_cast<unsigned>(bits));
            } else {
                parsed.config.solve.mem.max_cache_bits =
                    static_cast<unsigned>(bits);
            }
        } else if (arg == "--gc-threshold") {
            if (!numeric("--gc-threshold",
                         parsed.config.solve.mem.gc_threshold)) {
                return 2;
            }
        } else if (arg == "--cache-ways") {
            std::size_t ways = 0;
            if (!numeric("--cache-ways", ways)) { return 2; }
            if (ways < 1 || ways > 16 || (ways & (ways - 1)) != 0) {
                err << "leq: --cache-ways must be a power of two in 1..16\n";
                return 2;
            }
            parsed.config.solve.mem.cache_ways = static_cast<unsigned>(ways);
        } else if (arg == "--solve-jobs") {
            std::size_t jobs = 0;
            if (!numeric("--solve-jobs", jobs)) { return 2; }
            if (jobs == 0) {
                // 0 would silently mean "sequential", masking typos; the
                // sequential engine is simply the absence of the flag
                err << "leq: --solve-jobs must be at least 1\n";
                return 2;
            }
            parsed.config.solve.img.solve_jobs = jobs;
        } else if (arg == "--choice-inputs") {
            if (!numeric("--choice-inputs", parsed.config.choice_inputs)) {
                return 2;
            }
        } else if (arg == "--name") {
            const std::string* v = value();
            if (v == nullptr) {
                err << "leq: --name needs a value\n";
                return 2;
            }
            parsed.name = *v;
        } else if (arg == "--impl") {
            const std::string* v = value();
            if (v == nullptr) {
                err << "leq: --impl needs a path\n";
                return 2;
            }
            parsed.config.impl_path = *v;
        } else if (arg == "--out") {
            const std::string* v = value();
            if (v == nullptr) {
                err << "leq: --out needs a path\n";
                return 2;
            }
            parsed.config.out_path = *v;
        } else if (arg == "--jobs") {
            if (!numeric("--jobs", parsed.jobs)) { return 2; }
        } else if (arg == "--command") {
            const std::string* v = value();
            if (v == nullptr ||
                (*v != "solve" && *v != "verify" && *v != "diagnose" &&
                 *v != "reduce")) {
                err << "leq: --command needs "
                       "solve|verify|diagnose|reduce\n";
                return 2;
            }
            parsed.batch_command = *v;
        } else if (arg == "--timing") {
            parsed.config.timing = true;
            parsed.timing_set = true;
        } else if (arg == "--no-timing") {
            parsed.config.timing = false;
            parsed.timing_set = true;
        } else {
            err << "leq: unknown option '" << arg << "'\n";
            return usage(err);
        }
    }
    return -1;
}

/// Resolve the positional arguments of a pair command into sources.
/// Returns an exit code to bail with, or -1 to proceed.
int resolve_pair(parsed_args& parsed, equation_source& fixed,
                 equation_source& spec, std::ostream& err) {
    if (parsed.positional.size() == 1 && is_gen_spec(parsed.positional[0])) {
        generated_pair pair = make_gen_pair(parsed.positional[0]);
        fixed = std::move(pair.fixed);
        spec = std::move(pair.spec);
        parsed.config.choice_inputs = pair.num_choice_inputs;
        if (parsed.name.empty()) {
            parsed.name = parsed.positional[0].substr(4);
        }
        return -1;
    }
    if (parsed.positional.size() != 2) {
        err << "leq: expected F and S files (or one gen:FAMILY[:SEED])\n";
        return usage(err);
    }
    fixed = read_equation_source(parsed.positional[0]);
    spec = read_equation_source(parsed.positional[1]);
    if (parsed.name.empty()) {
        parsed.name = default_job_name(parsed.positional[0]);
    }
    return -1;
}

/// --impl is an input: check it is readable before any solve work starts
/// (unreadable inputs are exit 3, not a per-job failure).  Returns an exit
/// code to bail with, or -1.
int preflight_impl(const parsed_args& parsed, std::ostream& err) {
    if (parsed.config.impl_path.empty()) { return -1; }
    std::ifstream impl(parsed.config.impl_path);
    if (!impl) {
        err << "leq: cannot open '" << parsed.config.impl_path << "'\n";
        return 3;
    }
    return -1;
}

int cmd_pair(const std::string& command, parsed_args& parsed,
             std::ostream& out, std::ostream& err) {
    equation_source fixed, spec;
    try {
        const int bail = resolve_pair(parsed, fixed, spec, err);
        if (bail >= 0) { return bail; }
    } catch (const std::exception& e) {
        err << "leq: " << e.what() << "\n";
        return 3;
    }
    const int impl_bail = preflight_impl(parsed, err);
    if (impl_bail >= 0) { return impl_bail; }
    const solve_record record =
        run_command(command, parsed.name, fixed, spec, parsed.config);
    out << record_to_json(record, parsed.config) << "\n";
    if (!record.completed) { err << "leq: " << record.error << "\n"; }
    if (record.has_diagnose && !record.diagnose_ok) {
        err << record.diagnose_trace; // human-readable copy of the trace
    }
    return record.exit_code();
}

int cmd_batch(parsed_args& parsed, std::ostream& out, std::ostream& err) {
    if (parsed.positional.size() != 1) {
        err << "leq: batch expects one manifest file\n";
        return usage(err);
    }
    if (!parsed.config.out_path.empty()) {
        // every worker would clobber the same file; per-job outputs need
        // per-job paths, which manifests do not carry
        err << "leq: --out is not supported in batch mode\n";
        return 2;
    }
    const int impl_bail = preflight_impl(parsed, err);
    if (impl_bail >= 0) { return impl_bail; }
    batch_options options;
    options.jobs = parsed.jobs;
    options.config = parsed.config;
    options.command = parsed.batch_command;
    if (!parsed.timing_set) {
        // deterministic records by default: equal campaigns are
        // byte-identical whatever --jobs is
        options.config.timing = false;
    }

    std::vector<batch_job> jobs;
    try {
        jobs = read_manifest_file(parsed.positional[0]);
    } catch (const std::exception& e) {
        err << "leq: " << e.what() << "\n";
        return 3;
    }

    const batch_report report = run_batch(jobs, options);
    for (const solve_record& record : report.records) {
        out << record_to_json(record, options.config) << "\n";
    }
    err << "leq batch: " << report.records.size() << " equation(s), "
        << report.solved << " solved, " << report.empty << " empty, "
        << report.gave_up << " gave up, " << report.errors << " error(s), "
        << report.check_failures << " failed check(s) ["
        << options.command << ", jobs "
        << (options.jobs == 0 ? std::string("auto")
                              : std::to_string(options.jobs))
        << ", " << report.wall_seconds << "s]\n";
    return report.all_ok() ? 0 : 1;
}

} // namespace

int run_leq_cli(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
    if (args.empty()) { return usage(err); }
    const std::string command = args[0];
    parsed_args parsed;
    try {
        const int bail = parse_flags(
            {args.begin() + 1, args.end()}, parsed, err);
        if (bail >= 0) { return bail; }
        if (parsed.config.flow == "explicit" &&
            (parsed.config.solve.time_limit_seconds > 0 ||
             parsed.config.solve.max_subset_states > 0)) {
            // the Algorithm-1 oracle enumerates explicitly and supports no
            // deadline; a silent no-op limit would be a hang trap
            err << "leq: warning: --flow explicit ignores "
                   "--time-limit/--max-states\n";
        }
        if (command == "solve" || command == "verify" ||
            command == "diagnose" || command == "reduce") {
            return cmd_pair(command, parsed, out, err);
        }
        if (command == "batch") { return cmd_batch(parsed, out, err); }
        if (command == "--help" || command == "-h" || command == "help") {
            usage(err);
            return 0;
        }
    } catch (const std::exception& e) {
        err << "leq: " << e.what() << "\n";
        return 3;
    }
    err << "leq: unknown command '" << command << "'\n";
    return usage(err);
}

} // namespace leq
