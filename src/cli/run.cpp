/// \file run.cpp
/// \brief Subcommand execution and JSON rendering.

#include "cli/run.hpp"

#include "automata/kiss.hpp"
#include "cli/json.hpp"
#include "eq/reduce.hpp"
#include "eq/subsolution.hpp"

#include <exception>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace leq {

namespace {

const char* status_name(const solve_record& record) {
    if (!record.completed) { return "error"; }
    switch (record.result.status) {
    case solve_status::ok: return "ok";
    case solve_status::timeout: return "timeout";
    case solve_status::state_limit: return "state_limit";
    }
    return "error";
}

solve_result dispatch_solve(const std::string& flow,
                            const equation_problem& problem,
                            const loaded_equation& eq,
                            const solve_options& options) {
    if (flow == "monolithic") { return solve_monolithic(problem, options); }
    if (flow == "explicit") {
        return solve_explicit(problem, eq.fixed, eq.spec);
    }
    return solve_partitioned(problem, options);
}

/// The subcommand work that needs the problem (and its manager) alive.
void run_checks(const std::string& command, const equation_problem& problem,
                const cli_config& config, solve_record& record) {
    if (record.result.status != solve_status::ok) { return; }
    const automaton& csf = *record.result.csf;

    if (command == "verify") {
        record.has_verify = true;
        record.verify_ok = verify_composition_contained(problem, csf);
        return;
    }

    if (command == "diagnose") {
        record.has_diagnose = true;
        verify_diagnosis d;
        if (!config.impl_path.empty()) {
            // diagnose a user-supplied candidate X (KISS over u/v) instead
            // of the computed CSF; containment in the CSF is the stronger
            // check, the composition diagnosis yields the trace
            std::ifstream in(config.impl_path);
            if (!in) {
                throw std::runtime_error("cannot open '" + config.impl_path +
                                         "'");
            }
            const automaton x = read_kiss(in, problem.mgr(), problem.u_vars,
                                          problem.v_vars);
            d = diagnose_composition_contained(problem, x);
            if (d.ok && !language_contained(x, csf)) {
                d.ok = false;
                d.reason = "implementation is not contained in the CSF";
            }
        } else {
            d = diagnose_composition_contained(problem, csf);
        }
        record.diagnose_ok = d.ok;
        record.diagnose_reason = d.reason;
        if (!d.ok) { record.diagnose_trace = format_diagnosis(d); }
        return;
    }

    if (command == "reduce") {
        if (record.result.empty_solution) {
            throw std::runtime_error(
                "the equation has no solution; nothing to reduce");
        }
        record.has_reduce = true;
        automaton small = [&] {
            if (auto reduced = reduce_subsolution(csf, problem.u_vars,
                                                  problem.v_vars)) {
                record.reduce_method = "compatibility";
                return std::move(*reduced);
            }
            // instance exceeded the reduction limits: commit-and-minimize
            record.reduce_method = "subsolution";
            return select_small_subsolution(csf, problem.u_vars,
                                            problem.v_vars)
                .fsm;
        }();
        record.reduced_states = small.num_states();
        if (!config.out_path.empty()) {
            std::ofstream out(config.out_path);
            if (!out) {
                throw std::runtime_error("cannot open '" + config.out_path +
                                         "'");
            }
            write_kiss(out, small, problem.u_vars, problem.v_vars);
            record.wrote_path = config.out_path;
        }
    }
}

} // namespace

int solve_record::exit_code() const {
    if (!completed) { return 1; }
    if (result.status != solve_status::ok) { return 1; }
    if (has_verify && !verify_ok) { return 1; }
    if (has_diagnose && !diagnose_ok) { return 1; }
    return 0;
}

solve_record run_command(const std::string& command, const std::string& name,
                         const equation_source& fixed,
                         const equation_source& spec,
                         const cli_config& config) {
    solve_record record;
    record.name = name;
    record.f_path = fixed.path;
    record.s_path = spec.path;
    record.command = command;
    record.flow = config.flow;
    record.choice_inputs = config.choice_inputs;
    try {
        const loaded_equation eq =
            load_equation(fixed, spec, config.choice_inputs);
        const equation_problem problem(eq.fixed, eq.spec,
                                       eq.num_choice_inputs,
                                       config.solve.mem);
        // the CSF's handles live in `problem`'s manager: drop them before
        // `problem` leaves scope, on the success and the unwind path alike
        try {
            record.result =
                dispatch_solve(config.flow, problem, eq, config.solve);
            record.completed = true;
            run_checks(command, problem, config, record);
        } catch (...) {
            record.result.csf.reset();
            throw;
        }
        record.result.csf.reset();
    } catch (const std::exception& e) {
        record.completed = false;
        record.error = e.what();
    }
    return record;
}

std::string record_to_json(const solve_record& record,
                           const cli_config& config) {
    json_object obj;
    obj.field("name", record.name);
    obj.field("command", record.command);
    obj.field("flow", record.flow);
    obj.field("f", record.f_path);
    obj.field("s", record.s_path);
    obj.field("status", status_name(record));
    if (record.completed && record.result.status == solve_status::ok) {
        obj.field("solution",
                  record.result.empty_solution ? "empty" : "ok");
        obj.field("csf_states", record.result.csf_states);
        obj.field("subset_states", record.result.subset_states_explored);
    }
    if (!record.completed) { obj.field("error", record.error); }

    {
        const image_options& img = config.solve.img;
        json_object opts;
        opts.field("strategy", to_string(img.strategy));
        opts.field("policy", to_string(img.policy));
        opts.field("cluster_limit", img.cluster_limit);
        opts.field("early_quantification", img.early_quantification);
        opts.field("choice_inputs", record.choice_inputs);
        opts.field("time_limit", config.solve.time_limit_seconds);
        opts.field("max_subset_states", config.solve.max_subset_states);
        opts.field("cache_bits",
                   static_cast<std::size_t>(config.solve.mem.cache_bits));
        opts.field("max_cache_bits",
                   static_cast<std::size_t>(config.solve.mem.max_cache_bits));
        opts.field("gc_threshold", config.solve.mem.gc_threshold);
        opts.field("cache_ways",
                   static_cast<std::size_t>(config.solve.mem.cache_ways));
        opts.field("solve_jobs", img.solve_jobs);
        obj.field_raw("options", opts.str());
    }
    if (record.completed) {
        const solve_stats& s = record.result.stats;
        json_object stats;
        stats.field("relations", s.relations);
        stats.field("relation_parts", s.relation_parts);
        stats.field("clusters", s.clusters);
        stats.field("images", s.images);
        stats.field("preimages", s.preimages);
        if (config.solve.img.strategy == reach_strategy::saturation) {
            stats.field("saturation_fires", s.saturation_fires);
        }
        if (config.solve.img.collect_stats) {
            stats.field("peak_intermediate", s.peak_intermediate);
        }
        if (config.solve.img.solve_jobs > 0) {
            // deterministic parallel-engine counters: identical for every
            // --solve-jobs N, so they are safe to diff across runs
            stats.field("parallel_chunks", s.parallel_chunks);
            stats.field("transfer_nodes", s.transfer_nodes);
        }
        stats.field("live_nodes", s.live_nodes_after);
        stats.field("cache_lookups", s.cache_lookups);
        stats.field("cache_hits", s.cache_hits);
        // per-op breakdown of the same traffic: only ops that were actually
        // exercised, so quiet solves don't bloat the record
        json_object ops;
        bool any_op = false;
        for (std::size_t k = 0; k < bdd_num_ops; ++k) {
            if (s.op_lookups[k] == 0) { continue; }
            any_op = true;
            json_object one;
            one.field("lookups", s.op_lookups[k]);
            one.field("hits", s.op_hits[k]);
            ops.field_raw(bdd_op_name(k), one.str());
        }
        if (any_op) { stats.field_raw("op_cache", ops.str()); }
        obj.field_raw("stats", stats.str());
    }
    if (record.completed && record.has_verify) {
        json_object v;
        v.field("composition_ok", record.verify_ok);
        obj.field_raw("verify", v.str());
    }
    if (record.completed && record.has_diagnose) {
        json_object d;
        d.field("ok", record.diagnose_ok);
        if (!record.diagnose_ok) {
            d.field("reason", record.diagnose_reason);
            d.field("trace", record.diagnose_trace);
        }
        obj.field_raw("diagnose", d.str());
    }
    if (record.completed && record.has_reduce) {
        json_object r;
        r.field("states", record.reduced_states);
        r.field("method", record.reduce_method);
        if (!record.wrote_path.empty()) {
            r.field("wrote", record.wrote_path);
        }
        obj.field_raw("reduce", r.str());
    }
    if (config.timing && record.completed) {
        obj.field("seconds", record.result.seconds);
    }
    return obj.str();
}

} // namespace leq
