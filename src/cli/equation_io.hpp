/// \file equation_io.hpp
/// \brief Loading an equation instance F . X <= S from files for the CLI.
///
/// The fixed machine F and the specification S each come from a BLIF
/// netlist or a KISS2 state table (see docs/FORMATS.md).  BLIF files are
/// read as-is — F's ports must be (i..., v..., w...) / (o..., u...) with the
/// shared i/o names matching S's, the layout `leq_fuzz` reproducers and
/// `split_last_latches` outputs already have.  KISS files are encoded with
/// the canonical port names (`i<k>`/`z<k>` shared, `xv<k>`/`xu<k>` for the
/// unknown), so a KISS side pairs with a BLIF side only when the BLIF uses
/// those same names.  Widths for a KISS F are inferred from the two headers:
/// everything beyond S's inputs is v (minus any declared choice inputs w),
/// everything beyond S's outputs is u.
#pragma once

#include "net/network.hpp"

#include <cstddef>
#include <string>

namespace leq {

enum class equation_format { blif, kiss };

/// Detect a file's format: extension first (.blif / .kiss), then content
/// (a `.model` construct means BLIF; KISS has none).
[[nodiscard]] equation_format detect_format(const std::string& path,
                                            const std::string& text);

/// One side of an equation, as text plus its detected format.
struct equation_source {
    std::string path; ///< for error messages; may name an in-memory origin
    std::string text;
    equation_format format = equation_format::kiss;
};

/// Read a file into an `equation_source` (throws std::runtime_error when
/// the file cannot be opened).
[[nodiscard]] equation_source read_equation_source(const std::string& path);

/// Default record/job label for an F path: the basename without extension
/// and without a trailing `_f` ("examples/eqn/delay_f.blif" → "delay").
/// Shared by the single-run commands and the batch manifest reader so the
/// same pair gets the same name either way.
[[nodiscard]] std::string default_job_name(const std::string& f_path);

/// A loaded instance: two manager-independent networks ready for
/// `equation_problem(fixed, spec, num_choice_inputs)`.  Loading touches no
/// shared state, so distinct instances can be built and solved on distinct
/// threads (the batch mode's shared-nothing contract).
struct loaded_equation {
    network fixed;
    network spec;
    std::size_t num_choice_inputs = 0;
};

/// Build the instance from the two sources.  `num_choice_inputs` declares
/// how many trailing F inputs are footnote-2 choice inputs w.  Throws
/// std::runtime_error / std::invalid_argument on malformed input or an
/// interface mismatch (F must carry S's inputs/outputs plus v/u/w).
[[nodiscard]] loaded_equation load_equation(const equation_source& fixed,
                                            const equation_source& spec,
                                            std::size_t num_choice_inputs = 0);

/// A generated-instance spec: `gen:FAMILY[:SEED[:SCALE]]` names a fuzz
/// scenario family (gen/scenario.hpp) instead of a file pair; the seed
/// defaults to `test_seed(1)`, so `LEQ_TEST_SEED` pins it the same way it
/// pins the randomized test suites, and the optional scale widens the
/// instance (one extra state bit per doubling — see make_scenario).
[[nodiscard]] bool is_gen_spec(const std::string& token);

/// Materialize a `gen:` spec as two in-memory BLIF sources plus the
/// scenario's choice-input count.  Deterministic for equal
/// (family, seed, scale).  Throws std::runtime_error on an unknown family
/// or malformed spec.
struct generated_pair {
    equation_source fixed;
    equation_source spec;
    std::size_t num_choice_inputs = 0;
};
[[nodiscard]] generated_pair make_gen_pair(const std::string& token);

} // namespace leq
