/// \file run.hpp
/// \brief One equation solve (plus optional verify/diagnose/reduce work) as
/// a reusable, thread-friendly unit: source files in, JSON-ready record out.
///
/// `run_command` owns the whole lifetime of an instance — build the
/// `equation_problem` (and its BDD manager), run the selected flow, run the
/// subcommand's extra checks while the manager is still alive, and return a
/// plain-data record.  Nothing manager-backed escapes, so records can cross
/// threads freely and the batch runner can execute one `run_command` per
/// worker with zero sharing.
#pragma once

#include "cli/equation_io.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"

#include <string>

namespace leq {

/// Everything the flag surface can set for one solve.
struct cli_config {
    /// "partitioned" (default), "monolithic", or "explicit".
    std::string flow = "partitioned";
    /// Solver options; `solve.img` carries the relation-layer knobs
    /// (strategy, cluster policy and limit, early quantification,
    /// collect-stats) exposed as flags.
    solve_options solve;
    /// Trailing F inputs that are footnote-2 choice inputs w.
    std::size_t choice_inputs = 0;
    /// Emit wall-clock fields.  Off in batch mode by default so equal
    /// inputs produce byte-identical records regardless of thread count.
    bool timing = true;
    /// `diagnose`: optional candidate implementation (KISS over u/v) to
    /// check instead of the computed CSF.
    std::string impl_path;
    /// `reduce`: where to write the reduced machine (KISS); empty = don't.
    std::string out_path;
};

/// What happened, flattened to plain data (safe to move across threads).
struct solve_record {
    std::string name;    ///< job label (file stem or manifest name)
    std::string f_path;
    std::string s_path;
    std::string command; ///< solve / verify / diagnose / reduce
    std::string flow;
    std::size_t choice_inputs = 0; ///< effective w count for this job

    bool completed = false; ///< false: `error` explains the failure
    std::string error;

    solve_result result; ///< CSF dropped; counters and stats kept

    bool has_verify = false;
    bool verify_ok = false;

    bool has_diagnose = false;
    bool diagnose_ok = false;
    std::string diagnose_reason;
    std::string diagnose_trace; ///< format_diagnosis rendering ("" when ok)

    bool has_reduce = false;
    std::size_t reduced_states = 0;
    std::string reduce_method; ///< "compatibility" or "subsolution"
    std::string wrote_path;    ///< reduce output file, when written

    /// Process exit code this record maps to: 0 solved (even when the
    /// solution is empty), 1 gave up / check failed / errored.
    [[nodiscard]] int exit_code() const;
};

/// Execute `command` ("solve", "verify", "diagnose", "reduce") on the pair.
/// Solver and I/O failures are captured in the record (`completed == false`),
/// never thrown: the batch runner must survive any single job.
[[nodiscard]] solve_record
run_command(const std::string& command, const std::string& name,
            const equation_source& fixed, const equation_source& spec,
            const cli_config& config);

/// Render a record as its canonical JSON line (no trailing newline).
[[nodiscard]] std::string record_to_json(const solve_record& record,
                                         const cli_config& config);

} // namespace leq
