/// \file bench.cpp
/// \brief Pinned benchmark workloads, report (de)serialization and the
/// regression gate.

#include "cli/bench.hpp"

#include "automata/kiss.hpp"
#include "automata/stg.hpp"
#include "cli/batch.hpp"
#include "cli/json.hpp"
#include "eq/kiss_flow.hpp"
#include "eq/problem.hpp"
#include "eq/solver.hpp"
#include "gen/scenario.hpp"
#include "img/image.hpp"
#include "img/parallel.hpp"
#include "net/blif.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

namespace leq {

namespace {

// ---------------------------------------------------------------------------
// measurement helpers
// ---------------------------------------------------------------------------

void add(bench_row& row, const std::string& name, double value) {
    row.metrics.push_back({name, value});
}

/// The manager counters every workload reports.  `live_node_count()`
/// forces a final mark-and-sweep so the node counters reflect the end
/// state even when the workload never hit the GC trigger (the extra
/// deterministic gc_run is part of the pinned numbers).
void add_manager_metrics(bench_row& row, bdd_manager& mgr) {
    (void)mgr.live_node_count();
    const bdd_stats& stats = mgr.stats();
    add(row, "cache_lookups", static_cast<double>(stats.cache_lookups));
    const double lookups = static_cast<double>(stats.cache_lookups);
    add(row, "cache_hit_rate",
        lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0);
    add(row, "gc_runs", static_cast<double>(stats.gc_runs));
    add(row, "allocated_nodes", static_cast<double>(stats.allocated_nodes));
    add(row, "live_nodes", static_cast<double>(stats.live_nodes));
    add(row, "cache_entries", static_cast<double>(stats.cache_entries));
    add(row, "cache_resizes", static_cast<double>(stats.cache_resizes));
    add(row, "cache_ways", static_cast<double>(stats.cache_ways));
}

/// The historical memory discipline, reconstructed: a direct-mapped
/// computed cache that never resizes and the fixed-doubling GC trigger.
/// `cache_bits` 22 is what `equation_problem` hardcoded before the options
/// plumbing; 18 is what a default-constructed manager got.
bdd_manager_options before_options(unsigned cache_bits) {
    bdd_manager_options mem;
    mem.cache_bits = cache_bits;
    mem.max_cache_bits = cache_bits;
    mem.adaptive_gc = false;
    mem.cache_ways = 1;
    return mem;
}

/// The `cacheways/*` discipline: the historical sizing and GC policy
/// (fixed cache, fixed-doubling trigger) with the trigger floor lowered to
/// 2^11 nodes — a deliberately collection-heavy regime, because what a
/// collection does to the memo is exactly what these rows measure.  The
/// before/after pair then varies only the PR's cache changes: "before" is
/// the historical cache — single-slot buckets, cleared at every
/// collection; "after" is the default 4-way bucket that ages across
/// collections.
bdd_manager_options ways_options(unsigned cache_bits, unsigned ways,
                                 bool age_on_gc) {
    bdd_manager_options mem = before_options(cache_bits);
    mem.gc_threshold = std::size_t{1} << 11;
    mem.cache_ways = ways;
    mem.cache_age_on_gc = age_on_gc;
    return mem;
}

// ---------------------------------------------------------------------------
// workloads
// ---------------------------------------------------------------------------

/// The `saturation/*` rows vary only the reach strategy: "before" is the
/// textbook bfs fixpoint (R := R | Img(R)), "after" the saturation
/// worklist, on the same deep-sequential workloads and default memory
/// discipline — the gated win is the work-counter drop from never
/// re-imaging the full reached set.
image_options strategy_options(reach_strategy strategy) {
    image_options img;
    img.strategy = strategy;
    return img;
}

/// The `parallel/*` rows vary only the image engine: "before" is the
/// sequential path, "after" the `--solve-jobs 4` pool.  The deterministic
/// counters (reach/subset states, images, parallel chunk and transfer
/// totals) are gated; the wall-clock speedup is the info-only payoff.
image_options parallel_options(std::size_t jobs) {
    image_options img;
    img.solve_jobs = jobs;
    return img;
}

/// Solve one scaled gen/ scenario with the partitioned flow.
bench_row run_solve_scenario(const std::string& id, scenario_family family,
                             std::uint32_t seed, std::uint32_t scale,
                             const bdd_manager_options& mem,
                             const image_options& img = {}) {
    bench_row row;
    row.workload = id;
    const scenario s = make_scenario(family, seed, scale);
    const equation_problem problem(s.fixed, s.spec, s.num_choice_inputs, mem);
    solve_options options;
    options.img = img;
    const solve_result result = solve_partitioned(problem, options);
    if (result.status != solve_status::ok) {
        throw std::runtime_error("bench workload " + id + " gave up");
    }
    add(row, "subset_states",
        static_cast<double>(result.subset_states_explored));
    add(row, "csf_states", static_cast<double>(result.csf_states));
    add(row, "images", static_cast<double>(result.stats.images));
    if (img.strategy == reach_strategy::saturation) {
        add(row, "saturation_fires",
            static_cast<double>(result.stats.saturation_fires));
    }
    if (img.solve_jobs > 0) {
        add(row, "parallel_chunks",
            static_cast<double>(result.stats.parallel_chunks));
        add(row, "transfer_nodes",
            static_cast<double>(result.stats.transfer_nodes));
    }
    add_manager_metrics(row, problem.mgr());
    return row;
}

/// Solve the corpus KISS pair through the FSM-level flow.
bench_row run_solve_kiss(const std::string& id, const std::string& f_kiss,
                         const std::string& s_kiss) {
    bench_row row;
    row.workload = id;
    const kiss_instance inst = build_kiss_instance(f_kiss, s_kiss);
    const solve_result result = solve_partitioned(*inst.problem);
    if (result.status != solve_status::ok) {
        throw std::runtime_error("bench workload " + id + " gave up");
    }
    add(row, "subset_states",
        static_cast<double>(result.subset_states_explored));
    add(row, "csf_states", static_cast<double>(result.csf_states));
    add(row, "images", static_cast<double>(result.stats.images));
    add_manager_metrics(row, inst.problem->mgr());
    return row;
}

network reach_circuit() {
    structured_spec spec;
    spec.num_inputs = 4;
    spec.num_outputs = 6;
    spec.num_latches = 26;
    spec.seed = 29;
    spec.full_observation = true;
    spec.chained_enables = false;
    return make_structured_mix(spec);
}

/// Frontier-heavy mix for the parallel rows: this seed's frontier wave
/// peaks around 17k nodes — four consecutive BFS layers clear the image
/// engine's 8192-node dispatch floor — so the "after" row genuinely
/// drives chunk splitting and cross-manager transfer.  The reach_circuit
/// wave above tops out near 4k nodes and would stay entirely on the
/// sequential fallback.
network parallel_reach_circuit() {
    structured_spec spec;
    spec.num_inputs = 4;
    spec.num_outputs = 5;
    spec.num_latches = 26;
    spec.seed = 3;
    spec.full_observation = true;
    spec.chained_enables = false;
    return make_structured_mix(spec);
}

/// Deep-sequential reach workload: a 12-cell gated ripple counter (the
/// chaincounter generator's machine at a fixed size).  All 4096 counter
/// values are reachable one per step, so the bfs fixpoint re-images an
/// ever-growing reached set ~4096 times while saturation only ever
/// images the one-state frontier chunks.
network chain_circuit() { return make_chain_counter(12, 4); }

/// The second deep-sequential reach workload: a 14-bit LFSR whose cycle
/// visits 8188 states one per step.  Unlike the chain counter — whose
/// reached-set prefix {0..k} keeps an O(bits) BDD, so the computed cache
/// absorbs most of bfs's re-imaging — the LFSR's reached set is an
/// irregular, growing BDD that changes shape every step, and the textbook
/// fixpoint pays for all of it on every image.  This is where saturation's
/// never-image-more-than-the-frontier discipline wins by an order of
/// magnitude, not a margin.
network lfsr_circuit() { return make_lfsr(14, {2, 0}); }

/// Layered reachability sweep over the given circuit under the given
/// memory discipline and reach strategy.  The relation is built
/// explicitly (the same construction the vector entry point performs) so
/// the row can harvest the relation-layer work counters; under saturation
/// `reach_depth` reports fires, not BFS depth (see reach_info).
bench_row run_reach(const std::string& id, const network& net,
                    const bdd_manager_options& mem,
                    const image_options& img = {}) {
    bench_row row;
    row.workload = id;
    bdd_manager mgr(0, mem);
    std::vector<std::uint32_t> in, cs, ns;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        in.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        cs.push_back(mgr.new_var());
        ns.push_back(mgr.new_var());
    }
    const net_bdds fns = build_net_bdds(mgr, net, in, cs);
    const bdd init = state_cube(mgr, cs, net.initial_state());
    // the prebuilt-relation path does not spawn an image pool itself (see
    // reachable_states_layered); wire one here when the row asks for it,
    // declared before the relation so it outlives the forget() callback
    image_options local = img;
    std::unique_ptr<image_pool> pool;
    if (local.solve_jobs > 0 && local.executor == nullptr) {
        pool = std::make_unique<image_pool>(local.solve_jobs);
        local.executor = pool.get();
    }
    transition_relation relation = transition_relation::next_state(
        mgr, fns.next_state, cs, ns, in, local);
    relation.rename_image_to_current();
    const reach_info info = reachable_states_layered(
        relation, init, static_cast<std::uint32_t>(cs.size()));
    add(row, "reach_depth", static_cast<double>(info.depth));
    add(row, "reach_states", info.total_states);
    add(row, "images", static_cast<double>(relation.stats().images));
    if (img.strategy == reach_strategy::saturation) {
        add(row, "saturation_fires",
            static_cast<double>(relation.stats().saturation_fires));
    }
    if (img.solve_jobs > 0) {
        add(row, "parallel_chunks",
            static_cast<double>(relation.stats().parallel_chunks));
        add(row, "transfer_nodes",
            static_cast<double>(relation.stats().transfer_nodes));
    }
    add_manager_metrics(row, mgr);
    return row;
}

/// The mixed batch campaign: every family, three seeds, two workers (the
/// shared-nothing pool makes the summed per-job counters deterministic
/// regardless of worker count).  Per-job cache traffic — every worker has
/// its own manager — is summed from the per-record solve stats.
bench_row run_batch_workload(const std::string& id,
                             const bdd_manager_options& mem) {
    bench_row row;
    row.workload = id;
    std::vector<batch_job> jobs;
    for (const scenario_family family : all_scenario_families) {
        for (std::uint32_t seed = 1; seed <= 3; ++seed) {
            const std::string spec = "gen:" + std::string(to_string(family)) +
                                     ":" + std::to_string(seed);
            generated_pair pair = make_gen_pair(spec);
            batch_job job;
            job.name = spec.substr(4);
            job.fixed = std::move(pair.fixed);
            job.spec = std::move(pair.spec);
            job.has_choice_inputs = true;
            job.choice_inputs = pair.num_choice_inputs;
            jobs.push_back(std::move(job));
        }
    }
    batch_options options;
    options.jobs = 2;
    options.config.timing = false;
    options.config.solve.mem = mem;
    const batch_report report = run_batch(jobs, options);
    if (report.errors != 0 || report.gave_up != 0) {
        throw std::runtime_error("bench workload " + id + " had failures");
    }
    double subset_states = 0.0;
    double csf_states = 0.0;
    double cache_lookups = 0.0;
    double cache_hits = 0.0;
    for (const solve_record& record : report.records) {
        subset_states +=
            static_cast<double>(record.result.subset_states_explored);
        csf_states += static_cast<double>(record.result.csf_states);
        cache_lookups += static_cast<double>(record.result.stats.cache_lookups);
        cache_hits += static_cast<double>(record.result.stats.cache_hits);
    }
    add(row, "batch_solved", static_cast<double>(report.solved));
    add(row, "batch_empty", static_cast<double>(report.empty));
    add(row, "subset_states", subset_states);
    add(row, "csf_states", csf_states);
    add(row, "cache_lookups", cache_lookups);
    add(row, "cache_hit_rate",
        cache_lookups > 0 ? cache_hits / cache_lookups : 0.0);
    return row;
}

/// The corpus KISS pair: an explicit-state counter equation.  The split
/// keeps the counter's low bit in the unknown component, so F has one v
/// input / one u output on top of S's interface.
std::pair<std::string, std::string> make_counter_kiss(std::size_t bits) {
    const network original = make_counter(bits);
    const split_result split = split_last_latches(original, 1);
    bdd_manager mgr;
    const auto label_vars = [&mgr](const network& net) {
        std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> v;
        for (std::size_t k = 0; k < net.num_inputs(); ++k) {
            v.first.push_back(mgr.new_var());
        }
        for (std::size_t k = 0; k < net.num_outputs(); ++k) {
            v.second.push_back(mgr.new_var());
        }
        return v;
    };
    const auto [f_in, f_out] = label_vars(split.fixed);
    const automaton fa =
        network_to_automaton(mgr, split.fixed, f_in, f_out);
    const auto [s_in, s_out] = label_vars(original);
    const automaton sa = network_to_automaton(mgr, original, s_in, s_out);
    return {write_kiss_string(fa, f_in, f_out),
            write_kiss_string(sa, s_in, s_out)};
}

} // namespace

const bench_metric* bench_row::find(const std::string& name) const {
    for (const bench_metric& m : metrics) {
        if (m.name == name) { return &m; }
    }
    return nullptr;
}

metric_policy bench_metric_policy(const std::string& name) {
    // deterministic solver outputs: any drift is a behaviour change
    if (name == "subset_states" || name == "csf_states" ||
        name == "reach_depth" || name == "reach_states" ||
        name == "batch_solved" || name == "batch_empty") {
        return {metric_direction::exact, 0.0, 0.0};
    }
    // deterministic work counters: 10% + slack budget
    if (name == "cache_lookups") {
        return {metric_direction::up_bad, 0.10, 1000.0};
    }
    if (name == "images") { return {metric_direction::up_bad, 0.10, 2.0}; }
    // deterministic saturation trace length: drift means the worklist
    // discipline changed
    if (name == "saturation_fires") {
        return {metric_direction::exact, 0.0, 0.0};
    }
    // deterministic parallel-engine counters: identical for every
    // --solve-jobs N by construction, so any drift is an engine change
    if (name == "parallel_chunks" || name == "transfer_nodes") {
        return {metric_direction::exact, 0.0, 0.0};
    }
    if (name == "gc_runs") { return {metric_direction::up_bad, 0.10, 2.0}; }
    if (name == "allocated_nodes") {
        return {metric_direction::up_bad, 0.10, 4096.0};
    }
    if (name == "live_nodes") {
        return {metric_direction::up_bad, 0.10, 1024.0};
    }
    if (name == "cache_hit_rate") {
        return {metric_direction::down_bad, 0.10, 0.02};
    }
    // seconds, cache_entries, cache_resizes, anything future
    return {metric_direction::info, 0.0, 0.0};
}

std::vector<std::string> bench_workload_names() {
    return {
        "solve/counter_x256",
        "solve/arbiter_x16",
        "solve/kiss_counter9",
        "reach/mix26",
        "batch/families",
        "cachefix/reach_mix26/before",
        "cachefix/reach_mix26/after",
        "cachefix/solve_counter_x256/before",
        "cachefix/solve_counter_x256/after",
        "cacheways/reach_mix26/before",
        "cacheways/reach_mix26/after",
        "cacheways/solve_counter_x256/before",
        "cacheways/solve_counter_x256/after",
        "cacheways/batch_families/before",
        "cacheways/batch_families/after",
        "saturation/reach_mix26/before",
        "saturation/reach_mix26/after",
        "saturation/reach_chain/before",
        "saturation/reach_chain/after",
        "saturation/reach_lfsr14/before",
        "saturation/reach_lfsr14/after",
        "saturation/solve_counter_x256/before",
        "saturation/solve_counter_x256/after",
        "parallel/reach_mix26/before",
        "parallel/reach_mix26/after",
        "parallel/solve_counter_x256/before",
        "parallel/solve_counter_x256/after",
    };
}

bench_row run_bench_workload(const std::string& workload) {
    if (workload == "solve/counter_x256") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  problem_manager_defaults());
    }
    if (workload == "solve/arbiter_x16") {
        return run_solve_scenario(workload, scenario_family::arbiter, 2, 16,
                                  problem_manager_defaults());
    }
    if (workload == "solve/kiss_counter9") {
        const auto [f_kiss, s_kiss] = make_counter_kiss(9);
        return run_solve_kiss(workload, f_kiss, s_kiss);
    }
    if (workload == "reach/mix26") {
        return run_reach(workload, reach_circuit(), bdd_manager_options{});
    }
    if (workload == "batch/families") {
        return run_batch_workload(workload, problem_manager_defaults());
    }
    if (workload == "cachefix/reach_mix26/before") {
        return run_reach(workload, reach_circuit(), before_options(18));
    }
    if (workload == "cachefix/reach_mix26/after") {
        return run_reach(workload, reach_circuit(), bdd_manager_options{});
    }
    if (workload == "cachefix/solve_counter_x256/before") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  before_options(22));
    }
    if (workload == "cachefix/solve_counter_x256/after") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  problem_manager_defaults());
    }
    // associativity story: identical pinned cache budget, the historical
    // clear-on-GC single-slot geometry versus the default 4-way aged bucket
    if (workload == "cacheways/reach_mix26/before") {
        return run_reach(workload, reach_circuit(), ways_options(18, 1, false));
    }
    if (workload == "cacheways/reach_mix26/after") {
        return run_reach(workload, reach_circuit(), ways_options(18, 4, true));
    }
    if (workload == "cacheways/solve_counter_x256/before") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  ways_options(22, 1, false));
    }
    if (workload == "cacheways/solve_counter_x256/after") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  ways_options(22, 4, true));
    }
    if (workload == "cacheways/batch_families/before") {
        return run_batch_workload(workload, ways_options(18, 1, false));
    }
    if (workload == "cacheways/batch_families/after") {
        return run_batch_workload(workload, ways_options(18, 4, true));
    }
    // strategy story: same workload and memory discipline, textbook bfs
    // fixpoint versus the saturation worklist
    if (workload == "saturation/reach_mix26/before") {
        return run_reach(workload, reach_circuit(), bdd_manager_options{},
                         strategy_options(reach_strategy::bfs));
    }
    if (workload == "saturation/reach_mix26/after") {
        return run_reach(workload, reach_circuit(), bdd_manager_options{},
                         strategy_options(reach_strategy::saturation));
    }
    if (workload == "saturation/reach_chain/before") {
        return run_reach(workload, chain_circuit(), bdd_manager_options{},
                         strategy_options(reach_strategy::bfs));
    }
    if (workload == "saturation/reach_chain/after") {
        return run_reach(workload, chain_circuit(), bdd_manager_options{},
                         strategy_options(reach_strategy::saturation));
    }
    if (workload == "saturation/reach_lfsr14/before") {
        return run_reach(workload, lfsr_circuit(), bdd_manager_options{},
                         strategy_options(reach_strategy::bfs));
    }
    if (workload == "saturation/reach_lfsr14/after") {
        return run_reach(workload, lfsr_circuit(), bdd_manager_options{},
                         strategy_options(reach_strategy::saturation));
    }
    if (workload == "saturation/solve_counter_x256/before") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  problem_manager_defaults(),
                                  strategy_options(reach_strategy::bfs));
    }
    if (workload == "saturation/solve_counter_x256/after") {
        return run_solve_scenario(
            workload, scenario_family::counter, 3, 256,
            problem_manager_defaults(),
            strategy_options(reach_strategy::saturation));
    }
    // parallel story: same workload and memory discipline, sequential
    // image engine versus the four-worker pool (counters must not move —
    // the engine is deterministic — only the wall clock may)
    if (workload == "parallel/reach_mix26/before") {
        return run_reach(workload, parallel_reach_circuit(),
                         bdd_manager_options{});
    }
    if (workload == "parallel/reach_mix26/after") {
        return run_reach(workload, parallel_reach_circuit(),
                         bdd_manager_options{}, parallel_options(4));
    }
    // the solve rows pin the cooperative fallback: subset-construction
    // images sit under the operand-size floor, so the pool must cost
    // (almost) nothing and change no solver counter
    if (workload == "parallel/solve_counter_x256/before") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  problem_manager_defaults());
    }
    if (workload == "parallel/solve_counter_x256/after") {
        return run_solve_scenario(workload, scenario_family::counter, 3, 256,
                                  problem_manager_defaults(),
                                  parallel_options(4));
    }
    throw std::invalid_argument("unknown bench workload '" + workload + "'");
}

bench_report run_bench(const std::string& filter) {
    bench_report report;
    for (const std::string& name : bench_workload_names()) {
        if (!filter.empty() && name.find(filter) == std::string::npos) {
            continue;
        }
        const auto start = std::chrono::steady_clock::now();
        bench_row row = run_bench_workload(name);
        const auto stop = std::chrono::steady_clock::now();
        row.seconds =
            std::chrono::duration<double>(stop - start).count();
        report.rows.push_back(std::move(row));
    }
    return report;
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

std::string bench_report_to_json(const bench_report& report) {
    std::string rows = "[";
    for (std::size_t k = 0; k < report.rows.size(); ++k) {
        const bench_row& row = report.rows[k];
        json_object metrics;
        for (const bench_metric& m : row.metrics) {
            metrics.field(m.name, m.value);
        }
        json_object obj;
        obj.field("workload", row.workload);
        obj.field("seconds", row.seconds);
        obj.field_raw("metrics", metrics.str());
        if (k > 0) { rows += ","; }
        rows += obj.str();
    }
    rows += "]";
    json_object doc;
    doc.field("schema", report.schema);
    doc.field_raw("rows", rows);
    return doc.str() + "\n";
}

namespace {

/// Minimal JSON reader for the report schema: objects, arrays, strings,
/// numbers.  The CLI at large stays writer-only (see json.hpp); parsing
/// lives here because the compare gate is the one consumer.
class json_reader {
public:
    explicit json_reader(const std::string& text) : text_(text) {}

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    [[nodiscard]] char peek() {
        skip_ws();
        if (pos_ >= text_.size()) { fail("unexpected end of input"); }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    [[nodiscard]] bool consume(char c) {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    [[nodiscard]] std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) { fail("unterminated string"); }
            const char c = text_[pos_++];
            if (c == '"') { break; }
            if (c == '\\') {
                if (pos_ >= text_.size()) { fail("unterminated escape"); }
                const char e = text_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u':
                    // the report never emits non-ASCII; keep the escape
                    if (pos_ + 4 > text_.size()) { fail("bad \\u escape"); }
                    out += "\\u" + text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    [[nodiscard]] double parse_number() {
        skip_ws();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) { fail("expected a number"); }
        try {
            return std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception&) {
            fail("bad number");
        }
        return 0.0; // unreachable
    }

    /// Skip any value (for fields the schema does not know).
    void skip_value() {
        const char c = peek();
        if (c == '"') {
            (void)parse_string();
        } else if (c == '{') {
            ++pos_;
            if (!consume('}')) {
                do {
                    (void)parse_string();
                    expect(':');
                    skip_value();
                } while (consume(','));
                expect('}');
            }
        } else if (c == '[') {
            ++pos_;
            if (!consume(']')) {
                do { skip_value(); } while (consume(','));
                expect(']');
            }
        } else if (c == 't' || c == 'f' || c == 'n') {
            while (pos_ < text_.size() &&
                   std::isalpha(static_cast<unsigned char>(text_[pos_])) !=
                       0) {
                ++pos_;
            }
        } else {
            (void)parse_number();
        }
    }

    [[noreturn]] void fail(const std::string& why) {
        throw std::runtime_error("bench report parse error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

private:
    const std::string& text_;
    std::size_t pos_ = 0;
};

bench_row parse_row(json_reader& in) {
    bench_row row;
    in.expect('{');
    if (!in.consume('}')) {
        do {
            const std::string key = in.parse_string();
            in.expect(':');
            if (key == "workload") {
                row.workload = in.parse_string();
            } else if (key == "seconds") {
                row.seconds = in.parse_number();
            } else if (key == "metrics") {
                in.expect('{');
                if (!in.consume('}')) {
                    do {
                        bench_metric m;
                        m.name = in.parse_string();
                        in.expect(':');
                        m.value = in.parse_number();
                        row.metrics.push_back(std::move(m));
                    } while (in.consume(','));
                    in.expect('}');
                }
            } else {
                in.skip_value();
            }
        } while (in.consume(','));
        in.expect('}');
    }
    return row;
}

} // namespace

bench_report parse_bench_report(const std::string& json) {
    json_reader in(json);
    bench_report report;
    report.schema.clear();
    in.expect('{');
    if (!in.consume('}')) {
        do {
            const std::string key = in.parse_string();
            in.expect(':');
            if (key == "schema") {
                report.schema = in.parse_string();
            } else if (key == "rows") {
                in.expect('[');
                if (!in.consume(']')) {
                    do {
                        report.rows.push_back(parse_row(in));
                    } while (in.consume(','));
                    in.expect(']');
                }
            } else {
                in.skip_value();
            }
        } while (in.consume(','));
        in.expect('}');
    }
    if (report.schema != "leq-bench-v1") {
        throw std::runtime_error("bench report schema mismatch: '" +
                                 report.schema + "'");
    }
    return report;
}

// ---------------------------------------------------------------------------
// the gate
// ---------------------------------------------------------------------------

bench_compare_result compare_bench_reports(const bench_report& base,
                                           const bench_report& current) {
    bench_compare_result result;
    std::map<std::string, const bench_row*> current_rows;
    for (const bench_row& row : current.rows) {
        current_rows[row.workload] = &row;
    }
    for (const bench_row& base_row : base.rows) {
        const auto it = current_rows.find(base_row.workload);
        if (it == current_rows.end()) {
            // lost coverage is a regression, not a note: the trajectory
            // must not silently shrink
            result.regressions.push_back(
                {base_row.workload, "<row missing>", 0.0, 0.0, 0.0});
            continue;
        }
        const bench_row& now = *it->second;
        current_rows.erase(it);
        for (const bench_metric& bm : base_row.metrics) {
            const metric_policy policy = bench_metric_policy(bm.name);
            if (policy.direction == metric_direction::info) { continue; }
            const bench_metric* cm = now.find(bm.name);
            if (cm == nullptr) {
                result.regressions.push_back(
                    {base_row.workload, bm.name + " <missing>", bm.value,
                     0.0, 0.0});
                continue;
            }
            double limit = 0.0;
            bool regressed = false;
            switch (policy.direction) {
            case metric_direction::up_bad:
                limit = bm.value * (1.0 + policy.rel_tol) + policy.abs_slack;
                regressed = cm->value > limit;
                break;
            case metric_direction::down_bad:
                limit = bm.value * (1.0 - policy.rel_tol) - policy.abs_slack;
                regressed = cm->value < limit;
                break;
            case metric_direction::exact:
                limit = bm.value;
                regressed =
                    std::abs(cm->value - bm.value) > policy.abs_slack;
                break;
            case metric_direction::info: break;
            }
            if (regressed) {
                result.regressions.push_back({base_row.workload, bm.name,
                                              bm.value, cm->value, limit});
            }
        }
    }
    for (const auto& [workload, row] : current_rows) {
        (void)row;
        result.notes.push_back("new workload not in baseline: " + workload +
                               " (refresh the baseline to start gating it)");
    }
    return result;
}

std::string to_string(const bench_compare_result& result) {
    std::string out;
    for (const bench_regression& r : result.regressions) {
        out += "REGRESSION " + r.workload + " " + r.metric + ": base " +
               json_number(r.base) + " -> " + json_number(r.current) +
               " (limit " + json_number(r.limit) + ")\n";
    }
    for (const std::string& note : result.notes) {
        out += "note: " + note + "\n";
    }
    if (result.ok()) { out += "bench compare: OK\n"; }
    return out;
}

std::string bench_delta_table(const bench_report& base,
                              const bench_report& current) {
    std::string out;
    out += "| workload | metric | base | current | delta |\n";
    out += "|---|---|---:|---:|---:|\n";
    std::map<std::string, const bench_row*> current_rows;
    for (const bench_row& row : current.rows) {
        current_rows[row.workload] = &row;
    }
    const auto cell = [](double v) {
        // integers print bare; rates keep their fraction
        return json_number(v);
    };
    for (const bench_row& base_row : base.rows) {
        const auto it = current_rows.find(base_row.workload);
        if (it == current_rows.end()) {
            out += "| " + base_row.workload + " | _row missing_ | | | |\n";
            continue;
        }
        const bench_row& now = *it->second;
        current_rows.erase(it);
        for (const bench_metric& bm : base_row.metrics) {
            if (bench_metric_policy(bm.name).direction ==
                metric_direction::info) {
                continue;
            }
            const bench_metric* cm = now.find(bm.name);
            if (cm == nullptr) {
                out += "| " + base_row.workload + " | " + bm.name +
                       " | " + cell(bm.value) + " | _missing_ | |\n";
                continue;
            }
            std::string delta;
            if (bm.value == cm->value) {
                delta = "=";
            } else if (bm.value == 0.0) {
                delta = "new";
            } else {
                const double pct =
                    (cm->value - bm.value) / bm.value * 100.0;
                // two decimals is plenty for a 10%-budget gate
                const double rounded = std::round(pct * 100.0) / 100.0;
                delta = (rounded > 0 ? "+" : "") + json_number(rounded) + "%";
            }
            out += "| " + base_row.workload + " | " + bm.name + " | " +
                   cell(bm.value) + " | " + cell(cm->value) + " | " + delta +
                   " |\n";
        }
    }
    for (const auto& [workload, row] : current_rows) {
        (void)row;
        out += "| " + workload + " | _new workload_ | | | |\n";
    }
    return out;
}

// ---------------------------------------------------------------------------
// corpus
// ---------------------------------------------------------------------------

std::vector<bench_corpus_file> bench_corpus_files() {
    std::vector<bench_corpus_file> files;
    {
        const scenario s = make_scenario(scenario_family::counter, 3, 256);
        files.push_back({"counter_x256_f.blif", write_blif_string(s.fixed)});
        files.push_back({"counter_x256_s.blif", write_blif_string(s.spec)});
    }
    {
        const scenario s = make_scenario(scenario_family::arbiter, 2, 16);
        files.push_back({"arbiter_x16_f.blif", write_blif_string(s.fixed)});
        files.push_back({"arbiter_x16_s.blif", write_blif_string(s.spec)});
    }
    files.push_back({"mix26.blif", write_blif_string(reach_circuit())});
    {
        const auto [f_kiss, s_kiss] = make_counter_kiss(9);
        files.push_back({"counter9_f.kiss", f_kiss});
        files.push_back({"counter9_s.kiss", s_kiss});
    }
    return files;
}

} // namespace leq
