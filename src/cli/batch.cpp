/// \file batch.cpp
/// \brief Thread-pool campaign execution over manifest jobs.

#include "cli/batch.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace leq {

namespace {

std::string resolve(const std::string& base_dir, const std::string& path) {
    if (base_dir.empty() || path.empty() || path.front() == '/') {
        return path;
    }
    return base_dir + "/" + path;
}

} // namespace

std::vector<batch_job> read_manifest(std::istream& in,
                                     const std::string& base_dir) {
    std::vector<batch_job> jobs;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) { line.erase(hash); }
        std::istringstream row(line);
        std::string f_path, s_path, name, extra;
        if (!(row >> f_path)) { continue; } // blank / comment-only line
        batch_job job;
        if (is_gen_spec(f_path)) {
            // one-token form: `gen:FAMILY[:SEED] [NAME]`
            row >> name;
            generated_pair pair = make_gen_pair(f_path);
            job.fixed = std::move(pair.fixed);
            job.spec = std::move(pair.spec);
            job.has_choice_inputs = true;
            job.choice_inputs = pair.num_choice_inputs;
            job.name = name.empty() ? f_path.substr(4) : name;
        } else {
            if (!(row >> s_path)) {
                throw std::runtime_error(
                    "manifest:" + std::to_string(line_no) +
                    ": expected 'F_PATH S_PATH [NAME]' or 'gen:SPEC [NAME]'");
            }
            row >> name;
            job.name = name.empty() ? default_job_name(f_path) : name;
            job.fixed = read_equation_source(resolve(base_dir, f_path));
            job.spec = read_equation_source(resolve(base_dir, s_path));
        }
        if (row >> extra) {
            throw std::runtime_error("manifest:" + std::to_string(line_no) +
                                     ": trailing token '" + extra + "'");
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<batch_job> read_manifest_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot open manifest '" + path + "'");
    }
    const std::size_t slash = path.find_last_of('/');
    const std::string base_dir =
        slash == std::string::npos ? std::string() : path.substr(0, slash);
    return read_manifest(in, base_dir);
}

batch_report run_batch(const std::vector<batch_job>& jobs,
                       const batch_options& options) {
    const auto start = std::chrono::steady_clock::now();
    batch_report report;
    report.records.resize(jobs.size());

    std::size_t workers = options.jobs;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0) { workers = 1; }
    }
    if (workers > jobs.size()) { workers = jobs.size() ? jobs.size() : 1; }

    // shared-nothing work claiming: each worker owns a job (and therefore
    // one BDD manager at a time) exclusively from claim to completion
    std::atomic<std::size_t> next{0};
    const auto worker_loop = [&]() {
        for (;;) {
            const std::size_t k = next.fetch_add(1);
            if (k >= jobs.size()) { return; }
            cli_config config = options.config;
            if (jobs[k].has_choice_inputs) {
                config.choice_inputs = jobs[k].choice_inputs;
            }
            report.records[k] =
                run_command(options.command, jobs[k].name, jobs[k].fixed,
                            jobs[k].spec, config);
        }
    };

    if (workers <= 1) {
        worker_loop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back(worker_loop);
        }
        for (std::thread& t : pool) { t.join(); }
    }

    for (const solve_record& record : report.records) {
        if (!record.completed) {
            ++report.errors;
        } else if (record.result.status != solve_status::ok) {
            ++report.gave_up;
        } else {
            if (record.result.empty_solution) {
                ++report.empty;
            } else {
                ++report.solved;
            }
            // a solved job can still fail its verify/diagnose check; the
            // campaign exit code must not mask that (`leq verify F S`
            // would exit 1 on the same pair)
            if (record.exit_code() != 0) { ++report.check_failures; }
        }
    }
    report.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    return report;
}

} // namespace leq
