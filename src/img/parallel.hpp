/// \file parallel.hpp
/// \brief The task-parallel image pool (`leq --solve-jobs N`).
///
/// `image_pool` is the one implementation of the relation layer's
/// `parallel_image_executor` seam: a fixed crew of persistent workers,
/// each owning a **replica** `bdd_manager` confined to its thread (the
/// one-manager-per-thread rule is never bent, only multiplied).  A
/// dispatch is fork/join:
///
///  1. The coordinator (the relation's owner thread) splits the frontier
///     into a fixed, worker-count-independent chunk list and blocks.
///  2. Every worker claims chunk indices off a shared atomic, copies each
///     chunk into its replica with `bdd_transfer` (the coordinator's
///     manager is quiescent — it is blocked in this very call), runs the
///     image over its replica relation (rebuilt once per relation from
///     the transferred clusters, cached by relation address), and parks.
///  3. The coordinator transfers the per-chunk results back **in chunk
///     index order** and the relation OR-merges them in that same order —
///     so the result function, the coordinator manager's node allocation
///     order, and every downstream counter are byte-identical for every
///     worker count.
///
/// Deadlines are honored cooperatively: workers inherit the relation's
/// absolute deadline (their replica schedules arm the op-level deadline,
/// so even one long and_exists is interrupted), the first blown worker
/// flags the job, the rest stop claiming, and the coordinator rethrows
/// `relation_deadline_exceeded` after the join.
///
/// All threading machinery lives behind the pimpl in parallel.cpp — the
/// only translation unit besides the batch pool sanctioned to use
/// concurrency primitives (`.leq_lint`).
#pragma once

#include "rel/relation.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace leq {

/// Work pool of replica-manager image workers.  Construct one per solve
/// (the solvers do this when `solve_options::img.solve_jobs > 0`), point
/// `image_options::executor` at it, and keep it alive until every
/// relation built with those options is gone — relation destructors call
/// back into `forget()`.
class image_pool final : public parallel_image_executor {
public:
    /// Spawn `workers` persistent worker threads (0 is promoted to 1 —
    /// even a single worker runs the full replica protocol, which is what
    /// keeps `--solve-jobs 1` byte-identical to every other N).
    explicit image_pool(std::size_t workers);
    ~image_pool() override;

    image_pool(const image_pool&) = delete;
    image_pool& operator=(const image_pool&) = delete;

    [[nodiscard]] std::vector<bdd>
    map_images(const transition_relation& relation,
               const std::vector<bdd>& chunks, bool preimage) override;
    void forget(const transition_relation& relation) override;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

} // namespace leq
