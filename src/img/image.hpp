/// \file image.hpp
/// \brief Partitioned image computation with early quantification.
///
/// The paper reformulates every language-equation operation as an image
/// computation over partitioned relations (Section 3.2) precisely so that a
/// decade of image-computation research applies.  This module implements the
/// core primitive: given relation parts {p_1(x, y), ..., p_n(x, y)} and a set
/// of variables to quantify, compute
///
///     Img(y) = exists x . p_1 & p_2 & ... & p_n & from(x)
///
/// folding the conjunctions one part at a time and quantifying each variable
/// as soon as the remaining parts no longer mention it (IWLS95-style
/// scheduling).  A naive mode (conjoin everything, then quantify) is kept for
/// the ablation benchmark.
#pragma once

#include "bdd/bdd.hpp"

#include <cstdint>
#include <vector>

namespace leq {

/// Reachability / image-application strategy (LTSmin-style pluggable
/// exploration orders; see `reachable_states` and `subset_driver`).
///
///  * bfs       each fixpoint step images the entire reached set
///              (the textbook R := R | Img(R) iteration)
///  * frontier  each step images only the states discovered in the previous
///              step (the seed's historical behavior, and the default: the
///              frontier is usually a much smaller BDD than the reached set)
///  * chaining  per-latch/per-cluster relations are applied strictly
///              sequentially within a step, in declaration order, instead of
///              the greedy IWLS95 ordering; the fixpoint loop itself is
///              frontier-based.  For conjunctively partitioned synchronous
///              relations this is the exact-image analogue of LTSmin's
///              chaining: successive and_exists applications chain each
///              partial product into the next relation part.
///
/// All three strategies compute the same fixpoint; they differ only in BDD
/// operation scheduling, which routinely changes runtime by integer factors.
enum class reach_strategy : std::uint8_t { bfs, frontier, chaining };

/// Strategy name for benchmark tables and diagnostics ("bfs", ...).
[[nodiscard]] const char* to_string(reach_strategy strategy);

/// All strategies, in a fixed order (benchmark/test sweeps).
inline constexpr reach_strategy all_reach_strategies[] = {
    reach_strategy::bfs, reach_strategy::frontier, reach_strategy::chaining};

struct image_options {
    /// Quantify variables at their last occurrence instead of at the end.
    bool early_quantification = true;
    /// Conjoin parts whose product stays below this node count (clustering);
    /// 0 disables clustering.
    std::size_t cluster_limit = 2500;
    /// Exploration/scheduling strategy for reachability fixpoints and the
    /// image engine's cluster order.
    reach_strategy strategy = reach_strategy::frontier;
};

/// Precomputed quantification schedule over a fixed set of relation parts.
/// Reusable across many image calls (the subset construction calls it once
/// per subset state).
class image_engine {
public:
    /// \param parts relation conjuncts
    /// \param quantify variables to existentially quantify (typically the
    ///        inputs i and current-state variables cs)
    image_engine(bdd_manager& mgr, std::vector<bdd> parts,
                 std::vector<std::uint32_t> quantify,
                 const image_options& options = {});

    /// Image of `from` (a function over a subset of the quantified and free
    /// variables) under the conjunction of all parts.
    [[nodiscard]] bdd image(const bdd& from) const;

    /// Number of clusters after scheduling (diagnostics).
    [[nodiscard]] std::size_t num_clusters() const { return clusters_.size(); }

private:
    void build_schedule(const image_options& options);

    bdd_manager* mgr_;
    std::vector<bdd> parts_;
    std::vector<std::uint32_t> quantify_;
    // schedule: ordered clusters with the cube to quantify after conjoining
    // each cluster
    std::vector<bdd> clusters_;
    std::vector<bdd> cubes_;   ///< per cluster; quantified right after it
    bdd leading_cube_;         ///< vars in no part: quantified from `from`
    bool early_ = true;
    bool sequential_ = false;  ///< chaining: keep declaration order
    bdd all_cube_;             ///< every quantified variable (naive mode)
};

/// Symbolic forward reachability over partitioned next-state functions.
///
/// \param next_state T_k(i, cs) per latch
/// \param cs_vars / ns_vars current/next state variable ids per latch
/// \param input_vars the variables quantified each step (inputs)
/// \param init initial-state set over cs_vars
/// \returns the set of reachable states over cs_vars
[[nodiscard]] bdd reachable_states(bdd_manager& mgr,
                                   const std::vector<bdd>& next_state,
                                   const std::vector<std::uint32_t>& cs_vars,
                                   const std::vector<std::uint32_t>& ns_vars,
                                   const std::vector<std::uint32_t>& input_vars,
                                   const bdd& init,
                                   const image_options& options = {});

/// Layered forward reachability: the same fixpoint, additionally reporting
/// the BFS structure (sequential depth and states first reached per layer).
struct reach_info {
    bdd reached;        ///< all reachable states over cs_vars
    std::size_t depth = 0; ///< number of images until the fixpoint
    std::vector<double> layer_states; ///< new states per layer (layer 0 = init)
    double total_states = 0;          ///< sat-count of `reached`
};
[[nodiscard]] reach_info
reachable_states_layered(bdd_manager& mgr, const std::vector<bdd>& next_state,
                         const std::vector<std::uint32_t>& cs_vars,
                         const std::vector<std::uint32_t>& ns_vars,
                         const std::vector<std::uint32_t>& input_vars,
                         const bdd& init, const image_options& options = {});

} // namespace leq
