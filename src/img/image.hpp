/// \file image.hpp
/// \brief Partitioned image computation with early quantification — a thin
/// wrapper over the shared transition-relation subsystem in `src/rel/`.
///
/// The paper reformulates every language-equation operation as an image
/// computation over partitioned relations (Section 3.2) precisely so that a
/// decade of image-computation research applies.  The machinery itself —
/// partition clustering (greedy/affinity policies), per-cluster
/// quantification schedules, image/preimage execution and statistics — lives
/// in `rel/relation.hpp` (`transition_relation`); this header keeps the
/// historical image-engine API and the reachability fixpoints on top of it:
///
///     Img(y) = exists x . p_1 & p_2 & ... & p_n & from(x)
///
/// folding the conjunctions one cluster at a time and quantifying each
/// variable as soon as the remaining clusters no longer mention it.  A naive
/// mode (conjoin everything, then quantify) is kept for the ablation
/// benchmark.  `image_options` / `reach_strategy` are defined by the
/// relation layer and re-exported here; see rel/relation.hpp for the full
/// option semantics (deadline behavior included) and the
/// one-manager-per-thread confinement rule, which applies to the engine
/// and the fixpoints below unchanged.
#pragma once

#include "rel/relation.hpp"

#include <cstdint>
#include <vector>

namespace leq {

/// Precomputed quantification schedule over a fixed set of relation parts.
/// Reusable across many image calls (the subset construction calls it once
/// per subset state).  Thin wrapper over `transition_relation`.
class image_engine {
public:
    /// \param parts relation conjuncts
    /// \param quantify variables to existentially quantify (typically the
    ///        inputs i and current-state variables cs)
    image_engine(bdd_manager& mgr, std::vector<bdd> parts,
                 std::vector<std::uint32_t> quantify,
                 const image_options& options = {})
        : relation_(mgr, std::move(parts), std::move(quantify), options) {}

    /// Image of `from` (a function over a subset of the quantified and free
    /// variables) under the conjunction of all parts.
    [[nodiscard]] bdd image(const bdd& from) const {
        return relation_.image(from);
    }

    /// Number of clusters after scheduling (diagnostics).
    [[nodiscard]] std::size_t num_clusters() const {
        return relation_.num_clusters();
    }

    /// The underlying relation (schedule inspection, statistics).
    [[nodiscard]] const transition_relation& relation() const {
        return relation_;
    }

private:
    transition_relation relation_;
};

/// Symbolic forward reachability over partitioned next-state functions.
///
/// Honors `options.deadline` (throws `relation_deadline_exceeded`).
///
/// \param next_state T_k(i, cs) per latch
/// \param cs_vars / ns_vars current/next state variable ids per latch
/// \param input_vars the variables quantified each step (inputs)
/// \param init initial-state set over cs_vars
/// \returns the set of reachable states over cs_vars
[[nodiscard]] bdd reachable_states(bdd_manager& mgr,
                                   const std::vector<bdd>& next_state,
                                   const std::vector<std::uint32_t>& cs_vars,
                                   const std::vector<std::uint32_t>& ns_vars,
                                   const std::vector<std::uint32_t>& input_vars,
                                   const bdd& init,
                                   const image_options& options = {});

/// Layered forward reachability: the same fixpoint, additionally reporting
/// the BFS structure (sequential depth and states first reached per layer).
/// Under `reach_strategy::saturation` no BFS structure exists, so the fields
/// report the saturation trace instead: `depth` counts fires (image
/// applications that discovered new states) and `layer_states` the per-fire
/// discoveries — `reached`/`total_states` are strategy-independent.
struct reach_info {
    bdd reached;        ///< all reachable states over cs_vars
    std::size_t depth = 0; ///< number of images until the fixpoint
    std::vector<double> layer_states; ///< new states per layer (layer 0 = init)
    double total_states = 0;          ///< sat-count of `reached`
};
[[nodiscard]] reach_info
reachable_states_layered(bdd_manager& mgr, const std::vector<bdd>& next_state,
                         const std::vector<std::uint32_t>& cs_vars,
                         const std::vector<std::uint32_t>& ns_vars,
                         const std::vector<std::uint32_t>& input_vars,
                         const bdd& init, const image_options& options = {});

/// The same layered fixpoint over a prebuilt structured relation, reusing
/// its clusters and schedules across sweeps instead of rebuilding them per
/// call.  `relation` must come from `transition_relation::next_state` with
/// `rename_image_to_current()` applied (images over cs variables) — throws
/// std::invalid_argument otherwise; `state_bits` sizes the sat-counts.
/// Strategy and deadline are read off the relation's options.
[[nodiscard]] reach_info
reachable_states_layered(const transition_relation& relation, const bdd& init,
                         std::uint32_t state_bits);

} // namespace leq
