/// \file parallel.cpp
/// \brief image_pool internals: the second sanctioned concurrency seam
/// (the first is the shared-nothing batch pool, src/cli/batch.cpp).
///
/// Confinement rules this file lives by (docs/ARCHITECTURE.md):
///  * a replica manager is only ever touched by the worker thread that
///    constructed it — including handle copies and destruction, which is
///    why workers clear their own result/relation caches at the start of
///    the *next* job (or at shutdown) rather than the coordinator doing it;
///  * the coordinator's manager is read by workers only while the
///    coordinator is blocked inside map_images (fork/join quiescence),
///    and only through `bdd_transfer`, never through raw handle reuse;
///  * coordinator-side mutations (result transfer, OR-merge) happen in
///    chunk index order, so the coordinator manager's state is identical
///    whatever the worker count or claim interleaving was.

#include "img/parallel.hpp"

#include "bdd/transfer.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace leq {

struct image_pool::impl {
    /// One fork/join dispatch.  `error`/`failed`: the first worker to hit
    /// an exception (a blown deadline, a node-limit overflow) records it
    /// and flips the flag; the others stop claiming and the coordinator
    /// rethrows after the join.
    struct job {
        const transition_relation* relation = nullptr;
        const std::vector<bdd>* chunks = nullptr;
        bool preimage = false;
        /// Coordinator manager's variable order (var id per level): the
        /// replica-compatibility stamp bdd_transfer requires.
        std::vector<std::uint32_t> order;
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::atomic<std::size_t> chunk_transfer_nodes{0};
        std::exception_ptr error; ///< guarded by impl::m
    };

    /// Per-source-relation replica state: the transferred clusters and
    /// the relations rebuilt over them (image / preimage quantify sets).
    /// Clustering is disabled on the rebuild (cluster_limit 0, early
    /// quantification on) so the replica conjoins exactly the clusters
    /// the source scheduled, not some re-merged variant.
    struct replica_relation {
        bool clusters_ready = false;
        std::vector<bdd> clusters;
        std::optional<transition_relation> image_rel;
        std::optional<transition_relation> preimage_rel;
    };

    /// Everything a worker thread owns.  Only that thread touches `mgr`,
    /// `rels` and the handles in `results`; the coordinator reads
    /// `results` strictly after the join barrier.
    struct worker_state {
        std::unique_ptr<bdd_manager> mgr;
        std::vector<std::uint32_t> order; ///< order `mgr` was built with
        std::map<const transition_relation*, replica_relation> rels;
        std::vector<std::pair<std::size_t, bdd>> results;
        std::size_t forgets_seen = 0; ///< consumed prefix of forget_log
    };

    std::mutex m;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    job* current = nullptr;       ///< guarded by m
    std::uint64_t generation = 0; ///< guarded by m; bumps per dispatch
    std::size_t done_count = 0;   ///< guarded by m
    bool stop = false;            ///< guarded by m
    /// Addresses of destroyed relations (relation dtor -> forget()).  Kept
    /// as a grow-only log with a per-worker consumed index, because each
    /// worker must erase its own replica entries on its own thread.
    std::vector<const transition_relation*> forget_log;
    std::vector<worker_state> states;
    std::vector<std::thread> threads;

    void worker_main(std::size_t id);
    void run_job(worker_state& s, job& j);
};

void image_pool::impl::worker_main(std::size_t id) {
    worker_state& s = states[id];
    std::uint64_t seen = 0;
    for (;;) {
        job* j = nullptr;
        {
            std::unique_lock<std::mutex> lk(m);
            work_cv.wait(lk, [&] { return stop || generation != seen; });
            if (generation != seen) {
                seen = generation;
                j = current;
            } else {
                // shutdown: every replica handle and the replica manager
                // must die on this thread, their owner
                s.rels.clear();
                s.results.clear();
                s.mgr.reset();
                return;
            }
        }
        run_job(s, *j);
        {
            std::lock_guard<std::mutex> lk(m);
            if (++done_count == states.size()) { done_cv.notify_all(); }
        }
    }
}

void image_pool::impl::run_job(worker_state& s, job& j) {
    // housekeeping first, on the owner thread: drop replica relations for
    // source relations that died (before the address lookup below, so a
    // reused address can never hit a stale replica), then the previous
    // job's result handles
    {
        std::lock_guard<std::mutex> lk(m);
        for (; s.forgets_seen < forget_log.size(); ++s.forgets_seen) {
            s.rels.erase(forget_log[s.forgets_seen]);
        }
    }
    s.results.clear();
    try {
        if (!s.mgr || s.order != j.order) {
            // the coordinator's variable universe changed: start over
            // (handles first, then the manager they point into)
            s.rels.clear();
            s.mgr = std::make_unique<bdd_manager>(
                static_cast<std::uint32_t>(j.order.size()));
            s.mgr->set_var_order(j.order);
            s.order = j.order;
        }
        bdd_manager& src = j.relation->manager();
        replica_relation& r = s.rels[j.relation];
        if (!r.clusters_ready) {
            r.clusters.reserve(j.relation->cluster_bdds().size());
            for (const bdd& c : j.relation->cluster_bdds()) {
                r.clusters.push_back(bdd_transfer(src, c, *s.mgr));
            }
            r.clusters_ready = true;
        }
        std::optional<transition_relation>& slot =
            j.preimage ? r.preimage_rel : r.image_rel;
        if (!slot) {
            image_options o = j.relation->options();
            o.executor = nullptr;
            o.solve_jobs = 0;
            o.early_quantification = true;
            o.policy = cluster_policy::none;
            o.cluster_limit = 0; // keep the transferred clusters verbatim
            o.collect_stats = false;
            o.fault_suppress_var = image_options::no_fault;
            slot.emplace(*s.mgr, r.clusters,
                         j.preimage ? j.relation->preimage_quantify()
                                    : j.relation->image_quantify(),
                         o);
        }
        // claim-and-image loop; `image()` on the generic replica relation
        // is exactly `exists quantify . AND clusters & chunk`, for both
        // the image and the preimage quantify set (the coordinator already
        // applied the cs/ns swap to preimage chunks)
        const transition_relation& rr = *slot;
        for (;;) {
            if (j.failed.load(std::memory_order_relaxed)) { break; }
            const std::size_t i =
                j.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= j.chunks->size()) { break; }
            std::size_t moved = 0;
            const bdd local = bdd_transfer(src, (*j.chunks)[i], *s.mgr,
                                           moved);
            j.chunk_transfer_nodes.fetch_add(moved,
                                             std::memory_order_relaxed);
            s.results.emplace_back(i, rr.image(local));
        }
    } catch (...) {
        std::lock_guard<std::mutex> lk(m);
        if (!j.error) { j.error = std::current_exception(); }
        j.failed.store(true);
    }
}

image_pool::image_pool(std::size_t workers)
    : impl_(std::make_unique<impl>()) {
    const std::size_t n = workers == 0 ? 1 : workers;
    impl_->states.resize(n);
    impl_->threads.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        impl_->threads.emplace_back(
            [this, k] { impl_->worker_main(k); });
    }
}

image_pool::~image_pool() {
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : impl_->threads) { t.join(); }
}

std::vector<bdd> image_pool::map_images(const transition_relation& relation,
                                        const std::vector<bdd>& chunks,
                                        bool preimage) {
    impl& p = *impl_;
    bdd_manager& mgr = relation.manager();
    impl::job j;
    j.relation = &relation;
    j.chunks = &chunks;
    j.preimage = preimage;
    j.order.reserve(mgr.num_vars());
    for (std::uint32_t lvl = 0; lvl < mgr.num_vars(); ++lvl) {
        j.order.push_back(mgr.var_at_level(lvl));
    }
    {
        std::lock_guard<std::mutex> lk(p.m);
        p.current = &j;
        p.done_count = 0;
        ++p.generation;
    }
    p.work_cv.notify_all();
    {
        std::unique_lock<std::mutex> lk(p.m);
        p.done_cv.wait(lk, [&] { return p.done_count == p.states.size(); });
        p.current = nullptr;
    }
    // workers are parked again: their managers are quiescent and their
    // results safely readable
    if (j.failed.load()) { std::rethrow_exception(j.error); }
    std::vector<std::pair<bdd_manager*, const bdd*>> sources(
        chunks.size(), {nullptr, nullptr});
    for (impl::worker_state& s : p.states) {
        for (const auto& [idx, handle] : s.results) {
            sources[idx] = {s.mgr.get(), &handle};
        }
    }
    // transfer back in chunk index order — NOT worker order — so the
    // coordinator manager allocates result nodes in the same order
    // whatever the claim interleaving was; this is what makes the
    // downstream cache/GC counters worker-count-independent
    std::vector<bdd> out;
    out.reserve(chunks.size());
    std::size_t result_nodes = 0;
    for (const auto& [replica, handle] : sources) {
        std::size_t moved = 0;
        out.push_back(bdd_transfer(*replica, *handle, mgr, moved));
        result_nodes += moved;
    }
    relation.record_transfer_nodes(j.chunk_transfer_nodes.load() +
                                   result_nodes);
    return out;
}

void image_pool::forget(const transition_relation& relation) {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->forget_log.push_back(&relation);
}

} // namespace leq
