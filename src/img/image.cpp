/// \file image.cpp
/// \brief Image engine: clustering, quantification scheduling, reachability.

#include "img/image.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

namespace leq {

const char* to_string(reach_strategy strategy) {
    switch (strategy) {
    case reach_strategy::bfs: return "bfs";
    case reach_strategy::frontier: return "frontier";
    case reach_strategy::chaining: return "chaining";
    }
    return "?";
}

image_engine::image_engine(bdd_manager& mgr, std::vector<bdd> parts,
                           std::vector<std::uint32_t> quantify,
                           const image_options& options)
    : mgr_(&mgr), parts_(std::move(parts)), quantify_(std::move(quantify)),
      leading_cube_(mgr.one()), early_(options.early_quantification),
      sequential_(options.strategy == reach_strategy::chaining),
      all_cube_(mgr.cube(quantify_)) {
    build_schedule(options);
}

void image_engine::build_schedule(const image_options& options) {
    if (!early_) {
        // naive/monolithic mode: one big conjunction, quantified at the end
        bdd product = mgr_->one();
        for (const bdd& p : parts_) { product &= p; }
        clusters_ = {product};
        cubes_ = {all_cube_};
        leading_cube_ = mgr_->one();
        return;
    }

    // cluster parts greedily up to the node limit
    std::vector<bdd> clustered;
    for (const bdd& p : parts_) {
        if (!clustered.empty() && options.cluster_limit > 0) {
            const bdd candidate = clustered.back() & p;
            if (mgr_->dag_size(candidate) <= options.cluster_limit) {
                clustered.back() = candidate;
                continue;
            }
        }
        clustered.push_back(p);
    }

    const std::unordered_set<std::uint32_t> qset(quantify_.begin(),
                                                 quantify_.end());
    // quantified support per cluster
    std::vector<std::vector<std::uint32_t>> qsupport(clustered.size());
    for (std::size_t k = 0; k < clustered.size(); ++k) {
        for (const std::uint32_t v : mgr_->support(clustered[k])) {
            if (qset.count(v) != 0) { qsupport[k].push_back(v); }
        }
    }

    std::vector<std::size_t> order;
    if (sequential_) {
        // chaining: apply the per-latch/per-cluster relations strictly in
        // declaration order, each partial product chained into the next part
        // (variables still retire at their last occurrence along the chain)
        order.resize(clustered.size());
        for (std::size_t k = 0; k < order.size(); ++k) { order[k] = k; }
    } else {
        // greedy order: at each step pick the cluster that retires the most
        // quantified variables (variables appearing in no other pending
        // cluster) net of the variables it newly activates
        std::vector<bool> used(clustered.size(), false);
        std::unordered_set<std::uint32_t> live;
        for (std::size_t round = 0; round < clustered.size(); ++round) {
            int best_score = std::numeric_limits<int>::min();
            std::size_t best = 0;
            for (std::size_t k = 0; k < clustered.size(); ++k) {
                if (used[k]) { continue; }
                int retired = 0, activated = 0;
                for (const std::uint32_t v : qsupport[k]) {
                    bool elsewhere = false;
                    for (std::size_t m = 0; m < clustered.size(); ++m) {
                        if (m == k || used[m]) { continue; }
                        if (std::find(qsupport[m].begin(), qsupport[m].end(),
                                      v) != qsupport[m].end()) {
                            elsewhere = true;
                            break;
                        }
                    }
                    if (!elsewhere) { ++retired; }
                    if (live.count(v) == 0) { ++activated; }
                }
                const int score = 2 * retired - activated;
                if (score > best_score) {
                    best_score = score;
                    best = k;
                }
            }
            used[best] = true;
            order.push_back(best);
            for (const std::uint32_t v : qsupport[best]) { live.insert(v); }
        }
    }

    // last occurrence of each quantified variable along the chosen order
    std::vector<std::vector<std::uint32_t>> retire_at(order.size());
    std::unordered_set<std::uint32_t> seen;
    for (std::size_t pos = order.size(); pos-- > 0;) {
        for (const std::uint32_t v : qsupport[order[pos]]) {
            if (seen.insert(v).second) { retire_at[pos].push_back(v); }
        }
    }
    // variables in no cluster at all: quantified straight out of `from`
    std::vector<std::uint32_t> leading;
    for (const std::uint32_t v : quantify_) {
        if (seen.count(v) == 0) { leading.push_back(v); }
    }
    leading_cube_ = mgr_->cube(leading);

    clusters_.clear();
    cubes_.clear();
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        clusters_.push_back(clustered[order[pos]]);
        cubes_.push_back(mgr_->cube(retire_at[pos]));
    }
}

bdd image_engine::image(const bdd& from) const {
    bdd acc = mgr_->exists(from, leading_cube_);
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
        acc = mgr_->and_exists(acc, clusters_[k], cubes_[k]);
    }
    return acc;
}

namespace {

/// Shared fixpoint core of `reachable_states` / `reachable_states_layered`.
/// `layered` additionally records the BFS structure (per-layer sat counts).
///
/// Whatever the engine's internal schedule (greedy vs chaining), the loop
/// differs only in what each step images:
///
///   bfs                 Img(reached)   — the whole reached set
///   frontier/chaining   Img(frontier)  — only the states new in the last step
///
/// Every newly found state is a successor of *some* already-reached state, so
/// both variants add exactly the BFS layer `Img(R_k) \ R_k` per step (a
/// successor of an older layer is already inside R_k) and agree on depth and
/// layer contents; they differ only in the size of the operand BDD.
reach_info reach_fixpoint(bdd_manager& mgr, const std::vector<bdd>& next_state,
                          const std::vector<std::uint32_t>& cs_vars,
                          const std::vector<std::uint32_t>& ns_vars,
                          const std::vector<std::uint32_t>& input_vars,
                          const bdd& init, const image_options& options,
                          bool layered) {
    assert(next_state.size() == cs_vars.size() &&
           cs_vars.size() == ns_vars.size());
    std::vector<bdd> parts;
    parts.reserve(next_state.size());
    for (std::size_t k = 0; k < next_state.size(); ++k) {
        parts.push_back(mgr.var(ns_vars[k]).iff(next_state[k]));
    }
    std::vector<std::uint32_t> quantify = input_vars;
    quantify.insert(quantify.end(), cs_vars.begin(), cs_vars.end());
    const image_engine engine(mgr, parts, quantify, options);

    // ns -> cs renaming
    std::vector<std::uint32_t> perm(mgr.num_vars());
    for (std::uint32_t v = 0; v < perm.size(); ++v) { perm[v] = v; }
    for (std::size_t k = 0; k < cs_vars.size(); ++k) {
        perm[ns_vars[k]] = cs_vars[k];
        perm[cs_vars[k]] = ns_vars[k];
    }

    const bool image_full_set = options.strategy == reach_strategy::bfs;
    const auto nbits = static_cast<std::uint32_t>(cs_vars.size());
    reach_info info;
    info.reached = init;
    if (layered) { info.layer_states.push_back(mgr.sat_count(init, nbits)); }
    bdd frontier = init;
    while (!frontier.is_zero()) {
        const bdd& from = image_full_set ? info.reached : frontier;
        const bdd img_cs = mgr.permute(engine.image(from), perm);
        frontier = img_cs & (!info.reached);
        info.reached |= frontier;
        if (layered && !frontier.is_zero()) {
            ++info.depth;
            info.layer_states.push_back(mgr.sat_count(frontier, nbits));
        }
    }
    if (layered) { info.total_states = mgr.sat_count(info.reached, nbits); }
    return info;
}

} // namespace

bdd reachable_states(bdd_manager& mgr, const std::vector<bdd>& next_state,
                     const std::vector<std::uint32_t>& cs_vars,
                     const std::vector<std::uint32_t>& ns_vars,
                     const std::vector<std::uint32_t>& input_vars,
                     const bdd& init, const image_options& options) {
    return reach_fixpoint(mgr, next_state, cs_vars, ns_vars, input_vars, init,
                          options, /*layered=*/false)
        .reached;
}

reach_info reachable_states_layered(bdd_manager& mgr,
                                    const std::vector<bdd>& next_state,
                                    const std::vector<std::uint32_t>& cs_vars,
                                    const std::vector<std::uint32_t>& ns_vars,
                                    const std::vector<std::uint32_t>& input_vars,
                                    const bdd& init,
                                    const image_options& options) {
    return reach_fixpoint(mgr, next_state, cs_vars, ns_vars, input_vars, init,
                          options, /*layered=*/true);
}

} // namespace leq
