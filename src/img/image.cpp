/// \file image.cpp
/// \brief Reachability fixpoints over the relation layer (the clustering and
/// scheduling machinery itself lives in src/rel/).

#include "img/image.hpp"

#include "img/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

namespace leq {

namespace {

/// The vector-based entry points own their relation, so they also own the
/// pool when the caller asked for parallel images but supplied no
/// executor (`solve_jobs > 0`, `executor == nullptr`).  Returns the pool
/// to keep alive (it must outlive the relation) and patches `options` to
/// point at it; no-op when the caller already wired an executor or asked
/// for the sequential path.
std::unique_ptr<image_pool> maybe_spawn_pool(image_options& options) {
    if (options.solve_jobs == 0 || options.executor != nullptr) {
        return nullptr;
    }
    auto pool = std::make_unique<image_pool>(options.solve_jobs);
    options.executor = pool.get();
    return pool;
}

/// Saturation fixpoint: Ciardo-style locality-driven exploration, adapted so
/// it stays exact for synchronous conjunctive relations.  Firing a cluster
/// alone (the classic asynchronous formulation) would change the fixpoint
/// here — all latches step together — so instead the loop exploits the other
/// saturation ingredient: Img distributes over union, so the frontier can be
/// carved into chunks that are imaged independently, in event-locality
/// order, with immediate feedback.  Chunks split at the clusters' top
/// variables (`quant_schedule::cluster_tops`); a LIFO worklist saturates the
/// chunk rooted deepest in the variable order — the states that only differ
/// in low-locality latches — to a local fixpoint before older pending work
/// higher up propagates.  Every image application is the exact image of a
/// subset of reached states and every fresh state is enqueued exactly once,
/// so the closure is the same set every other strategy computes; BFS
/// depth/layering is not defined, so under saturation `depth` counts fires
/// (image applications that discovered new states) and `layer_states` the
/// per-fire discoveries.
reach_info saturate_fixpoint(const transition_relation& relation,
                             const bdd& init, std::uint32_t nbits,
                             bool layered) {
    bdd_manager& mgr = relation.manager();
    const image_options& options = relation.options();
    // distinct event-locality anchors read off the schedule
    std::vector<std::uint32_t> anchors;
    for (const std::uint32_t v : relation.schedule().cluster_tops()) {
        if (v == quant_schedule::no_top) { continue; }
        if (std::find(anchors.begin(), anchors.end(), v) == anchors.end()) {
            anchors.push_back(v);
        }
    }
    // the root-most anchor a chunk's support reaches; no_top when the chunk
    // sits entirely outside the anchored levels (then it is not split)
    const auto split_var = [&](const bdd& set) {
        std::uint32_t best = quant_schedule::no_top;
        for (const std::uint32_t v : mgr.support(set)) {
            if (std::find(anchors.begin(), anchors.end(), v) ==
                anchors.end()) {
                continue;
            }
            if (best == quant_schedule::no_top ||
                mgr.level_of(v) < mgr.level_of(best)) {
                best = v;
            }
        }
        return best;
    };

    reach_info info;
    info.reached = init;
    if (layered) { info.layer_states.push_back(mgr.sat_count(init, nbits)); }
    std::vector<bdd> work{init};
    while (!work.empty()) {
        // the relation checks the deadline between chain steps; this bounds
        // the fires themselves (see reach_fixpoint)
        throw_if_past(options.deadline);
        const bdd from = work.back();
        work.pop_back();
        const bdd img_cs = relation.image(from);
        const bdd fresh = img_cs & (!info.reached);
        if (fresh.is_zero()) { continue; }
        relation.record_saturation_fire();
        info.reached |= fresh;
        if (layered) {
            ++info.depth;
            info.layer_states.push_back(mgr.sat_count(fresh, nbits));
        }
        const std::uint32_t v = split_var(fresh);
        if (v == quant_schedule::no_top) {
            work.push_back(fresh);
        } else {
            // saturate the v=0 chunk (pushed last, popped first) to a local
            // fixpoint before the v=1 chunk, and both before older work
            const bdd hi = fresh & mgr.literal(v, true);
            const bdd lo = fresh & mgr.literal(v, false);
            if (!hi.is_zero()) { work.push_back(hi); }
            if (!lo.is_zero()) { work.push_back(lo); }
        }
    }
    if (layered) { info.total_states = mgr.sat_count(info.reached, nbits); }
    return info;
}

/// Shared fixpoint core of `reachable_states` / `reachable_states_layered`.
/// `layered` additionally records the BFS structure (per-layer sat counts).
///
/// Whatever the relation's internal schedule (greedy vs chaining), the loop
/// differs only in what each step images:
///
///   bfs                 Img(reached)   — the whole reached set
///   frontier/chaining   Img(frontier)  — only the states new in the last step
///
/// Every newly found state is a successor of *some* already-reached state, so
/// both variants add exactly the BFS layer `Img(R_k) \ R_k` per step (a
/// successor of an older layer is already inside R_k) and agree on depth and
/// layer contents; they differ only in the size of the operand BDD.  The
/// saturation strategy delegates to `saturate_fixpoint` above: identical
/// closure, but locality-ordered chunk processing instead of global layers.
reach_info reach_fixpoint(const transition_relation& relation, const bdd& init,
                          std::uint32_t nbits, bool layered) {
    if (relation.options().strategy == reach_strategy::saturation) {
        return saturate_fixpoint(relation, init, nbits, layered);
    }
    bdd_manager& mgr = relation.manager();
    const image_options& options = relation.options();
    const bool image_full_set = options.strategy == reach_strategy::bfs;
    reach_info info;
    info.reached = init;
    if (layered) { info.layer_states.push_back(mgr.sat_count(init, nbits)); }
    bdd frontier = init;
    while (!frontier.is_zero()) {
        // the relation checks the deadline between chain steps; this check
        // bounds the fixpoint itself (many cheap images can outlast the
        // budget without any single chain step tripping)
        throw_if_past(options.deadline);
        const bdd& from = image_full_set ? info.reached : frontier;
        const bdd img_cs = relation.image(from);
        frontier = img_cs & (!info.reached);
        info.reached |= frontier;
        if (layered && !frontier.is_zero()) {
            ++info.depth;
            info.layer_states.push_back(mgr.sat_count(frontier, nbits));
        }
    }
    if (layered) { info.total_states = mgr.sat_count(info.reached, nbits); }
    return info;
}

/// Build the structured relation (images renamed back to cs) for the
/// vector-based entry points.
transition_relation
next_state_relation(bdd_manager& mgr, const std::vector<bdd>& next_state,
                    const std::vector<std::uint32_t>& cs_vars,
                    const std::vector<std::uint32_t>& ns_vars,
                    const std::vector<std::uint32_t>& input_vars,
                    const image_options& options) {
    assert(next_state.size() == cs_vars.size() &&
           cs_vars.size() == ns_vars.size());
    transition_relation relation = transition_relation::next_state(
        mgr, next_state, cs_vars, ns_vars, input_vars, options);
    relation.rename_image_to_current();
    return relation;
}

} // namespace

bdd reachable_states(bdd_manager& mgr, const std::vector<bdd>& next_state,
                     const std::vector<std::uint32_t>& cs_vars,
                     const std::vector<std::uint32_t>& ns_vars,
                     const std::vector<std::uint32_t>& input_vars,
                     const bdd& init, const image_options& options) {
    image_options local = options;
    const std::unique_ptr<image_pool> pool = maybe_spawn_pool(local);
    const transition_relation relation = next_state_relation(
        mgr, next_state, cs_vars, ns_vars, input_vars, local);
    return reach_fixpoint(relation, init,
                          static_cast<std::uint32_t>(cs_vars.size()),
                          /*layered=*/false)
        .reached;
}

reach_info reachable_states_layered(bdd_manager& mgr,
                                    const std::vector<bdd>& next_state,
                                    const std::vector<std::uint32_t>& cs_vars,
                                    const std::vector<std::uint32_t>& ns_vars,
                                    const std::vector<std::uint32_t>& input_vars,
                                    const bdd& init,
                                    const image_options& options) {
    image_options local = options;
    const std::unique_ptr<image_pool> pool = maybe_spawn_pool(local);
    const transition_relation relation = next_state_relation(
        mgr, next_state, cs_vars, ns_vars, input_vars, local);
    return reach_fixpoint(relation, init,
                          static_cast<std::uint32_t>(cs_vars.size()),
                          /*layered=*/true);
}

reach_info reachable_states_layered(const transition_relation& relation,
                                    const bdd& init,
                                    std::uint32_t state_bits) {
    if (!relation.has_preimage() || !relation.renames_result()) {
        // without the ns->cs renaming the fixpoint would compare images
        // over ns against a reached set over cs and silently diverge
        throw std::invalid_argument(
            "reachable_states_layered: relation must come from "
            "transition_relation::next_state with rename_image_to_current()");
    }
    return reach_fixpoint(relation, init, state_bits, /*layered=*/true);
}

} // namespace leq
