/// \file leq.hpp
/// \brief Umbrella header: the whole public API of the language-equation
/// library.
///
/// Typical flow:
///   1. obtain networks (read_blif_file / generators / your own builder)
///   2. split_latches / split_last_latches -> F and X_P
///   3. equation_problem(F, S) -> variable layout + partitioned functions
///   4. solve_partitioned (or solve_monolithic / solve_explicit) -> CSF
///   5. verify_particular_contained / verify_composition_contained
///   6. extract_fsm / select_small_subsolution / extract_moore_fsm ->
///      automaton_to_network -> compose_networks -> sweep_network ->
///      write_blif   (or just call resynthesize() for the whole loop)
#pragma once

#include "bdd/bdd.hpp"
#include "bdd/transfer.hpp"

#include "net/blif.hpp"
#include "net/compose.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"
#include "net/network.hpp"
#include "net/sweep.hpp"

#include "rel/cluster.hpp"
#include "rel/relation.hpp"
#include "rel/schedule.hpp"

#include "img/image.hpp"
#include "img/parallel.hpp"

#include "automata/automaton.hpp"
#include "automata/automaton_io.hpp"
#include "automata/encode.hpp"
#include "automata/kiss.hpp"
#include "automata/stg.hpp"

#include "eq/extract.hpp"
#include "eq/kiss_flow.hpp"
#include "eq/problem.hpp"
#include "eq/reduce.hpp"
#include "eq/resynth.hpp"
#include "eq/solver.hpp"
#include "eq/subsolution.hpp"
#include "eq/topology.hpp"
#include "eq/verify.hpp"
