/// \file deadline.hpp
/// \brief Relation-layer deadlines: an optional absolute time point checked
/// between chain steps, cluster merges and fixpoint iterations.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>

namespace leq {

/// Thrown by relation-layer operations (construction, image/preimage chains,
/// reachability fixpoints) when an `image_options::deadline` passes
/// mid-computation.  The solvers translate it into `solve_status::timeout`.
struct relation_deadline_exceeded : std::runtime_error {
    relation_deadline_exceeded()
        : std::runtime_error("relation layer: deadline exceeded") {}
};

/// Optional absolute deadline used across the relation layer.
using relation_deadline =
    std::optional<std::chrono::steady_clock::time_point>;

/// Throw once the deadline has passed (no-op when unset).
inline void throw_if_past(const relation_deadline& deadline) {
    if (deadline && std::chrono::steady_clock::now() > *deadline) {
        throw relation_deadline_exceeded{};
    }
}

} // namespace leq
