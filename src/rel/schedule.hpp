/// \file schedule.hpp
/// \brief Cost-driven quantification scheduling over a fixed cluster list.
///
/// Given clusters {c_1..c_n} and a set of variables Q to eliminate, a
/// `quant_schedule` fixes the order in which clusters are conjoined and
/// computes, per scheduled cluster, the exact set of quantified variables
/// that *die* there — variables appearing in no later cluster — so each
/// variable is existentially quantified at the earliest point soundness
/// allows (IWLS95-style early quantification):
///
///     apply(from) = exists Q . c_1 & ... & c_n & from
///
/// Two orders are supported: a cost-driven greedy order (each step picks the
/// cluster maximizing retired-minus-activated quantified variables) and the
/// sequential declaration order (the chaining strategy).  Variables in Q that
/// occur in no cluster at all are quantified straight out of `from` before
/// the chain starts.
#pragma once

#include "bdd/bdd.hpp"
#include "rel/deadline.hpp"

#include <cstdint>
#include <vector>

namespace leq {

/// Per-relation statistics.  The static fields (cluster sizes, quantified
/// variable counts) are filled at schedule construction; the counters and
/// `peak_intermediate` accumulate across image/preimage calls
/// (`peak_intermediate` only when the relation was built with
/// `collect_stats`, because measuring it costs a DAG traversal per step).
struct relation_stats {
    std::vector<std::size_t> cluster_sizes;          ///< per scheduled cluster
    std::vector<std::size_t> quantified_per_cluster; ///< vars dying per cluster
    std::size_t leading_quantified = 0; ///< vars in no cluster (from-only)
    std::size_t images = 0;             ///< image() calls served
    std::size_t preimages = 0;          ///< preimage() calls served
    std::size_t peak_intermediate = 0;  ///< max partial-product DAG size
    /// Saturation-strategy fires: image applications inside a saturation
    /// fixpoint that discovered at least one new state (counted by the
    /// fixpoint loop via `transition_relation::record_saturation_fire`).
    std::size_t saturation_fires = 0;
    /// Parallel-image bookkeeping (solve_jobs > 0 only; see
    /// parallel_image_executor in rel/relation.hpp).  `parallel_chunks` is
    /// the number of frontier chunks dispatched to the image pool;
    /// `transfer_nodes` the nonterminal nodes crossing managers for those
    /// dispatches (chunks out + results back).  Both are deterministic:
    /// the chunking is independent of the worker count.
    std::size_t parallel_chunks = 0;
    std::size_t transfer_nodes = 0;
};

/// An executable quantification schedule (order + per-cluster retire cubes).
class quant_schedule {
public:
    quant_schedule() = default;

    /// \param sequential keep the given cluster order (chaining) instead of
    ///        the greedy cost-driven order
    quant_schedule(bdd_manager& mgr, const std::vector<bdd>& clusters,
                   const std::vector<std::uint32_t>& quantify,
                   bool sequential);

    /// exists quantify . (AND clusters) & from.  Checks `deadline` before
    /// the leading quantification and between chain steps, *and* arms the
    /// manager's op-level deadline for the duration — so a single long
    /// and_exists run is interrupted from the inside instead of running to
    /// completion past the budget.  A bdd_deadline_exceeded thrown by the
    /// manager (including one from a manually armed set_op_deadline) is
    /// translated to relation_deadline_exceeded.  `stats` (optional)
    /// receives peak intermediate sizes.
    [[nodiscard]] bdd apply(const bdd& from, const relation_deadline& deadline,
                            relation_stats* stats) const {
        return apply(from, nullptr, deadline, stats);
    }

    /// Same, with one extra conjunct fused into the chain instead of being
    /// materialized as `from & *constraint` up front: it rides the leading
    /// quantification (or the first chain step) as a fused and-exists
    /// operand.  `constraint` may be null.
    [[nodiscard]] bdd apply(const bdd& from, const bdd* constraint,
                            const relation_deadline& deadline,
                            relation_stats* stats) const;

    [[nodiscard]] std::size_t num_clusters() const { return clusters_.size(); }
    /// Clusters in scheduled order.
    [[nodiscard]] const std::vector<bdd>& clusters() const { return clusters_; }
    /// Quantified variables dying at each scheduled cluster.
    [[nodiscard]] const std::vector<std::vector<std::uint32_t>>&
    retired() const {
        return retired_;
    }
    /// Quantified variables occurring in no cluster.
    [[nodiscard]] const std::vector<std::uint32_t>& leading() const {
        return leading_;
    }
    /// Event locality, per scheduled cluster: the root-most (lowest level)
    /// quantified variable in the cluster's support, `no_top` when the
    /// cluster has no quantified support.  A cluster only constrains states
    /// at or below its top, so these anchors mark the variable levels where
    /// distinct events live — the split points the saturation strategy uses
    /// to carve frontiers into locality chunks.
    static constexpr std::uint32_t no_top = 0xffffffffu;
    [[nodiscard]] const std::vector<std::uint32_t>& cluster_tops() const {
        return cluster_tops_;
    }

    /// Copy the static schedule shape into a stats block.
    void describe(bdd_manager& mgr, relation_stats& stats) const;

private:
    /// The chain itself (leading quantification + n-ary steps); apply()
    /// wraps it with the op-deadline guard and the exception translation.
    [[nodiscard]] bdd apply_steps(const bdd& from, const bdd* constraint,
                                  const relation_deadline& deadline,
                                  relation_stats* stats) const;

    bdd_manager* mgr_ = nullptr;
    std::vector<bdd> clusters_; ///< scheduled order
    std::vector<bdd> cubes_;    ///< per cluster: cube of `retired_[k]`
    std::vector<std::vector<std::uint32_t>> retired_;
    std::vector<std::uint32_t> cluster_tops_; ///< see cluster_tops()
    std::vector<std::uint32_t> leading_;
    bdd leading_cube_;
    /// Batches for the n-ary and-exists: `run_end_[k]` is one past the last
    /// cluster of the k-th chain step; a step spans consecutive clusters of
    /// which only the last retires variables (empty-retire clusters are fused
    /// into their successor instead of paying a full binary and_exists each).
    /// Sequential (chaining) schedules keep every cluster its own step — the
    /// strictly-binary chain is that strategy's defining behavior.
    std::vector<std::size_t> run_end_;
};

} // namespace leq
