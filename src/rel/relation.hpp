/// \file relation.hpp
/// \brief The shared transition-relation subsystem.
///
/// The paper's central move is running every language-equation step over
/// *partitioned* relations with early quantification.  `transition_relation`
/// makes that representation a first-class object: it owns the partition
/// parts, their variable-support metadata, the merged clusters (greedy or
/// affinity policy, see rel/cluster.hpp) and a per-cluster quantification
/// schedule (rel/schedule.hpp), and serves `image(from)` / `preimage(to)`
/// with per-call statistics.  Every relation consumer — the image engine,
/// both solver flows, verification and diagnosis — routes its conjunction
/// chains through this layer instead of hand-rolling and_exists loops.
///
/// Ownership and thread-safety: a `transition_relation` borrows the
/// manager passed at construction and holds BDD handles into it — the
/// manager must outlive the relation.  Like the manager itself, a relation
/// is confined to one thread: `image()`/`preimage()` mutate the manager's
/// computed cache and the relation's own statistics (and `preimage()`
/// builds its schedule lazily), so concurrent use requires one manager and
/// one relation per thread, shared-nothing (see eq/solver.hpp and the
/// `leq batch` campaign runner).
#pragma once

#include "rel/cluster.hpp"
#include "rel/schedule.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace leq {

/// Reachability / image-application strategy (LTSmin-style pluggable
/// exploration orders; see `reachable_states` and `subset_driver`).
///
///  * bfs       each fixpoint step images the entire reached set
///              (the textbook R := R | Img(R) iteration)
///  * frontier  each step images only the states discovered in the previous
///              step (the default: the frontier is usually a much smaller
///              BDD than the reached set)
///  * chaining  per-latch/per-cluster relations are applied strictly
///              sequentially within a step, in declaration order, instead of
///              the greedy cost-driven ordering; the fixpoint loop itself is
///              frontier-based.  For conjunctively partitioned synchronous
///              relations this is the exact-image analogue of LTSmin's
///              chaining: successive and_exists applications chain each
///              partial product into the next relation part.
///  * saturation  Ciardo-style locality-driven exploration (the shape of
///              LTSmin's pins2lts-sym saturation, adapted to synchronous
///              conjunctive relations).  The fixpoint keeps a LIFO worklist
///              of frontier *chunks* split at the clusters' event-locality
///              anchors (`quant_schedule::cluster_tops`): every image is
///              still the exact full-relation image of a subset of the
///              frontier, but newly discovered states feed back immediately
///              and the chunk rooted deepest in the variable order is
///              saturated to a local fixpoint before work propagates back
///              up.  Because Img distributes over union, the fixpoint is
///              identical; BFS depth/layering is not defined for it.
///
/// All strategies compute the same fixpoint; they differ only in BDD
/// operation scheduling, which routinely changes runtime by integer factors.
enum class reach_strategy : std::uint8_t { bfs, frontier, chaining,
                                           saturation };

/// Strategy name for benchmark tables and diagnostics ("bfs", ...).
[[nodiscard]] const char* to_string(reach_strategy strategy);

/// All strategies, in a fixed order (benchmark/test sweeps).
inline constexpr reach_strategy all_reach_strategies[] = {
    reach_strategy::bfs, reach_strategy::frontier, reach_strategy::chaining,
    reach_strategy::saturation};

class transition_relation;

/// The work-pool seam for task-parallel images.  The relation layer only
/// knows this abstract shape: given disjoint frontier chunks (handles in
/// the relation's own manager), compute the image (or preimage) of each
/// chunk and return the results *in chunk order* — handles in the
/// relation's manager again, however the executor produced them.  The one
/// implementation is `image_pool` (src/img/parallel.hpp), whose workers
/// own replica managers and move functions across with `bdd_transfer`;
/// keeping the interface here and the threads there preserves the layer
/// DAG (rel must not depend on img) and the `.leq_lint` concurrency
/// confinement.
///
/// Contract: `map_images` is called on the relation's owner thread and
/// must not return until every chunk is done (fork/join — the caller's
/// manager must be quiescent while workers read it).  On a blown deadline
/// it throws `relation_deadline_exceeded` after all workers have stopped.
/// `forget(relation)` drops any per-relation replica state; the relation's
/// destructor calls it, so executors keying caches on the relation's
/// address never see a stale pointer reused.
class parallel_image_executor {
public:
    virtual ~parallel_image_executor() = default;
    [[nodiscard]] virtual std::vector<bdd>
    map_images(const transition_relation& relation,
               const std::vector<bdd>& chunks, bool preimage) = 0;
    virtual void forget(const transition_relation& relation) = 0;
};

/// Options for the relation layer (and, unchanged in name, for the image
/// engine wrapping it — `solve_options::img` plumbs this through both solver
/// flows).
struct image_options {
    /// Quantify variables at their last occurrence instead of at the end.
    bool early_quantification = true;
    /// Merged-cluster node bound (see rel/cluster.hpp); 0 disables merging.
    std::size_t cluster_limit = 2500;
    /// How parts merge into clusters: greedy adjacent (the historical
    /// behavior) or affinity pairing by shared support variables.
    cluster_policy policy = cluster_policy::greedy;
    /// Exploration/scheduling strategy for reachability fixpoints and the
    /// relation layer's cluster order.
    reach_strategy strategy = reach_strategy::frontier;
    /// Optional absolute deadline.  Image/preimage chains, cluster merging
    /// at construction, and reachability fixpoints throw
    /// `relation_deadline_exceeded` once it passes; the solvers set it from
    /// `solve_options::time_limit_seconds` (translating the throw into
    /// `solve_status::timeout`) so a deep fixpoint can no longer blow past
    /// the solver timeout.  The check runs *between* BDD operations — a
    /// single huge conjunction can still overshoot the deadline by the
    /// length of that one operation.
    relation_deadline deadline;
    /// Also track `relation_stats::peak_intermediate` (costs one DAG
    /// traversal per chain step; off on the hot path by default).
    bool collect_stats = false;
    /// TEST-ONLY fault injection.  When set to a variable id, every
    /// image()/preimage() result is wrongly constrained to that variable
    /// being 0 (successors with the variable at 1 are silently dropped) —
    /// a controlled stand-in for an image-engine bug.  The differential
    /// fuzz harness's self-tests (src/gen/, tests/test_gen.cpp) use it to
    /// prove the cross-flow oracle catches such bugs and that the shrinker
    /// reduces them to minimal reproducers.  Never set on real workloads.
    static constexpr std::uint32_t no_fault = 0xffffffffu;
    std::uint32_t fault_suppress_var = no_fault;
    /// Task-parallel image workers (`leq --solve-jobs N`).  0 = the plain
    /// sequential path.  N >= 1 routes every image()/preimage() through
    /// `executor` (the solvers and the image engine create an `image_pool`
    /// and point this at it): the frontier is split into a fixed,
    /// N-independent set of chunks at the schedule's event-locality
    /// anchors, workers image disjoint chunks on replica managers, and the
    /// results are merged in chunk order — so the result (and every
    /// manager counter) is byte-identical for every N, including N == 1.
    std::size_t solve_jobs = 0;
    /// Borrowed, never owned: whoever sets it keeps it alive for the
    /// lifetime of every relation built with these options.
    parallel_image_executor* executor = nullptr;
};

/// A conjunctively partitioned relation with a quantification schedule.
///
/// The generic form represents  R(free) = exists Q . p_1 & ... & p_n  and
/// serves  image(from) = exists Q . p_1 & ... & p_n & from.  The structured
/// form (`next_state`) knows the cs/ns variable pairing of a next-state
/// relation and additionally serves  preimage(to) = exists inputs, ns .
/// p_1 & ... & p_n & to[cs -> ns],  returned over the cs variables.
class transition_relation {
public:
    /// Generic partitioned relation.
    /// \param parts relation conjuncts
    /// \param quantify variables to existentially quantify in image()
    transition_relation(bdd_manager& mgr, std::vector<bdd> parts,
                        std::vector<std::uint32_t> quantify,
                        const image_options& options = {});

    /// Structured next-state relation over per-latch functions: parts are
    /// `ns_k == next_fns_k(inputs, cs)`, image() quantifies inputs+cs (result
    /// over ns), preimage() quantifies inputs+ns (result over cs).
    [[nodiscard]] static transition_relation
    next_state(bdd_manager& mgr, const std::vector<bdd>& next_fns,
               const std::vector<std::uint32_t>& cs_vars,
               const std::vector<std::uint32_t>& ns_vars,
               const std::vector<std::uint32_t>& input_vars,
               const image_options& options = {});

    /// Image of `from` under the relation: exists Q . (AND parts) & from,
    /// renamed by `rename_result` when set.
    [[nodiscard]] bdd image(const bdd& from) const;

    /// Image of `from & constraint` with the constraint fused into the
    /// quantification chain (never materialized as a standalone product) —
    /// the form the verification walkers use for per-transition labels.
    [[nodiscard]] bdd image(const bdd& from, const bdd& constraint) const;

    /// Preimage of `to` (a set over the cs variables): the cs states with a
    /// successor in `to`.  Structured (next_state) relations only; the
    /// preimage schedule is built lazily on first use, so image-only callers
    /// (the reachability fixpoints) never pay for it.
    [[nodiscard]] bdd preimage(const bdd& to) const;
    [[nodiscard]] bool has_preimage() const { return structured_; }

    /// Install a variable renaming applied to every image() result (e.g. the
    /// ns->cs swap, so fixpoint loops need no separate permute step).
    void rename_result(std::vector<std::uint32_t> perm) {
        result_perm_ = std::move(perm);
    }
    /// Structured relations: rename image() results back to current-state
    /// variables using the stored cs/ns swap (what reachability fixpoints
    /// want).
    void rename_image_to_current() { result_perm_ = cs_ns_swap_; }
    /// Whether image() results are renamed (rename_result /
    /// rename_image_to_current was applied).
    [[nodiscard]] bool renames_result() const {
        return !result_perm_.empty();
    }

    [[nodiscard]] bdd_manager& manager() const { return *mgr_; }
    [[nodiscard]] std::size_t num_parts() const { return parts_.size(); }
    [[nodiscard]] std::size_t num_clusters() const {
        return image_schedule_.num_clusters();
    }
    /// The image-order schedule (clusters, retirement sets) for inspection.
    [[nodiscard]] const quant_schedule& schedule() const {
        return image_schedule_;
    }
    /// Accumulated per-call statistics (see relation_stats).
    [[nodiscard]] const relation_stats& stats() const { return stats_; }
    [[nodiscard]] const image_options& options() const { return options_; }
    /// Saturation bookkeeping: the saturation fixpoint reports every image
    /// application that discovered new states as one "fire"
    /// (`relation_stats::saturation_fires`); like image(), counting mutates
    /// only the per-call statistics.
    void record_saturation_fire() const { ++stats_.saturation_fires; }
    /// Parallel-image bookkeeping: the executor reports the nonterminal
    /// nodes it moved across managers for this relation's dispatches
    /// (chunks out + results back — replica setup is excluded, it depends
    /// on the worker count).
    void record_transfer_nodes(std::size_t n) const {
        stats_.transfer_nodes += n;
    }

    // ---- executor-facing surface (parallel_image_executor) ---------------
    /// The scheduled clusters (image order).  Workers rebuild a replica
    /// relation from these parts with clustering disabled, so the replica's
    /// schedule — and therefore its image results — matches this one's.
    [[nodiscard]] const std::vector<bdd>& cluster_bdds() const {
        return clusters_;
    }
    /// Variables image() quantifies (the ctor's `quantify`, verbatim).
    [[nodiscard]] const std::vector<std::uint32_t>& image_quantify() const {
        return img_quantify_;
    }
    /// Variables preimage() quantifies (structured relations: inputs + ns).
    [[nodiscard]] const std::vector<std::uint32_t>&
    preimage_quantify() const {
        return pre_quantify_;
    }
    /// The lazily built preimage schedule, forced now (structured only).
    [[nodiscard]] const quant_schedule& preimage_schedule() const;

    ~transition_relation();
    transition_relation(const transition_relation&) = default;
    transition_relation(transition_relation&&) = default;
    transition_relation& operator=(const transition_relation&) = default;
    transition_relation& operator=(transition_relation&&) = default;

private:
    transition_relation(bdd_manager& mgr, std::vector<bdd> parts,
                        std::vector<std::uint32_t> quantify,
                        const image_options& options,
                        const std::vector<std::uint32_t>& cs_vars,
                        const std::vector<std::uint32_t>& ns_vars,
                        const std::vector<std::uint32_t>& input_vars);
    void build(const std::vector<std::uint32_t>& quantify);
    /// Route one image/preimage application through the executor: split
    /// `set` into chunks at the relevant schedule's event-locality anchors,
    /// dispatch, OR-merge in chunk order.  Falls back to a plain
    /// `sched.apply` when the set does not split.  Fault injection and the
    /// result renaming stay with the caller.
    [[nodiscard]] bdd parallel_apply(const quant_schedule& sched,
                                     const bdd& set, bool preimage) const;

    bdd_manager* mgr_;
    std::vector<bdd> parts_;
    std::vector<bdd> clusters_;
    image_options options_;
    quant_schedule image_schedule_;
    bool structured_ = false; ///< built via next_state (cs/ns pairing known)
    /// Built lazily by preimage() over the same clusters (structured only).
    mutable std::optional<quant_schedule> preimage_schedule_;
    std::vector<std::uint32_t> img_quantify_; ///< the ctor's quantify set
    std::vector<std::uint32_t> pre_quantify_; ///< inputs + ns (structured)
    std::vector<std::uint32_t> cs_ns_swap_;   ///< structured only
    std::vector<std::uint32_t> result_perm_;  ///< empty = identity
    mutable relation_stats stats_;
    /// Fan-out floor probe backoff (parallel path only).  Probing every
    /// operand against the floor costs a DAG walk; on relations that never
    /// image anything large — the subset solvers issue tens of thousands
    /// of warm-cache per-state images — that walk dominates.  Failed
    /// probes double the interval to the next probe (capped), a crossing
    /// resets it, and skipped applications take the sequential chain.
    /// Both counters depend only on the operand sequence, never on the
    /// worker count, so dispatch decisions stay identical for every
    /// solve_jobs N.
    mutable std::size_t probe_countdown_ = 0;
    mutable std::size_t probe_interval_ = 1;
};

} // namespace leq
