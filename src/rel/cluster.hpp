/// \file cluster.hpp
/// \brief Partition clustering policies for the relation layer.
///
/// A transition relation arrives as a list of small conjuncts ("parts",
/// typically one `ns_k == T_k` per latch).  Conjoining some of them up front
/// — clustering — trades BDD size against the number of and-exists steps per
/// image.  The policies:
///
///  * none      keep the parts exactly as given (also what cluster_limit 0
///              means under any policy).
///  * greedy    adjacent merge: fold each part into the previous cluster
///              while the product stays below the node limit.  Cheap and
///              order-dependent; good when the declaration order already
///              groups related latches.
///  * affinity  IWLS95/Ranjan-style: repeatedly merge the *pair* of clusters
///              sharing the most support variables (ties: smallest merged
///              product), as long as the product stays below the node limit.
///              Clusters with disjoint support are never merged (no
///              quantification benefit, only a bigger BDD).  Groups parts by
///              variable locality, which is what lets the quantification
///              schedule retire variables early on machines whose latch
///              declaration order scatters coupled latches.
///
/// The node limit is an upper bound on every *merged* product; a single part
/// that is already larger than the limit is kept as its own cluster (parts
/// are never split).
#pragma once

#include "bdd/bdd.hpp"
#include "rel/deadline.hpp"

#include <cstdint>
#include <vector>

namespace leq {

enum class cluster_policy : std::uint8_t { none, greedy, affinity };

/// Policy name for benchmark tables and diagnostics ("none", ...).
[[nodiscard]] const char* to_string(cluster_policy policy);

/// All policies, in a fixed order (benchmark/test sweeps).
inline constexpr cluster_policy all_cluster_policies[] = {
    cluster_policy::none, cluster_policy::greedy, cluster_policy::affinity};

/// Merge `parts` into clusters under `policy`.  Every cluster formed by
/// merging two or more parts has dag_size <= cluster_limit; a limit of 0
/// disables merging entirely.  Checks `deadline` between merge products
/// (cluster construction is real BDD work; an armed solver timeout must be
/// able to interrupt it).
[[nodiscard]] std::vector<bdd>
cluster_parts(bdd_manager& mgr, const std::vector<bdd>& parts,
              cluster_policy policy, std::size_t cluster_limit,
              const relation_deadline& deadline = {});

} // namespace leq
