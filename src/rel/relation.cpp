/// \file relation.cpp
/// \brief transition_relation: clustering + schedule assembly, image and
/// preimage execution, statistics.

#include "rel/relation.hpp"

#include <algorithm>
#include <stdexcept>

namespace leq {

namespace {

/// Fixed chunk-count target for the parallel-image split.  A constant —
/// never derived from the worker count — so the chunk set, the merge
/// order, and every downstream counter are identical for all solve_jobs
/// values; workers simply claim more or fewer chunks each.
constexpr std::size_t parallel_chunk_target = 8;

/// Operand-size floor for fanning an image out to the pool.  Below it the
/// fixed dispatch cost (fork/join wakeups, chunk and result transfers,
/// replica cache misses) dwarfs the imaging work, so the operand takes the
/// sequential chain.  The subset solvers are the canonical case: tens of
/// thousands of per-knowledge-state images whose operands run a few
/// hundred to a couple thousand nodes but are each computed in under a
/// millisecond off a warm cache — dispatching those is pure overhead at
/// any worker count.  Only the reachability fixpoints' frontier/reached
/// operands (tens of thousands of nodes) amortize a dispatch.  A property
/// of the operand only, never of the worker count, so the dispatch
/// pattern is identical for every solve_jobs N.
constexpr std::size_t parallel_min_nodes = 8192;

/// Cap on the floor-probe backoff interval.  Small on purpose: a BFS
/// frontier wave can rise from a quarter of the floor to its peak and
/// collapse again within a handful of steps, and a probe interval that
/// kept doubling would sail right past it (a cap of 256 demonstrably
/// skipped a 17k-node peak).  At 4, the steady-state probe cost on a
/// subset solver's tens of thousands of sub-floor images is one bounded
/// walk per four images — noise — while any wave that stays above the
/// floor for at least four steps (the only kind wide enough to amortize a
/// dispatch) is caught within three images of crossing.
constexpr std::size_t probe_interval_max = 4;

/// Split `set` into disjoint nonzero chunks by cofactoring on the
/// schedule's event-locality anchors (root-most first), the same split
/// the saturation strategy applies to its frontiers.  Merged schedules
/// often expose only one or two distinct anchors — far short of the
/// target — so once the anchors run out the splitter keeps cofactoring
/// the largest remaining chunk at its own top variable.  Both phases
/// depend only on `set` and the schedule, never on the worker count, so
/// the chunk list is identical for every solve_jobs value.
std::vector<bdd> split_at_anchors(bdd_manager& mgr, const bdd& set,
                                  const quant_schedule& sched) {
    std::vector<std::uint32_t> anchors;
    for (const std::uint32_t top : sched.cluster_tops()) {
        if (top == quant_schedule::no_top) { continue; }
        if (std::find(anchors.begin(), anchors.end(), top) ==
            anchors.end()) {
            anchors.push_back(top);
        }
    }
    std::sort(anchors.begin(), anchors.end(),
              [&mgr](std::uint32_t a, std::uint32_t b) {
                  return mgr.level_of(a) < mgr.level_of(b);
              });
    std::vector<bdd> chunks{set};
    for (const std::uint32_t v : anchors) {
        if (chunks.size() >= parallel_chunk_target) { break; }
        std::vector<bdd> next;
        next.reserve(chunks.size() * 2);
        for (const bdd& chunk : chunks) {
            bdd hi = chunk & mgr.var(v);
            bdd lo = chunk & mgr.nvar(v);
            if (!hi.is_zero()) { next.push_back(std::move(hi)); }
            if (!lo.is_zero()) { next.push_back(std::move(lo)); }
        }
        chunks = std::move(next);
    }
    while (chunks.size() < parallel_chunk_target) {
        // largest DAG first (ties: earliest chunk) — dag_size is a
        // canonical-form property, so the pick is deterministic
        std::size_t pick = chunks.size();
        std::size_t pick_nodes = 0;
        for (std::size_t k = 0; k < chunks.size(); ++k) {
            if (chunks[k].is_const()) { continue; }
            const std::size_t nodes = mgr.dag_size(chunks[k]);
            if (nodes > pick_nodes) {
                pick = k;
                pick_nodes = nodes;
            }
        }
        // only constant chunks left: nothing worth splitting further
        if (pick == chunks.size() || pick_nodes <= 2) { break; }
        const bdd victim = chunks[pick];
        const std::uint32_t v = victim.top_var();
        bdd hi = victim & mgr.var(v);
        bdd lo = victim & mgr.nvar(v);
        // a root-variable cofactor of a reduced BDD is never zero, but a
        // complemented edge can still collapse one side to a constant
        chunks[pick] = std::move(hi);
        chunks.insert(chunks.begin() +
                          static_cast<std::ptrdiff_t>(pick) + 1,
                      std::move(lo));
    }
    return chunks;
}

} // namespace

const char* to_string(reach_strategy strategy) {
    switch (strategy) {
    case reach_strategy::bfs: return "bfs";
    case reach_strategy::frontier: return "frontier";
    case reach_strategy::chaining: return "chaining";
    case reach_strategy::saturation: return "saturation";
    }
    return "?";
}

transition_relation::transition_relation(bdd_manager& mgr,
                                         std::vector<bdd> parts,
                                         std::vector<std::uint32_t> quantify,
                                         const image_options& options)
    : mgr_(&mgr), parts_(std::move(parts)), options_(options) {
    build(quantify);
}

transition_relation::transition_relation(
    bdd_manager& mgr, std::vector<bdd> parts,
    std::vector<std::uint32_t> quantify, const image_options& options,
    const std::vector<std::uint32_t>& cs_vars,
    const std::vector<std::uint32_t>& ns_vars,
    const std::vector<std::uint32_t>& input_vars)
    : mgr_(&mgr), parts_(std::move(parts)), options_(options) {
    build(quantify);

    // preimage side: quantify inputs + ns over the same clusters.  Only the
    // quantify set is prepared here; the schedule itself is built lazily on
    // the first preimage() call, so image-only callers never pay for it.
    structured_ = true;
    pre_quantify_ = input_vars;
    pre_quantify_.insert(pre_quantify_.end(), ns_vars.begin(), ns_vars.end());

    cs_ns_swap_.resize(mgr.num_vars());
    for (std::uint32_t v = 0; v < cs_ns_swap_.size(); ++v) {
        cs_ns_swap_[v] = v;
    }
    for (std::size_t k = 0; k < cs_vars.size(); ++k) {
        cs_ns_swap_[ns_vars[k]] = cs_vars[k];
        cs_ns_swap_[cs_vars[k]] = ns_vars[k];
    }
}

transition_relation transition_relation::next_state(
    bdd_manager& mgr, const std::vector<bdd>& next_fns,
    const std::vector<std::uint32_t>& cs_vars,
    const std::vector<std::uint32_t>& ns_vars,
    const std::vector<std::uint32_t>& input_vars,
    const image_options& options) {
    if (next_fns.size() != cs_vars.size() ||
        cs_vars.size() != ns_vars.size()) {
        throw std::invalid_argument(
            "transition_relation::next_state: one cs/ns pair per function");
    }
    std::vector<bdd> parts;
    parts.reserve(next_fns.size());
    for (std::size_t k = 0; k < next_fns.size(); ++k) {
        parts.push_back(mgr.var(ns_vars[k]).iff(next_fns[k]));
    }
    std::vector<std::uint32_t> quantify = input_vars;
    quantify.insert(quantify.end(), cs_vars.begin(), cs_vars.end());
    return transition_relation(mgr, std::move(parts), std::move(quantify),
                               options, cs_vars, ns_vars, input_vars);
}

transition_relation::~transition_relation() {
    if (options_.executor != nullptr) {
        // drop any replica state keyed on this relation's address before
        // the address can be reused; executors make this non-throwing, the
        // guard is belt-and-braces for the dtor-noexcept contract
        try {
            options_.executor->forget(*this);
        } catch (...) {} // NOLINT(bugprone-empty-catch)
    }
}

void transition_relation::build(const std::vector<std::uint32_t>& quantify) {
    img_quantify_ = quantify;
    if (!options_.early_quantification) {
        // naive/monolithic mode (ablation baseline): one big conjunction,
        // every variable quantified at the end
        bdd product = mgr_->one();
        for (const bdd& p : parts_) {
            throw_if_past(options_.deadline);
            product &= p;
        }
        clusters_ = {product};
    } else {
        clusters_ = cluster_parts(*mgr_, parts_, options_.policy,
                                  options_.cluster_limit, options_.deadline);
    }
    image_schedule_ =
        quant_schedule(*mgr_, clusters_, quantify,
                       options_.strategy == reach_strategy::chaining);
    image_schedule_.describe(*mgr_, stats_);
}

bdd transition_relation::image(const bdd& from) const {
    ++stats_.images;
    bdd result =
        options_.executor != nullptr && options_.solve_jobs > 0
            ? parallel_apply(image_schedule_, from, false)
            : image_schedule_.apply(from, options_.deadline,
                                    options_.collect_stats ? &stats_
                                                           : nullptr);
    if (options_.fault_suppress_var != image_options::no_fault) {
        result &= mgr_->literal(options_.fault_suppress_var, false);
    }
    if (!result_perm_.empty()) {
        result = mgr_->permute(result, result_perm_);
    }
    return result;
}

bdd transition_relation::image(const bdd& from, const bdd& constraint) const {
    // Deliberately sequential even under an executor: the constrained form
    // serves the verification walkers' one-off per-transition queries, not
    // the fixpoint hot path, and fusing the constraint into per-chunk
    // dispatches would change the cache-visible operation mix.
    ++stats_.images;
    bdd result = image_schedule_.apply(
        from, &constraint, options_.deadline,
        options_.collect_stats ? &stats_ : nullptr);
    if (options_.fault_suppress_var != image_options::no_fault) {
        result &= mgr_->literal(options_.fault_suppress_var, false);
    }
    if (!result_perm_.empty()) {
        result = mgr_->permute(result, result_perm_);
    }
    return result;
}

const quant_schedule& transition_relation::preimage_schedule() const {
    if (!structured_) {
        throw std::logic_error(
            "transition_relation::preimage: relation has no cs/ns structure "
            "(build it with transition_relation::next_state)");
    }
    if (!preimage_schedule_) {
        preimage_schedule_.emplace(
            *mgr_, clusters_, pre_quantify_,
            options_.strategy == reach_strategy::chaining);
    }
    return *preimage_schedule_;
}

bdd transition_relation::preimage(const bdd& to) const {
    const quant_schedule& sched = preimage_schedule();
    ++stats_.preimages;
    bdd to_ns = mgr_->permute(to, cs_ns_swap_);
    if (options_.fault_suppress_var != image_options::no_fault) {
        // same injected bug as image(): successors with the variable at 1
        // silently vanish, so their predecessors drop out of the preimage
        to_ns &= mgr_->literal(options_.fault_suppress_var, false);
    }
    return options_.executor != nullptr && options_.solve_jobs > 0
               ? parallel_apply(sched, to_ns, true)
               : sched.apply(to_ns, options_.deadline,
                             options_.collect_stats ? &stats_ : nullptr);
}

bdd transition_relation::parallel_apply(const quant_schedule& sched,
                                        const bdd& set,
                                        bool preimage) const {
    if (probe_countdown_ > 0) {
        // backed off: recent operands all sat under the floor, skip even
        // the probe (see the member comment for the determinism argument)
        --probe_countdown_;
        return sched.apply(set, options_.deadline,
                           options_.collect_stats ? &stats_ : nullptr);
    }
    if (!mgr_->dag_size_at_least(set, parallel_min_nodes)) {
        probe_interval_ = std::min(probe_interval_ * 2, probe_interval_max);
        probe_countdown_ = probe_interval_ - 1;
        return sched.apply(set, options_.deadline,
                           options_.collect_stats ? &stats_ : nullptr);
    }
    probe_interval_ = 1;
    const std::vector<bdd> chunks = split_at_anchors(*mgr_, set, sched);
    if (chunks.size() <= 1) {
        // nothing to fan out (constant set, or no splittable structure):
        // run the plain sequential chain — same code path every N takes
        return sched.apply(set, options_.deadline,
                           options_.collect_stats ? &stats_ : nullptr);
    }
    stats_.parallel_chunks += chunks.size();
    const std::vector<bdd> images =
        options_.executor->map_images(*this, chunks, preimage);
    // fixed deterministic merge: OR in chunk order on the owner thread
    bdd result = mgr_->zero();
    for (const bdd& img : images) {
        throw_if_past(options_.deadline);
        result |= img;
    }
    return result;
}

} // namespace leq
