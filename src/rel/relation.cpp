/// \file relation.cpp
/// \brief transition_relation: clustering + schedule assembly, image and
/// preimage execution, statistics.

#include "rel/relation.hpp"

#include <stdexcept>

namespace leq {

const char* to_string(reach_strategy strategy) {
    switch (strategy) {
    case reach_strategy::bfs: return "bfs";
    case reach_strategy::frontier: return "frontier";
    case reach_strategy::chaining: return "chaining";
    case reach_strategy::saturation: return "saturation";
    }
    return "?";
}

transition_relation::transition_relation(bdd_manager& mgr,
                                         std::vector<bdd> parts,
                                         std::vector<std::uint32_t> quantify,
                                         const image_options& options)
    : mgr_(&mgr), parts_(std::move(parts)), options_(options) {
    build(quantify);
}

transition_relation::transition_relation(
    bdd_manager& mgr, std::vector<bdd> parts,
    std::vector<std::uint32_t> quantify, const image_options& options,
    const std::vector<std::uint32_t>& cs_vars,
    const std::vector<std::uint32_t>& ns_vars,
    const std::vector<std::uint32_t>& input_vars)
    : mgr_(&mgr), parts_(std::move(parts)), options_(options) {
    build(quantify);

    // preimage side: quantify inputs + ns over the same clusters.  Only the
    // quantify set is prepared here; the schedule itself is built lazily on
    // the first preimage() call, so image-only callers never pay for it.
    structured_ = true;
    pre_quantify_ = input_vars;
    pre_quantify_.insert(pre_quantify_.end(), ns_vars.begin(), ns_vars.end());

    cs_ns_swap_.resize(mgr.num_vars());
    for (std::uint32_t v = 0; v < cs_ns_swap_.size(); ++v) {
        cs_ns_swap_[v] = v;
    }
    for (std::size_t k = 0; k < cs_vars.size(); ++k) {
        cs_ns_swap_[ns_vars[k]] = cs_vars[k];
        cs_ns_swap_[cs_vars[k]] = ns_vars[k];
    }
}

transition_relation transition_relation::next_state(
    bdd_manager& mgr, const std::vector<bdd>& next_fns,
    const std::vector<std::uint32_t>& cs_vars,
    const std::vector<std::uint32_t>& ns_vars,
    const std::vector<std::uint32_t>& input_vars,
    const image_options& options) {
    if (next_fns.size() != cs_vars.size() ||
        cs_vars.size() != ns_vars.size()) {
        throw std::invalid_argument(
            "transition_relation::next_state: one cs/ns pair per function");
    }
    std::vector<bdd> parts;
    parts.reserve(next_fns.size());
    for (std::size_t k = 0; k < next_fns.size(); ++k) {
        parts.push_back(mgr.var(ns_vars[k]).iff(next_fns[k]));
    }
    std::vector<std::uint32_t> quantify = input_vars;
    quantify.insert(quantify.end(), cs_vars.begin(), cs_vars.end());
    return transition_relation(mgr, std::move(parts), std::move(quantify),
                               options, cs_vars, ns_vars, input_vars);
}

void transition_relation::build(const std::vector<std::uint32_t>& quantify) {
    if (!options_.early_quantification) {
        // naive/monolithic mode (ablation baseline): one big conjunction,
        // every variable quantified at the end
        bdd product = mgr_->one();
        for (const bdd& p : parts_) {
            throw_if_past(options_.deadline);
            product &= p;
        }
        clusters_ = {product};
    } else {
        clusters_ = cluster_parts(*mgr_, parts_, options_.policy,
                                  options_.cluster_limit, options_.deadline);
    }
    image_schedule_ =
        quant_schedule(*mgr_, clusters_, quantify,
                       options_.strategy == reach_strategy::chaining);
    image_schedule_.describe(*mgr_, stats_);
}

bdd transition_relation::image(const bdd& from) const {
    ++stats_.images;
    bdd result = image_schedule_.apply(
        from, options_.deadline, options_.collect_stats ? &stats_ : nullptr);
    if (options_.fault_suppress_var != image_options::no_fault) {
        result &= mgr_->literal(options_.fault_suppress_var, false);
    }
    if (!result_perm_.empty()) {
        result = mgr_->permute(result, result_perm_);
    }
    return result;
}

bdd transition_relation::image(const bdd& from, const bdd& constraint) const {
    ++stats_.images;
    bdd result = image_schedule_.apply(
        from, &constraint, options_.deadline,
        options_.collect_stats ? &stats_ : nullptr);
    if (options_.fault_suppress_var != image_options::no_fault) {
        result &= mgr_->literal(options_.fault_suppress_var, false);
    }
    if (!result_perm_.empty()) {
        result = mgr_->permute(result, result_perm_);
    }
    return result;
}

bdd transition_relation::preimage(const bdd& to) const {
    if (!structured_) {
        throw std::logic_error(
            "transition_relation::preimage: relation has no cs/ns structure "
            "(build it with transition_relation::next_state)");
    }
    if (!preimage_schedule_) {
        preimage_schedule_.emplace(
            *mgr_, clusters_, pre_quantify_,
            options_.strategy == reach_strategy::chaining);
    }
    ++stats_.preimages;
    bdd to_ns = mgr_->permute(to, cs_ns_swap_);
    if (options_.fault_suppress_var != image_options::no_fault) {
        // same injected bug as image(): successors with the variable at 1
        // silently vanish, so their predecessors drop out of the preimage
        to_ns &= mgr_->literal(options_.fault_suppress_var, false);
    }
    return preimage_schedule_->apply(
        to_ns, options_.deadline,
        options_.collect_stats ? &stats_ : nullptr);
}

} // namespace leq
