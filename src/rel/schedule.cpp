/// \file schedule.cpp
/// \brief Schedule construction (cost-driven greedy / sequential order,
/// exact per-cluster retirement sets) and execution.

#include "rel/schedule.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace leq {

quant_schedule::quant_schedule(bdd_manager& mgr,
                               const std::vector<bdd>& clusters,
                               const std::vector<std::uint32_t>& quantify,
                               bool sequential)
    : mgr_(&mgr), leading_cube_(mgr.one()) {
    const std::unordered_set<std::uint32_t> qset(quantify.begin(),
                                                 quantify.end());
    // quantified support per cluster
    std::vector<std::vector<std::uint32_t>> qsupport(clusters.size());
    for (std::size_t k = 0; k < clusters.size(); ++k) {
        for (const std::uint32_t v : mgr.support(clusters[k])) {
            if (qset.count(v) != 0) { qsupport[k].push_back(v); }
        }
    }

    std::vector<std::size_t> order;
    order.reserve(clusters.size());
    if (sequential) {
        // chaining: apply the clusters strictly in declaration order, each
        // partial product chained into the next (variables still retire at
        // their last occurrence along the chain)
        for (std::size_t k = 0; k < clusters.size(); ++k) {
            order.push_back(k);
        }
    } else {
        // cost-driven greedy order: at each step pick the cluster that
        // retires the most quantified variables (variables appearing in no
        // other pending cluster) net of the variables it newly activates
        std::vector<bool> used(clusters.size(), false);
        std::unordered_set<std::uint32_t> live;
        for (std::size_t round = 0; round < clusters.size(); ++round) {
            int best_score = std::numeric_limits<int>::min();
            std::size_t best = 0;
            for (std::size_t k = 0; k < clusters.size(); ++k) {
                if (used[k]) { continue; }
                int retired = 0, activated = 0;
                for (const std::uint32_t v : qsupport[k]) {
                    bool elsewhere = false;
                    for (std::size_t m = 0; m < clusters.size(); ++m) {
                        if (m == k || used[m]) { continue; }
                        if (std::find(qsupport[m].begin(), qsupport[m].end(),
                                      v) != qsupport[m].end()) {
                            elsewhere = true;
                            break;
                        }
                    }
                    if (!elsewhere) { ++retired; }
                    if (live.count(v) == 0) { ++activated; }
                }
                const int score = 2 * retired - activated;
                if (score > best_score) {
                    best_score = score;
                    best = k;
                }
            }
            used[best] = true;
            order.push_back(best);
            for (const std::uint32_t v : qsupport[best]) { live.insert(v); }
        }
    }

    // exact retirement: the last occurrence of each quantified variable along
    // the chosen order is where it dies (it appears in no later cluster)
    retired_.resize(order.size());
    std::unordered_set<std::uint32_t> seen;
    for (std::size_t pos = order.size(); pos-- > 0;) {
        for (const std::uint32_t v : qsupport[order[pos]]) {
            if (seen.insert(v).second) { retired_[pos].push_back(v); }
        }
    }
    // variables in no cluster at all: quantified straight out of `from`
    for (const std::uint32_t v : quantify) {
        if (seen.count(v) == 0) { leading_.push_back(v); }
    }
    leading_cube_ = mgr.cube(leading_);

    clusters_.reserve(order.size());
    cubes_.reserve(order.size());
    cluster_tops_.reserve(order.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        clusters_.push_back(clusters[order[pos]]);
        cubes_.push_back(mgr.cube(retired_[pos]));
        // event locality: the root-most quantified variable the cluster
        // reads (saturation splits frontiers at these levels)
        std::uint32_t top = no_top;
        for (const std::uint32_t v : qsupport[order[pos]]) {
            if (top == no_top || mgr.level_of(v) < mgr.level_of(top)) {
                top = v;
            }
        }
        cluster_tops_.push_back(top);
    }

    // chain steps: fuse every empty-retire cluster into its successor so the
    // step runs as one n-ary and-exists instead of a chain of binary ANDs.
    // Not under the sequential (chaining) order, whose defining property is
    // exactly that each partial product is chained into the next cluster one
    // binary step at a time.
    for (std::size_t pos = 0; pos < clusters_.size(); ++pos) {
        if (sequential || !retired_[pos].empty() ||
            pos + 1 == clusters_.size()) {
            run_end_.push_back(pos + 1);
        }
    }
}

namespace {

/// Scope guard arming the manager's *op-level* deadline for the duration
/// of one schedule application.  The between-steps throw_if_past checks
/// below catch a blown budget at chain-step granularity; this catches it
/// *inside* a single monolithic and_exists run (the manager probes the
/// clock every ~1024 computed-cache lookups).  When the relation carries
/// no deadline the guard is inert, leaving any manager deadline a caller
/// armed manually (set_op_deadline) in place.
class op_deadline_guard {
public:
    op_deadline_guard(bdd_manager& mgr, const relation_deadline& deadline)
        : mgr_(&mgr), armed_(deadline.has_value()) {
        if (armed_) { mgr_->set_op_deadline(*deadline); }
    }
    ~op_deadline_guard() {
        if (armed_) { mgr_->clear_op_deadline(); }
    }
    op_deadline_guard(const op_deadline_guard&) = delete;
    op_deadline_guard& operator=(const op_deadline_guard&) = delete;

private:
    bdd_manager* mgr_;
    bool armed_;
};

} // namespace

bdd quant_schedule::apply(const bdd& from, const bdd* constraint,
                          const relation_deadline& deadline,
                          relation_stats* stats) const {
    throw_if_past(deadline);
    const op_deadline_guard op_guard(*mgr_, deadline);
    // the translation is unconditional — a deadline the *manager* already
    // had armed (set_op_deadline without a relation deadline) surfaces to
    // relation consumers under the one exception type they handle
    try {
        return apply_steps(from, constraint, deadline, stats);
    } catch (const bdd_deadline_exceeded&) {
        throw relation_deadline_exceeded{};
    }
}

bdd quant_schedule::apply_steps(const bdd& from, const bdd* constraint,
                                const relation_deadline& deadline,
                                relation_stats* stats) const {
    // leading quantification; a pending extra conjunct is fused here when
    // the leading cube could touch it (leading variables appear in no
    // cluster, but may well appear in the constraint), or carried into the
    // first chain step otherwise — either way `from & constraint` is never
    // materialized on its own
    bdd acc;
    if (constraint != nullptr &&
        (run_end_.empty() || !leading_cube_.is_one())) {
        acc = mgr_->and_exists(from, *constraint, leading_cube_);
        constraint = nullptr;
    } else {
        acc = mgr_->exists(from, leading_cube_);
    }
    std::size_t begin = 0;
    for (const std::size_t end : run_end_) {
        throw_if_past(deadline);
        if (end - begin == 1 && constraint == nullptr) {
            acc = mgr_->and_exists(acc, clusters_[begin], cubes_[end - 1]);
        } else {
            std::vector<bdd> operands;
            operands.reserve(end - begin + 2);
            operands.push_back(acc);
            if (constraint != nullptr) {
                operands.push_back(*constraint);
                constraint = nullptr;
            }
            for (std::size_t k = begin; k < end; ++k) {
                operands.push_back(clusters_[k]);
            }
            acc = mgr_->and_exists(operands, cubes_[end - 1]);
        }
        if (stats != nullptr) {
            stats->peak_intermediate =
                std::max(stats->peak_intermediate, mgr_->dag_size(acc));
        }
        begin = end;
    }
    return acc;
}

void quant_schedule::describe(bdd_manager& mgr, relation_stats& stats) const {
    stats.cluster_sizes.clear();
    stats.quantified_per_cluster.clear();
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
        stats.cluster_sizes.push_back(mgr.dag_size(clusters_[k]));
        stats.quantified_per_cluster.push_back(retired_[k].size());
    }
    stats.leading_quantified = leading_.size();
}

} // namespace leq
