/// \file cluster.cpp
/// \brief Clustering policies: greedy adjacent merge and affinity pairing.

#include "rel/cluster.hpp"

#include <algorithm>
#include <limits>

namespace leq {

const char* to_string(cluster_policy policy) {
    switch (policy) {
    case cluster_policy::none: return "none";
    case cluster_policy::greedy: return "greedy";
    case cluster_policy::affinity: return "affinity";
    }
    return "?";
}

namespace {

/// Greedy adjacent merge (the historical image-engine behavior): each part
/// folds into the previous cluster while the product stays small enough.
std::vector<bdd> cluster_greedy(bdd_manager& mgr, const std::vector<bdd>& parts,
                                std::size_t limit,
                                const relation_deadline& deadline) {
    std::vector<bdd> clustered;
    for (const bdd& p : parts) {
        throw_if_past(deadline);
        if (!clustered.empty()) {
            const bdd candidate = clustered.back() & p;
            if (mgr.dag_size(candidate) <= limit) {
                clustered.back() = candidate;
                continue;
            }
        }
        clustered.push_back(p);
    }
    return clustered;
}

/// Affinity merge: repeatedly conjoin the pair of clusters sharing the most
/// support variables, among pairs whose product respects the limit.  Ties go
/// to the smallest merged product, so weakly coupled clusters do not balloon
/// while a better-matched pair is available.  O(n^3) pair scans with n =
/// #parts (tens), dominated by the BDD products anyway.
std::vector<bdd> cluster_affinity(bdd_manager& mgr,
                                  const std::vector<bdd>& parts,
                                  std::size_t limit,
                                  const relation_deadline& deadline) {
    std::vector<bdd> clusters = parts;
    std::vector<std::vector<std::uint32_t>> supports;
    supports.reserve(clusters.size());
    for (const bdd& c : clusters) { supports.push_back(mgr.support(c)); }

    const auto shared_vars = [&](std::size_t a, std::size_t b) {
        // supports are sorted (bdd_manager::support returns sorted ids)
        std::size_t count = 0, i = 0, j = 0;
        while (i < supports[a].size() && j < supports[b].size()) {
            if (supports[a][i] == supports[b][j]) {
                ++count;
                ++i;
                ++j;
            } else if (supports[a][i] < supports[b][j]) {
                ++i;
            } else {
                ++j;
            }
        }
        return count;
    };

    while (clusters.size() > 1) {
        // rank pairs by shared-variable count (cheap, no BDD work), then walk
        // the ranking and build products lazily: the first affinity level
        // with a fitting product wins, ties broken by smallest product
        struct pair_rank {
            std::size_t shared, a, b;
        };
        std::vector<pair_rank> ranking;
        for (std::size_t a = 0; a + 1 < clusters.size(); ++a) {
            for (std::size_t b = a + 1; b < clusters.size(); ++b) {
                ranking.push_back({shared_vars(a, b), a, b});
            }
        }
        std::sort(ranking.begin(), ranking.end(),
                  [](const pair_rank& x, const pair_rank& y) {
                      return x.shared > y.shared;
                  });

        std::size_t best_a = 0, best_b = 0;
        std::size_t best_size = std::numeric_limits<std::size_t>::max();
        bdd best_product;
        for (std::size_t k = 0; k < ranking.size(); ++k) {
            throw_if_past(deadline);
            if (ranking[k].shared == 0) {
                // clusters with disjoint support: merging buys no earlier
                // quantification, only a bigger BDD — leave them apart
                break;
            }
            if (best_product.valid() &&
                ranking[k].shared < ranking[0].shared) {
                break; // a product fit at a higher affinity level
            }
            if (!best_product.valid() && k > 0 &&
                ranking[k].shared < ranking[k - 1].shared) {
                // nothing fit at the previous level; the ties-only rule moves
                // with us: treat this level as the new top
                ranking[0].shared = ranking[k].shared;
            }
            const bdd product =
                clusters[ranking[k].a] & clusters[ranking[k].b];
            const std::size_t size = mgr.dag_size(product);
            if (size > limit || size >= best_size) { continue; }
            best_a = ranking[k].a;
            best_b = ranking[k].b;
            best_size = size;
            best_product = product;
        }
        if (!best_product.valid()) { break; } // no pair fits under the limit
        clusters[best_a] = best_product;
        supports[best_a] = mgr.support(best_product);
        clusters.erase(clusters.begin() +
                       static_cast<std::ptrdiff_t>(best_b));
        supports.erase(supports.begin() +
                       static_cast<std::ptrdiff_t>(best_b));
    }
    return clusters;
}

} // namespace

std::vector<bdd> cluster_parts(bdd_manager& mgr, const std::vector<bdd>& parts,
                               cluster_policy policy,
                               std::size_t cluster_limit,
                               const relation_deadline& deadline) {
    if (cluster_limit == 0 || policy == cluster_policy::none ||
        parts.size() < 2) {
        return parts;
    }
    switch (policy) {
    case cluster_policy::greedy:
        return cluster_greedy(mgr, parts, cluster_limit, deadline);
    case cluster_policy::affinity:
        return cluster_affinity(mgr, parts, cluster_limit, deadline);
    case cluster_policy::none: break;
    }
    return parts;
}

} // namespace leq
