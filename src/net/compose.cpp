/// \file compose.cpp
/// \brief Network composition.

#include "net/compose.hpp"

#include <stdexcept>
#include <unordered_set>

namespace leq {

namespace {

std::vector<std::string> cube_rows(const logic_node& node) {
    std::vector<std::string> rows;
    rows.reserve(node.cubes.size());
    for (const sop_cube& cube : node.cubes) {
        std::string row;
        for (const std::uint8_t lit : cube.literals) {
            row.push_back(lit == 2 ? '-' : static_cast<char>('0' + lit));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

network compose_networks(const network& fixed, const network& part,
                         const std::vector<std::string>& u_names,
                         const std::vector<std::string>& v_names) {
    if (part.num_inputs() != u_names.size() ||
        part.num_outputs() != v_names.size()) {
        throw std::invalid_argument("compose_networks: port count mismatch");
    }
    const std::size_t num_i = fixed.num_inputs() - v_names.size();
    const std::size_t num_o = fixed.num_outputs() - u_names.size();

    network net(fixed.name() + "_x_" + part.name());
    // external inputs: F's i ports only
    for (std::size_t k = 0; k < num_i; ++k) {
        net.add_input(fixed.signal_name(fixed.inputs()[k]));
    }
    for (std::size_t j = 0; j < num_o; ++j) {
        net.add_output(fixed.signal_name(fixed.outputs()[j]));
    }
    // F's latches and logic, names preserved
    for (const latch& l : fixed.latches()) {
        net.add_latch(fixed.signal_name(l.input), fixed.signal_name(l.output),
                      l.init);
    }
    for (const logic_node& node : fixed.nodes()) {
        std::vector<std::string> fanins;
        for (const std::uint32_t f : node.fanins) {
            fanins.push_back(fixed.signal_name(f));
        }
        net.add_node(fixed.signal_name(node.output), fanins, cube_rows(node),
                     node.complemented);
    }
    // X's latches and logic with a prefix to avoid collisions
    const std::string prefix = "xp__";
    const auto xname = [&](std::uint32_t sig) {
        return prefix + part.signal_name(sig);
    };
    for (const latch& l : part.latches()) {
        net.add_latch(xname(l.input), xname(l.output), l.init);
    }
    for (const logic_node& node : part.nodes()) {
        std::vector<std::string> fanins;
        for (const std::uint32_t f : node.fanins) {
            fanins.push_back(xname(f));
        }
        net.add_node(xname(node.output), fanins, cube_rows(node),
                     node.complemented);
    }
    // wiring: X input j reads F's u_j; F's v input reads X output j
    for (std::size_t j = 0; j < u_names.size(); ++j) {
        net.add_node(xname(part.inputs()[j]), {u_names[j]}, {"1"});
    }
    for (std::size_t j = 0; j < v_names.size(); ++j) {
        net.add_node(v_names[j], {xname(part.outputs()[j])}, {"1"});
    }
    net.validate(); // rejects combinational u -> v -> u cycles
    return net;
}

} // namespace leq
