/// \file blif.cpp
/// \brief BLIF parsing and serialization.

#include "net/blif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leq {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream ss(line);
    std::string token;
    while (ss >> token) { tokens.push_back(token); }
    return tokens;
}

} // namespace

network read_blif(std::istream& in) {
    network net;
    std::string raw;
    std::size_t line_no = 0;

    // pending .names state: fanins+output, then cube rows until next keyword
    std::vector<std::string> names_args;
    std::vector<std::string> on_cubes, off_cubes;
    bool in_names = false;

    const auto flush_names = [&]() {
        if (!in_names) { return; }
        const std::string output = names_args.back();
        std::vector<std::string> fanins(names_args.begin(),
                                        names_args.end() - 1);
        if (!on_cubes.empty() && !off_cubes.empty()) {
            throw std::runtime_error("blif: node '" + output +
                                     "' mixes on-set and off-set rows");
        }
        const bool complemented = !off_cubes.empty();
        net.add_node(output, fanins, complemented ? off_cubes : on_cubes,
                     complemented);
        names_args.clear();
        on_cubes.clear();
        off_cubes.clear();
        in_names = false;
    };

    const auto fail = [&](const std::string& message) {
        throw std::runtime_error("blif:" + std::to_string(line_no) + ": " +
                                 message);
    };

    bool saw_directive = false;
    std::string pending; // accumulates '\' continuations
    while (std::getline(in, raw)) {
        ++line_no;
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos) { raw.erase(hash); }
        // line continuation
        std::string line = pending + raw;
        pending.clear();
        if (!line.empty() && line.back() == '\\') {
            pending = line.substr(0, line.size() - 1) + " ";
            continue;
        }
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty()) { continue; }
        const std::string& head = tokens[0];
        if (head[0] == '.') {
            saw_directive = true;
            if (head == ".names") {
                flush_names();
                if (tokens.size() < 2) { fail(".names needs an output"); }
                names_args.assign(tokens.begin() + 1, tokens.end());
                in_names = true;
            } else if (head == ".model") {
                flush_names();
                if (tokens.size() >= 2) { net.set_name(tokens[1]); }
            } else if (head == ".inputs") {
                flush_names();
                for (std::size_t k = 1; k < tokens.size(); ++k) {
                    net.add_input(tokens[k]);
                }
            } else if (head == ".outputs") {
                flush_names();
                for (std::size_t k = 1; k < tokens.size(); ++k) {
                    net.add_output(tokens[k]);
                }
            } else if (head == ".latch") {
                flush_names();
                if (tokens.size() < 3) { fail(".latch needs input and output"); }
                // forms: .latch in out [init] | .latch in out type clock [init]
                bool init = false;
                const std::string& last = tokens.back();
                if (tokens.size() > 3) {
                    if (last == "1") {
                        init = true;
                    } else if (last == "2" || last == "3") {
                        init = false; // don't care / unknown: choose 0
                    }
                }
                net.add_latch(tokens[1], tokens[2], init);
            } else if (head == ".end") {
                flush_names();
                break;
            } else if (head == ".exdc" || head == ".wire_load_slope" ||
                       head == ".default_input_arrival") {
                flush_names(); // ignored extensions
            } else {
                fail("unsupported construct '" + head + "'");
            }
        } else {
            if (!in_names) { fail("cube row outside .names"); }
            if (tokens.size() == 1 && names_args.size() == 1) {
                // constant node: single output column
                if (tokens[0] == "1") {
                    on_cubes.push_back("");
                } else if (tokens[0] == "0") {
                    off_cubes.push_back("");
                } else {
                    fail("bad constant row");
                }
            } else {
                if (tokens.size() != 2) { fail("bad cube row"); }
                if (tokens[0].size() != names_args.size() - 1) {
                    fail("cube width mismatch");
                }
                for (const char ch : tokens[0]) {
                    if (ch != '0' && ch != '1' && ch != '-') {
                        fail("bad cube character");
                    }
                }
                if (tokens[1] == "1") {
                    on_cubes.push_back(tokens[0]);
                } else if (tokens[1] == "0") {
                    off_cubes.push_back(tokens[0]);
                } else {
                    fail("bad cube output value");
                }
            }
        }
    }
    flush_names();
    if (!saw_directive) {
        throw std::runtime_error("blif: no directives found (empty input?)");
    }
    net.validate();
    return net;
}

network read_blif_string(const std::string& text) {
    std::istringstream in(text);
    return read_blif(in);
}

network read_blif_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) { throw std::runtime_error("blif: cannot open '" + path + "'"); }
    return read_blif(in);
}

void write_blif(const network& net, std::ostream& out) {
    out << ".model " << net.name() << "\n.inputs";
    for (const std::uint32_t s : net.inputs()) {
        out << " " << net.signal_name(s);
    }
    out << "\n.outputs";
    for (const std::uint32_t s : net.outputs()) {
        out << " " << net.signal_name(s);
    }
    out << "\n";
    for (const latch& l : net.latches()) {
        out << ".latch " << net.signal_name(l.input) << " "
            << net.signal_name(l.output) << " " << (l.init ? 1 : 0) << "\n";
    }
    for (const logic_node& node : net.nodes()) {
        out << ".names";
        for (const std::uint32_t f : node.fanins) {
            out << " " << net.signal_name(f);
        }
        out << " " << net.signal_name(node.output) << "\n";
        const char value = node.complemented ? '0' : '1';
        for (const sop_cube& cube : node.cubes) {
            for (const std::uint8_t lit : cube.literals) {
                out << (lit == 2 ? '-' : static_cast<char>('0' + lit));
            }
            out << (cube.literals.empty() ? "" : " ") << value << "\n";
        }
        if (node.cubes.empty()) {
            // constant: non-complemented empty cover is 0 -> no row needed in
            // BLIF (a .names with no rows is constant 0); complemented is 1
            if (node.complemented) { out << "1\n"; }
        }
    }
    out << ".end\n";
}

std::string write_blif_string(const network& net) {
    std::ostringstream out;
    write_blif(net, out);
    return out.str();
}

} // namespace leq
