/// \file latch_split.cpp
/// \brief Latch splitting transformation.

#include "net/latch_split.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace leq {

namespace {

std::vector<std::string> cube_strings(const logic_node& node) {
    std::vector<std::string> rows;
    rows.reserve(node.cubes.size());
    for (const sop_cube& cube : node.cubes) {
        std::string row;
        row.reserve(cube.literals.size());
        for (const std::uint8_t lit : cube.literals) {
            row.push_back(lit == 2 ? '-' : static_cast<char>('0' + lit));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void copy_logic(const network& from, network& to) {
    for (const logic_node& node : from.nodes()) {
        std::vector<std::string> fanins;
        fanins.reserve(node.fanins.size());
        for (const std::uint32_t f : node.fanins) {
            fanins.push_back(from.signal_name(f));
        }
        to.add_node(from.signal_name(node.output), fanins, cube_strings(node),
                    node.complemented);
    }
}

} // namespace

split_result split_latches(const network& original,
                           const std::vector<std::size_t>& x_latches) {
    std::unordered_set<std::size_t> extracted(x_latches.begin(),
                                              x_latches.end());
    if (extracted.size() != x_latches.size()) {
        throw std::invalid_argument("split_latches: duplicate latch index");
    }
    for (const std::size_t k : x_latches) {
        if (k >= original.num_latches()) {
            throw std::invalid_argument("split_latches: latch index range");
        }
    }

    split_result result;
    result.fixed.set_name(original.name() + "_F");
    result.part.set_name(original.name() + "_Xp");

    // F: original inputs, then the v inputs (extracted current states)
    for (const std::uint32_t s : original.inputs()) {
        result.fixed.add_input(original.signal_name(s));
    }
    for (const std::size_t k : x_latches) {
        const latch& l = original.latches()[k];
        result.fixed.add_input(original.signal_name(l.output));
        result.v_names.push_back(original.signal_name(l.output));
    }
    // F: original outputs, then the u outputs (extracted next-state funcs)
    for (const std::uint32_t s : original.outputs()) {
        result.fixed.add_output(original.signal_name(s));
    }
    for (const std::size_t k : x_latches) {
        const latch& l = original.latches()[k];
        result.fixed.add_output(original.signal_name(l.input));
        result.u_names.push_back(original.signal_name(l.input));
    }
    // F keeps the remaining latches and all logic
    for (std::size_t k = 0; k < original.num_latches(); ++k) {
        if (extracted.count(k) != 0) { continue; }
        const latch& l = original.latches()[k];
        result.fixed.add_latch(original.signal_name(l.input),
                               original.signal_name(l.output), l.init);
    }
    copy_logic(original, result.fixed);
    result.fixed.validate();

    // X_P: just the extracted latches.  Ports use positional names (the
    // F-side signal names live in u_names/v_names and may collide with each
    // other, e.g. when one extracted latch feeds another); the problem
    // builder matches F's ports to X's ports by position.
    for (std::size_t j = 0; j < x_latches.size(); ++j) {
        result.part.add_input("u" + std::to_string(j));
    }
    for (std::size_t j = 0; j < x_latches.size(); ++j) {
        result.part.add_output("v" + std::to_string(j));
    }
    for (std::size_t j = 0; j < x_latches.size(); ++j) {
        const latch& l = original.latches()[x_latches[j]];
        result.part.add_latch("u" + std::to_string(j), "v" + std::to_string(j),
                              l.init);
    }
    result.part.validate();
    return result;
}

split_result split_last_latches(const network& original, std::size_t count) {
    if (count > original.num_latches()) {
        throw std::invalid_argument("split_last_latches: count too large");
    }
    std::vector<std::size_t> indices(count);
    const std::size_t first = original.num_latches() - count;
    for (std::size_t k = 0; k < count; ++k) { indices[k] = first + k; }
    return split_latches(original, indices);
}

} // namespace leq
