/// \file generator.cpp
/// \brief Synthetic circuit families for tests, examples and benchmarks.

#include "net/generator.hpp"

#include <random>
#include <stdexcept>

namespace leq {

namespace {

std::string sig(const std::string& base, std::size_t k) {
    return base + std::to_string(k);
}

} // namespace

network make_paper_example() {
    network net("paper_fig3");
    net.add_input("i");
    net.add_output("o");
    net.add_latch("ns1", "cs1", false);
    net.add_latch("ns2", "cs2", false);
    net.add_node("ns1", {"i", "cs2"}, {"11"});        // T1 = i & cs2
    net.add_node("ns2", {"i", "cs1"}, {"0-", "-1"});  // T2 = !i | cs1
    net.add_node("o", {"cs1", "cs2"}, {"11"});        // o = cs1 & cs2
    net.validate();
    return net;
}

network make_counter(std::size_t bits) {
    if (bits == 0) { throw std::invalid_argument("make_counter: bits == 0"); }
    network net("counter" + std::to_string(bits));
    net.add_input("en");
    net.add_input("clr");
    net.add_output("carry");
    for (std::size_t k = 0; k < bits; ++k) {
        net.add_latch(sig("n", k), sig("q", k), false);
    }
    // ripple carry: c0 = en, ck = c(k-1) & q(k-1)
    net.add_node("c0", {"en"}, {"1"});
    for (std::size_t k = 1; k < bits; ++k) {
        net.add_node(sig("c", k), {sig("c", k - 1), sig("q", k - 1)}, {"11"});
    }
    // nk = !clr & (qk ^ ck)
    for (std::size_t k = 0; k < bits; ++k) {
        net.add_node(sig("n", k), {"clr", sig("q", k), sig("c", k)},
                     {"010", "001"});
    }
    net.add_node("carry", {sig("c", bits - 1), sig("q", bits - 1)}, {"11"});
    net.validate();
    return net;
}

network make_lfsr(std::size_t bits, const std::vector<std::size_t>& taps) {
    if (bits == 0) { throw std::invalid_argument("make_lfsr: bits == 0"); }
    network net("lfsr" + std::to_string(bits));
    net.add_input("en");
    net.add_output("serial");
    for (std::size_t k = 0; k < bits; ++k) {
        net.add_latch(sig("n", k), sig("q", k), k == 0); // init 100..0
    }
    // feedback = xor of tapped bits, built as a chain of 2-input xors
    std::string fb = sig("q", bits - 1);
    std::size_t stage = 0;
    for (const std::size_t t : taps) {
        if (t >= bits) { throw std::invalid_argument("make_lfsr: tap range"); }
        const std::string next = sig("fb", stage++);
        net.add_node(next, {fb, sig("q", t)}, {"10", "01"});
        fb = next;
    }
    // shift when enabled, hold otherwise
    // n0 = en ? fb : q0 ; nk = en ? q(k-1) : qk
    net.add_node(sig("n", 0), {"en", fb, sig("q", 0)}, {"11-", "0-1"});
    for (std::size_t k = 1; k < bits; ++k) {
        net.add_node(sig("n", k), {"en", sig("q", k - 1), sig("q", k)},
                     {"11-", "0-1"});
    }
    net.add_node("serial", {sig("q", bits - 1)}, {"1"});
    net.validate();
    return net;
}

network make_shift_xor(std::size_t bits) {
    if (bits == 0) { throw std::invalid_argument("make_shift_xor: bits == 0"); }
    network net("shiftxor" + std::to_string(bits));
    net.add_input("din");
    net.add_output("parity");
    for (std::size_t k = 0; k < bits; ++k) {
        net.add_latch(sig("n", k), sig("q", k), false);
    }
    // serial in xor the last bit
    net.add_node(sig("n", 0), {"din", sig("q", bits - 1)}, {"10", "01"});
    for (std::size_t k = 1; k < bits; ++k) {
        net.add_node(sig("n", k), {sig("q", k - 1)}, {"1"});
    }
    // parity chain
    std::string par = sig("q", 0);
    for (std::size_t k = 1; k < bits; ++k) {
        const std::string next = sig("p", k);
        net.add_node(next, {par, sig("q", k)}, {"10", "01"});
        par = next;
    }
    net.add_node("parity", {par}, {"1"});
    net.validate();
    return net;
}

network make_traffic_controller() {
    // Moore machine with 5 states (3 latches): highway green / highway
    // yellow / all red / farm green / farm yellow.  Inputs: car sensor on the
    // farm road, timer expiry.  Outputs: hw_green, hw_yellow, fm_green,
    // fm_yellow.
    network net("traffic");
    net.add_input("car");
    net.add_input("timer");
    net.add_output("hw_green");
    net.add_output("hw_yellow");
    net.add_output("fm_green");
    net.add_output("fm_yellow");
    for (std::size_t k = 0; k < 3; ++k) {
        net.add_latch(sig("n", k), sig("s", k), false);
    }
    // state codes (s2 s1 s0): HG=000, HY=001, AR=010, FG=011, FY=100.
    // cycle: HG -car&timer-> HY -timer-> AR -> FG -(!car|timer)-> FY
    //        -timer-> HG; unused codes recover to HG.
    const std::vector<std::string> fi{"s2", "s1", "s0", "car", "timer"};
    net.add_node("n2", fi,
                 {"0110-",   // FG & !car        -> FY
                  "011-1",   // FG & timer       -> FY
                  "100-0"}); // FY & !timer stays FY
    net.add_node("n1", fi,
                 {"001-1",   // HY & timer       -> AR
                  "010--",   // AR               -> FG
                  "01110"}); // FG & car & !timer stays FG
    net.add_node("n0", fi,
                 {"00011",   // HG & car & timer -> HY
                  "001-0",   // HY & !timer stays HY
                  "010--",   // AR               -> FG
                  "01110"}); // FG & car & !timer stays FG
    net.add_node("hw_green", {"s2", "s1", "s0"}, {"000"});
    net.add_node("hw_yellow", {"s2", "s1", "s0"}, {"001"});
    net.add_node("fm_green", {"s2", "s1", "s0"}, {"011"});
    net.add_node("fm_yellow", {"s2", "s1", "s0"}, {"100"});
    net.validate();
    return net;
}

network make_random_sequential(const random_spec& spec) {
    if (spec.num_latches == 0 && spec.num_inputs == 0) {
        throw std::invalid_argument("make_random_sequential: empty interface");
    }
    std::mt19937 rng(spec.seed);
    network net("rnd_i" + std::to_string(spec.num_inputs) + "_o" +
                std::to_string(spec.num_outputs) + "_l" +
                std::to_string(spec.num_latches) + "_s" +
                std::to_string(spec.seed));
    std::vector<std::string> sources;
    for (std::size_t k = 0; k < spec.num_inputs; ++k) {
        const std::string name = sig("x", k);
        net.add_input(name);
        sources.push_back(name);
    }
    for (std::size_t k = 0; k < spec.num_latches; ++k) {
        const std::string name = sig("q", k);
        net.add_latch(sig("n", k), name, (spec.seed >> (k % 8) & 1) != 0);
        sources.push_back(name);
    }
    const auto pick = [&](std::size_t exclude_under) {
        std::uniform_int_distribution<std::size_t> d(exclude_under,
                                                     sources.size() - 1);
        return sources[d(rng)];
    };
    const std::size_t min_fanin = 2;
    const auto make_function = [&](const std::string& output,
                                   const std::string& bias_in) {
        std::uniform_int_distribution<std::size_t> fd(
            min_fanin, std::max(min_fanin, spec.max_fanin));
        std::size_t nf = fd(rng);
        std::vector<std::string> fanins;
        if (!bias_in.empty()) { fanins.push_back(bias_in); }
        while (fanins.size() < nf) {
            const std::string c = pick(0);
            bool dup = false;
            for (const auto& f : fanins) { dup |= (f == c); }
            if (!dup) { fanins.push_back(c); }
            if (fanins.size() >= sources.size()) { break; }
        }
        // function shape: XOR of first two fanins OR'd with a random cube of
        // the rest; keeps images non-trivial without blowing up
        std::vector<std::string> cubes;
        std::string cube_a(fanins.size(), '-');
        std::string cube_b(fanins.size(), '-');
        cube_a[0] = '1'; cube_a[1] = '0';
        cube_b[0] = '0'; cube_b[1] = '1';
        cubes.push_back(cube_a);
        cubes.push_back(cube_b);
        if (fanins.size() > 2) {
            std::string extra(fanins.size(), '-');
            for (std::size_t k = 2; k < fanins.size(); ++k) {
                extra[k] = (rng() & 1) ? '1' : '0';
            }
            cubes.push_back(extra);
        }
        net.add_node(output, fanins, cubes);
    };
    for (std::size_t k = 0; k < spec.num_latches; ++k) {
        // bias each latch function to read its own state: keeps the machine
        // from collapsing to a shallow pipeline
        make_function(sig("n", k), sig("q", k));
    }
    for (std::size_t k = 0; k < spec.num_outputs; ++k) {
        const std::string name = sig("y", k);
        net.add_output(name);
        make_function(name, "");
    }
    net.validate();
    return net;
}

network make_structured_mix(const structured_spec& spec) {
    if (spec.num_latches == 0 || spec.num_inputs == 0 ||
        spec.num_outputs == 0) {
        throw std::invalid_argument("make_structured_mix: empty interface");
    }
    std::mt19937 rng(spec.seed);
    network net("mix_i" + std::to_string(spec.num_inputs) + "_o" +
                std::to_string(spec.num_outputs) + "_l" +
                std::to_string(spec.num_latches) + "_s" +
                std::to_string(spec.seed));
    std::vector<std::string> ins;
    for (std::size_t k = 0; k < spec.num_inputs; ++k) {
        ins.push_back(sig("x", k));
        net.add_input(ins.back());
    }
    const auto input = [&](std::size_t k) { return ins[k % ins.size()]; };

    // carve latches into blocks of 3..5
    std::vector<std::size_t> blocks;
    std::size_t left = spec.num_latches;
    while (left > 0) {
        const std::size_t take = std::min<std::size_t>(left, 3 + rng() % 3);
        blocks.push_back(take);
        left -= take;
    }

    std::size_t latch = 0;   // global latch counter (names q<k>/n<k>)
    std::string bridge;      // previous block's carry/tail signal
    std::size_t bridge_no = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const std::size_t width = blocks[b];
        const std::size_t base = latch;
        for (std::size_t k = 0; k < width; ++k) {
            net.add_latch(sig("n", base + k), sig("q", base + k),
                          (spec.seed >> ((base + k) % 8) & 1) != 0);
        }
        // enable: an input gated by the previous block's bridge; in chained
        // mode later blocks run purely off the bridge
        std::string enable = input(b);
        if (!bridge.empty()) {
            if (spec.chained_enables) {
                enable = bridge;
            } else {
                const std::string gated = "en" + std::to_string(b);
                net.add_node(gated, {enable, bridge},
                             {"1-", "-1"}); // en | bridge
                enable = gated;
            }
        }
        const int kind = static_cast<int>(b % 3);
        if (kind == 0) {
            // counter block: ripple carry, bridge = carry out
            std::string carry = enable;
            for (std::size_t k = 0; k < width; ++k) {
                const std::string q = sig("q", base + k);
                // n = q ^ carry
                net.add_node(sig("n", base + k), {q, carry}, {"10", "01"});
                if (k + 1 < width) {
                    const std::string c = "c" + std::to_string(base + k);
                    net.add_node(c, {carry, q}, {"11"});
                    carry = c;
                }
            }
            bridge = "bb" + std::to_string(bridge_no++);
            net.add_node(bridge, {carry, sig("q", base + width - 1)}, {"11"});
        } else if (kind == 1) {
            // shift block: head = input ^ bridge-ish, bridge = tail
            const std::string head_a = input(b + 1);
            net.add_node(sig("n", base),
                         {enable, head_a, sig("q", base)},
                         {"11-", "0-1"}); // shift in when enabled, else hold
            for (std::size_t k = 1; k < width; ++k) {
                net.add_node(sig("n", base + k),
                             {enable, sig("q", base + k - 1), sig("q", base + k)},
                             {"11-", "0-1"});
            }
            bridge = sig("q", base + width - 1);
        } else {
            // LFSR block: feedback = tail ^ tap, gated by enable
            const std::string fb = "fb" + std::to_string(bridge_no++);
            const std::size_t tap = base + rng() % width;
            net.add_node(fb, {sig("q", base + width - 1), sig("q", tap)},
                         {"10", "01"});
            net.add_node(sig("n", base), {enable, fb, sig("q", base)},
                         {"11-", "0-1"});
            for (std::size_t k = 1; k < width; ++k) {
                net.add_node(sig("n", base + k),
                             {enable, sig("q", base + k - 1), sig("q", base + k)},
                             {"11-", "0-1"});
            }
            bridge = fb;
        }
        latch += width;
    }

    if (spec.full_observation) {
        // output j = XOR of latches j, j+no, j+2no, ... (covers every latch)
        for (std::size_t j = 0; j < spec.num_outputs; ++j) {
            const std::string y = sig("y", j);
            net.add_output(y);
            std::string acc;
            std::size_t stage = 0;
            for (std::size_t q = j; q < spec.num_latches;
                 q += spec.num_outputs) {
                if (acc.empty()) {
                    acc = sig("q", q);
                } else {
                    const std::string next =
                        "yx" + std::to_string(j) + "_" + std::to_string(stage++);
                    net.add_node(next, {acc, sig("q", q)}, {"10", "01"});
                    acc = next;
                }
            }
            net.add_node(y, {acc}, {"1"});
        }
    } else {
        // outputs: cross-block pair mixes (xor of two state bits, optionally
        // and-ed with an input)
        for (std::size_t j = 0; j < spec.num_outputs; ++j) {
            const std::string y = sig("y", j);
            net.add_output(y);
            const std::string qa = sig("q", rng() % spec.num_latches);
            std::string qb = sig("q", rng() % spec.num_latches);
            if (qb == qa) { qb = input(j); }
            if (j % 2 == 0) {
                net.add_node(y, {qa, qb}, {"10", "01"}); // xor
            } else {
                net.add_node(y, {qa, qb, input(j)}, {"11-", "--1"});
            }
        }
    }
    net.validate();
    return net;
}

network make_paired_mix(const structured_spec& a, const structured_spec& b) {
    const network na = make_structured_mix(a);
    const network nb = make_structured_mix(b);
    const std::size_t ni = std::max(a.num_inputs, b.num_inputs);
    const std::size_t no = std::max(a.num_outputs, b.num_outputs);
    network net("pair_l" + std::to_string(a.num_latches + b.num_latches) +
                "_s" + std::to_string(a.seed) + "_" + std::to_string(b.seed));
    for (std::size_t k = 0; k < ni; ++k) { net.add_input(sig("x", k)); }
    for (std::size_t j = 0; j < no; ++j) { net.add_output(sig("y", j)); }

    // instantiate one half with a prefix; its inputs alias the shared x's
    const auto instantiate = [&](const network& half,
                                 const std::string& prefix) {
        for (std::size_t k = 0; k < half.num_inputs(); ++k) {
            net.add_node(prefix + half.signal_name(half.inputs()[k]),
                         {sig("x", k)}, {"1"});
        }
        for (const latch& l : half.latches()) {
            net.add_latch(prefix + half.signal_name(l.input),
                          prefix + half.signal_name(l.output), l.init);
        }
        for (const logic_node& node : half.nodes()) {
            std::vector<std::string> fanins;
            for (const std::uint32_t f : node.fanins) {
                fanins.push_back(prefix + half.signal_name(f));
            }
            std::vector<std::string> rows;
            for (const sop_cube& cube : node.cubes) {
                std::string row;
                for (const std::uint8_t lit : cube.literals) {
                    row.push_back(lit == 2 ? '-'
                                           : static_cast<char>('0' + lit));
                }
                rows.push_back(std::move(row));
            }
            net.add_node(prefix + half.signal_name(node.output), fanins, rows,
                         node.complemented);
        }
    };
    instantiate(na, "a_");
    instantiate(nb, "b_");

    // outputs: XOR of the two halves' outputs (wrap indices as needed)
    for (std::size_t j = 0; j < no; ++j) {
        const std::string ya =
            "a_" + na.signal_name(na.outputs()[j % na.num_outputs()]);
        const std::string yb =
            "b_" + nb.signal_name(nb.outputs()[j % nb.num_outputs()]);
        net.add_node(sig("y", j), {ya, yb}, {"10", "01"});
    }
    net.validate();
    return net;
}

std::vector<table1_instance> make_table1_suite() {
    std::vector<table1_instance> suite;
    const auto add = [&](const std::string& name, std::size_t ni,
                         std::size_t no, std::size_t nl, std::size_t fcs,
                         std::size_t xcs, std::uint32_t seed) {
        structured_spec spec;
        spec.num_inputs = ni;
        spec.num_outputs = no;
        spec.num_latches = nl;
        spec.seed = seed;
        network circuit = make_structured_mix(spec);
        circuit.set_name(name);
        suite.push_back({name, std::move(circuit), fcs, xcs});
    };
    // paper Table 1 interface dimensions: name, i, o, cs, Fcs, Xcs.
    // Seeds were calibrated so the CSF sizes land in the paper's regime
    // (tens of states for s510 up to ~10^4..10^5 for s444/s526); the two
    // largest rows pair independent mixes (flexibility multiplies across
    // independent sub-machines).
    add("s510", 19, 7, 6, 3, 3, 510);
    add("s208", 10, 1, 8, 4, 4, 208);
    add("s298", 3, 6, 14, 7, 7, 14);
    add("s349", 9, 11, 15, 5, 10, 349);
    const auto add_pair = [&](const std::string& name, std::uint32_t seed_a,
                              std::uint32_t seed_b, std::size_t fcs,
                              std::size_t xcs) {
        structured_spec a, b;
        a.num_inputs = b.num_inputs = 3;
        a.num_outputs = b.num_outputs = 6;
        a.num_latches = 11;
        b.num_latches = 10;
        a.seed = seed_a;
        b.seed = seed_b;
        a.chained_enables = b.chained_enables = true;
        network circuit = make_paired_mix(a, b);
        circuit.set_name(name);
        suite.push_back({name, std::move(circuit), fcs, xcs});
    };
    add_pair("s444", 6, 1, 5, 16);
    add_pair("s526", 4, 1, 5, 16);
    return suite;
}

} // namespace leq
