/// \file generator.hpp
/// \brief Synthetic sequential-circuit generators.
///
/// The paper's experiments use MCNC/ISCAS89 circuits (s208...s526) which are
/// not bundled in this offline build.  These generators produce circuits
/// with the same interface dimensions (PI/PO/latch counts, Table 1) from
/// structured families — counters, LFSRs, shift registers with feedback,
/// Moore controllers and seeded random logic — so the benchmark harness
/// exercises the identical code paths.  See DESIGN.md for the substitution
/// note.
#pragma once

#include "net/network.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace leq {

/// The worked example of the paper (Figure 3): input i, output o, latches
/// cs1, cs2 with T1 = i & cs2, T2 = !i | cs1, o = cs1 & cs2, initial state 00.
[[nodiscard]] network make_paper_example();

/// n-bit binary counter with enable and synchronous clear; output = carry.
[[nodiscard]] network make_counter(std::size_t bits);

/// n-bit Fibonacci LFSR; `taps` are bit positions XORed into the feedback.
/// Output = bit 0.  A one-hot init would be all-zero lock; init is 1000..0.
[[nodiscard]] network make_lfsr(std::size_t bits,
                                const std::vector<std::size_t>& taps);

/// Shift register with XOR'd serial input and a parity output.
[[nodiscard]] network make_shift_xor(std::size_t bits);

/// Classic two-road traffic-light Moore controller (3 latches, sensor and
/// timer inputs, 4 outputs) — a realistic control-dominated workload.
[[nodiscard]] network make_traffic_controller();

/// Seeded random sequential logic with the given interface; every latch
/// next-state and output is a small SOP/XOR mix over a few signals.
struct random_spec {
    std::size_t num_inputs = 2;
    std::size_t num_outputs = 2;
    std::size_t num_latches = 4;
    std::uint32_t seed = 1;
    /// max fanins per generated function (>= 2)
    std::size_t max_fanin = 4;
};
[[nodiscard]] network make_random_sequential(const random_spec& spec);

/// Structured mix: latches organized into counter / shift / LFSR blocks with
/// weak bridge coupling (each block's carry/tail gates the next block), the
/// transition structure real ISCAS89 controllers exhibit — low per-state
/// fanout and compact BDDs — unlike uniformly random logic whose CSF
/// explodes.  Outputs are small cross-block mixes.
struct structured_spec {
    std::size_t num_inputs = 3;
    std::size_t num_outputs = 6;
    std::size_t num_latches = 12;
    std::uint32_t seed = 1;
    /// When set, the outputs jointly observe every latch (output j is the
    /// XOR of latches j, j+no, j+2no, ...).  High observability bounds the
    /// flexibility classes, keeping the CSF of large instances enumerable —
    /// the regime of the paper's biggest benchmarks.
    bool full_observation = false;
    /// When set, only the first block is enabled by a primary input; later
    /// blocks tick off the previous block's carry/tail.  Less hidden-input
    /// entropy per cycle keeps the subset construction's knowledge states
    /// bounded on the deep (20+ latch) instances.
    bool chained_enables = false;
};
[[nodiscard]] network make_structured_mix(const structured_spec& spec);

/// Two independent structured mixes sharing the primary inputs, with the
/// observable outputs XORing the two halves.  The flexibility classes of a
/// latch cut multiply across independent sub-machines, so pairing two
/// instances with small CSFs produces the 10^4..10^5-state CSFs of the
/// paper's largest benchmarks while staying enumerable.
[[nodiscard]] network make_paired_mix(const structured_spec& a,
                                      const structured_spec& b);

/// One Table-1 instance: the circuit plus the latch-split sizes.
struct table1_instance {
    std::string name;           ///< paper's benchmark name (s510, ...)
    network circuit;            ///< synthetic stand-in, same i/o/cs counts
    std::size_t f_latches = 0;  ///< latches kept in F
    std::size_t x_latches = 0;  ///< latches extracted into X
};

/// All six rows of Table 1 with matching interface dimensions.
[[nodiscard]] std::vector<table1_instance> make_table1_suite();

} // namespace leq
