/// \file blif.hpp
/// \brief BLIF reader/writer for sequential networks.
///
/// Supports the subset used by the MCNC/ISCAS89 benchmark suite: .model,
/// .inputs, .outputs, .names (SOP covers), .latch (with optional init
/// value), .end, '\' line continuation and '#' comments.
#pragma once

#include "net/network.hpp"

#include <iosfwd>
#include <string>

namespace leq {

/// Parse a BLIF description.  Throws std::runtime_error with a line number
/// on malformed input.
[[nodiscard]] network read_blif(std::istream& in);
[[nodiscard]] network read_blif_string(const std::string& text);
[[nodiscard]] network read_blif_file(const std::string& path);

/// Serialize a network to BLIF.
void write_blif(const network& net, std::ostream& out);
[[nodiscard]] std::string write_blif_string(const network& net);

} // namespace leq
