/// \file netbdd.cpp
/// \brief Topological BDD sweep over a network.

#include "net/netbdd.hpp"

#include <stdexcept>
#include <unordered_map>

namespace leq {

net_bdds build_net_bdds(bdd_manager& mgr, const network& net,
                        const std::vector<std::uint32_t>& input_vars,
                        const std::vector<std::uint32_t>& state_vars) {
    if (input_vars.size() != net.num_inputs() ||
        state_vars.size() != net.num_latches()) {
        throw std::invalid_argument("build_net_bdds: variable map size");
    }
    std::unordered_map<std::uint32_t, bdd> value; // signal id -> function
    for (std::size_t k = 0; k < net.inputs().size(); ++k) {
        value.emplace(net.inputs()[k], mgr.var(input_vars[k]));
    }
    for (std::size_t k = 0; k < net.latches().size(); ++k) {
        value.emplace(net.latches()[k].output, mgr.var(state_vars[k]));
    }

    // index nodes by output signal for the sweep
    std::unordered_map<std::uint32_t, const logic_node*> driver;
    for (const logic_node& node : net.nodes()) {
        driver.emplace(node.output, &node);
    }

    for (const std::uint32_t sig : net.topo_order()) {
        if (value.count(sig) != 0) { continue; }
        const auto it = driver.find(sig);
        if (it == driver.end()) {
            throw std::runtime_error("build_net_bdds: undriven signal '" +
                                     net.signal_name(sig) + "'");
        }
        const logic_node& node = *it->second;
        bdd f = mgr.zero();
        for (const sop_cube& cube : node.cubes) {
            bdd term = mgr.one();
            for (std::size_t k = 0; k < node.fanins.size(); ++k) {
                const std::uint8_t lit = cube.literals[k];
                if (lit == 2) { continue; }
                const bdd& fanin = value.at(node.fanins[k]);
                term &= lit == 1 ? fanin : !fanin;
            }
            f |= term;
        }
        if (node.complemented) { f = !f; }
        value.emplace(sig, f);
    }

    net_bdds result;
    result.outputs.reserve(net.num_outputs());
    for (const std::uint32_t s : net.outputs()) {
        result.outputs.push_back(value.at(s));
    }
    result.next_state.reserve(net.num_latches());
    for (const latch& l : net.latches()) {
        result.next_state.push_back(value.at(l.input));
    }
    return result;
}

bdd state_cube(bdd_manager& mgr, const std::vector<std::uint32_t>& state_vars,
               const std::vector<bool>& state) {
    if (state_vars.size() != state.size()) {
        throw std::invalid_argument("state_cube: width mismatch");
    }
    bdd c = mgr.one();
    for (std::size_t k = 0; k < state_vars.size(); ++k) {
        c &= mgr.literal(state_vars[k], state[k]);
    }
    return c;
}

} // namespace leq
