/// \file sweep.hpp
/// \brief Combinational netlist cleanup: constant propagation, buffer and
/// inverter collapsing, and dead-logic removal.
///
/// The composition and encoding steps of the synthesis loop are deliberately
/// naive netlist builders — they insert pass-through buffers for every
/// u/v wire and per-bit covers straight off the FSM cubes.  This pass cleans
/// the result without touching the sequential behaviour: primary outputs
/// keep their names and functions, latches keep their init values, and
/// latches whose output no primary output transitively observes are
/// removed along with their cone.
#pragma once

#include "net/network.hpp"

#include <cstddef>

namespace leq {

struct sweep_stats {
    std::size_t nodes_before = 0;
    std::size_t nodes_after = 0;
    std::size_t latches_before = 0;
    std::size_t latches_after = 0;
    std::size_t constants_propagated = 0;
    std::size_t wires_collapsed = 0; ///< buffers + inverters folded away
};

/// Sweep `net`; IO behaviour is preserved exactly (same input/output ports,
/// same output streams on every stimulus).  `stats`, when non-null, reports
/// what was removed.
[[nodiscard]] network sweep_network(const network& net,
                                    sweep_stats* stats = nullptr);

} // namespace leq
