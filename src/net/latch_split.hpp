/// \file latch_split.hpp
/// \brief Latch splitting: the syntactic transformation the paper uses to
/// derive language-equation instances from FSM benchmarks (Section 4).
///
/// A sequential circuit is split into two circuits: the fixed component F
/// keeps all the combinational logic plus a subset of the latches; the other
/// circuit X_P contains the remaining latches and is a particular solution
/// for the unknown component.  In the Figure-1 topology, X_P's inputs u are
/// the next-state functions of the extracted latches (now outputs of F) and
/// its outputs v are their current-state values (now inputs of F).  The
/// original circuit is the specification S.
#pragma once

#include "net/network.hpp"

#include <string>
#include <vector>

namespace leq {

struct split_result {
    network fixed;                    ///< F: logic + kept latches
    network part;                     ///< X_P: the extracted latches
    std::vector<std::string> u_names; ///< F's extra outputs = X's inputs
    std::vector<std::string> v_names; ///< F's extra inputs  = X's outputs
};

/// Extract the latches listed in `x_latches` (indices into
/// original.latches()) into the unknown-component position.
[[nodiscard]] split_result
split_latches(const network& original, const std::vector<std::size_t>& x_latches);

/// Convenience: extract the last `count` latches.
[[nodiscard]] split_result split_last_latches(const network& original,
                                              std::size_t count);

} // namespace leq
