/// \file netbdd.hpp
/// \brief Derive the partitioned representation of a network: the per-latch
/// next-state functions {T_k(i,cs)} and per-output functions {O_j(i,cs)} as
/// BDDs (paper, Section 2).
#pragma once

#include "bdd/bdd.hpp"
#include "net/network.hpp"

#include <vector>

namespace leq {

/// Partitioned representation of a sequential network.
struct net_bdds {
    std::vector<bdd> outputs;    ///< O_j over (input vars, state vars)
    std::vector<bdd> next_state; ///< T_k over (input vars, state vars)
};

/// Sweep the network in topological order and build the BDD of every
/// primary-output and latch-input function.
///
/// \param input_vars BDD variable id per primary input (same order as
///        net.inputs())
/// \param state_vars BDD variable id per latch (same order as net.latches())
[[nodiscard]] net_bdds
build_net_bdds(bdd_manager& mgr, const network& net,
               const std::vector<std::uint32_t>& input_vars,
               const std::vector<std::uint32_t>& state_vars);

/// Characteristic function of a single state (a cube over state_vars).
[[nodiscard]] bdd state_cube(bdd_manager& mgr,
                             const std::vector<std::uint32_t>& state_vars,
                             const std::vector<bool>& state);

} // namespace leq
