/// \file network.cpp
/// \brief Network construction, validation, topological order, simulation.

#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace leq {

std::uint32_t network::signal(const std::string& name) {
    const auto it = signal_ids_.find(name);
    if (it != signal_ids_.end()) { return it->second; }
    const auto id = static_cast<std::uint32_t>(signal_names_.size());
    signal_names_.push_back(name);
    signal_ids_.emplace(name, id);
    return id;
}

std::optional<std::uint32_t>
network::find_signal(const std::string& name) const {
    const auto it = signal_ids_.find(name);
    if (it == signal_ids_.end()) { return std::nullopt; }
    return it->second;
}

std::uint32_t network::add_input(const std::string& name) {
    const std::uint32_t id = signal(name);
    inputs_.push_back(id);
    return id;
}

void network::add_output(const std::string& name) {
    outputs_.push_back(signal(name));
}

void network::add_latch(const std::string& input, const std::string& output,
                        bool init) {
    latches_.push_back({signal(input), signal(output), init});
}

void network::add_node(const std::string& output,
                       const std::vector<std::string>& fanins,
                       const std::vector<std::string>& cubes,
                       bool complemented) {
    logic_node node;
    node.output = signal(output);
    node.fanins.reserve(fanins.size());
    for (const auto& f : fanins) { node.fanins.push_back(signal(f)); }
    node.complemented = complemented;
    for (const auto& c : cubes) {
        if (c.size() != fanins.size()) {
            throw std::invalid_argument("add_node(" + output +
                                        "): cube width mismatch");
        }
        sop_cube cube;
        cube.literals.reserve(c.size());
        for (const char ch : c) {
            switch (ch) {
            case '0': cube.literals.push_back(0); break;
            case '1': cube.literals.push_back(1); break;
            case '-': cube.literals.push_back(2); break;
            default:
                throw std::invalid_argument("add_node(" + output +
                                            "): bad cube char");
            }
        }
        node.cubes.push_back(std::move(cube));
    }
    if (node_of_signal_.count(node.output) != 0) {
        throw std::invalid_argument("add_node: signal '" + output +
                                    "' already driven");
    }
    node_of_signal_.emplace(node.output, nodes_.size());
    nodes_.push_back(std::move(node));
}

const logic_node* network::driver(std::uint32_t signal) const {
    const auto it = node_of_signal_.find(signal);
    return it == node_of_signal_.end() ? nullptr : &nodes_[it->second];
}

std::vector<std::uint32_t> network::topo_order() const {
    // sources: primary inputs and latch outputs
    enum class state : std::uint8_t { unseen, visiting, done };
    std::vector<state> marks(signal_names_.size(), state::unseen);
    std::vector<std::uint32_t> order;
    order.reserve(signal_names_.size());

    std::vector<char> is_source(signal_names_.size(), 0);
    for (const std::uint32_t s : inputs_) { is_source[s] = 1; }
    for (const latch& l : latches_) { is_source[l.output] = 1; }

    // iterative DFS; the explicit stack stores (signal, fanin cursor)
    const auto visit = [&](std::uint32_t root) {
        if (marks[root] == state::done) { return; }
        std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
        marks[root] = state::visiting;
        while (!stack.empty()) {
            auto& [sig, cursor] = stack.back();
            const logic_node* node = is_source[sig] ? nullptr : driver(sig);
            if (node == nullptr && !is_source[sig]) {
                throw std::runtime_error("network '" + name_ + "': signal '" +
                                         signal_names_[sig] + "' has no driver");
            }
            const std::size_t nfanins = node ? node->fanins.size() : 0;
            if (cursor < nfanins) {
                const std::uint32_t next = node->fanins[cursor++];
                if (marks[next] == state::visiting) {
                    throw std::runtime_error("network '" + name_ +
                                             "': combinational cycle through '" +
                                             signal_names_[next] + "'");
                }
                if (marks[next] == state::unseen) {
                    marks[next] = state::visiting;
                    stack.emplace_back(next, 0);
                }
            } else {
                marks[sig] = state::done;
                order.push_back(sig);
                stack.pop_back();
            }
        }
    };

    for (const std::uint32_t s : outputs_) { visit(s); }
    for (const latch& l : latches_) { visit(l.input); }
    // visit dangling logic too: cycles must be rejected even outside the
    // output cone (e.g. a combinational loop created by composition)
    for (const logic_node& node : nodes_) { visit(node.output); }
    return order;
}

void network::validate() const {
    for (const logic_node& node : nodes_) {
        for (const sop_cube& cube : node.cubes) {
            if (cube.literals.size() != node.fanins.size()) {
                throw std::runtime_error("network '" + name_ +
                                         "': cube width mismatch on '" +
                                         signal_names_[node.output] + "'");
            }
        }
    }
    // a latch output must not also be a node output or primary input
    std::vector<char> is_source(signal_names_.size(), 0);
    for (const std::uint32_t s : inputs_) { is_source[s] = 1; }
    for (const latch& l : latches_) {
        if (is_source[l.output]) {
            throw std::runtime_error("network '" + name_ +
                                     "': latch output '" +
                                     signal_names_[l.output] +
                                     "' multiply driven");
        }
        is_source[l.output] = 1;
    }
    for (const logic_node& node : nodes_) {
        if (is_source[node.output]) {
            throw std::runtime_error("network '" + name_ + "': signal '" +
                                     signal_names_[node.output] +
                                     "' multiply driven");
        }
    }
    (void)topo_order(); // throws on cycles / missing drivers
}

std::vector<bool> network::initial_state() const {
    std::vector<bool> init;
    init.reserve(latches_.size());
    for (const latch& l : latches_) { init.push_back(l.init); }
    return init;
}

network::cycle_result
network::simulate(const std::vector<bool>& state,
                  const std::vector<bool>& inputs) const {
    if (state.size() != latches_.size() || inputs.size() != inputs_.size()) {
        throw std::invalid_argument("simulate: wrong state/input width");
    }
    std::vector<std::uint8_t> value(signal_names_.size(), 0xff);
    for (std::size_t k = 0; k < inputs_.size(); ++k) {
        value[inputs_[k]] = inputs[k] ? 1 : 0;
    }
    for (std::size_t k = 0; k < latches_.size(); ++k) {
        value[latches_[k].output] = state[k] ? 1 : 0;
    }
    for (const std::uint32_t sig : topo_order()) {
        if (value[sig] != 0xff) { continue; }
        const logic_node* node = driver(sig);
        if (node == nullptr) {
            throw std::runtime_error("simulate: undriven signal '" +
                                     signal_names_[sig] + "'");
        }
        bool any = false;
        for (const sop_cube& cube : node->cubes) {
            bool hit = true;
            for (std::size_t f = 0; f < node->fanins.size(); ++f) {
                const std::uint8_t lit = cube.literals[f];
                if (lit == 2) { continue; }
                if (value[node->fanins[f]] != lit) { hit = false; break; }
            }
            if (hit) { any = true; break; }
        }
        value[sig] = (any != node->complemented) ? 1 : 0;
    }
    cycle_result result;
    result.outputs.reserve(outputs_.size());
    for (const std::uint32_t s : outputs_) { result.outputs.push_back(value[s] == 1); }
    result.next_state.reserve(latches_.size());
    for (const latch& l : latches_) { result.next_state.push_back(value[l.input] == 1); }
    return result;
}

} // namespace leq
