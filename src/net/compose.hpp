/// \file compose.hpp
/// \brief Synchronous composition of the fixed component with a concrete
/// unknown-component implementation, back into one closed network.
///
/// Rebuilds the Figure-1 topology as a flat netlist: F's u outputs drive
/// X's inputs and X's v outputs drive F's v inputs; the composed network
/// keeps F's external ports (i, o).  X's v outputs must not depend
/// combinationally on its inputs (Moore-style, e.g. the latch-only X_P from
/// latch splitting), otherwise the u -> v -> u loop would be a
/// combinational cycle — the caveat the paper's footnote 5 points out for
/// CSF implementations; validate() rejects such compositions.
#pragma once

#include "net/network.hpp"

#include <string>
#include <vector>

namespace leq {

/// \param fixed F, with inputs (i..., v_names...) and outputs (o...,
///        u_names...) as produced by split_latches
/// \param part X's implementation; its ports are matched positionally to
///        u_names / v_names
[[nodiscard]] network compose_networks(const network& fixed,
                                       const network& part,
                                       const std::vector<std::string>& u_names,
                                       const std::vector<std::string>& v_names);

} // namespace leq
