/// \file sweep.cpp
/// \brief The combinational sweep pass.
///
/// The pass works on a literal representation of each cover ('0'/'1'/'-'
/// columns like BLIF rows) and runs to a fixpoint in topological order:
///
///   * a fanin column driven by a known constant is evaluated away — cubes
///     conflicting with the constant drop, matching columns vanish;
///   * a cover left with no cubes is the constant 0, one with an
///     all-don't-care cube is the constant 1 (off-set covers dualize);
///   * a single-literal identity ("1") or inverter ("0") cover marks its
///     output as an alias (source, polarity), and consumers resolve alias
///     chains with polarity composition;
///   * finally, only logic in the transitive fanin of the primary outputs
///     survives; latches are kept exactly when their output is observed.

#include "net/sweep.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace leq {

namespace {

/// Working form of one node's cover.
struct cover {
    std::vector<std::uint32_t> fanins;
    std::vector<std::string> cubes; ///< one char per fanin: '0','1','-'
    bool complemented = false;      ///< rows describe the off-set
};

/// What a signal resolves to after sweeping.
struct alias {
    enum class kind : std::uint8_t { self, constant, wire };
    kind k = kind::self;
    bool value = false;          ///< constant value (kind::constant)
    std::uint32_t source = 0;    ///< base signal (kind::wire)
    bool inverted = false;       ///< wire polarity (kind::wire)
};

/// Evaluate a cover whose fanins are all gone: constant.
bool constant_of(const cover& c) {
    // no cubes -> onset empty -> 0; any remaining cube is all-'-' -> 1
    const bool onset_value = !c.cubes.empty();
    return c.complemented ? !onset_value : onset_value;
}

/// Substitute a constant into column `pos`: keep compatible cubes, drop the
/// column.
void substitute_constant(cover& c, std::size_t pos, bool value) {
    std::vector<std::string> kept;
    for (const std::string& cube : c.cubes) {
        const char lit = cube[pos];
        if (lit != '-' && (lit == '1') != value) { continue; }
        std::string trimmed = cube;
        trimmed.erase(trimmed.begin() + static_cast<std::ptrdiff_t>(pos));
        kept.push_back(std::move(trimmed));
    }
    c.cubes = std::move(kept);
    c.fanins.erase(c.fanins.begin() + static_cast<std::ptrdiff_t>(pos));
}

/// Flip the polarity of column `pos` ('0' <-> '1').
void flip_column(cover& c, std::size_t pos) {
    for (std::string& cube : c.cubes) {
        if (cube[pos] == '0') {
            cube[pos] = '1';
        } else if (cube[pos] == '1') {
            cube[pos] = '0';
        }
    }
}

/// Is the cover a tautology / empty in the trivial syntactic sense?
std::optional<bool> trivial_constant(const cover& c) {
    if (c.fanins.empty()) { return constant_of(c); }
    if (c.cubes.empty()) { return c.complemented; }
    for (const std::string& cube : c.cubes) {
        if (cube.find_first_not_of('-') == std::string::npos) {
            // one all-dash cube: onset (or off-set) is everything
            return !c.complemented;
        }
    }
    return std::nullopt;
}

/// Identity/inverter detection on a single-fanin cover.
std::optional<bool> wire_polarity(const cover& c) {
    if (c.fanins.size() != 1 || c.cubes.size() != 1) { return std::nullopt; }
    const char lit = c.cubes[0][0];
    if (lit == '-') { return std::nullopt; } // constant, handled elsewhere
    const bool identity = (lit == '1') != c.complemented;
    return !identity; // returns "inverted?"
}

} // namespace

network sweep_network(const network& net, sweep_stats* stats) {
    sweep_stats local;
    local.nodes_before = net.nodes().size();
    local.latches_before = net.num_latches();

    // mutable covers indexed like net.nodes(); driver map per signal
    std::vector<cover> covers;
    covers.reserve(net.nodes().size());
    std::unordered_map<std::uint32_t, std::size_t> driver;
    for (const logic_node& n : net.nodes()) {
        cover c;
        c.fanins = n.fanins;
        c.complemented = n.complemented;
        for (const sop_cube& cube : n.cubes) {
            std::string row;
            for (const std::uint8_t lit : cube.literals) {
                row.push_back(lit == 0 ? '0' : lit == 1 ? '1' : '-');
            }
            c.cubes.push_back(std::move(row));
        }
        driver[n.output] = covers.size();
        covers.push_back(std::move(c));
    }

    std::vector<alias> resolved(net.num_signals());
    // latch outputs and primary inputs stay themselves; everything else
    // starts as self and may become a constant or a wire alias
    const auto resolve = [&](std::uint32_t signal) {
        // path-compress wire chains, composing polarity
        alias a = resolved[signal];
        if (a.k != alias::kind::wire) { return a; }
        bool inv = a.inverted;
        std::uint32_t src = a.source;
        while (resolved[src].k == alias::kind::wire) {
            inv ^= resolved[src].inverted;
            src = resolved[src].source;
        }
        if (resolved[src].k == alias::kind::constant) {
            alias c;
            c.k = alias::kind::constant;
            c.value = resolved[src].value != inv;
            return c;
        }
        alias w;
        w.k = alias::kind::wire;
        w.source = src;
        w.inverted = inv;
        return w;
    };

    // fixpoint: substitute aliases/constants into covers until stable
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto& [signal, index] : driver) {
            if (resolved[signal].k != alias::kind::self) { continue; }
            cover& c = covers[index];
            // substitute resolved fanins
            for (std::size_t pos = 0; pos < c.fanins.size();) {
                const alias a = resolve(c.fanins[pos]);
                if (a.k == alias::kind::constant) {
                    substitute_constant(c, pos, a.value);
                    ++local.constants_propagated;
                    changed = true;
                    continue; // same pos now holds the next column
                }
                if (a.k == alias::kind::wire) {
                    if (a.inverted) { flip_column(c, pos); }
                    c.fanins[pos] = a.source;
                    changed = true;
                }
                ++pos;
            }
            // collapse duplicate fanin columns? (rare; skip — semantics fine)
            if (const auto constant = trivial_constant(c)) {
                resolved[signal].k = alias::kind::constant;
                resolved[signal].value = *constant;
                changed = true;
                continue;
            }
            if (const auto inverted = wire_polarity(c)) {
                resolved[signal].k = alias::kind::wire;
                resolved[signal].source = c.fanins[0];
                resolved[signal].inverted = *inverted;
                ++local.wires_collapsed;
                changed = true;
            }
        }
    }

    // liveness: primary outputs observe signals; latches observe their data
    // input only if the latch output is observed
    std::vector<char> live(net.num_signals(), 0);
    std::unordered_map<std::uint32_t, const latch*> latch_of;
    for (const latch& l : net.latches()) { latch_of[l.output] = &l; }
    std::vector<std::uint32_t> stack;
    const auto mark = [&](std::uint32_t signal) {
        const alias a = resolve(signal);
        const std::uint32_t base =
            a.k == alias::kind::wire ? a.source : signal;
        if (a.k != alias::kind::constant && !live[base]) {
            live[base] = 1;
            stack.push_back(base);
        }
    };
    for (const std::uint32_t o : net.outputs()) { mark(o); }
    while (!stack.empty()) {
        const std::uint32_t s = stack.back();
        stack.pop_back();
        if (const auto it = latch_of.find(s); it != latch_of.end()) {
            mark(it->second->input);
            continue;
        }
        if (const auto it = driver.find(s); it != driver.end()) {
            for (const std::uint32_t f : covers[it->second].fanins) {
                mark(f);
            }
        }
    }

    // rebuild; primary outputs keep their names, so an output whose signal
    // became a constant or an alias gets a fresh buffer/constant node
    network out(net.name());
    for (const std::uint32_t i : net.inputs()) {
        out.add_input(net.signal_name(i));
    }
    for (const latch& l : net.latches()) {
        if (!live[l.output]) { continue; }
        const alias a = resolve(l.input);
        if (a.k == alias::kind::constant) {
            // constant next-state: keep as a one-cube node for clarity
            const std::string cname = net.signal_name(l.input) + "$swc";
            out.add_node(cname, {}, a.value ? std::vector<std::string>{""}
                                            : std::vector<std::string>{});
            out.add_latch(cname, net.signal_name(l.output), l.init);
        } else if (a.k == alias::kind::wire) {
            if (a.inverted) {
                const std::string iname = net.signal_name(a.source) + "$swinv";
                if (!out.find_signal(iname).has_value()) {
                    out.add_node(iname, {net.signal_name(a.source)}, {"0"});
                }
                out.add_latch(iname, net.signal_name(l.output), l.init);
            } else {
                out.add_latch(net.signal_name(a.source),
                              net.signal_name(l.output), l.init);
            }
        } else {
            out.add_latch(net.signal_name(l.input),
                          net.signal_name(l.output), l.init);
        }
    }
    for (const auto& [signal, index] : driver) {
        if (!live[signal] || resolved[signal].k != alias::kind::self) {
            continue;
        }
        const cover& c = covers[index];
        std::vector<std::string> fanins;
        fanins.reserve(c.fanins.size());
        for (const std::uint32_t f : c.fanins) {
            fanins.push_back(net.signal_name(f));
        }
        out.add_node(net.signal_name(signal), fanins, c.cubes,
                     c.complemented);
        ++local.nodes_after;
    }
    for (const std::uint32_t o : net.outputs()) {
        const std::string& name = net.signal_name(o);
        const alias a = resolve(o);
        const bool is_latch_out = latch_of.count(o) != 0;
        const bool is_input =
            std::find(net.inputs().begin(), net.inputs().end(), o) !=
            net.inputs().end();
        if (a.k == alias::kind::constant) {
            out.add_node(name, {},
                         a.value ? std::vector<std::string>{""}
                                 : std::vector<std::string>{});
            ++local.nodes_after;
        } else if (a.k == alias::kind::wire) {
            out.add_node(name, {net.signal_name(a.source)},
                         {a.inverted ? "0" : "1"});
            ++local.nodes_after;
        } else if (!is_latch_out && !is_input &&
                   driver.find(o) == driver.end()) {
            assert(false && "sweep: undriven primary output");
        }
        out.add_output(name);
    }
    local.latches_after = out.num_latches();
    out.validate();
    if (stats != nullptr) { *stats = local; }
    return out;
}

} // namespace leq
