/// \file network.hpp
/// \brief Multi-level sequential networks: the input format of the solver.
///
/// A network is a named list of signals driven by primary inputs, latches and
/// internal logic nodes (sum-of-products covers, BLIF style).  The language
/// equation solver consumes networks for the fixed component F and the
/// specification S; per the paper, the automata for both are prefix-closed
/// because they are derived from such networks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace leq {

/// One row of a sum-of-products cover: a value per fanin (0, 1 or 2 = don't
/// care).  A cover with no cubes is the constant given by `constant_one`.
struct sop_cube {
    std::vector<std::uint8_t> literals;
};

/// Logic node: output signal = OR of cubes over the fanin signals.  If
/// `complemented` the cover describes the off-set (BLIF "... 0" rows).
struct logic_node {
    std::uint32_t output = 0;            ///< signal id this node drives
    std::vector<std::uint32_t> fanins;   ///< signal ids read by the cover
    std::vector<sop_cube> cubes;
    bool complemented = false;
};

/// A latch connects its data-input signal to its output signal with one
/// cycle of delay; `init` is the reset value.
struct latch {
    std::uint32_t input = 0;   ///< next-state (data) signal
    std::uint32_t output = 0;  ///< current-state signal
    bool init = false;
};

/// Multi-level sequential network.
class network {
public:
    explicit network(std::string name = "net") : name_(std::move(name)) {}

    // ---- construction ------------------------------------------------------
    /// Intern a signal name; returns its id (idempotent).
    std::uint32_t signal(const std::string& name);
    /// Declare an existing or new signal as primary input / output.
    std::uint32_t add_input(const std::string& name);
    void add_output(const std::string& name);
    void add_latch(const std::string& input, const std::string& output,
                   bool init);
    /// Add a logic node driving `output`; cube strings use '0','1','-' per
    /// fanin.  An empty cube list makes the constant 0 (or 1 if
    /// complemented).
    void add_node(const std::string& output,
                  const std::vector<std::string>& fanins,
                  const std::vector<std::string>& cubes,
                  bool complemented = false);

    // ---- queries -----------------------------------------------------------
    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }
    [[nodiscard]] std::size_t num_signals() const { return signal_names_.size(); }
    [[nodiscard]] const std::string& signal_name(std::uint32_t id) const {
        return signal_names_[id];
    }
    [[nodiscard]] std::optional<std::uint32_t>
    find_signal(const std::string& name) const;

    [[nodiscard]] const std::vector<std::uint32_t>& inputs() const { return inputs_; }
    [[nodiscard]] const std::vector<std::uint32_t>& outputs() const { return outputs_; }
    [[nodiscard]] const std::vector<latch>& latches() const { return latches_; }
    [[nodiscard]] const std::vector<logic_node>& nodes() const { return nodes_; }

    [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }
    [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }
    [[nodiscard]] std::size_t num_latches() const { return latches_.size(); }

    /// Signals in a topological order of the combinational logic (sources
    /// first).  Throws std::runtime_error on combinational cycles or signals
    /// with no driver.
    [[nodiscard]] std::vector<std::uint32_t> topo_order() const;

    /// Structural sanity: every output/latch input driven, no cycles, cube
    /// widths match fanin counts.  Throws std::runtime_error on violation.
    void validate() const;

    /// Initial state as latch-indexed bits.
    [[nodiscard]] std::vector<bool> initial_state() const;

    // ---- simulation ---------------------------------------------------------
    /// One synchronous cycle: given latch state and input values, produce
    /// output values and the next state.
    struct cycle_result {
        std::vector<bool> outputs;
        std::vector<bool> next_state;
    };
    [[nodiscard]] cycle_result simulate(const std::vector<bool>& state,
                                        const std::vector<bool>& inputs) const;

private:
    friend class blif_reader;
    [[nodiscard]] const logic_node* driver(std::uint32_t signal) const;

    std::string name_;
    std::vector<std::string> signal_names_;
    std::unordered_map<std::string, std::uint32_t> signal_ids_;
    std::vector<std::uint32_t> inputs_;
    std::vector<std::uint32_t> outputs_;
    std::vector<latch> latches_;
    std::vector<logic_node> nodes_;
    std::unordered_map<std::uint32_t, std::size_t> node_of_signal_;
};

} // namespace leq
