/// \file topology.cpp
/// \brief Reductions of cascade and controller topologies to Figure-1 form.

#include "eq/topology.hpp"

#include <stdexcept>
#include <unordered_map>
#include <string>
#include <unordered_set>

namespace leq {

namespace {

/// All signal names of a network (used to pick collision-free fresh names).
std::unordered_set<std::string> name_set(const network& net) {
    std::unordered_set<std::string> names;
    for (std::uint32_t s = 0; s < net.num_signals(); ++s) {
        names.insert(net.signal_name(s));
    }
    return names;
}

std::string fresh_name(const std::unordered_set<std::string>& taken,
                       const std::string& base) {
    if (taken.count(base) == 0) { return base; }
    for (std::size_t k = 0;; ++k) {
        const std::string candidate = base + "_" + std::to_string(k);
        if (taken.count(candidate) == 0) { return candidate; }
    }
}

/// Cube row of a logic node rendered back to the '0'/'1'/'-' string form
/// that network::add_node consumes.
std::string cube_string(const sop_cube& cube) {
    std::string row;
    row.reserve(cube.literals.size());
    for (const std::uint8_t lit : cube.literals) {
        row.push_back(lit == 0 ? '0' : lit == 1 ? '1' : '-');
    }
    return row;
}

/// Copy every latch and logic node of `src` into `dst`, mapping signal names
/// through `rename` (identity when a name is absent from the map).  Inputs
/// and outputs are NOT declared — the caller owns the interface.
void copy_body(network& dst, const network& src,
               const std::unordered_map<std::string, std::string>& rename) {
    const auto mapped = [&](std::uint32_t signal) {
        const std::string& name = src.signal_name(signal);
        const auto it = rename.find(name);
        return it == rename.end() ? name : it->second;
    };
    for (const latch& l : src.latches()) {
        dst.add_latch(mapped(l.input), mapped(l.output), l.init);
    }
    for (const logic_node& n : src.nodes()) {
        std::vector<std::string> fanins;
        fanins.reserve(n.fanins.size());
        for (const std::uint32_t f : n.fanins) { fanins.push_back(mapped(f)); }
        std::vector<std::string> cubes;
        cubes.reserve(n.cubes.size());
        for (const sop_cube& c : n.cubes) { cubes.push_back(cube_string(c)); }
        dst.add_node(mapped(n.output), fanins, cubes, n.complemented);
    }
}

/// Renaming that moves every non-input signal of `src` out of the way with
/// a prefix (keeps the shared primary-input names intact).
std::unordered_map<std::string, std::string>
prefix_internals(const network& src, const std::string& prefix,
                 std::unordered_set<std::string>& taken) {
    std::unordered_map<std::string, std::string> rename;
    std::unordered_set<std::uint32_t> input_ids(src.inputs().begin(),
                                                src.inputs().end());
    for (std::uint32_t s = 0; s < src.num_signals(); ++s) {
        if (input_ids.count(s) != 0) { continue; }
        const std::string fresh =
            fresh_name(taken, prefix + src.signal_name(s));
        rename.emplace(src.signal_name(s), fresh);
        taken.insert(fresh);
    }
    return rename;
}

void check_port_names(const network& component, const network& spec,
                      bool match_inputs, const char* who) {
    if (match_inputs) {
        if (component.num_inputs() < spec.num_inputs()) {
            throw std::invalid_argument(std::string(who) +
                                        ": too few inputs for the spec");
        }
        for (std::size_t k = 0; k < spec.num_inputs(); ++k) {
            if (component.signal_name(component.inputs()[k]) !=
                spec.signal_name(spec.inputs()[k])) {
                throw std::invalid_argument(
                    std::string(who) + ": input names must match the spec");
            }
        }
    } else {
        if (component.num_outputs() != spec.num_outputs()) {
            throw std::invalid_argument(std::string(who) +
                                        ": output count must match the spec");
        }
        for (std::size_t k = 0; k < spec.num_outputs(); ++k) {
            if (component.signal_name(component.outputs()[k]) !=
                spec.signal_name(spec.outputs()[k])) {
                throw std::invalid_argument(
                    std::string(who) + ": output names must match the spec");
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// cascade tail: i -> front -> u -> X -> o
// ---------------------------------------------------------------------------

network to_figure1_cascade_tail(const network& front, const network& spec) {
    check_port_names(front, spec, /*match_inputs=*/true, "cascade_tail");
    if (front.num_inputs() != spec.num_inputs()) {
        throw std::invalid_argument(
            "cascade_tail: front must read exactly the spec inputs");
    }
    auto taken = name_set(front);
    for (std::uint32_t s = 0; s < spec.num_signals(); ++s) {
        taken.insert(spec.signal_name(s));
    }
    // move front's internals (including its u outputs) out of the way of the
    // spec-named o outputs we are about to add
    auto rename = prefix_internals(front, "f$", taken);

    network out("F_" + front.name() + "_cascade_tail");
    // interface: inputs (i..., v...)
    for (const std::uint32_t i : spec.inputs()) {
        out.add_input(spec.signal_name(i));
    }
    std::vector<std::string> v_names;
    for (std::size_t k = 0; k < spec.num_outputs(); ++k) {
        const std::string v = fresh_name(taken, "xv" + std::to_string(k));
        taken.insert(v);
        v_names.push_back(v);
        out.add_input(v);
    }
    copy_body(out, front, rename);
    // outputs: o... (buffers of v), then u... (front's renamed outputs)
    for (std::size_t k = 0; k < spec.num_outputs(); ++k) {
        const std::string o = spec.signal_name(spec.outputs()[k]);
        out.add_node(o, {v_names[k]}, {"1"});
        out.add_output(o);
    }
    for (const std::uint32_t u : front.outputs()) {
        const auto it = rename.find(front.signal_name(u));
        out.add_output(it == rename.end() ? front.signal_name(u) : it->second);
    }
    out.validate();
    return out;
}

// ---------------------------------------------------------------------------
// cascade head: i -> X -> v -> back -> o
// ---------------------------------------------------------------------------

network to_figure1_cascade_head(const network& back, const network& spec) {
    check_port_names(back, spec, /*match_inputs=*/false, "cascade_head");
    auto taken = name_set(back);
    for (std::uint32_t s = 0; s < spec.num_signals(); ++s) {
        taken.insert(spec.signal_name(s));
    }
    // back's inputs become v-driven internals; it keeps its o output names,
    // which must not collide with the spec input names we add
    std::unordered_map<std::string, std::string> rename;
    {
        // rename back's inputs to fresh internal names; the fresh v primary
        // inputs will drive them through buffers
        std::unordered_set<std::string> spec_inputs;
        for (const std::uint32_t i : spec.inputs()) {
            spec_inputs.insert(spec.signal_name(i));
        }
        for (const std::uint32_t b : back.inputs()) {
            const std::string fresh =
                fresh_name(taken, "b$" + back.signal_name(b));
            rename.emplace(back.signal_name(b), fresh);
            taken.insert(fresh);
        }
        // also move any internal signal that collides with a spec input
        for (std::uint32_t s = 0; s < back.num_signals(); ++s) {
            const std::string& name = back.signal_name(s);
            if (rename.count(name) == 0 && spec_inputs.count(name) != 0) {
                const std::string fresh = fresh_name(taken, "b$" + name);
                rename.emplace(name, fresh);
                taken.insert(fresh);
            }
        }
    }

    network out("F_" + back.name() + "_cascade_head");
    // interface: inputs (i..., v...); v has one wire per back input
    for (const std::uint32_t i : spec.inputs()) {
        out.add_input(spec.signal_name(i));
    }
    std::vector<std::string> v_names;
    for (std::size_t k = 0; k < back.num_inputs(); ++k) {
        const std::string v = fresh_name(taken, "xv" + std::to_string(k));
        taken.insert(v);
        v_names.push_back(v);
        out.add_input(v);
    }
    // buffers: renamed back inputs := v
    for (std::size_t k = 0; k < back.num_inputs(); ++k) {
        out.add_node(rename.at(back.signal_name(back.inputs()[k])),
                     {v_names[k]}, {"1"});
    }
    copy_body(out, back, rename);
    // outputs: o... (back's outputs, names match the spec), then u...
    // (buffers of the external inputs — X observes i)
    for (const std::uint32_t o : back.outputs()) {
        const auto it = rename.find(back.signal_name(o));
        out.add_output(it == rename.end() ? back.signal_name(o) : it->second);
    }
    for (std::size_t k = 0; k < spec.num_inputs(); ++k) {
        const std::string u = fresh_name(taken, "xu" + std::to_string(k));
        taken.insert(u);
        out.add_node(u, {spec.signal_name(spec.inputs()[k])}, {"1"});
        out.add_output(u);
    }
    out.validate();
    return out;
}

// ---------------------------------------------------------------------------
// controller: plant(i, c) -> o with X: i -> c
// ---------------------------------------------------------------------------

network to_figure1_controller(const network& plant, const network& spec) {
    check_port_names(plant, spec, /*match_inputs=*/true, "controller");
    check_port_names(plant, spec, /*match_inputs=*/false, "controller");
    const std::size_t num_c = plant.num_inputs() - spec.num_inputs();
    auto taken = name_set(plant);

    // the control inputs c... are plant inputs, which X's v wires must
    // drive: rename them to internals fed by buffers from fresh v inputs
    std::unordered_map<std::string, std::string> rename;
    std::vector<std::string> c_internal;
    for (std::size_t k = 0; k < num_c; ++k) {
        const std::string& c =
            plant.signal_name(plant.inputs()[spec.num_inputs() + k]);
        const std::string fresh = fresh_name(taken, "c$" + c);
        rename.emplace(c, fresh);
        taken.insert(fresh);
        c_internal.push_back(fresh);
    }

    network out("F_" + plant.name() + "_controller");
    for (std::size_t k = 0; k < spec.num_inputs(); ++k) {
        out.add_input(spec.signal_name(spec.inputs()[k]));
    }
    std::vector<std::string> v_names;
    for (std::size_t k = 0; k < num_c; ++k) {
        const std::string v = fresh_name(taken, "xv" + std::to_string(k));
        taken.insert(v);
        v_names.push_back(v);
        out.add_input(v);
    }
    for (std::size_t k = 0; k < num_c; ++k) {
        out.add_node(c_internal[k], {v_names[k]}, {"1"});
    }
    copy_body(out, plant, rename);
    for (std::size_t k = 0; k < spec.num_outputs(); ++k) {
        out.add_output(spec.signal_name(spec.outputs()[k]));
    }
    // X observes the external inputs: buffer them out as u
    for (std::size_t k = 0; k < spec.num_inputs(); ++k) {
        const std::string u = fresh_name(taken, "xu" + std::to_string(k));
        taken.insert(u);
        out.add_node(u, {spec.signal_name(spec.inputs()[k])}, {"1"});
        out.add_output(u);
    }
    out.validate();
    return out;
}

// ---------------------------------------------------------------------------
// bundled solve entry points
// ---------------------------------------------------------------------------

namespace {

topology_solution solve_with(network fixed, const network& spec,
                             const solve_options& options) {
    topology_solution sol;
    sol.fixed = std::move(fixed);
    sol.problem = std::make_unique<equation_problem>(sol.fixed, spec);
    sol.result = solve_partitioned(*sol.problem, options);
    return sol;
}

} // namespace

topology_solution solve_cascade_tail(const network& front, const network& spec,
                                     const solve_options& options) {
    return solve_with(to_figure1_cascade_tail(front, spec), spec, options);
}

topology_solution solve_cascade_head(const network& back, const network& spec,
                                     const solve_options& options) {
    return solve_with(to_figure1_cascade_head(back, spec), spec, options);
}

topology_solution solve_controller(const network& plant, const network& spec,
                                   const solve_options& options) {
    return solve_with(to_figure1_controller(plant, spec), spec, options);
}

} // namespace leq
