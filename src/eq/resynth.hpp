/// \file resynth.hpp
/// \brief The end-to-end sequential resynthesis flow the paper motivates:
/// cut a sub-part out of a circuit, compute its complete sequential
/// flexibility, pick a small replacement, and rebuild the circuit.
///
/// Pipeline: split_latches -> equation_problem -> solve_partitioned ->
/// extract_moore_fsm (+ DFA minimization) -> automaton_to_network ->
/// compose_networks -> verification (the paper's symbolic check (2) plus
/// seeded simulation of original vs optimized).
///
/// The replacement is extracted in Moore form so the composed netlist has
/// no combinational u -> v -> u cycle (footnote 5); when the greedy Moore
/// extraction fails, the result reports solved-but-not-rebuilt rather than
/// producing an uncomposable netlist.
#pragma once

#include "eq/solver.hpp"
#include "net/network.hpp"

#include <cstdint>
#include <vector>

namespace leq {

struct resynth_options {
    solve_options solve;
    /// Minimize the Moore FSM before encoding.
    bool minimize_states = true;
    /// Run the combinational sweep on the composed result.
    bool sweep_result = true;
    /// Simulation-based equivalence: runs x cycles of random stimulus.
    std::size_t sim_runs = 8;
    std::size_t sim_cycles = 256;
    std::uint32_t sim_seed = 1;
};

struct resynth_result {
    bool solved = false;          ///< CSF computed (non-empty by construction)
    bool rebuilt = false;         ///< Moore replacement extracted and composed
    bool verified = false;        ///< check (2) and simulation both pass
    std::size_t csf_states = 0;
    std::size_t x_states = 0;           ///< replacement FSM states
    std::size_t x_latches_before = 0;   ///< latches in the cut (X_P)
    std::size_t x_latches_after = 0;    ///< latches in the replacement
    network replacement; ///< the encoded X (valid when rebuilt)
    network optimized;   ///< F composed with the replacement (when rebuilt)
};

/// Resynthesize `original` around the latch cut (indices into its latch
/// list).  Never returns an unverified `optimized` network as verified:
/// check the flags.
[[nodiscard]] resynth_result
resynthesize(const network& original, const std::vector<std::size_t>& cut,
             const resynth_options& options = {});

/// Seeded random simulation equivalence (helper, also used by the tests):
/// true when both networks produce identical output streams on every run.
/// The networks must have identical input/output counts.
[[nodiscard]] bool simulation_equivalent(const network& a, const network& b,
                                         std::size_t runs, std::size_t cycles,
                                         std::uint32_t seed);

} // namespace leq
