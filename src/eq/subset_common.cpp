/// \file subset_common.cpp
/// \brief Shared subset-construction driver and cofactor-class extraction.

#include "eq/subset_common.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace leq::detail {

solve_options with_deadline(const solve_options& options) {
    solve_options armed = options;
    if (armed.time_limit_seconds > 0 && !armed.img.deadline) {
        armed.img.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(armed.time_limit_seconds));
    }
    return armed;
}

solve_result timeout_result(std::chrono::steady_clock::time_point start) {
    solve_result result;
    result.status = solve_status::timeout;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

void accumulate_stats(solve_stats& stats, const transition_relation& rel) {
    const relation_stats& r = rel.stats();
    stats.relations += 1;
    stats.relation_parts += rel.num_parts();
    stats.clusters += rel.num_clusters();
    stats.images += r.images;
    stats.preimages += r.preimages;
    stats.peak_intermediate =
        std::max(stats.peak_intermediate, r.peak_intermediate);
    stats.saturation_fires += r.saturation_fires;
    stats.parallel_chunks += r.parallel_chunks;
    stats.transfer_nodes += r.transfer_nodes;
}

void read_manager_stats(solve_stats& stats, bdd_manager& mgr) {
    stats.live_nodes_after = mgr.live_node_count();
    const bdd_stats& b = mgr.stats();
    stats.cache_lookups = b.cache_lookups;
    stats.cache_hits = b.cache_hits;
    stats.op_lookups = b.op_lookups;
    stats.op_hits = b.op_hits;
}

std::vector<cofactor_class> split_by_top_block(bdd_manager& mgr, const bdd& p,
                                               std::uint32_t boundary) {
    if (p.is_zero()) { return {}; }
    // collect distinct leaves: first nodes (by descent) at/below the boundary
    std::vector<bdd> leaves;
    std::unordered_map<std::uint32_t, std::size_t> leaf_ids; // idx -> pos
    std::unordered_map<std::uint32_t, char> visited;
    const std::function<void(const bdd&)> collect = [&](const bdd& n) {
        if (!visited.emplace(n.index(), 1).second) { return; }
        const bool is_leaf =
            n.is_const() || mgr.level_of(n.top_var()) >= boundary;
        if (is_leaf) {
            if (!n.is_zero() && leaf_ids.emplace(n.index(), leaves.size()).second) {
                leaves.push_back(n);
            }
            return;
        }
        collect(n.low());
        collect(n.high());
    };
    collect(p);

    // one memoized rebuild per leaf: replace that leaf by TRUE, all other
    // leaves by FALSE, keep the guard region structure
    std::vector<cofactor_class> classes;
    classes.reserve(leaves.size());
    for (const bdd& leaf : leaves) {
        std::unordered_map<std::uint32_t, bdd> memo;
        const std::function<bdd(const bdd&)> rebuild =
            [&](const bdd& n) -> bdd {
            const bool is_leaf =
                n.is_const() || mgr.level_of(n.top_var()) >= boundary;
            if (is_leaf) { return n == leaf ? mgr.one() : mgr.zero(); }
            const auto it = memo.find(n.index());
            if (it != memo.end()) { return it->second; }
            const bdd r =
                mgr.ite(mgr.var(n.top_var()), rebuild(n.high()), rebuild(n.low()));
            memo.emplace(n.index(), r);
            return r;
        };
        classes.push_back({rebuild(p), leaf});
    }
    return classes;
}

bdd guard_domain(bdd_manager& mgr, const std::vector<cofactor_class>& classes) {
    bdd d = mgr.zero();
    for (const cofactor_class& c : classes) { d |= c.guard; }
    return d;
}

solve_result
subset_driver::run(const bdd& initial_state,
                   const std::function<expansion(const bdd&)>& expand,
                   const std::function<bool(const bdd&)>& is_bad) const {
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
            .count();
    };

    solve_result result;

    // subset states interned by BDD index (canonical)
    std::unordered_map<std::uint32_t, std::uint32_t> ids;
    std::vector<bdd> subsets;
    // The subset construction is itself a reachability exploration over
    // subset states; the reach strategy picks the worklist discipline.  The
    // explored set (and therefore the CSF) is order-independent, but the
    // peak worklist and BDD cache locality are not: bfs/frontier expand in
    // layer (FIFO) order, chaining and saturation follow each newly
    // discovered subset immediately (LIFO), chasing successor chains first
    // — the subset-level analogue of saturation's immediate feedback.
    std::deque<std::uint32_t> work;
    const bool lifo = options.img.strategy == reach_strategy::chaining ||
                      options.img.strategy == reach_strategy::saturation;
    const auto intern = [&](const bdd& state) {
        const auto it = ids.find(state.index());
        if (it != ids.end()) { return it->second; }
        const auto id = static_cast<std::uint32_t>(subsets.size());
        ids.emplace(state.index(), id);
        subsets.push_back(state);
        work.push_back(id);
        return id;
    };

    struct edge {
        std::uint32_t dest;
        bdd guard;
    };
    std::vector<std::vector<edge>> edges;

    intern(initial_state);
    while (!work.empty()) {
        if (options.time_limit_seconds > 0 &&
            elapsed() > options.time_limit_seconds) {
            result = timeout_result(start);
            result.subset_states_explored = subsets.size();
            return result;
        }
        if (options.max_subset_states > 0 &&
            subsets.size() > options.max_subset_states) {
            result.status = solve_status::state_limit;
            result.subset_states_explored = subsets.size();
            result.seconds = elapsed();
            return result;
        }
        const std::uint32_t id = lifo ? work.back() : work.front();
        if (lifo) {
            work.pop_back();
        } else {
            work.pop_front();
        }
        expansion exp;
        try {
            exp = expand(subsets[id]);
        } catch (const relation_deadline_exceeded&) {
            // a single image chain inside the expansion outlived the
            // deadline armed by with_deadline()
            result = timeout_result(start);
            result.subset_states_explored = subsets.size();
            return result;
        }
        if (edges.size() <= id) { edges.resize(id + 1); }
        for (const cofactor_class& c : exp.successors) {
            const bdd successor = mgr.permute(c.leaf, ns_to_cs);
            edges[id].push_back({intern(successor), c.guard});
        }
        if (!exp.to_dca.is_zero()) {
            // DCA is state number `subsets.size()` once exploration ends;
            // mark with a sentinel and fix up below
            edges[id].push_back({0xffffffffu, exp.to_dca});
        }
    }
    result.subset_states_explored = subsets.size();

    const auto num_subsets = static_cast<std::uint32_t>(subsets.size());
    const std::uint32_t dca = num_subsets; // appended completion state
    edges.resize(num_subsets + 1);
    for (auto& state_edges : edges) {
        for (edge& e : state_edges) {
            if (e.dest == 0xffffffffu) { e.dest = dca; }
        }
    }
    edges[dca].push_back({dca, mgr.one()});

    // progressive trimming over u: a state survives while every u assignment
    // admits some v with a transition to a surviving state
    const bdd v_cube = mgr.cube(
        std::vector<std::uint32_t>(uv_vars.begin() +
                                       static_cast<std::ptrdiff_t>(u_vars.size()),
                                   uv_vars.end()));
    std::vector<bool> alive(num_subsets + 1, true);
    if (is_bad) {
        // prefix-close: DCN-type subsets are non-accepting in the final
        // answer and are removed before the progressive fixpoint
        for (std::uint32_t s = 0; s < num_subsets; ++s) {
            if (is_bad(subsets[s])) { alive[s] = false; }
        }
        if (!alive[0]) {
            result.empty_solution = true;
            automaton empty(mgr, uv_vars);
            empty.set_initial(empty.add_state(false));
            result.csf = std::move(empty);
            result.csf_states = 0;
            result.seconds = elapsed();
            return result;
        }
    }
    // worklist fixpoint: when a state dies only its predecessors need
    // rechecking (a full-sweep loop is quadratic at 10^5 states)
    std::vector<std::vector<std::uint32_t>> preds(num_subsets + 1);
    for (std::uint32_t s = 0; s <= num_subsets; ++s) {
        for (const edge& e : edges[s]) { preds[e.dest].push_back(s); }
    }
    const auto progressive_ok = [&](std::uint32_t s) {
        bdd dom = mgr.zero();
        for (const edge& e : edges[s]) {
            if (alive[e.dest]) { dom |= e.guard; }
        }
        return mgr.exists(dom, v_cube).is_one();
    };
    std::queue<std::uint32_t> dead;
    for (std::uint32_t s = 0; s <= num_subsets; ++s) {
        if (alive[s] && !progressive_ok(s)) {
            alive[s] = false;
            dead.push(s);
        } else if (!alive[s]) {
            dead.push(s); // is_bad casualties: propagate to predecessors
        }
    }
    while (!dead.empty()) {
        const std::uint32_t d = dead.front();
        dead.pop();
        for (const std::uint32_t p : preds[d]) {
            if (alive[p] && !progressive_ok(p)) {
                alive[p] = false;
                dead.push(p);
            }
        }
    }

    if (!alive[0]) {
        result.empty_solution = true;
        automaton empty(mgr, uv_vars);
        empty.set_initial(empty.add_state(false));
        result.csf = std::move(empty);
        result.csf_states = 0;
        result.seconds = elapsed();
        return result;
    }

    // assemble the CSF automaton (all states accepting; prefix-closed by
    // construction: DCN-bound moves were never added as edges)
    automaton csf(mgr, uv_vars);
    std::vector<std::uint32_t> remap(num_subsets + 1, 0);
    for (std::uint32_t s = 0; s <= num_subsets; ++s) {
        if (alive[s]) { remap[s] = csf.add_state(true); }
    }
    csf.set_initial(remap[0]);
    for (std::uint32_t s = 0; s <= num_subsets; ++s) {
        if (!alive[s]) { continue; }
        for (const edge& e : edges[s]) {
            if (alive[e.dest]) {
                csf.add_transition(remap[s], remap[e.dest], e.guard);
            }
        }
    }
    const automaton trimmed = trim_unreachable(csf);
    result.csf_states = trimmed.num_states();
    result.csf = trimmed;
    result.seconds = elapsed();
    return result;
}

} // namespace leq::detail
