/// \file explicit_solver.cpp
/// \brief Algorithm 1 executed literally on explicit automata.
///
/// This is the paper's generic algorithm, one operation per line, over the
/// explicit automata extracted from the networks.  It is exponential in the
/// number of network inputs and is used as the cross-validation oracle for
/// the two symbolic flows on small instances.

#include "automata/stg.hpp"
#include "eq/solver.hpp"
#include "eq/subset_common.hpp"

#include <chrono>

namespace leq {

solve_result solve_explicit(const equation_problem& problem,
                            const network& fixed, const network& spec) {
    const auto start = std::chrono::steady_clock::now();
    bdd_manager& mgr = problem.mgr();

    std::vector<std::uint32_t> f_inputs = problem.i_vars;
    f_inputs.insert(f_inputs.end(), problem.v_vars.begin(),
                    problem.v_vars.end());
    std::vector<std::uint32_t> f_outputs = problem.o_vars;
    f_outputs.insert(f_outputs.end(), problem.u_vars.begin(),
                     problem.u_vars.end());
    automaton f_aut = [&] {
        if (problem.w_vars.empty()) {
            return network_to_automaton(mgr, fixed, f_inputs, f_outputs);
        }
        // choice inputs: extract the STG over (i, v, w) and hide w, giving
        // the non-deterministic F automaton of footnote 2
        std::vector<std::uint32_t> with_w = problem.i_vars;
        with_w.insert(with_w.end(), problem.v_vars.begin(),
                      problem.v_vars.end());
        with_w.insert(with_w.end(), problem.w_vars.begin(),
                      problem.w_vars.end());
        std::vector<std::uint32_t> visible = f_inputs;
        visible.insert(visible.end(), f_outputs.begin(), f_outputs.end());
        return change_support(
            network_to_automaton(mgr, fixed, with_w, f_outputs), visible);
    }();
    const automaton s_aut =
        network_to_automaton(mgr, spec, problem.i_vars, problem.o_vars);

    // full support (i, v, u, o) and the final support (u, v)
    std::vector<std::uint32_t> full_vars = problem.i_vars;
    full_vars.insert(full_vars.end(), problem.v_vars.begin(),
                     problem.v_vars.end());
    full_vars.insert(full_vars.end(), problem.u_vars.begin(),
                     problem.u_vars.end());
    full_vars.insert(full_vars.end(), problem.o_vars.begin(),
                     problem.o_vars.end());
    std::vector<std::uint32_t> uv_vars = problem.u_vars;
    uv_vars.insert(uv_vars.end(), problem.v_vars.begin(),
                   problem.v_vars.end());

    // Algorithm 1, line by line
    automaton x = complete(s_aut);                       // 01
    x = determinize(x);                                  // 02
    x = complement(x);                                   // 03
    x = change_support(x, full_vars);                    // 04
    x = product(complete(f_aut),
                x);                                      // 05
    x = change_support(x, uv_vars);                      // 06 (hide i, o)
    x = determinize(x);                                  // 07
    x = complete(x);                                     // 08
    x = complement(x);                                   // 09
    x = prefix_close(x);                                 // 10
    x = progressive(x, problem.u_vars);                  // 11

    solve_result result;
    result.status = solve_status::ok;
    result.empty_solution = language_empty(x);
    result.csf_states = x.num_states();
    result.subset_states_explored = x.num_states();
    result.csf = std::move(x);
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    detail::read_manager_stats(result.stats, problem.mgr());
    return result;
}

} // namespace leq
