/// \file solver.hpp
/// \brief Language-equation solving: the paper's two flows and the explicit
/// oracle.
///
/// All three entry points compute the Complete Sequential Flexibility (CSF):
/// the largest prefix-closed, input-progressive solution X of F . X <= S,
/// returned as an explicit deterministic automaton over the (u,v) alphabet.
///
///  * solve_partitioned — the paper's contribution (Section 3.2): a single
///    modified subset construction driven by partitioned image computation;
///    monolithic relations are never built, completion is deferred, and
///    non-conforming transitions are trimmed to DCN on the fly.
///  * solve_monolithic — the baseline (Section 4): build the monolithic
///    transition-output relations, complete S eagerly, form the product,
///    hide i/o by quantification, then determinize traditionally.
///  * solve_explicit — Algorithm 1 executed literally on explicit automata;
///    the cross-validation oracle for small instances.
#pragma once

#include "automata/automaton.hpp"
#include "eq/problem.hpp"
#include "img/image.hpp"

#include <optional>

namespace leq {

enum class solve_status {
    ok,          ///< CSF computed
    timeout,     ///< gave up: time limit (reported as CNC in the benches)
    state_limit, ///< gave up: subset-state limit
};

struct solve_options {
    image_options img;
    /// Wall-clock limit; 0 = unlimited.  Checked between subset expansions
    /// by the driver, and additionally armed as a relation-layer deadline
    /// (`image_options::deadline`) so image chains *inside* one expansion
    /// cannot blow past the limit.
    double time_limit_seconds = 0.0;
    /// Cap on explored subset states; 0 = unlimited.
    std::size_t max_subset_states = 0;
    /// Replace subsets containing non-accepting (DC1-type) product states by
    /// DCN without exploring them (paper, Section 3.2).  Only meaningful for
    /// the monolithic flow, where such subsets are representable; switching
    /// it off is the Ablation-A baseline.
    bool trim_nonconforming = true;
};

struct solve_result {
    solve_status status = solve_status::ok;
    /// The CSF over (u,v); empty optional when status != ok.
    std::optional<automaton> csf;
    /// True when the equation has no prefix-closed progressive solution.
    bool empty_solution = false;
    std::size_t subset_states_explored = 0; ///< before progressive trimming
    std::size_t csf_states = 0;             ///< final states (incl. DCA)
    double seconds = 0.0;
};

/// Partitioned flow (the paper's method).
[[nodiscard]] solve_result solve_partitioned(const equation_problem& problem,
                                             const solve_options& options = {});

/// Monolithic baseline.
[[nodiscard]] solve_result solve_monolithic(const equation_problem& problem,
                                            const solve_options& options = {});

/// Algorithm 1 on explicit automata (oracle; exponential in |i|+|o|).
/// Uses the problem's variable ids so results are comparable.
[[nodiscard]] solve_result solve_explicit(const equation_problem& problem,
                                          const network& fixed,
                                          const network& spec);

} // namespace leq
