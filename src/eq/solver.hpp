/// \file solver.hpp
/// \brief Language-equation solving: the paper's two flows and the explicit
/// oracle.
///
/// All three entry points compute the Complete Sequential Flexibility (CSF):
/// the largest prefix-closed, input-progressive solution X of F . X <= S,
/// returned as an explicit deterministic automaton over the (u,v) alphabet.
///
///  * solve_partitioned — the paper's contribution (Section 3.2): a single
///    modified subset construction driven by partitioned image computation;
///    monolithic relations are never built, completion is deferred, and
///    non-conforming transitions are trimmed to DCN on the fly.
///  * solve_monolithic — the baseline (Section 4): build the monolithic
///    transition-output relations, complete S eagerly, form the product,
///    hide i/o by quantification, then determinize traditionally.
///  * solve_explicit — Algorithm 1 executed literally on explicit automata;
///    the cross-validation oracle for small instances.
///
/// Ownership and thread-safety: a solve runs entirely inside the
/// `equation_problem`'s BDD manager, and the returned CSF automaton holds
/// handles into that manager — keep the problem alive as long as the result.
/// Neither `bdd_manager` nor anything built on it is thread-safe; concurrent
/// solves require one manager (i.e. one `equation_problem`) per thread,
/// shared-nothing, which is exactly how the `leq batch` campaign mode runs
/// (src/cli/batch.cpp).  Distinct problems on distinct threads never share
/// state.
#pragma once

#include "automata/automaton.hpp"
#include "eq/problem.hpp"
#include "img/image.hpp"

#include <array>
#include <optional>

namespace leq {

enum class solve_status {
    ok,          ///< CSF computed
    timeout,     ///< gave up: time limit (reported as CNC in the benches)
    state_limit, ///< gave up: subset-state limit
};

struct solve_options {
    image_options img;
    /// Wall-clock limit; 0 = unlimited.  Checked between subset expansions
    /// by the driver, and additionally armed as a relation-layer deadline
    /// (`image_options::deadline`) so image chains *inside* one expansion
    /// cannot blow past the limit.  A timed-out solve returns
    /// `solve_status::timeout` with no CSF; it never throws.
    double time_limit_seconds = 0.0;
    /// Cap on explored subset states; 0 = unlimited.
    std::size_t max_subset_states = 0;
    /// Replace subsets containing non-accepting (DC1-type) product states by
    /// DCN without exploring them (paper, Section 3.2).  Only meaningful for
    /// the monolithic flow, where such subsets are representable; switching
    /// it off is the Ablation-A baseline.
    bool trim_nonconforming = true;
    /// Memory tuning for the instance's BDD manager (computed-cache sizing,
    /// GC trigger).  Consumed at `equation_problem` construction — the
    /// manager exists before the solve starts — so callers building the
    /// problem themselves must pass it there; the CLI and the KISS flow
    /// forward this field for you.
    bdd_manager_options mem = problem_manager_defaults();
};

/// Aggregate statistics of one solve, read off the transition relations the
/// flow built and the BDD manager it ran in.  Filled by the symbolic flows
/// (`solve_partitioned` / `solve_monolithic`); the explicit oracle reports
/// zeros except `live_nodes_after`.  On a driver-detected timeout the
/// counters cover the work done up to the deadline; a deadline tripped
/// inside relation construction reports zero relation counters (the
/// relations unwound), with only `live_nodes_after` still measured.
struct solve_stats {
    std::size_t relations = 0;      ///< transition relations constructed
    std::size_t relation_parts = 0; ///< partition parts across all relations
    std::size_t clusters = 0;       ///< scheduled clusters across relations
    std::size_t images = 0;         ///< image() calls served
    std::size_t preimages = 0;      ///< preimage() calls served
    /// Saturation-strategy fires across all relations: image applications
    /// inside a saturation fixpoint that discovered new states
    /// (`relation_stats::saturation_fires`); 0 under every other strategy.
    std::size_t saturation_fires = 0;
    /// Parallel-image counters across all relations (`--solve-jobs N`;
    /// both 0 on the sequential path).  `parallel_chunks` counts frontier
    /// chunks dispatched to the image pool, `transfer_nodes` the
    /// nonterminal nodes crossing managers for those dispatches.
    /// Deterministic and identical for every N >= 1.
    std::size_t parallel_chunks = 0;
    std::size_t transfer_nodes = 0;
    /// Largest partial product seen in any chain (DAG nodes).  Only tracked
    /// when `image_options::collect_stats` is set — it costs one DAG
    /// traversal per chain step.
    std::size_t peak_intermediate = 0;
    /// Live BDD nodes in the problem's manager when the solve returned.
    std::size_t live_nodes_after = 0;
    /// Computed-cache traffic of the problem's manager over the whole solve
    /// (the manager outlives individual relations, so these are totals, not
    /// per-phase).  `op_lookups`/`op_hits` split the same traffic by cached
    /// operation — index with the `bdd_op_name` order — to show which
    /// recursion is thrashing.
    std::size_t cache_lookups = 0;
    std::size_t cache_hits = 0;
    std::array<std::size_t, bdd_num_ops> op_lookups{};
    std::array<std::size_t, bdd_num_ops> op_hits{};
};

struct solve_result {
    solve_status status = solve_status::ok;
    /// The CSF over (u,v); empty optional when status != ok.
    std::optional<automaton> csf;
    /// True when the equation has no prefix-closed progressive solution.
    bool empty_solution = false;
    std::size_t subset_states_explored = 0; ///< before progressive trimming
    std::size_t csf_states = 0;             ///< final states (incl. DCA)
    double seconds = 0.0;
    solve_stats stats;
};

/// Partitioned flow (the paper's method).
[[nodiscard]] solve_result solve_partitioned(const equation_problem& problem,
                                             const solve_options& options = {});

/// Monolithic baseline.
[[nodiscard]] solve_result solve_monolithic(const equation_problem& problem,
                                            const solve_options& options = {});

/// Algorithm 1 on explicit automata (oracle; exponential in |i|+|o|).
/// Uses the problem's variable ids so results are comparable.
[[nodiscard]] solve_result solve_explicit(const equation_problem& problem,
                                          const network& fixed,
                                          const network& spec);

} // namespace leq
