/// \file kiss_flow.cpp
/// \brief KISS2 front end: parse, encode, build the equation instance.

#include "eq/kiss_flow.hpp"

#include "automata/encode.hpp"
#include "automata/kiss.hpp"

#include <stdexcept>
#include <vector>

namespace leq {

std::vector<std::string> kiss_port_names(const char* stem, std::size_t count,
                                         std::size_t from) {
    std::vector<std::string> names;
    names.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        names.push_back(stem + std::to_string(from + k));
    }
    return names;
}

network encode_kiss_network(const std::string& text,
                            const std::vector<std::string>& input_names,
                            const std::vector<std::string>& output_names,
                            const std::string& model_name) {
    bdd_manager mgr;
    std::vector<std::uint32_t> in_vars, out_vars;
    for (std::size_t k = 0; k < input_names.size(); ++k) {
        in_vars.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < output_names.size(); ++k) {
        out_vars.push_back(mgr.new_var());
    }
    const automaton fsm = read_kiss_string(text, mgr, in_vars, out_vars);
    return automaton_to_network(fsm, in_vars, out_vars, input_names,
                                output_names, model_name);
}

network encode_kiss_fixed(const std::string& f_kiss,
                          std::size_t num_shared_inputs,
                          std::size_t num_shared_outputs, std::size_t num_v,
                          std::size_t num_u, std::size_t num_choice_inputs,
                          const std::string& model_name) {
    // shared names first, then the unknown's wires, then choice inputs
    std::vector<std::string> f_inputs =
        kiss_port_names("i", num_shared_inputs);
    for (const std::string& name : kiss_port_names("xv", num_v)) {
        f_inputs.push_back(name);
    }
    for (const std::string& name : kiss_port_names("w", num_choice_inputs)) {
        f_inputs.push_back(name);
    }
    std::vector<std::string> f_outputs =
        kiss_port_names("z", num_shared_outputs);
    for (const std::string& name : kiss_port_names("xu", num_u)) {
        f_outputs.push_back(name);
    }
    return encode_kiss_network(f_kiss, f_inputs, f_outputs, model_name);
}

network encode_kiss_spec(const std::string& s_kiss, std::size_t num_inputs,
                         std::size_t num_outputs,
                         const std::string& model_name) {
    return encode_kiss_network(s_kiss, kiss_port_names("i", num_inputs),
                               kiss_port_names("z", num_outputs),
                               model_name);
}

kiss_instance build_kiss_instance(const std::string& f_kiss,
                                  const std::string& s_kiss,
                                  const bdd_manager_options& mem) {
    const kiss_header fh = read_kiss_header(f_kiss);
    const kiss_header sh = read_kiss_header(s_kiss);
    if (fh.num_inputs < sh.num_inputs || fh.num_outputs < sh.num_outputs) {
        throw std::invalid_argument(
            "build_kiss_instance: F must carry S's inputs/outputs plus v/u");
    }
    const std::size_t num_v = fh.num_inputs - sh.num_inputs;
    const std::size_t num_u = fh.num_outputs - sh.num_outputs;

    kiss_instance inst;
    inst.fixed = encode_kiss_fixed(f_kiss, sh.num_inputs, sh.num_outputs,
                                   num_v, num_u);
    inst.spec = encode_kiss_spec(s_kiss, sh.num_inputs, sh.num_outputs);
    inst.problem = std::make_unique<equation_problem>(
        inst.fixed, inst.spec, /*num_choice_inputs=*/0, mem);
    return inst;
}

kiss_solution solve_kiss(const std::string& f_kiss, const std::string& s_kiss,
                         const solve_options& options) {
    kiss_solution sol{build_kiss_instance(f_kiss, s_kiss, options.mem), {}};
    sol.result = solve_partitioned(*sol.instance.problem, options);
    return sol;
}

} // namespace leq
