/// \file kiss_flow.cpp
/// \brief KISS2 front end: parse, encode, build the equation instance.

#include "eq/kiss_flow.hpp"

#include "automata/encode.hpp"
#include "automata/kiss.hpp"

#include <stdexcept>
#include <vector>

namespace leq {

namespace {

std::vector<std::string> port_names(const char* stem, std::size_t count,
                                    std::size_t from = 0) {
    std::vector<std::string> names;
    names.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        names.push_back(stem + std::to_string(from + k));
    }
    return names;
}

/// Parse one KISS machine and encode it as a network with the given port
/// names.  A scratch manager hosts the parse; the network carries over.
network encode_kiss(const std::string& text,
                    const std::vector<std::string>& input_names,
                    const std::vector<std::string>& output_names,
                    const std::string& model_name) {
    bdd_manager mgr;
    std::vector<std::uint32_t> in_vars, out_vars;
    for (std::size_t k = 0; k < input_names.size(); ++k) {
        in_vars.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < output_names.size(); ++k) {
        out_vars.push_back(mgr.new_var());
    }
    const automaton fsm = read_kiss_string(text, mgr, in_vars, out_vars);
    return automaton_to_network(fsm, in_vars, out_vars, input_names,
                                output_names, model_name);
}

} // namespace

kiss_instance build_kiss_instance(const std::string& f_kiss,
                                  const std::string& s_kiss) {
    const kiss_header fh = read_kiss_header(f_kiss);
    const kiss_header sh = read_kiss_header(s_kiss);
    if (fh.num_inputs < sh.num_inputs || fh.num_outputs < sh.num_outputs) {
        throw std::invalid_argument(
            "build_kiss_instance: F must carry S's inputs/outputs plus v/u");
    }
    const std::size_t num_v = fh.num_inputs - sh.num_inputs;
    const std::size_t num_u = fh.num_outputs - sh.num_outputs;

    // shared names first, then the internal v/u wires
    std::vector<std::string> f_inputs = port_names("i", sh.num_inputs);
    const auto v_names = port_names("xv", num_v);
    f_inputs.insert(f_inputs.end(), v_names.begin(), v_names.end());
    std::vector<std::string> f_outputs = port_names("z", sh.num_outputs);
    const auto u_names = port_names("xu", num_u);
    f_outputs.insert(f_outputs.end(), u_names.begin(), u_names.end());

    kiss_instance inst;
    inst.fixed = encode_kiss(f_kiss, f_inputs, f_outputs, "kiss_f");
    inst.spec = encode_kiss(s_kiss, port_names("i", sh.num_inputs),
                            port_names("z", sh.num_outputs), "kiss_s");
    inst.problem =
        std::make_unique<equation_problem>(inst.fixed, inst.spec);
    return inst;
}

kiss_solution solve_kiss(const std::string& f_kiss, const std::string& s_kiss,
                         const solve_options& options) {
    kiss_solution sol{build_kiss_instance(f_kiss, s_kiss), {}};
    sol.result = solve_partitioned(*sol.instance.problem, options);
    return sol;
}

} // namespace leq
