/// \file subsolution.hpp
/// \brief Heuristic search for a small FSM sub-solution of the CSF.
///
/// The paper closes with: "Finding an optimum sub-solution of the CSF
/// remains the outstanding problem for future research."  This module is a
/// baseline for that problem: the CSF (a deterministic, prefix-closed,
/// input-progressive automaton over (u,v)) admits many contained FSMs — one
/// per way of committing to a single v response per state and u input.  We
/// extract candidates under several commitment policies, minimize each with
/// the DFA minimizer, verify containment, and keep the smallest.
///
/// This is deliberately a heuristic: exact minimum-state sub-solution
/// selection generalizes ISFSM minimization and is NP-hard.
#pragma once

#include "automata/automaton.hpp"

#include <cstdint>
#include <vector>

namespace leq {

/// How to commit to one (v, successor) choice per (state, u assignment).
enum class extraction_policy {
    first_edge,       ///< first admitting edge (the extract_fsm baseline)
    prefer_self_loop, ///< stay in the current state when allowed
    prefer_visited,   ///< re-enter already-extracted states when possible
    prefer_low_dest,  ///< deterministic bias to the lowest successor id
};

[[nodiscard]] const char* to_string(extraction_policy policy);

/// All policies, for sweeps.
[[nodiscard]] const std::vector<extraction_policy>& all_extraction_policies();

/// extract_fsm generalized over the commitment policy.  The result is a
/// deterministic FSM (complete over the u inputs) contained in the CSF.
/// Throws std::invalid_argument on an empty CSF and std::logic_error if the
/// CSF is not input-progressive.
[[nodiscard]] automaton
extract_fsm_with_policy(const automaton& csf,
                        const std::vector<std::uint32_t>& u_vars,
                        const std::vector<std::uint32_t>& v_vars,
                        extraction_policy policy);

/// One candidate of the sub-solution search.
struct subsolution_candidate {
    extraction_policy policy = extraction_policy::first_edge;
    std::size_t raw_states = 0;       ///< extracted, before minimization
    std::size_t minimized_states = 0; ///< after DFA minimization
};

/// Result of the search: the smallest minimized FSM over all policies.
struct subsolution_result {
    automaton fsm; ///< minimized winner; contained in the CSF
    extraction_policy policy = extraction_policy::first_edge;
    std::vector<subsolution_candidate> candidates; ///< per-policy sizes
};

/// Try every policy, minimize, verify containment in the CSF (internal
/// invariant; throws std::logic_error if violated), return the smallest.
[[nodiscard]] subsolution_result
select_small_subsolution(const automaton& csf,
                         const std::vector<std::uint32_t>& u_vars,
                         const std::vector<std::uint32_t>& v_vars);

/// Greedy *Moore* sub-solution: every state commits to one v assignment
/// valid for ALL u inputs, so the encoded network has no combinational
/// u -> v path and composes with F without creating the combinational
/// cycles the paper's footnote 5 warns about.  Returns std::nullopt when
/// the greedy choice runs into a state with no u-independent v (a Moore
/// solution through that state may still exist elsewhere; this is a
/// heuristic, like the rest of this module).  Throws std::invalid_argument
/// on an empty CSF.
[[nodiscard]] std::optional<automaton>
extract_moore_fsm(const automaton& csf,
                  const std::vector<std::uint32_t>& u_vars,
                  const std::vector<std::uint32_t>& v_vars);

} // namespace leq
