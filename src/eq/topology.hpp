/// \file topology.hpp
/// \brief Alternative unknown-component topologies (paper, footnote 6).
///
/// The paper presents the Figure-1 topology — X in a feedback loop with F,
/// reading F's u outputs and driving F's v inputs — but notes its results
/// are not limited to it.  This module reduces three other standard
/// topologies of the unknown-component problem to the Figure-1 interface by
/// network surgery (buffer insertion and signal renaming), so the same
/// partitioned solver applies unchanged:
///
///   cascade tail   i -> F -> u -> X -> o      (X drives the outputs)
///   cascade head   i -> X -> v -> F -> o      (X preprocesses the inputs)
///   controller     plant(i, c) -> o, X: i -> c (full input observation)
///
/// In every case the transformed F' has inputs (i..., v...) and outputs
/// (o..., u...) with i/o matching the specification by name, which is
/// exactly what equation_problem consumes.
#pragma once

#include "eq/problem.hpp"
#include "eq/solver.hpp"
#include "net/network.hpp"

#include <memory>

namespace leq {

/// Cascade tail: `front` computes u from the external inputs; the unknown
/// consumes u and must produce the external outputs.  `front`'s inputs must
/// match `spec`'s by name; its outputs become X's inputs.  The result wires
/// fresh v inputs straight through to `spec`-named outputs.
[[nodiscard]] network to_figure1_cascade_tail(const network& front,
                                              const network& spec);

/// Cascade head: the unknown reads the external inputs and feeds `back`,
/// which computes the external outputs.  `back`'s outputs must match
/// `spec`'s by name; its inputs are re-driven by fresh v inputs, and the
/// external inputs are buffered out to X as u.
[[nodiscard]] network to_figure1_cascade_head(const network& back,
                                              const network& spec);

/// Controller synthesis with full input observation: `plant` has inputs
/// (i..., c...) — the first |spec inputs| match `spec` by name, the rest are
/// control inputs for X to drive — and `spec`-named outputs.  The external
/// inputs are buffered out to X as u; X's v outputs drive c.
[[nodiscard]] network to_figure1_controller(const network& plant,
                                            const network& spec);

/// A topology instance bundled with its solution.  The solve_result's CSF
/// lives in the problem's BDD manager, so the problem (and with it the
/// manager) is owned here and must outlive any use of the automaton.
struct topology_solution {
    network fixed; ///< the Figure-1 form of the fixed component
    std::unique_ptr<equation_problem> problem;
    solve_result result;
};

/// Transform + build + solve with the partitioned flow, in one call.
[[nodiscard]] topology_solution
solve_cascade_tail(const network& front, const network& spec,
                   const solve_options& options = {});
[[nodiscard]] topology_solution
solve_cascade_head(const network& back, const network& spec,
                   const solve_options& options = {});
[[nodiscard]] topology_solution
solve_controller(const network& plant, const network& spec,
                 const solve_options& options = {});

} // namespace leq
