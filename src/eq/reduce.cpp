/// \file reduce.cpp
/// \brief Compatibility fixpoint and greedy closed-cover construction.

#include "eq/reduce.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace leq {

namespace {

/// Explicit successor tables: dest[state][u][v] = successor id, or -1.
struct tables {
    std::size_t nu = 0, nv = 0; ///< letter counts: 2^|u_vars|, 2^|v_vars|
    std::vector<std::int32_t> dest;

    [[nodiscard]] std::int32_t& at(std::size_t s, std::size_t u,
                                   std::size_t v) {
        return dest[(s * nu + u) * nv + v];
    }
    [[nodiscard]] std::int32_t at(std::size_t s, std::size_t u,
                                  std::size_t v) const {
        return dest[(s * nu + u) * nv + v];
    }
};

tables build_tables(const automaton& csf,
                    const std::vector<std::uint32_t>& u_vars,
                    const std::vector<std::uint32_t>& v_vars) {
    bdd_manager& mgr = csf.manager();
    tables t;
    t.nu = std::size_t{1} << u_vars.size();
    t.nv = std::size_t{1} << v_vars.size();
    t.dest.assign(csf.num_states() * t.nu * t.nv, -1);
    std::vector<bool> letter(mgr.num_vars(), false);
    for (std::uint32_t s = 0; s < csf.num_states(); ++s) {
        for (const transition& tr : csf.transitions(s)) {
            for (std::size_t u = 0; u < t.nu; ++u) {
                for (std::size_t b = 0; b < u_vars.size(); ++b) {
                    letter[u_vars[b]] = ((u >> b) & 1) != 0;
                }
                for (std::size_t v = 0; v < t.nv; ++v) {
                    for (std::size_t b = 0; b < v_vars.size(); ++b) {
                        letter[v_vars[b]] = ((v >> b) & 1) != 0;
                    }
                    if (mgr.eval(tr.label, letter)) {
                        t.at(s, u, v) = static_cast<std::int32_t>(tr.dest);
                    }
                }
            }
        }
    }
    return t;
}

/// Pairwise compatibility, greatest fixpoint.
std::vector<bool> compatibility(const tables& t, std::size_t n) {
    std::vector<bool> compat(n * n, true);
    const auto idx = [n](std::size_t p, std::size_t q) { return p * n + q; };
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                if (!compat[idx(p, q)]) { continue; }
                bool ok = true;
                for (std::size_t u = 0; u < t.nu && ok; ++u) {
                    bool some_v = false;
                    for (std::size_t v = 0; v < t.nv && !some_v; ++v) {
                        const std::int32_t dp = t.at(p, u, v);
                        const std::int32_t dq = t.at(q, u, v);
                        if (dp < 0 || dq < 0) { continue; }
                        const auto a = static_cast<std::size_t>(
                            std::min(dp, dq));
                        const auto b = static_cast<std::size_t>(
                            std::max(dp, dq));
                        some_v = a == b || compat[idx(a, b)];
                    }
                    ok = some_v;
                }
                if (!ok) {
                    compat[idx(p, q)] = false;
                    compat[idx(q, p)] = false;
                    changed = true;
                }
            }
        }
    }
    return compat;
}

using clique = std::vector<std::uint32_t>; // sorted member states

} // namespace

std::optional<automaton>
reduce_subsolution(const automaton& csf,
                   const std::vector<std::uint32_t>& u_vars,
                   const std::vector<std::uint32_t>& v_vars,
                   const reduction_options& options) {
    if (!csf.accepting(csf.initial())) {
        throw std::invalid_argument("reduce_subsolution: empty CSF");
    }
    const std::size_t n = csf.num_states();
    if (n > options.max_states ||
        u_vars.size() + v_vars.size() > options.max_alphabet_bits) {
        return std::nullopt;
    }
    const tables t = build_tables(csf, u_vars, v_vars);
    const std::vector<bool> compat = compatibility(t, n);
    const auto compatible = [&](std::uint32_t p, std::uint32_t q) {
        return p == q || compat[std::size_t{p} * n + q];
    };

    // the cover: cliques of pairwise-compatible states; transitions are
    // resolved while the worklist drains
    std::vector<clique> cliques;
    std::map<clique, std::size_t> clique_ids;
    std::vector<std::size_t> work;
    const auto intern = [&](clique c) -> std::size_t {
        std::sort(c.begin(), c.end());
        c.erase(std::unique(c.begin(), c.end()), c.end());
        const auto it = clique_ids.find(c);
        if (it != clique_ids.end()) { return it->second; }
        const std::size_t id = cliques.size();
        cliques.push_back(c);
        clique_ids.emplace(std::move(c), id);
        work.push_back(id);
        return id;
    };
    /// the smallest existing clique containing all of `members`, if any
    const auto find_superset = [&](const clique& members)
        -> std::optional<std::size_t> {
        std::optional<std::size_t> best;
        for (std::size_t k = 0; k < cliques.size(); ++k) {
            if (std::includes(cliques[k].begin(), cliques[k].end(),
                              members.begin(), members.end()) &&
                (!best.has_value() ||
                 cliques[k].size() < cliques[*best].size())) {
                best = k;
            }
        }
        return best;
    };

    // reduced machine skeleton: per clique, per u letter: (v letter, succ)
    struct move {
        std::size_t v = 0;
        std::size_t succ = 0;
    };
    std::vector<std::vector<move>> moves;

    (void)intern({csf.initial()});
    while (!work.empty()) {
        const std::size_t id = work.back();
        work.pop_back();
        if (cliques.size() > options.max_cliques) { return std::nullopt; }
        if (moves.size() <= id) { moves.resize(cliques.size()); }
        const clique members = cliques[id]; // copy: intern() reallocates
        std::vector<move> row(t.nu);
        for (std::size_t u = 0; u < t.nu; ++u) {
            // candidate v letters whose successor set exists for every
            // member; prefer one whose implied set sits inside an existing
            // clique, otherwise the smallest implied set
            std::optional<move> chosen;
            std::size_t chosen_size = SIZE_MAX;
            bool chosen_existing = false;
            for (std::size_t v = 0; v < t.nv; ++v) {
                clique implied;
                bool all = true;
                for (const std::uint32_t p : members) {
                    const std::int32_t d = t.at(p, u, v);
                    if (d < 0) {
                        all = false;
                        break;
                    }
                    implied.push_back(static_cast<std::uint32_t>(d));
                }
                if (!all) { continue; }
                std::sort(implied.begin(), implied.end());
                implied.erase(std::unique(implied.begin(), implied.end()),
                              implied.end());
                // the implied set must be pairwise compatible to be a
                // clique; with compatible members it always is, but guard
                // against the |C|>2 gap anyway
                bool pairwise = true;
                for (std::size_t a = 0; a < implied.size() && pairwise; ++a) {
                    for (std::size_t b = a + 1; b < implied.size(); ++b) {
                        if (!compatible(implied[a], implied[b])) {
                            pairwise = false;
                            break;
                        }
                    }
                }
                if (!pairwise) { continue; }
                const auto existing = find_superset(implied);
                if (existing.has_value()) {
                    if (!chosen_existing ||
                        cliques[*existing].size() < chosen_size) {
                        chosen = move{v, *existing};
                        chosen_size = cliques[*existing].size();
                        chosen_existing = true;
                    }
                } else if (!chosen_existing && implied.size() < chosen_size) {
                    // defer interning until this v actually wins
                    chosen = move{v, SIZE_MAX};
                    chosen_size = implied.size();
                }
            }
            if (!chosen.has_value()) {
                // pairwise compatibility did not extend to the whole clique
                // for this input: the greedy cover fails on this instance
                return std::nullopt;
            }
            if (chosen->succ == SIZE_MAX) {
                clique implied;
                for (const std::uint32_t p : members) {
                    implied.push_back(static_cast<std::uint32_t>(
                        t.at(p, u, chosen->v)));
                }
                chosen->succ = intern(std::move(implied));
            }
            row[u] = *chosen;
        }
        moves[id] = std::move(row);
    }

    // materialize the reduced FSM
    bdd_manager& mgr = csf.manager();
    automaton fsm(mgr, csf.label_vars());
    for (std::size_t k = 0; k < cliques.size(); ++k) { fsm.add_state(true); }
    fsm.set_initial(0);
    for (std::size_t id = 0; id < cliques.size(); ++id) {
        for (std::size_t u = 0; u < t.nu; ++u) {
            const move& m = moves[id][u];
            bdd label = mgr.one();
            for (std::size_t b = 0; b < u_vars.size(); ++b) {
                label &= mgr.literal(u_vars[b], ((u >> b) & 1) != 0);
            }
            for (std::size_t b = 0; b < v_vars.size(); ++b) {
                label &= mgr.literal(v_vars[b], ((m.v >> b) & 1) != 0);
            }
            fsm.add_transition(static_cast<std::uint32_t>(id),
                               static_cast<std::uint32_t>(m.succ), label);
        }
    }
    automaton small = minimize(fsm);
    if (!language_contained(small, csf)) {
        throw std::logic_error("reduce_subsolution: cover escaped the CSF");
    }
    return small;
}

} // namespace leq
