/// \file monolithic.cpp
/// \brief The monolithic baseline flow (paper, Section 4).
///
/// Following the paper's description of the traditional computation: the
/// monolithic transition-output relations TO_F and TO_S are built, S is
/// completed eagerly with an explicit DC1 state (one extra state bit),
/// complemented by swapping acceptance, the product TO_F & TO_S' is formed
/// as one conjunction, the external variables i and o are hidden by
/// quantification, and the resulting non-deterministic relation is
/// determinized with a standard subset construction.  The final
/// prefix-close/progressive steps are shared with the partitioned flow.
///
/// The expensive objects the partitioned flow avoids — TO_F, the completed
/// TO_S', their product and the quantified product — are all materialized
/// here; this is exactly what the Table-1 comparison measures.  Each of them
/// is built as a transition-relation image with `from = 1` (the relation
/// layer is the only conjunction path in the codebase); under the default
/// early-quantification options the hidden variables still retire at their
/// last occurrence, which is sound and yields the identical canonical BDDs.

#include "eq/solver.hpp"
#include "eq/subset_common.hpp"
#include "img/parallel.hpp"

#include <memory>

namespace leq {

solve_result solve_monolithic(const equation_problem& problem,
                              const solve_options& options) {
    const auto start = std::chrono::steady_clock::now();
    bdd_manager& mgr = problem.mgr();
    solve_options local = detail::with_deadline(options);
    // --solve-jobs N: one pool for the whole solve, declared before the
    // try block so it outlives every relation (their dtors call forget())
    std::unique_ptr<image_pool> pool;
    if (local.img.solve_jobs > 0 && local.img.executor == nullptr) {
        pool = std::make_unique<image_pool>(local.img.solve_jobs);
        local.img.executor = pool.get();
    }

    try {
        // ---- monolithic relations -------------------------------------------
        // TO_F(i,v,u,o,cs_F,ns_F): the full product of F's output and
        // next-state parts.  Choice inputs w are not part of F's alphabet;
        // quantifying them (at their last occurrence across the clustered
        // product) yields the non-deterministic TO_F.
        std::vector<bdd> f_parts;
        for (std::size_t m = 0; m < problem.u_vars.size(); ++m) {
            f_parts.push_back(mgr.var(problem.u_vars[m]).iff(problem.f_u[m]));
        }
        for (std::size_t j = 0; j < problem.o_vars.size(); ++j) {
            f_parts.push_back(mgr.var(problem.o_vars[j]).iff(problem.f_o[j]));
        }
        for (std::size_t k = 0; k < problem.ns_f.size(); ++k) {
            f_parts.push_back(mgr.var(problem.ns_f[k]).iff(problem.f_next[k]));
        }
        // each relation lives only long enough to produce its product (its
        // merged-cluster BDDs must not stay referenced through the subset
        // construction); its counters are folded into `stats` on the way out
        solve_stats stats;
        bdd to_f;
        {
            const transition_relation f_rel(mgr, std::move(f_parts),
                                            problem.w_vars, local.img);
            to_f = f_rel.image(mgr.one());
            detail::accumulate_stats(stats, f_rel);
        }

        // TO_S(i,o,cs_S,ns_S): nothing to hide, the image is the product
        std::vector<bdd> s_parts;
        for (std::size_t j = 0; j < problem.o_vars.size(); ++j) {
            s_parts.push_back(mgr.var(problem.o_vars[j]).iff(problem.s_o[j]));
        }
        for (std::size_t k = 0; k < problem.ns_s.size(); ++k) {
            s_parts.push_back(mgr.var(problem.ns_s[k]).iff(problem.s_next[k]));
        }
        bdd to_s;
        {
            const transition_relation s_rel(mgr, std::move(s_parts), {},
                                            local.img);
            to_s = s_rel.image(mgr.one());
            detail::accumulate_stats(stats, s_rel);
        }

        // ---- eager completion of S with the DC1 state ------------------------
        // DC1 = (dc = 1, cs_S = 0...0); one extra state bit (the paper notes
        // an unreachable code cannot be reused because unreachable states
        // still have successors).
        const bdd dc0 = mgr.nvar(problem.dc_cs);
        const bdd dcn0 = mgr.nvar(problem.dc_ns);
        bdd s_zero_cs = mgr.one(), s_zero_ns = mgr.one();
        for (const std::uint32_t v : problem.cs_s) { s_zero_cs &= mgr.nvar(v); }
        for (const std::uint32_t v : problem.ns_s) { s_zero_ns &= mgr.nvar(v); }
        const bdd dc_state_cs = mgr.var(problem.dc_cs) & s_zero_cs;
        const bdd dc_state_ns = mgr.var(problem.dc_ns) & s_zero_ns;

        // A(i,o,cs_S): combinations where S is undefined
        const bdd ns_s_cube = mgr.cube(problem.ns_s);
        const bdd undefined_s = !mgr.exists(to_s, ns_s_cube);
        const bdd to_s_completed = (dc0 & to_s & dcn0) |
                                   (dc0 & undefined_s & dc_state_ns) |
                                   (dc_state_cs & dc_state_ns);
        // after complementation of S the only accepting state is DC1
        const bdd accepting_product = dc_state_cs; // F states all accepting

        // ---- product and hiding ----------------------------------------------
        std::vector<std::uint32_t> io_vars = problem.i_vars;
        io_vars.insert(io_vars.end(), problem.o_vars.begin(),
                       problem.o_vars.end());
        bdd hidden;
        {
            const transition_relation product_rel(mgr, {to_f, to_s_completed},
                                                  io_vars, local.img);
            hidden = product_rel.image(mgr.one());
            detail::accumulate_stats(stats, product_rel);
        }

        // ---- traditional subset construction ---------------------------------
        std::vector<std::uint32_t> uv_vars = problem.u_vars;
        uv_vars.insert(uv_vars.end(), problem.v_vars.begin(),
                       problem.v_vars.end());
        std::vector<std::uint32_t> cs_vars = problem.cs_f;
        cs_vars.insert(cs_vars.end(), problem.cs_s.begin(),
                       problem.cs_s.end());
        cs_vars.push_back(problem.dc_cs);
        std::vector<std::uint32_t> ns_vars = problem.ns_f;
        ns_vars.insert(ns_vars.end(), problem.ns_s.begin(),
                       problem.ns_s.end());
        ns_vars.push_back(problem.dc_ns);
        const bdd ns_cube = mgr.cube(ns_vars);

        const detail::subset_driver driver{mgr, uv_vars, problem.u_vars,
                                           problem.ns_to_cs_permutation(),
                                           local};
        const std::uint32_t boundary = problem.uv_boundary_level();

        // per-subset-state image of the (single, monolithic) hidden relation
        // — through the same layer, so the img options (naive vs
        // last-occurrence quantification, reach strategy) apply to this flow
        // too; with one part the relation degenerates to and_exists
        const transition_relation step_rel(mgr, {hidden}, cs_vars, local.img);

        // initial product state: F and S initial, dc = 0
        const bdd initial = problem.initial_product_state() & dc0;

        // acceptance over ns variables (to classify successor leaves)
        const bdd accepting_ns =
            mgr.permute(accepting_product, problem.ns_to_cs_permutation());

        const auto expand = [&](const bdd& psi) {
            const bdd p = step_rel.image(psi);
            detail::expansion exp{detail::split_by_top_block(mgr, p, boundary),
                                  mgr.zero()};
            exp.to_dca = !mgr.exists(p, ns_cube);
            if (local.trim_nonconforming) {
                // prefix-closed trimming (paper, Section 3.2): a successor
                // containing an (a, DC1)-type state is DCN; drop the move and
                // never explore it
                std::vector<detail::cofactor_class> kept;
                kept.reserve(exp.successors.size());
                for (detail::cofactor_class& c : exp.successors) {
                    if ((c.leaf & accepting_ns).is_zero()) {
                        kept.push_back(std::move(c));
                    }
                }
                exp.successors = std::move(kept);
            }
            return exp;
        };

        solve_result result;
        if (local.trim_nonconforming) {
            result = driver.run(initial, expand);
        } else {
            // Ablation-A baseline: explore DCN-type subsets too and remove
            // them only in the final prefix-close
            result = driver.run(initial, expand, [&](const bdd& psi) {
                return !(psi & accepting_product).is_zero();
            });
        }
        result.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        detail::accumulate_stats(stats, step_rel);
        result.stats = stats;
        detail::read_manager_stats(result.stats, mgr);
        return result;
    } catch (const relation_deadline_exceeded&) {
        // a relation build or image chain outlived the time limit before the
        // driver could notice (the driver handles its own expansions); the
        // relation counters died with the unwound relations
        solve_result result = detail::timeout_result(start);
        detail::read_manager_stats(result.stats, mgr);
        return result;
    }
}

} // namespace leq
