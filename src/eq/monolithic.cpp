/// \file monolithic.cpp
/// \brief The monolithic baseline flow (paper, Section 4).
///
/// Following the paper's description of the traditional computation: the
/// monolithic transition-output relations TO_F and TO_S are built, S is
/// completed eagerly with an explicit DC1 state (one extra state bit),
/// complemented by swapping acceptance, the product TO_F & TO_S' is formed
/// as one conjunction, the external variables i and o are hidden by
/// quantification, and the resulting non-deterministic relation is
/// determinized with a standard subset construction.  The final
/// prefix-close/progressive steps are shared with the partitioned flow.
///
/// The expensive objects the partitioned flow avoids — TO_F, the completed
/// TO_S', their product and the quantified product — are all materialized
/// here; this is exactly what the Table-1 comparison measures.

#include "eq/solver.hpp"
#include "eq/subset_common.hpp"

namespace leq {

solve_result solve_monolithic(const equation_problem& problem,
                              const solve_options& options) {
    const auto start = std::chrono::steady_clock::now();
    const auto timed_out = [&] {
        return options.time_limit_seconds > 0 &&
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                       .count() > options.time_limit_seconds;
    };
    bdd_manager& mgr = problem.mgr();

    // ---- monolithic relations ---------------------------------------------
    // TO_F(i,v,u,o,cs_F,ns_F)
    bdd to_f = mgr.one();
    for (std::size_t m = 0; m < problem.u_vars.size(); ++m) {
        to_f &= mgr.var(problem.u_vars[m]).iff(problem.f_u[m]);
    }
    for (std::size_t j = 0; j < problem.o_vars.size(); ++j) {
        to_f &= mgr.var(problem.o_vars[j]).iff(problem.f_o[j]);
    }
    for (std::size_t k = 0; k < problem.ns_f.size(); ++k) {
        to_f &= mgr.var(problem.ns_f[k]).iff(problem.f_next[k]);
    }
    if (!problem.w_vars.empty()) {
        // choice inputs are not part of F's alphabet: quantifying them from
        // the finished monolithic relation (quantification does not commute
        // with the product, so it cannot happen per part) yields the
        // non-deterministic TO_F
        to_f = mgr.exists(to_f, mgr.cube(problem.w_vars));
    }
    if (timed_out()) { return {solve_status::timeout, std::nullopt, false, 0, 0, 0}; }

    // TO_S(i,o,cs_S,ns_S)
    bdd to_s = mgr.one();
    for (std::size_t j = 0; j < problem.o_vars.size(); ++j) {
        to_s &= mgr.var(problem.o_vars[j]).iff(problem.s_o[j]);
    }
    for (std::size_t k = 0; k < problem.ns_s.size(); ++k) {
        to_s &= mgr.var(problem.ns_s[k]).iff(problem.s_next[k]);
    }
    if (timed_out()) { return {solve_status::timeout, std::nullopt, false, 0, 0, 0}; }

    // ---- eager completion of S with the DC1 state --------------------------
    // DC1 = (dc = 1, cs_S = 0...0); one extra state bit (the paper notes an
    // unreachable code cannot be reused because unreachable states still
    // have successors).
    const bdd dc0 = mgr.nvar(problem.dc_cs);
    const bdd dcn0 = mgr.nvar(problem.dc_ns);
    bdd s_zero_cs = mgr.one(), s_zero_ns = mgr.one();
    for (const std::uint32_t v : problem.cs_s) { s_zero_cs &= mgr.nvar(v); }
    for (const std::uint32_t v : problem.ns_s) { s_zero_ns &= mgr.nvar(v); }
    const bdd dc_state_cs = mgr.var(problem.dc_cs) & s_zero_cs;
    const bdd dc_state_ns = mgr.var(problem.dc_ns) & s_zero_ns;

    // A(i,o,cs_S): combinations where S is undefined
    const bdd ns_s_cube = mgr.cube(problem.ns_s);
    const bdd undefined_s = !mgr.exists(to_s, ns_s_cube);
    const bdd to_s_completed = (dc0 & to_s & dcn0) |
                               (dc0 & undefined_s & dc_state_ns) |
                               (dc_state_cs & dc_state_ns);
    // after complementation of S the only accepting state is DC1
    const bdd accepting_product = dc_state_cs; // F states are all accepting

    if (timed_out()) { return {solve_status::timeout, std::nullopt, false, 0, 0, 0}; }

    // ---- product and hiding -------------------------------------------------
    const bdd product = to_f & to_s_completed;
    if (timed_out()) { return {solve_status::timeout, std::nullopt, false, 0, 0, 0}; }
    std::vector<std::uint32_t> io_vars = problem.i_vars;
    io_vars.insert(io_vars.end(), problem.o_vars.begin(),
                   problem.o_vars.end());
    const bdd hidden = mgr.exists(product, mgr.cube(io_vars));
    if (timed_out()) { return {solve_status::timeout, std::nullopt, false, 0, 0, 0}; }

    // ---- traditional subset construction ------------------------------------
    std::vector<std::uint32_t> uv_vars = problem.u_vars;
    uv_vars.insert(uv_vars.end(), problem.v_vars.begin(),
                   problem.v_vars.end());
    std::vector<std::uint32_t> cs_vars = problem.cs_f;
    cs_vars.insert(cs_vars.end(), problem.cs_s.begin(), problem.cs_s.end());
    cs_vars.push_back(problem.dc_cs);
    std::vector<std::uint32_t> ns_vars = problem.ns_f;
    ns_vars.insert(ns_vars.end(), problem.ns_s.begin(), problem.ns_s.end());
    ns_vars.push_back(problem.dc_ns);
    const bdd ns_cube = mgr.cube(ns_vars);

    const detail::subset_driver driver{mgr, uv_vars, problem.u_vars,
                                       problem.ns_to_cs_permutation(), options};
    const std::uint32_t boundary = problem.uv_boundary_level();

    // per-subset-state image of the (single, monolithic) hidden relation —
    // routed through the image engine so the img options (naive vs
    // last-occurrence quantification, reach strategy) apply to this flow too;
    // with one part the engine degenerates to and_exists as before
    const image_engine step_engine(mgr, {hidden}, cs_vars, options.img);

    // initial product state: F and S initial, dc = 0
    const bdd initial = problem.initial_product_state() & dc0;

    // acceptance over ns variables (to classify successor leaves)
    const bdd accepting_ns =
        mgr.permute(accepting_product, problem.ns_to_cs_permutation());

    const auto expand = [&](const bdd& psi) {
        const bdd p = step_engine.image(psi);
        detail::expansion exp{detail::split_by_top_block(mgr, p, boundary),
                              mgr.zero()};
        exp.to_dca = !mgr.exists(p, ns_cube);
        if (options.trim_nonconforming) {
            // prefix-closed trimming (paper, Section 3.2): a successor
            // containing an (a, DC1)-type state is DCN; drop the move and
            // never explore it
            std::vector<detail::cofactor_class> kept;
            kept.reserve(exp.successors.size());
            for (detail::cofactor_class& c : exp.successors) {
                if ((c.leaf & accepting_ns).is_zero()) {
                    kept.push_back(std::move(c));
                }
            }
            exp.successors = std::move(kept);
        }
        return exp;
    };

    solve_result result;
    if (options.trim_nonconforming) {
        result = driver.run(initial, expand);
    } else {
        // Ablation-A baseline: explore DCN-type subsets too and remove them
        // only in the final prefix-close
        result = driver.run(initial, expand, [&](const bdd& psi) {
            return !(psi & accepting_product).is_zero();
        });
    }
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

} // namespace leq
