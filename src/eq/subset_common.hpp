/// \file subset_common.hpp
/// \brief Machinery shared by the partitioned and monolithic subset
/// constructions: (u,v)-cofactor class extraction, the worklist driver,
/// progressive trimming and assembly of the final CSF automaton.
#pragma once

#include "automata/automaton.hpp"
#include "bdd/bdd.hpp"
#include "eq/solver.hpp"

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace leq::detail {

/// Copy of `options` with the relation-layer deadline armed from
/// `time_limit_seconds` (when a limit is set and no deadline is present).
/// Solvers pass the result to their transition relations and to the driver,
/// so a deep image chain *inside* one subset expansion trips the timeout
/// (the driver's own check only runs between expansions).
[[nodiscard]] solve_options with_deadline(const solve_options& options);

/// A timeout-status result with `seconds` measured from `start` (shared by
/// the driver and both solvers' deadline handlers).
[[nodiscard]] solve_result
timeout_result(std::chrono::steady_clock::time_point start);

/// Fold one relation's shape and counters into a solve's aggregate stats
/// (both flows call this once per transition relation they built).
void accumulate_stats(solve_stats& stats, const transition_relation& rel);

/// Snapshot the manager-side counters into a finished solve's stats: live
/// nodes (forces a count) plus total and per-op computed-cache traffic.
/// Every solver exit path — success or deadline — calls this last.
void read_manager_stats(solve_stats& stats, bdd_manager& mgr);

/// One (u,v)-cofactor class of an image P(u,v,ns): the set of (u,v)
/// assignments (guard) that lead to the same successor state set (leaf, over
/// the ns variables).
struct cofactor_class {
    bdd guard; ///< over the (u,v) block
    bdd leaf;  ///< successor set over ns variables (never constant false)
};

/// Split P into its cofactor classes with respect to the top block of the
/// variable order (levels < boundary).  Relies on the problem's variable
/// order: every (u,v) variable is above `boundary`, everything else below,
/// so the classes are exactly the distinct sub-BDDs hanging off the block
/// and each guard is read off with one memoized traversal.
[[nodiscard]] std::vector<cofactor_class>
split_by_top_block(bdd_manager& mgr, const bdd& p, std::uint32_t boundary);

/// Union of all guards (the domain over (u,v)) of a split.
[[nodiscard]] bdd guard_domain(bdd_manager& mgr,
                               const std::vector<cofactor_class>& classes);

/// Result of expanding one subset state.
struct expansion {
    std::vector<cofactor_class> successors; ///< guard -> successor subset
    bdd to_dca;                             ///< guard of undefined (u,v)
};

/// Generic subset-construction driver.  `expand` maps a subset state (over
/// current-state variables) to its successor classes (leaves over
/// next-state variables; the driver renames them back).  Returns the CSF
/// after progressive trimming, or an early status on limits.
struct subset_driver {
    bdd_manager& mgr;
    std::vector<std::uint32_t> uv_vars;    ///< u then v (label variables)
    std::vector<std::uint32_t> u_vars;     ///< X's inputs (progressive set)
    std::vector<std::uint32_t> ns_to_cs;   ///< permutation for leaf renaming
    const solve_options& options;

    /// \param is_bad optional classifier for DCN-type subsets (those meeting
    ///        an accepting product state).  With the paper's trimming, such
    ///        subsets are filtered inside `expand` and never reach the
    ///        driver; the Ablation-A baseline instead explores them and
    ///        passes this predicate so the prefix-close step can remove them
    ///        afterwards.
    [[nodiscard]] solve_result
    run(const bdd& initial_state,
        const std::function<expansion(const bdd&)>& expand,
        const std::function<bool(const bdd&)>& is_bad = nullptr) const;
};

} // namespace leq::detail
