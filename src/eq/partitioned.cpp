/// \file partitioned.cpp
/// \brief The paper's partitioned flow (Section 3.2).
///
/// The whole of Algorithm 1 is folded into one modified subset construction:
///
///   for each subset state psi(cs_F, cs_S):
///     Q_psi(u,v)    = OR_j  exists_{i,cs} [ AND_m (u_m == U_m)
///                                           & !C_j & psi ]
///     P_psi(u,v,ns) = exists_{i,cs} [ AND_m (u_m == U_m)
///                                     & AND_k (ns_k == T_k) & psi ]
///     P'            = P_psi & !Q_psi
///     successors    = (u,v)-cofactor classes of P'
///     DCA guard     = !Q_psi & !domain(P_psi)
///
/// Q_psi is computed one output at a time (the monolithic conformance
/// relation C(i,v,cs) is never built) and both images run through the
/// shared transition-relation layer (src/rel/) with early quantification.
/// Transitions in Q_psi would lead to subsets containing (a, DC1) product
/// states; because the final answer must be prefix-closed they are
/// redirected to the trimmed DCN sink, i.e. simply dropped, and their
/// successors are never explored.  Completion of F and S is deferred into
/// this construction (Theorem 1 and Corollary 1 justify the deferral); DCA
/// is the deferred completion state, accepting after the final
/// complementation.

#include "eq/solver.hpp"
#include "eq/subset_common.hpp"
#include "img/parallel.hpp"

#include <memory>

namespace leq {

solve_result solve_partitioned(const equation_problem& problem,
                               const solve_options& options) {
    const auto start = std::chrono::steady_clock::now();
    bdd_manager& mgr = problem.mgr();
    // arm the relation-layer deadline so a deep image chain inside one
    // subset expansion respects the solver time limit (the driver only
    // checks between expansions)
    solve_options local = detail::with_deadline(options);
    // --solve-jobs N: spawn the image pool for this solve.  Declared
    // before the try block so it outlives every relation built below —
    // relation destructors call back into the pool (forget()).
    std::unique_ptr<image_pool> pool;
    if (local.img.solve_jobs > 0 && local.img.executor == nullptr) {
        pool = std::make_unique<image_pool>(local.img.solve_jobs);
        local.img.executor = pool.get();
    }

    try {
        // relation parts shared by both images: u_m == U_m(i, v, cs_F)
        std::vector<bdd> u_match;
        u_match.reserve(problem.u_vars.size());
        for (std::size_t m = 0; m < problem.u_vars.size(); ++m) {
            u_match.push_back(mgr.var(problem.u_vars[m]).iff(problem.f_u[m]));
        }
        // next-state parts for F and S
        std::vector<bdd> ns_parts;
        for (std::size_t k = 0; k < problem.ns_f.size(); ++k) {
            ns_parts.push_back(
                mgr.var(problem.ns_f[k]).iff(problem.f_next[k]));
        }
        for (std::size_t k = 0; k < problem.ns_s.size(); ++k) {
            ns_parts.push_back(
                mgr.var(problem.ns_s[k]).iff(problem.s_next[k]));
        }

        std::vector<std::uint32_t> quantify = problem.hidden_input_vars();
        quantify.insert(quantify.end(), problem.cs_f.begin(),
                        problem.cs_f.end());
        quantify.insert(quantify.end(), problem.cs_s.begin(),
                        problem.cs_s.end());

        // successor relation: u-match plus next-state parts.  options.img
        // carries the reach strategy: chaining makes both relations apply
        // their parts strictly sequentially (and the driver below explore
        // subset states depth-first); bfs/frontier keep the greedy
        // cost-driven schedule and layer-order exploration; saturation
        // keeps the greedy schedule but explores depth-first like chaining
        // (the subset-level analogue of its immediate-feedback worklist).
        std::vector<bdd> p_parts = u_match;
        p_parts.insert(p_parts.end(), ns_parts.begin(), ns_parts.end());
        const transition_relation p_rel(mgr, p_parts, quantify, local.img);

        // one non-conformance relation per output: u-match plus !C_j
        std::vector<transition_relation> q_rels;
        q_rels.reserve(problem.s_o.size());
        for (std::size_t j = 0; j < problem.s_o.size(); ++j) {
            std::vector<bdd> parts = u_match;
            parts.push_back(!problem.conformance(j));
            q_rels.emplace_back(mgr, std::move(parts), quantify, local.img);
        }

        std::vector<std::uint32_t> uv_vars = problem.u_vars;
        uv_vars.insert(uv_vars.end(), problem.v_vars.begin(),
                       problem.v_vars.end());

        const detail::subset_driver driver{mgr, uv_vars, problem.u_vars,
                                           problem.ns_to_cs_permutation(),
                                           local};
        const std::uint32_t boundary = problem.uv_boundary_level();
        const bdd ns_cube = mgr.cube(problem.all_ns_vars());

        solve_result result = driver.run(
            problem.initial_product_state(), [&](const bdd& psi) {
                // Q_psi: (u,v) combinations on which some member state can
                // produce a non-conforming output for some external input i
                bdd q = mgr.zero();
                for (const transition_relation& rel : q_rels) {
                    q |= rel.image(psi);
                }
                const bdd p = p_rel.image(psi);
                const bdd p_ok = p & !q;

                detail::expansion exp{
                    detail::split_by_top_block(mgr, p_ok, boundary),
                    mgr.zero()};
                // undefined (u,v): no product transition at all, not trimmed
                const bdd domain = mgr.exists(p, ns_cube);
                exp.to_dca = (!q) & (!domain);
                return exp;
            });
        detail::accumulate_stats(result.stats, p_rel);
        for (const transition_relation& rel : q_rels) {
            detail::accumulate_stats(result.stats, rel);
        }
        detail::read_manager_stats(result.stats, mgr);
        return result;
    } catch (const relation_deadline_exceeded&) {
        // relation construction (clustering) outlived the time limit before
        // the driver could notice (the driver handles its own expansions);
        // the relation counters died with the unwound relations
        solve_result result = detail::timeout_result(start);
        detail::read_manager_stats(result.stats, mgr);
        return result;
    }
}

} // namespace leq
