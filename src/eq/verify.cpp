/// \file verify.cpp
/// \brief Symbolic verification of a computed CSF.
///
/// Both checks run their successor steps through the shared
/// transition-relation layer (src/rel/): the X_P walk is a relation with no
/// parts (image = exists v . r & label, renamed u -> v), the composition
/// walk is the full u-match + next-state partition, and the "X enabled"
/// substitution is the u-match relation quantifying u.

#include "eq/verify.hpp"

#include "rel/relation.hpp"

#include <queue>
#include <stdexcept>

namespace leq {

bool verify_particular_contained(const equation_problem& problem,
                                 const automaton& csf,
                                 const std::vector<bool>& x_init) {
    bdd_manager& mgr = problem.mgr();
    if (problem.u_vars.size() != problem.v_vars.size() ||
        x_init.size() != problem.v_vars.size()) {
        throw std::invalid_argument(
            "verify_particular_contained: X_P must pair every u with a v");
    }
    // X_P's state is its v vector; a step reads any u, asserts v = state,
    // and moves to state' = u.  Containment in the (deterministic,
    // prefix-closed) CSF fails exactly when some reachable pair
    // (X_P state, CSF state) admits a (u, v=state) move the CSF lacks.
    // The step relation has no parts of its own: successor X_P states are
    // exists v . r & label, with the enabled u values renamed to v.
    transition_relation xp_step(mgr, {}, problem.v_vars);
    xp_step.rename_result(problem.uv_swap_permutation());

    std::vector<bdd> reached(csf.num_states(), mgr.zero());
    bdd init = mgr.one();
    for (std::size_t m = 0; m < problem.v_vars.size(); ++m) {
        init &= mgr.literal(problem.v_vars[m], x_init[m]);
    }
    reached[csf.initial()] = init;

    std::queue<std::uint32_t> work;
    work.push(csf.initial());
    std::vector<bool> queued(csf.num_states(), false);
    queued[csf.initial()] = true;
    while (!work.empty()) {
        const std::uint32_t q = work.front();
        work.pop();
        queued[q] = false;
        const bdd r = reached[q];
        // miss: a (v in r, any u) step with no CSF transition
        if (!(r & !csf.domain(q)).is_zero()) { return false; }
        for (const transition& t : csf.transitions(q)) {
            const bdd next = xp_step.image(r, t.label);
            const bdd grown = reached[t.dest] | next;
            if (grown != reached[t.dest]) {
                reached[t.dest] = grown;
                if (!queued[t.dest]) {
                    queued[t.dest] = true;
                    work.push(t.dest);
                }
            }
        }
    }
    return true;
}

bool verify_composition_contained(const equation_problem& problem,
                                  const automaton& csf) {
    bdd_manager& mgr = problem.mgr();
    // u_m == U_m(i, v, cs_F) parts, used both to substitute u in the CSF
    // guards and to drive the successor image
    std::vector<bdd> u_match;
    for (std::size_t m = 0; m < problem.u_vars.size(); ++m) {
        u_match.push_back(mgr.var(problem.u_vars[m]).iff(problem.f_u[m]));
    }
    std::vector<bdd> parts = u_match;
    for (std::size_t k = 0; k < problem.ns_f.size(); ++k) {
        parts.push_back(mgr.var(problem.ns_f[k]).iff(problem.f_next[k]));
    }
    for (std::size_t k = 0; k < problem.ns_s.size(); ++k) {
        parts.push_back(mgr.var(problem.ns_s[k]).iff(problem.s_next[k]));
    }
    std::vector<std::uint32_t> quantify = problem.hidden_input_vars();
    quantify.insert(quantify.end(), problem.u_vars.begin(),
                    problem.u_vars.end());
    quantify.insert(quantify.end(), problem.v_vars.begin(),
                    problem.v_vars.end());
    quantify.insert(quantify.end(), problem.cs_f.begin(), problem.cs_f.end());
    quantify.insert(quantify.end(), problem.cs_s.begin(), problem.cs_s.end());
    transition_relation step(mgr, std::move(parts), std::move(quantify));
    step.rename_result(problem.ns_to_cs_permutation());

    // per CSF state: "X enabled" condition E_q(i, v, cs_F): exists u with a
    // CSF move where u matches F's u outputs
    const transition_relation u_subst(mgr, u_match, problem.u_vars);
    std::vector<bdd> enabled(csf.num_states(), mgr.zero());
    for (std::uint32_t q = 0; q < csf.num_states(); ++q) {
        enabled[q] = u_subst.image(csf.domain(q));
    }

    std::vector<bdd> reached(csf.num_states(), mgr.zero());
    reached[csf.initial()] = problem.initial_product_state();
    std::queue<std::uint32_t> work;
    work.push(csf.initial());
    std::vector<bool> queued(csf.num_states(), false);
    queued[csf.initial()] = true;
    while (!work.empty()) {
        const std::uint32_t q = work.front();
        work.pop();
        queued[q] = false;
        const bdd r = reached[q];
        // violation: an enabled composed step whose o output disagrees with
        // S on some output j (checked one output at a time; the monolithic
        // conformance relation is never built)
        for (std::size_t j = 0; j < problem.s_o.size(); ++j) {
            if (!((r & enabled[q]) & !problem.conformance(j)).is_zero()) {
                return false;
            }
        }
        for (const transition& t : csf.transitions(q)) {
            const bdd next = step.image(r, t.label);
            const bdd grown = reached[t.dest] | next;
            if (grown != reached[t.dest]) {
                reached[t.dest] = grown;
                if (!queued[t.dest]) {
                    queued[t.dest] = true;
                    work.push(t.dest);
                }
            }
        }
    }
    return true;
}

} // namespace leq
