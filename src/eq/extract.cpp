/// \file extract.cpp
/// \brief Greedy FSM extraction from a CSF.

#include "eq/extract.hpp"

#include <map>
#include <queue>
#include <stdexcept>

namespace leq {

automaton extract_fsm(const automaton& csf,
                      const std::vector<std::uint32_t>& u_vars,
                      const std::vector<std::uint32_t>& v_vars) {
    bdd_manager& mgr = csf.manager();
    if (u_vars.size() > 20) {
        throw std::invalid_argument("extract_fsm: too many inputs");
    }
    if (!csf.accepting(csf.initial())) {
        throw std::invalid_argument("extract_fsm: empty CSF");
    }
    automaton fsm(mgr, csf.label_vars());
    std::map<std::uint32_t, std::uint32_t> ids; // csf state -> fsm state
    std::queue<std::uint32_t> work;
    const auto intern = [&](std::uint32_t q) {
        const auto it = ids.find(q);
        if (it != ids.end()) { return it->second; }
        const std::uint32_t id = fsm.add_state(true);
        ids.emplace(q, id);
        work.push(q);
        return id;
    };
    fsm.set_initial(intern(csf.initial()));
    while (!work.empty()) {
        const std::uint32_t q = work.front();
        work.pop();
        const std::uint32_t src = ids.at(q);
        for (std::size_t m = 0; m < (std::size_t{1} << u_vars.size()); ++m) {
            bdd u_cube = mgr.one();
            for (std::size_t b = 0; b < u_vars.size(); ++b) {
                u_cube &= mgr.literal(u_vars[b], ((m >> b) & 1) != 0);
            }
            // first edge admitting this input wins; commit to one v choice
            bool placed = false;
            for (const transition& t : csf.transitions(q)) {
                const bdd enabled = t.label & u_cube;
                if (enabled.is_zero()) { continue; }
                // pick one (u,v) minterm's v part: a full cube over u,v
                bdd choice = mgr.pick_cube(enabled);
                // the cube may leave some v free; pin the rest to 0
                for (const std::uint32_t v : v_vars) {
                    const bdd pinned = choice & mgr.nvar(v);
                    if (!pinned.is_zero()) { choice = pinned; }
                }
                fsm.add_transition(src, intern(t.dest), choice);
                placed = true;
                break;
            }
            if (!placed) {
                throw std::logic_error(
                    "extract_fsm: CSF is not input-progressive");
            }
        }
    }
    return fsm;
}

} // namespace leq
