/// \file problem.cpp
/// \brief Variable allocation and partitioned sweep for an equation instance.

#include "eq/problem.hpp"

#include "net/netbdd.hpp"

#include <algorithm>
#include <stdexcept>

namespace leq {

bdd_manager_options problem_manager_defaults() {
    bdd_manager_options mem;
    mem.cache_bits = 18;
    mem.max_cache_bits = 24;
    return mem;
}

equation_problem::equation_problem(const network& fixed, const network& spec,
                                   std::size_t num_choice_inputs,
                                   const bdd_manager_options& mem) {
    if (fixed.num_inputs() < spec.num_inputs() + num_choice_inputs ||
        fixed.num_outputs() < spec.num_outputs()) {
        throw std::invalid_argument(
            "equation_problem: F must carry S's inputs/outputs plus v/u/w");
    }
    const std::size_t num_i = spec.num_inputs();
    const std::size_t num_o = spec.num_outputs();
    const std::size_t num_v =
        fixed.num_inputs() - num_i - num_choice_inputs;
    const std::size_t num_u = fixed.num_outputs() - num_o;
    // shared ports must match by name (latch splitting preserves them)
    for (std::size_t k = 0; k < num_i; ++k) {
        if (fixed.signal_name(fixed.inputs()[k]) !=
            spec.signal_name(spec.inputs()[k])) {
            throw std::invalid_argument(
                "equation_problem: input name mismatch between F and S");
        }
    }
    for (std::size_t j = 0; j < num_o; ++j) {
        if (fixed.signal_name(fixed.outputs()[j]) !=
            spec.signal_name(spec.outputs()[j])) {
            throw std::invalid_argument(
                "equation_problem: output name mismatch between F and S");
        }
    }

    mgr_ = std::make_unique<bdd_manager>(0, mem);
    // creation order == level order (see header): the (u,v) block on top —
    // u/v pairs interleaved, since u_m == U_m(i,v,cs) couples each u tightly
    // to nearby v's and a u-block-above-v-block order makes those
    // functional-dependency BDDs blow up — then i, o, F latch cs/ns pairs,
    // S latch cs/ns pairs, completion bit pair
    for (std::size_t k = 0; k < std::max(num_u, num_v); ++k) {
        if (k < num_u) { u_vars.push_back(mgr_->new_var()); }
        if (k < num_v) { v_vars.push_back(mgr_->new_var()); }
    }
    for (std::size_t k = 0; k < num_i; ++k) { i_vars.push_back(mgr_->new_var()); }
    // choice inputs live with i: quantified at the same points
    for (std::size_t k = 0; k < num_choice_inputs; ++k) {
        w_vars.push_back(mgr_->new_var());
    }
    for (std::size_t k = 0; k < num_o; ++k) { o_vars.push_back(mgr_->new_var()); }
    for (std::size_t k = 0; k < fixed.num_latches(); ++k) {
        cs_f.push_back(mgr_->new_var());
        ns_f.push_back(mgr_->new_var());
    }
    for (std::size_t k = 0; k < spec.num_latches(); ++k) {
        cs_s.push_back(mgr_->new_var());
        ns_s.push_back(mgr_->new_var());
    }
    dc_cs = mgr_->new_var();
    dc_ns = mgr_->new_var();

    // sweep F: its input list is (i..., v..., w...)
    std::vector<std::uint32_t> f_inputs = i_vars;
    f_inputs.insert(f_inputs.end(), v_vars.begin(), v_vars.end());
    f_inputs.insert(f_inputs.end(), w_vars.begin(), w_vars.end());
    const net_bdds f_fns = build_net_bdds(*mgr_, fixed, f_inputs, cs_f);
    f_o.assign(f_fns.outputs.begin(), f_fns.outputs.begin() +
                                          static_cast<std::ptrdiff_t>(num_o));
    f_u.assign(f_fns.outputs.begin() + static_cast<std::ptrdiff_t>(num_o),
               f_fns.outputs.end());
    f_next = f_fns.next_state;

    const net_bdds s_fns = build_net_bdds(*mgr_, spec, i_vars, cs_s);
    s_o = s_fns.outputs;
    s_next = s_fns.next_state;

    f_init = fixed.initial_state();
    s_init = spec.initial_state();
}

bdd equation_problem::initial_product_state() const {
    bdd c = mgr_->one();
    for (std::size_t k = 0; k < cs_f.size(); ++k) {
        c &= mgr_->literal(cs_f[k], f_init[k]);
    }
    for (std::size_t k = 0; k < cs_s.size(); ++k) {
        c &= mgr_->literal(cs_s[k], s_init[k]);
    }
    return c;
}

std::vector<std::uint32_t> equation_problem::ns_to_cs_permutation() const {
    std::vector<std::uint32_t> perm(mgr_->num_vars());
    for (std::uint32_t v = 0; v < perm.size(); ++v) { perm[v] = v; }
    for (std::size_t k = 0; k < cs_f.size(); ++k) {
        perm[ns_f[k]] = cs_f[k];
        perm[cs_f[k]] = ns_f[k];
    }
    for (std::size_t k = 0; k < cs_s.size(); ++k) {
        perm[ns_s[k]] = cs_s[k];
        perm[cs_s[k]] = ns_s[k];
    }
    perm[dc_ns] = dc_cs;
    perm[dc_cs] = dc_ns;
    return perm;
}

std::vector<std::uint32_t> equation_problem::uv_swap_permutation() const {
    std::vector<std::uint32_t> perm(mgr_->num_vars());
    for (std::uint32_t v = 0; v < perm.size(); ++v) { perm[v] = v; }
    for (std::size_t m = 0; m < u_vars.size(); ++m) {
        perm[u_vars[m]] = v_vars[m];
        perm[v_vars[m]] = u_vars[m];
    }
    return perm;
}

bdd equation_problem::conformance(std::size_t output) const {
    return f_o[output].iff(s_o[output]);
}

std::vector<std::uint32_t> equation_problem::all_ns_vars() const {
    std::vector<std::uint32_t> vars = ns_f;
    vars.insert(vars.end(), ns_s.begin(), ns_s.end());
    return vars;
}

} // namespace leq
