/// \file verify.hpp
/// \brief The paper's formal verification of a computed CSF (Section 4):
///
///   (1) X_P is contained in X            — the particular solution (the
///       extracted latches) is one of the behaviours the CSF allows;
///   (2) F . X is contained in S          — every behaviour the CSF allows
///       keeps the composition inside the specification.
///
/// Both checks run symbolically: the explicit CSF states index a family of
/// reachable-set BDDs, and the component moves are applied through the
/// partitioned functions (u substituted by and-exists against the U_m
/// parts), so no monolithic relation is ever built here either.
#pragma once

#include "automata/automaton.hpp"
#include "eq/problem.hpp"

#include <string>
#include <vector>

namespace leq {

/// Check (1): the language of X_P (the extracted-latch component, whose
/// state is the v vector, whose next state is the u input) is contained in
/// the CSF.  `x_init` is X_P's initial latch state (one bit per u/v pair).
[[nodiscard]] bool verify_particular_contained(const equation_problem& problem,
                                               const automaton& csf,
                                               const std::vector<bool>& x_init);

/// Check (2): the composition of F with the CSF never produces an output
/// that disagrees with S.
[[nodiscard]] bool verify_composition_contained(const equation_problem& problem,
                                                const automaton& csf);

// ---------------------------------------------------------------------------
// diagnostic variants: concrete counterexample traces on failure
// ---------------------------------------------------------------------------

/// One step of a counterexample trace; values per variable group, in the
/// problem's group order.  The particular-solution check only fills u and v;
/// the composition check fills all four groups.
struct trace_step {
    std::vector<bool> i, u, v, o;
};

/// Result of a diagnostic verification run.  When `ok` is false, `trace`
/// leads from the initial states to the violation and `reason` names it.
struct verify_diagnosis {
    bool ok = true;
    std::string reason;
    std::vector<trace_step> trace;
};

/// Check (1) with counterexample extraction: on failure the trace is the
/// shortest X_P run that the CSF cannot match, ending in the unmatched
/// (u, v) step.
[[nodiscard]] verify_diagnosis
diagnose_particular_contained(const equation_problem& problem,
                              const automaton& csf,
                              const std::vector<bool>& x_init);

/// Check (2) with counterexample extraction: on failure the trace is a
/// shortest composed run of F and the CSF ending in a step whose o output
/// disagrees with S.
[[nodiscard]] verify_diagnosis
diagnose_composition_contained(const equation_problem& problem,
                               const automaton& csf);

/// Render a diagnosis for humans: one line per step, variable groups
/// labelled i/u/v/o, plus the reason line.
[[nodiscard]] std::string format_diagnosis(const verify_diagnosis& d);

} // namespace leq
