/// \file kiss_flow.hpp
/// \brief FSM-level equation solving from KISS2 inputs, BALM style.
///
/// The paper's implementation lived in MVSIS next to BALM, whose primary
/// exchange format for FSMs was KISS2.  This module accepts the fixed
/// component F and the specification S as KISS2 text, encodes both into
/// multi-level networks (binary state encoding), and hands them to the
/// partitioned solver — so FSM-level problems ride the same machinery as
/// netlist-level ones, partitioned representation included.
///
/// Interface convention (Figure 1): S has inputs i and outputs o; F's input
/// cube is (i..., v...) and its output cube is (o..., u...), widths
/// inferred from the two headers.  Both machines must be deterministic
/// Mealy FSMs (every input cube enables exactly one transition).
#pragma once

#include "eq/problem.hpp"
#include "eq/solver.hpp"
#include "net/network.hpp"

#include <memory>
#include <string>
#include <vector>

namespace leq {

/// A built FSM-level instance.  The problem owns the BDD manager the
/// solver result's automaton will live in; keep it alive (moving the
/// struct is fine — the manager's address is stable behind the
/// unique_ptr).  Like everything manager-backed, an instance must stay on
/// the thread family that owns it: one instance per worker thread,
/// never shared.
struct kiss_instance {
    network fixed;  ///< F encoded as a network, ports (i...,v...)/(o...,u...)
    network spec;   ///< S encoded as a network, ports (i...)/(o...)
    std::unique_ptr<equation_problem> problem;
};

/// Canonical equation port names: `stem0, stem1, ...` starting at `from`
/// ("i"/"z" for the shared ports, "xv"/"xu" for the unknown's wires, "w"
/// for choice inputs).  One definition for every KISS-encoding path (this
/// module and cli/equation_io), so the naming convention cannot fork.
[[nodiscard]] std::vector<std::string>
kiss_port_names(const char* stem, std::size_t count, std::size_t from = 0);

/// Encode a KISS2 fixed machine F with the canonical equation port layout:
/// inputs (i..., xv..., w...), outputs (z..., xu...).  The cube widths must
/// equal shared+v+choice inputs and shared+u outputs.  Shared by
/// build_kiss_instance and the CLI loader, so the interface layout (choice
/// inputs included) is assembled in exactly one place.
[[nodiscard]] network
encode_kiss_fixed(const std::string& f_kiss, std::size_t num_shared_inputs,
                  std::size_t num_shared_outputs, std::size_t num_v,
                  std::size_t num_u, std::size_t num_choice_inputs = 0,
                  const std::string& model_name = "kiss_f");

/// Encode a KISS2 specification S with ports (i...)/(z...).
[[nodiscard]] network encode_kiss_spec(const std::string& s_kiss,
                                       std::size_t num_inputs,
                                       std::size_t num_outputs,
                                       const std::string& model_name
                                       = "kiss_s");

/// Parse one KISS2 machine and encode it as a deterministic-Mealy network
/// with the given port names (cube widths must match the name counts).
/// The encoding runs in a scratch BDD manager; the returned network is
/// manager-independent (SOP covers only) and can be handed to an
/// `equation_problem` built in any manager/thread.  Throws
/// std::runtime_error on malformed KISS text.
[[nodiscard]] network
encode_kiss_network(const std::string& text,
                    const std::vector<std::string>& input_names,
                    const std::vector<std::string>& output_names,
                    const std::string& model_name);

/// Encode F and S from KISS2 text and build the equation instance.
/// `mem` tunes the instance's BDD manager (solve_kiss forwards
/// `solve_options::mem` here).  Throws std::runtime_error on malformed
/// KISS and std::invalid_argument when F's interface cannot embed S's
/// (fewer inputs/outputs).
[[nodiscard]] kiss_instance
build_kiss_instance(const std::string& f_kiss, const std::string& s_kiss,
                    const bdd_manager_options& mem
                    = problem_manager_defaults());

/// Convenience: build + solve with the partitioned flow.
struct kiss_solution {
    kiss_instance instance;
    solve_result result;
};
[[nodiscard]] kiss_solution solve_kiss(const std::string& f_kiss,
                                       const std::string& s_kiss,
                                       const solve_options& options = {});

} // namespace leq
