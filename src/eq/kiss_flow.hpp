/// \file kiss_flow.hpp
/// \brief FSM-level equation solving from KISS2 inputs, BALM style.
///
/// The paper's implementation lived in MVSIS next to BALM, whose primary
/// exchange format for FSMs was KISS2.  This module accepts the fixed
/// component F and the specification S as KISS2 text, encodes both into
/// multi-level networks (binary state encoding), and hands them to the
/// partitioned solver — so FSM-level problems ride the same machinery as
/// netlist-level ones, partitioned representation included.
///
/// Interface convention (Figure 1): S has inputs i and outputs o; F's input
/// cube is (i..., v...) and its output cube is (o..., u...), widths
/// inferred from the two headers.  Both machines must be deterministic
/// Mealy FSMs (every input cube enables exactly one transition).
#pragma once

#include "eq/problem.hpp"
#include "eq/solver.hpp"
#include "net/network.hpp"

#include <memory>
#include <string>

namespace leq {

/// A built FSM-level instance.  The problem owns the BDD manager the
/// solver result's automaton will live in; keep it alive.
struct kiss_instance {
    network fixed;  ///< F encoded as a network, ports (i...,v...)/(o...,u...)
    network spec;   ///< S encoded as a network, ports (i...)/(o...)
    std::unique_ptr<equation_problem> problem;
};

/// Encode F and S from KISS2 text and build the equation instance.
/// Throws std::runtime_error on malformed KISS and std::invalid_argument
/// when F's interface cannot embed S's (fewer inputs/outputs).
[[nodiscard]] kiss_instance build_kiss_instance(const std::string& f_kiss,
                                                const std::string& s_kiss);

/// Convenience: build + solve with the partitioned flow.
struct kiss_solution {
    kiss_instance instance;
    solve_result result;
};
[[nodiscard]] kiss_solution solve_kiss(const std::string& f_kiss,
                                       const std::string& s_kiss,
                                       const solve_options& options = {});

} // namespace leq
