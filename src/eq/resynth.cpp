/// \file resynth.cpp
/// \brief The end-to-end resynthesis pipeline.

#include "eq/resynth.hpp"

#include "automata/encode.hpp"
#include "eq/subsolution.hpp"
#include "eq/verify.hpp"
#include "net/compose.hpp"
#include "net/latch_split.hpp"
#include "net/sweep.hpp"

#include <random>

namespace leq {

bool simulation_equivalent(const network& a, const network& b,
                           std::size_t runs, std::size_t cycles,
                           std::uint32_t seed) {
    if (a.num_inputs() != b.num_inputs() ||
        a.num_outputs() != b.num_outputs()) {
        return false;
    }
    std::mt19937 rng(seed);
    for (std::size_t run = 0; run < runs; ++run) {
        std::vector<bool> sa = a.initial_state();
        std::vector<bool> sb = b.initial_state();
        for (std::size_t t = 0; t < cycles; ++t) {
            std::vector<bool> in(a.num_inputs());
            for (std::size_t k = 0; k < in.size(); ++k) {
                in[k] = (rng() & 1u) != 0;
            }
            const auto ra = a.simulate(sa, in);
            const auto rb = b.simulate(sb, in);
            if (ra.outputs != rb.outputs) { return false; }
            sa = ra.next_state;
            sb = rb.next_state;
        }
    }
    return true;
}

resynth_result resynthesize(const network& original,
                            const std::vector<std::size_t>& cut,
                            const resynth_options& options) {
    resynth_result out;
    const split_result split = split_latches(original, cut);
    out.x_latches_before = split.part.num_latches();

    const equation_problem problem(split.fixed, original);
    const solve_result solved = solve_partitioned(problem, options.solve);
    if (solved.status != solve_status::ok || solved.empty_solution) {
        return out; // X_P makes the CSF non-empty, so only resource limits land here
    }
    out.solved = true;
    out.csf_states = solved.csf_states;

    std::optional<automaton> moore =
        extract_moore_fsm(*solved.csf, problem.u_vars, problem.v_vars);
    if (!moore.has_value()) { return out; }
    if (options.minimize_states) { moore = minimize(*moore); }
    out.x_states = moore->num_states();

    out.replacement = automaton_to_network(
        *moore, problem.u_vars, problem.v_vars, split.u_names, split.v_names,
        original.name() + "_x");
    out.x_latches_after = out.replacement.num_latches();
    out.optimized = compose_networks(split.fixed, out.replacement,
                                     split.u_names, split.v_names);
    if (options.sweep_result) {
        out.optimized = sweep_network(out.optimized);
    }
    out.optimized.set_name(original.name() + "_resynth");
    out.rebuilt = true;

    out.verified =
        verify_composition_contained(problem, *moore) &&
        simulation_equivalent(original, out.optimized, options.sim_runs,
                              options.sim_cycles, options.sim_seed);
    return out;
}

} // namespace leq
