/// \file reduce.hpp
/// \brief Compatibility-based state reduction of the CSF: the ISFSM-style
/// attack on the paper's "optimum sub-solution" future work.
///
/// The policy extractions in subsolution.hpp commit to one behaviour and
/// then minimize the committed machine; they cannot merge CSF states whose
/// committed behaviours merely *overlap*.  This module works on the
/// flexibility itself, the way incompletely-specified FSM minimizers do:
///
///   1. build explicit per-letter successor tables from the CSF (the
///      alphabet is enumerated, so the method is for modest |u|+|v|);
///   2. compute the pairwise compatibility relation as a greatest fixpoint:
///      p ~ q iff for every input u some shared output v moves both to a
///      compatible pair;
///   3. grow a closed cover of compatibility cliques greedily: starting
///      from {initial}, every (clique, u) must map under some common v into
///      a clique of the cover — new cliques are opened when no existing one
///      contains the implied successor set;
///   4. read the reduced FSM off the cover (one state per clique) and
///      check containment in the CSF.
///
/// Exact minimum closed cover selection is NP-hard; step 3 is a heuristic,
/// so the result is small, sound, but not guaranteed minimum.
#pragma once

#include "automata/automaton.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace leq {

struct reduction_options {
    /// Give up beyond this many CSF states (tables are |S|^2).
    std::size_t max_states = 512;
    /// Give up when the cover grows past this many cliques.
    std::size_t max_cliques = 4096;
    /// Give up beyond this many label bits (the alphabet is enumerated).
    std::size_t max_alphabet_bits = 14;
};

/// Reduce the CSF to a small contained FSM by compatibility merging.
/// Returns std::nullopt when the instance exceeds the option limits (the
/// caller should fall back to select_small_subsolution).  Throws
/// std::invalid_argument on an empty CSF and std::logic_error if the
/// internal containment check fails (a bug, never expected).
[[nodiscard]] std::optional<automaton>
reduce_subsolution(const automaton& csf,
                   const std::vector<std::uint32_t>& u_vars,
                   const std::vector<std::uint32_t>& v_vars,
                   const reduction_options& options = {});

} // namespace leq
