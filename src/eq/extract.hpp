/// \file extract.hpp
/// \brief Extract a concrete FSM implementation from a CSF.
///
/// The paper computes the Complete Sequential Flexibility and notes that
/// choosing an optimum sub-solution is future work.  This module provides
/// the baseline extractor a downstream synthesis flow needs: a greedy
/// deterministic selection that, in every state and for every input u,
/// commits to one output v allowed by the CSF.  The result is a Mealy FSM
/// (deterministic, input-progressive, contained in the CSF by
/// construction).
#pragma once

#include "automata/automaton.hpp"

#include <vector>

namespace leq {

/// Greedy implementation choice.  `csf` must be a CSF automaton over
/// u_vars and v_vars (as produced by the solvers) with non-empty language.
/// Exponential in |u| (iterates input minterms); intended for moderate |u|.
[[nodiscard]] automaton
extract_fsm(const automaton& csf, const std::vector<std::uint32_t>& u_vars,
            const std::vector<std::uint32_t>& v_vars);

} // namespace leq
