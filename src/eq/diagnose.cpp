/// \file diagnose.cpp
/// \brief Diagnostic variants of the paper's verification checks: when a
/// containment fails, extract a shortest concrete counterexample trace.
///
/// The plain verify_* entry points (verify.cpp) run a worklist fixpoint and
/// return a bare verdict.  Here the forward exploration is layered
/// breadth-first — frames[t][q] holds the product states *first* reached at
/// depth t in CSF state q — so a violation found at depth t is shortest, and
/// a backward walk over the frames reconstructs one concrete run: at every
/// step a full assignment is picked from the BDD frontier and the partitioned
/// functions are evaluated to fill in the dependent signal values.  The
/// monolithic transition relation is never built, in the partitioned spirit.

#include "eq/verify.hpp"

#include "rel/relation.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace leq {

namespace {

/// One full satisfying assignment of f, indexed by variable id; don't-care
/// variables default to false.  f must be satisfiable.
std::vector<bool> pick_assignment(bdd_manager& mgr, const bdd& f) {
    std::vector<bool> a(mgr.num_vars(), false);
    bdd walk = mgr.pick_cube(f);
    while (!walk.is_const()) {
        if (walk.low().is_zero()) {
            a[walk.top_var()] = true;
            walk = walk.high();
        } else {
            walk = walk.low();
        }
    }
    return a;
}

/// Values of a variable group under a full assignment, in group order.
std::vector<bool> group_values(const std::vector<bool>& a,
                               const std::vector<std::uint32_t>& vars) {
    std::vector<bool> out;
    out.reserve(vars.size());
    for (const std::uint32_t v : vars) { out.push_back(a[v]); }
    return out;
}

/// Cube fixing every variable of the group to the given values.
bdd values_cube(bdd_manager& mgr, const std::vector<std::uint32_t>& vars,
                const std::vector<bool>& values) {
    bdd c = mgr.one();
    for (std::size_t k = 0; k < vars.size(); ++k) {
        c &= mgr.literal(vars[k], values[k]);
    }
    return c;
}

void append_bits(std::ostringstream& out, const char* tag,
                 const std::vector<bool>& bits) {
    if (bits.empty()) { return; }
    out << ' ' << tag << '=';
    for (const bool b : bits) { out << (b ? '1' : '0'); }
}

} // namespace

// ---------------------------------------------------------------------------
// check (1) with trace: X_P contained in the CSF
// ---------------------------------------------------------------------------

verify_diagnosis diagnose_particular_contained(const equation_problem& problem,
                                               const automaton& csf,
                                               const std::vector<bool>& x_init) {
    bdd_manager& mgr = problem.mgr();
    if (problem.u_vars.size() != problem.v_vars.size() ||
        x_init.size() != problem.v_vars.size()) {
        throw std::invalid_argument(
            "diagnose_particular_contained: X_P must pair every u with a v");
    }
    // X_P step relation (no parts): successors are exists v . r & label,
    // with the enabled u values renamed to v — shared with verify.cpp
    // through the relation layer instead of a hand-rolled and_exists loop
    transition_relation xp_step(mgr, {}, problem.v_vars);
    xp_step.rename_result(problem.uv_swap_permutation());

    // layered BFS over (X_P state as v-assignment, CSF state)
    std::vector<std::vector<bdd>> frames;
    std::vector<bdd> total(csf.num_states(), mgr.zero());
    frames.emplace_back(csf.num_states(), mgr.zero());
    frames[0][csf.initial()] = values_cube(mgr, problem.v_vars, x_init);
    total[csf.initial()] = frames[0][csf.initial()];

    std::size_t bad_layer = 0;
    std::uint32_t bad_q = 0;
    bdd bad_set; // over (u, v): X_P moves the CSF cannot match
    bool found = false;
    for (std::size_t t = 0; !found; ++t) {
        for (std::uint32_t q = 0; q < csf.num_states() && !found; ++q) {
            const bdd r = frames[t][q];
            if (r.is_zero()) { continue; }
            const bdd miss = r & !csf.domain(q);
            if (!miss.is_zero()) {
                bad_layer = t;
                bad_q = q;
                bad_set = miss;
                found = true;
            }
        }
        if (found) { break; }
        std::vector<bdd> next(csf.num_states(), mgr.zero());
        bool any = false;
        for (std::uint32_t q = 0; q < csf.num_states(); ++q) {
            const bdd r = frames[t][q];
            if (r.is_zero()) { continue; }
            for (const transition& tr : csf.transitions(q)) {
                const bdd succ = xp_step.image(r, tr.label);
                const bdd fresh = succ & !total[tr.dest];
                if (!fresh.is_zero()) {
                    next[tr.dest] |= fresh;
                    total[tr.dest] |= fresh;
                    any = true;
                }
            }
        }
        if (!any) { return {}; } // fixpoint, no violation
        frames.push_back(std::move(next));
    }

    // backward reconstruction of the shortest offending run
    verify_diagnosis d;
    d.ok = false;
    d.trace.resize(bad_layer + 1);
    const std::vector<bool> bad = pick_assignment(mgr, bad_set);
    d.trace[bad_layer].u = group_values(bad, problem.u_vars);
    d.trace[bad_layer].v = group_values(bad, problem.v_vars);
    {
        std::ostringstream reason;
        reason << "CSF state " << bad_q << " has no transition for step "
               << bad_layer << " of X_P";
        d.reason = reason.str();
    }
    std::uint32_t cur_q = bad_q;
    std::vector<bool> cur_state = d.trace[bad_layer].v; // X_P state = v bits
    for (std::size_t t = bad_layer; t > 0; --t) {
        // predecessor letter: (u = cur_state, v = previous X_P state)
        const bdd u_cube =
            values_cube(mgr, problem.u_vars, cur_state);
        bool stepped = false;
        for (std::uint32_t q = 0; q < csf.num_states() && !stepped; ++q) {
            for (const transition& tr : csf.transitions(q)) {
                if (tr.dest != cur_q) { continue; }
                const bdd lab_v = mgr.cofactor(tr.label, u_cube);
                const bdd cand = frames[t - 1][q] & lab_v;
                if (cand.is_zero()) { continue; }
                const std::vector<bool> a = pick_assignment(mgr, cand);
                d.trace[t - 1].u = cur_state;
                d.trace[t - 1].v = group_values(a, problem.v_vars);
                cur_q = q;
                cur_state = d.trace[t - 1].v;
                stepped = true;
                break;
            }
        }
        assert(stepped && "frame invariant: predecessor must exist");
        if (!stepped) { break; }
    }
    return d;
}

// ---------------------------------------------------------------------------
// check (2) with trace: F . X contained in S
// ---------------------------------------------------------------------------

verify_diagnosis diagnose_composition_contained(const equation_problem& problem,
                                                const automaton& csf) {
    bdd_manager& mgr = problem.mgr();
    std::vector<bdd> u_match;
    for (std::size_t m = 0; m < problem.u_vars.size(); ++m) {
        u_match.push_back(mgr.var(problem.u_vars[m]).iff(problem.f_u[m]));
    }
    std::vector<bdd> parts = u_match;
    for (std::size_t k = 0; k < problem.ns_f.size(); ++k) {
        parts.push_back(mgr.var(problem.ns_f[k]).iff(problem.f_next[k]));
    }
    for (std::size_t k = 0; k < problem.ns_s.size(); ++k) {
        parts.push_back(mgr.var(problem.ns_s[k]).iff(problem.s_next[k]));
    }
    std::vector<std::uint32_t> quantify = problem.hidden_input_vars();
    quantify.insert(quantify.end(), problem.u_vars.begin(),
                    problem.u_vars.end());
    quantify.insert(quantify.end(), problem.v_vars.begin(),
                    problem.v_vars.end());
    quantify.insert(quantify.end(), problem.cs_f.begin(), problem.cs_f.end());
    quantify.insert(quantify.end(), problem.cs_s.begin(), problem.cs_s.end());
    transition_relation step(mgr, std::move(parts), std::move(quantify));
    step.rename_result(problem.ns_to_cs_permutation());

    // "X enabled" per CSF state, with u substituted through the U_m parts
    const transition_relation u_subst(mgr, u_match, problem.u_vars);
    const auto substitute_u = [&](const bdd& f) { return u_subst.image(f); };
    std::vector<bdd> enabled(csf.num_states(), mgr.zero());
    for (std::uint32_t q = 0; q < csf.num_states(); ++q) {
        enabled[q] = substitute_u(csf.domain(q));
    }

    std::vector<std::vector<bdd>> frames;
    std::vector<bdd> total(csf.num_states(), mgr.zero());
    frames.emplace_back(csf.num_states(), mgr.zero());
    frames[0][csf.initial()] = problem.initial_product_state();
    total[csf.initial()] = frames[0][csf.initial()];

    std::size_t bad_layer = 0, bad_output = 0;
    std::uint32_t bad_q = 0;
    bdd bad_set; // over (i, v, cs): enabled step with non-conforming output
    bool found = false;
    for (std::size_t t = 0; !found; ++t) {
        for (std::uint32_t q = 0; q < csf.num_states() && !found; ++q) {
            const bdd r = frames[t][q];
            if (r.is_zero()) { continue; }
            for (std::size_t j = 0; j < problem.s_o.size(); ++j) {
                const bdd viol = (r & enabled[q]) & !problem.conformance(j);
                if (!viol.is_zero()) {
                    bad_layer = t;
                    bad_q = q;
                    bad_output = j;
                    bad_set = viol;
                    found = true;
                    break;
                }
            }
        }
        if (found) { break; }
        std::vector<bdd> next(csf.num_states(), mgr.zero());
        bool any = false;
        for (std::uint32_t q = 0; q < csf.num_states(); ++q) {
            const bdd r = frames[t][q];
            if (r.is_zero()) { continue; }
            for (const transition& tr : csf.transitions(q)) {
                const bdd succ = step.image(r, tr.label);
                const bdd fresh = succ & !total[tr.dest];
                if (!fresh.is_zero()) {
                    next[tr.dest] |= fresh;
                    total[tr.dest] |= fresh;
                    any = true;
                }
            }
        }
        if (!any) { return {}; }
        frames.push_back(std::move(next));
    }

    // fill one step from a full (i, v, cs) assignment: u and o follow from
    // the partitioned functions
    const auto fill_step = [&](const std::vector<bool>& a) {
        trace_step s;
        s.i = group_values(a, problem.i_vars);
        s.v = group_values(a, problem.v_vars);
        for (const bdd& fu : problem.f_u) { s.u.push_back(mgr.eval(fu, a)); }
        for (const bdd& fo : problem.f_o) { s.o.push_back(mgr.eval(fo, a)); }
        return s;
    };
    verify_diagnosis d;
    d.ok = false;
    d.trace.resize(bad_layer + 1);
    std::vector<bool> bad = pick_assignment(mgr, bad_set);
    d.trace[bad_layer] = fill_step(bad);
    {
        std::ostringstream reason;
        reason << "output " << bad_output
               << " of the composition disagrees with S at step " << bad_layer
               << " (CSF state " << bad_q << ")";
        d.reason = reason.str();
    }

    std::uint32_t cur_q = bad_q;
    std::vector<bool> cur = bad; // carries the target cs assignment
    for (std::size_t t = bad_layer; t > 0; --t) {
        // step relation restricted to the known successor state: each next
        // state function must produce the target bit
        bdd step_rel = mgr.one();
        for (std::size_t k = 0; k < problem.cs_f.size(); ++k) {
            step_rel &= cur[problem.cs_f[k]] ? problem.f_next[k]
                                             : !problem.f_next[k];
        }
        for (std::size_t k = 0; k < problem.cs_s.size(); ++k) {
            step_rel &= cur[problem.cs_s[k]] ? problem.s_next[k]
                                             : !problem.s_next[k];
        }
        bool stepped = false;
        for (std::uint32_t q = 0; q < csf.num_states() && !stepped; ++q) {
            for (const transition& tr : csf.transitions(q)) {
                if (tr.dest != cur_q) { continue; }
                const bdd cand =
                    frames[t - 1][q] & substitute_u(tr.label) & step_rel;
                if (cand.is_zero()) { continue; }
                const std::vector<bool> a = pick_assignment(mgr, cand);
                d.trace[t - 1] = fill_step(a);
                cur_q = q;
                cur = a;
                stepped = true;
                break;
            }
        }
        assert(stepped && "frame invariant: predecessor must exist");
        if (!stepped) { break; }
    }
    return d;
}

std::string format_diagnosis(const verify_diagnosis& d) {
    std::ostringstream out;
    if (d.ok) {
        out << "ok: containment holds\n";
        return out.str();
    }
    out << "FAILED: " << d.reason << '\n';
    for (std::size_t t = 0; t < d.trace.size(); ++t) {
        out << "  step " << t << ':';
        append_bits(out, "i", d.trace[t].i);
        append_bits(out, "u", d.trace[t].u);
        append_bits(out, "v", d.trace[t].v);
        append_bits(out, "o", d.trace[t].o);
        out << '\n';
    }
    return out.str();
}

} // namespace leq
