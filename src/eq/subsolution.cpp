/// \file subsolution.cpp
/// \brief Policy-driven FSM extraction and the smallest-candidate search.

#include "eq/subsolution.hpp"

#include <map>
#include <optional>
#include <queue>
#include <stdexcept>

namespace leq {

const char* to_string(extraction_policy policy) {
    switch (policy) {
        case extraction_policy::first_edge: return "first_edge";
        case extraction_policy::prefer_self_loop: return "prefer_self_loop";
        case extraction_policy::prefer_visited: return "prefer_visited";
        case extraction_policy::prefer_low_dest: return "prefer_low_dest";
    }
    return "?";
}

const std::vector<extraction_policy>& all_extraction_policies() {
    static const std::vector<extraction_policy> policies = {
        extraction_policy::first_edge,
        extraction_policy::prefer_self_loop,
        extraction_policy::prefer_visited,
        extraction_policy::prefer_low_dest,
    };
    return policies;
}

automaton extract_fsm_with_policy(const automaton& csf,
                                  const std::vector<std::uint32_t>& u_vars,
                                  const std::vector<std::uint32_t>& v_vars,
                                  extraction_policy policy) {
    bdd_manager& mgr = csf.manager();
    if (u_vars.size() > 20) {
        throw std::invalid_argument("extract_fsm_with_policy: too many inputs");
    }
    if (!csf.accepting(csf.initial())) {
        throw std::invalid_argument("extract_fsm_with_policy: empty CSF");
    }
    automaton fsm(mgr, csf.label_vars());
    std::map<std::uint32_t, std::uint32_t> ids; // csf state -> fsm state
    std::queue<std::uint32_t> work;
    const auto intern = [&](std::uint32_t q) {
        const auto it = ids.find(q);
        if (it != ids.end()) { return it->second; }
        const std::uint32_t id = fsm.add_state(true);
        ids.emplace(q, id);
        work.push(q);
        return id;
    };
    fsm.set_initial(intern(csf.initial()));
    while (!work.empty()) {
        const std::uint32_t q = work.front();
        work.pop();
        const std::uint32_t src = ids.at(q);
        for (std::size_t m = 0; m < (std::size_t{1} << u_vars.size()); ++m) {
            bdd u_cube = mgr.one();
            for (std::size_t b = 0; b < u_vars.size(); ++b) {
                u_cube &= mgr.literal(u_vars[b], ((m >> b) & 1) != 0);
            }
            // collect the admitting edges, then commit per the policy
            const transition* chosen = nullptr;
            bdd chosen_enabled;
            for (const transition& t : csf.transitions(q)) {
                const bdd enabled = t.label & u_cube;
                if (enabled.is_zero()) { continue; }
                bool better = chosen == nullptr;
                if (!better) {
                    switch (policy) {
                        case extraction_policy::first_edge:
                            break; // keep the first
                        case extraction_policy::prefer_self_loop:
                            better = t.dest == q && chosen->dest != q;
                            break;
                        case extraction_policy::prefer_visited:
                            better = ids.count(t.dest) != 0 &&
                                     ids.count(chosen->dest) == 0;
                            break;
                        case extraction_policy::prefer_low_dest:
                            better = t.dest < chosen->dest;
                            break;
                    }
                }
                if (better) {
                    chosen = &t;
                    chosen_enabled = enabled;
                }
                if (policy == extraction_policy::first_edge &&
                    chosen != nullptr) {
                    break;
                }
            }
            if (chosen == nullptr) {
                throw std::logic_error(
                    "extract_fsm_with_policy: CSF is not input-progressive");
            }
            // pick one (u,v) minterm's v part; pin leftover v bits to 0
            bdd choice = mgr.pick_cube(chosen_enabled);
            for (const std::uint32_t v : v_vars) {
                const bdd pinned = choice & mgr.nvar(v);
                if (!pinned.is_zero()) { choice = pinned; }
            }
            fsm.add_transition(src, intern(chosen->dest), choice);
        }
    }
    return fsm;
}

subsolution_result select_small_subsolution(
    const automaton& csf, const std::vector<std::uint32_t>& u_vars,
    const std::vector<std::uint32_t>& v_vars) {
    std::optional<automaton> best;
    extraction_policy best_policy = extraction_policy::first_edge;
    std::vector<subsolution_candidate> candidates;
    for (const extraction_policy policy : all_extraction_policies()) {
        const automaton raw =
            extract_fsm_with_policy(csf, u_vars, v_vars, policy);
        automaton small = minimize(raw);
        if (!language_contained(small, csf)) {
            throw std::logic_error(
                "select_small_subsolution: candidate escaped the CSF");
        }
        candidates.push_back({policy, raw.num_states(), small.num_states()});
        if (!best.has_value() || small.num_states() < best->num_states()) {
            best = std::move(small);
            best_policy = policy;
        }
    }
    return {std::move(*best), best_policy, std::move(candidates)};
}

std::optional<automaton>
extract_moore_fsm(const automaton& csf,
                  const std::vector<std::uint32_t>& u_vars,
                  const std::vector<std::uint32_t>& v_vars) {
    bdd_manager& mgr = csf.manager();
    if (u_vars.size() > 20) {
        throw std::invalid_argument("extract_moore_fsm: too many inputs");
    }
    if (!csf.accepting(csf.initial())) {
        throw std::invalid_argument("extract_moore_fsm: empty CSF");
    }
    const bdd u_cube = mgr.cube(u_vars);
    const bdd v_cube = mgr.cube(v_vars);

    // Largest set of Moore-safe CSF states (greatest fixpoint, the safety-
    // game view): q is safe iff some single v assignment covers every u
    // while moving only to safe states.  choices[q] holds those v's.
    std::vector<bool> safe(csf.num_states(), true);
    std::vector<bdd> choices(csf.num_states(), mgr.zero());
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t q = 0; q < csf.num_states(); ++q) {
            if (!safe[q]) { continue; }
            bdd safe_domain = mgr.zero();
            for (const transition& t : csf.transitions(q)) {
                if (safe[t.dest]) { safe_domain |= t.label; }
            }
            choices[q] = mgr.forall(safe_domain, u_cube);
            if (choices[q].is_zero()) {
                safe[q] = false;
                changed = true;
            }
        }
    }
    if (!safe[csf.initial()]) { return std::nullopt; }

    automaton fsm(mgr, csf.label_vars());
    std::map<std::uint32_t, std::uint32_t> ids;
    std::queue<std::uint32_t> work;
    const auto intern = [&](std::uint32_t q) {
        const auto it = ids.find(q);
        if (it != ids.end()) { return it->second; }
        const std::uint32_t id = fsm.add_state(true);
        ids.emplace(q, id);
        work.push(q);
        return id;
    };
    fsm.set_initial(intern(csf.initial()));
    while (!work.empty()) {
        const std::uint32_t q = work.front();
        work.pop();
        const std::uint32_t src = ids.at(q);
        bdd choice = mgr.pick_cube(choices[q]);
        for (const std::uint32_t v : v_vars) {
            const bdd pinned = choice & mgr.nvar(v);
            if (!pinned.is_zero()) { choice = pinned; }
        }
        // commit: every u keeps its (safe) CSF successor under the chosen v
        for (const transition& t : csf.transitions(q)) {
            if (!safe[t.dest]) { continue; }
            const bdd enabled = t.label & choice;
            if (enabled.is_zero()) { continue; }
            // label: the enabling u set under the committed v
            fsm.add_transition(src, intern(t.dest),
                               mgr.exists(enabled, v_cube) & choice);
        }
    }
    return fsm;
}

} // namespace leq
