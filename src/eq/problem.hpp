/// \file problem.hpp
/// \brief A language-equation instance F . X <= S in partitioned form.
///
/// Holds the BDD manager, the variable groups of the Figure-1 topology
/// (external inputs i, external outputs o, X's inputs u, X's outputs v,
/// current/next state variables of F and S) and the partitioned functions
/// swept from the two networks:
///
///   F:  {T^F_j(i,v,cs_F)}  latch next-states
///       {U_m(i,v,cs_F)}    the u outputs (X's inputs)
///       {O^F_j(i,v,cs_F)}  the o outputs
///   S:  {T^S_k(i,cs_S)}, {O^S_j(i,cs_S)}
///
/// The variable order is fixed at construction and is load-bearing: the
/// (u,v) block sits on top so the subset construction can read the
/// (u,v)-cofactor classes of an image straight off the BDD structure; o sits
/// below i (used only by the monolithic flow); each latch's cs/ns pair is
/// interleaved; the completion bit for S (monolithic flow only) comes last.
#pragma once

#include "bdd/bdd.hpp"
#include "net/network.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace leq {

/// Manager tuning for equation instances: like the package default the
/// cache starts small and grows with the arena (so a batch of small solves
/// no longer pays the historical fixed 2^22-entry allocation per worker),
/// but the ceiling is raised — the subset construction re-runs the same
/// image engines against thousands of subset states, and a million-node
/// solve earns a multi-million-entry cache.
[[nodiscard]] bdd_manager_options problem_manager_defaults();

class equation_problem {
public:
    /// Build the instance.  `fixed` is F with inputs (i..., v..., w...) and
    /// outputs (o..., u...): the first inputs/outputs match `spec`'s by
    /// name (as produced by split_latches); then come the v inputs and u
    /// outputs of the unknown.  `spec` is S.
    ///
    /// The trailing `num_choice_inputs` inputs w are *choice* (oracle)
    /// inputs: they are hidden from every alphabet and existentially
    /// quantified wherever i is, which makes F's partitioned parts
    /// non-deterministic relations T_k(i,v,cs,ns_k) = exists_w [ns_k ==
    /// T_k(i,v,w,cs)] — the paper's footnote-2 generalization.  (Relations
    /// represented this way are total: a network always produces some next
    /// state.  Partial behaviour is the completion machinery's job.)
    ///
    /// `mem` tunes the instance's BDD manager (cache sizing, GC trigger);
    /// the CLI surfaces it as --cache-bits / --max-cache-bits /
    /// --gc-threshold via solve_options::mem.
    equation_problem(const network& fixed, const network& spec,
                     std::size_t num_choice_inputs = 0,
                     const bdd_manager_options& mem
                     = problem_manager_defaults());

    equation_problem(const equation_problem&) = delete;
    equation_problem& operator=(const equation_problem&) = delete;

    [[nodiscard]] bdd_manager& mgr() const { return *mgr_; }

private:
    // declared before every bdd member: handles must release their external
    // references while the manager is still alive (members are destroyed in
    // reverse declaration order)
    std::unique_ptr<bdd_manager> mgr_;

public:

    // variable groups (ids)
    std::vector<std::uint32_t> u_vars, v_vars, i_vars, o_vars;
    std::vector<std::uint32_t> w_vars; ///< F's choice inputs (footnote 2)
    std::vector<std::uint32_t> cs_f, ns_f, cs_s, ns_s;
    std::uint32_t dc_cs = 0, dc_ns = 0; ///< S-completion bit (monolithic)

    // partitioned functions
    std::vector<bdd> f_next; ///< T^F_j(i, v, cs_f)
    std::vector<bdd> f_u;    ///< U_m(i, v, cs_f)
    std::vector<bdd> f_o;    ///< O^F_j(i, v, cs_f)
    std::vector<bdd> s_next; ///< T^S_k(i, cs_s)
    std::vector<bdd> s_o;    ///< O^S_j(i, cs_s)

    std::vector<bool> f_init, s_init;

    /// First level strictly below the (u,v) block.
    [[nodiscard]] std::uint32_t uv_boundary_level() const {
        return static_cast<std::uint32_t>(u_vars.size() + v_vars.size());
    }

    /// The variables hidden from every automaton alphabet and quantified in
    /// every image: the external inputs i plus F's choice inputs w.
    [[nodiscard]] std::vector<std::uint32_t> hidden_input_vars() const {
        std::vector<std::uint32_t> vars = i_vars;
        vars.insert(vars.end(), w_vars.begin(), w_vars.end());
        return vars;
    }

    /// Initial subset state: the cube (cs_f = f_init) & (cs_s = s_init).
    [[nodiscard]] bdd initial_product_state() const;

    /// Permutation swapping every cs/ns pair (used to rename an image over
    /// next-state variables back to current-state variables).
    [[nodiscard]] std::vector<std::uint32_t> ns_to_cs_permutation() const;

    /// Permutation swapping every u/v pair (an X_P step renames the enabled
    /// u values into the successor state's v bits; see verify.cpp).
    [[nodiscard]] std::vector<std::uint32_t> uv_swap_permutation() const;

    /// Per-output conformance condition C_j = [O^F_j == O^S_j] (paper,
    /// Section 3.2); over (i, v, cs_f, cs_s).
    [[nodiscard]] bdd conformance(std::size_t output) const;

    /// All next-state variables of the product (ns_f then ns_s).
    [[nodiscard]] std::vector<std::uint32_t> all_ns_vars() const;
};

} // namespace leq
