/// \file stg.cpp
/// \brief Explicit STG extraction by exhaustive simulation.

#include "automata/stg.hpp"

#include <map>
#include <queue>
#include <stdexcept>

namespace leq {

automaton network_to_automaton(bdd_manager& mgr, const network& net,
                               const std::vector<std::uint32_t>& input_vars,
                               const std::vector<std::uint32_t>& output_vars,
                               std::size_t max_states) {
    if (input_vars.size() != net.num_inputs() ||
        output_vars.size() != net.num_outputs()) {
        throw std::invalid_argument("network_to_automaton: variable counts");
    }
    if (net.num_inputs() > 20) {
        throw std::invalid_argument(
            "network_to_automaton: too many inputs for explicit extraction");
    }
    std::vector<std::uint32_t> label_vars = input_vars;
    label_vars.insert(label_vars.end(), output_vars.begin(),
                      output_vars.end());
    automaton aut(mgr, label_vars);

    std::map<std::vector<bool>, std::uint32_t> ids;
    std::queue<std::vector<bool>> work;
    const auto intern = [&](const std::vector<bool>& state) {
        const auto it = ids.find(state);
        if (it != ids.end()) { return it->second; }
        if (ids.size() >= max_states) {
            throw std::runtime_error("network_to_automaton: state cap hit");
        }
        const std::uint32_t id = aut.add_state(true); // FSM: all accepting
        ids.emplace(state, id);
        work.push(state);
        return id;
    };

    aut.set_initial(intern(net.initial_state()));
    const std::size_t ni = net.num_inputs();
    while (!work.empty()) {
        const std::vector<bool> state = work.front();
        work.pop();
        const std::uint32_t src = ids.at(state);
        for (std::size_t m = 0; m < (std::size_t{1} << ni); ++m) {
            std::vector<bool> in(ni);
            for (std::size_t b = 0; b < ni; ++b) { in[b] = ((m >> b) & 1) != 0; }
            const auto r = net.simulate(state, in);
            bdd label = mgr.one();
            for (std::size_t b = 0; b < ni; ++b) {
                label &= mgr.literal(input_vars[b], in[b]);
            }
            for (std::size_t j = 0; j < r.outputs.size(); ++j) {
                label &= mgr.literal(output_vars[j], r.outputs[j]);
            }
            aut.add_transition(src, intern(r.next_state), label);
        }
    }
    return aut;
}

} // namespace leq
