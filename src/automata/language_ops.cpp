/// \file language_ops.cpp
/// \brief Derived language operations: union, difference, prefix-closure
/// test, shortest/witness word extraction and random word sampling.
///
/// These are conveniences layered on the elementary operations of
/// automaton.cpp.  The witness extraction is what the verification layer
/// (eq/verify) surfaces when one of the paper's containment checks fails:
/// instead of a bare `false`, callers get a concrete input/output sequence
/// distinguishing the two languages.

#include "automata/automaton.hpp"

#include <algorithm>
#include <queue>
#include <random>
#include <set>
#include <stdexcept>

namespace leq {

namespace {

/// One satisfying assignment of `label` over the listed variables;
/// don't-care positions default to false.
std::vector<bool> pick_letter(bdd_manager& mgr, const bdd& label,
                              const std::vector<std::uint32_t>& vars) {
    const bdd cube = mgr.pick_cube(label);
    // decode the cube: walk it once per variable (cube is a single path)
    std::size_t max_var = 0;
    for (const std::uint32_t v : vars) {
        max_var = std::max<std::size_t>(max_var, v);
    }
    std::vector<bool> letter(max_var + 1, false);
    bdd walk = cube;
    while (!walk.is_const()) {
        const std::uint32_t v = walk.top_var();
        if (walk.low().is_zero()) {
            letter[v] = true;
            walk = walk.high();
        } else {
            letter[v] = false;
            walk = walk.low();
        }
    }
    return letter;
}

} // namespace

automaton union_automata(const automaton& a, const automaton& b) {
    if (a.label_vars() != b.label_vars()) {
        throw std::logic_error("union_automata: support mismatch");
    }
    if (&a.manager() != &b.manager()) {
        throw std::logic_error("union_automata: manager mismatch");
    }
    automaton out(a.manager(), a.label_vars());
    // a fresh initial state branching into both copies handles the case of
    // differing acceptance of the empty word
    const std::uint32_t init = out.add_state(
        a.accepting(a.initial()) || b.accepting(b.initial()));
    out.set_initial(init);
    const std::uint32_t base_a = static_cast<std::uint32_t>(out.num_states());
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        out.add_state(a.accepting(s));
    }
    const std::uint32_t base_b = static_cast<std::uint32_t>(out.num_states());
    for (std::uint32_t s = 0; s < b.num_states(); ++s) {
        out.add_state(b.accepting(s));
    }
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        for (const transition& t : a.transitions(s)) {
            out.add_transition(base_a + s, base_a + t.dest, t.label);
        }
    }
    for (std::uint32_t s = 0; s < b.num_states(); ++s) {
        for (const transition& t : b.transitions(s)) {
            out.add_transition(base_b + s, base_b + t.dest, t.label);
        }
    }
    for (const transition& t : a.transitions(a.initial())) {
        out.add_transition(init, base_a + t.dest, t.label);
    }
    for (const transition& t : b.transitions(b.initial())) {
        out.add_transition(init, base_b + t.dest, t.label);
    }
    return out;
}

automaton difference(const automaton& a, const automaton& b) {
    if (a.label_vars() != b.label_vars()) {
        throw std::logic_error("difference: support mismatch");
    }
    const automaton bc = complement(complete(determinize(b)));
    return product(a, bc);
}

bool is_prefix_closed(const automaton& a) {
    // Over the trimmed automaton: the language is prefix-closed iff every
    // state from which an accepting state is reachable is itself accepting.
    // (Any run prefix ends in such a state; its word must be accepted, and
    // for non-deterministic automata some accepting run witnesses it —
    // determinize first so runs and words coincide.)
    const automaton d = trim_unreachable(determinize(a));
    if (language_empty(d)) { return true; } // empty language: vacuously closed
    // backward closure of the accepting set
    std::vector<std::vector<std::uint32_t>> preds(d.num_states());
    for (std::uint32_t s = 0; s < d.num_states(); ++s) {
        for (const transition& t : d.transitions(s)) {
            preds[t.dest].push_back(s);
        }
    }
    std::vector<bool> can_reach(d.num_states(), false);
    std::queue<std::uint32_t> queue;
    for (std::uint32_t s = 0; s < d.num_states(); ++s) {
        if (d.accepting(s)) {
            can_reach[s] = true;
            queue.push(s);
        }
    }
    while (!queue.empty()) {
        const std::uint32_t s = queue.front();
        queue.pop();
        for (const std::uint32_t p : preds[s]) {
            if (!can_reach[p]) {
                can_reach[p] = true;
                queue.push(p);
            }
        }
    }
    for (std::uint32_t s = 0; s < d.num_states(); ++s) {
        if (can_reach[s] && !d.accepting(s)) { return false; }
    }
    return true;
}

std::optional<word> shortest_accepted_word(const automaton& a) {
    bdd_manager& mgr = a.manager();
    // BFS over states: a shortest accepting run spells a shortest accepted
    // word (any accepting path yields an accepted word and vice versa)
    std::vector<std::int64_t> parent(a.num_states(), -1);
    std::vector<bdd> via(a.num_states());
    std::vector<bool> seen(a.num_states(), false);
    std::queue<std::uint32_t> queue;
    seen[a.initial()] = true;
    queue.push(a.initial());
    std::int64_t goal = a.accepting(a.initial())
                            ? static_cast<std::int64_t>(a.initial())
                            : -1;
    while (goal < 0 && !queue.empty()) {
        const std::uint32_t s = queue.front();
        queue.pop();
        for (const transition& t : a.transitions(s)) {
            if (seen[t.dest] || t.label.is_zero()) { continue; }
            seen[t.dest] = true;
            parent[t.dest] = s;
            via[t.dest] = t.label;
            if (a.accepting(t.dest)) {
                goal = t.dest;
                break;
            }
            queue.push(t.dest);
        }
    }
    if (goal < 0) { return std::nullopt; }
    word w;
    for (std::uint32_t s = static_cast<std::uint32_t>(goal);
         parent[s] >= 0; s = static_cast<std::uint32_t>(parent[s])) {
        w.push_back(pick_letter(mgr, via[s], a.label_vars()));
    }
    std::reverse(w.begin(), w.end());
    return w;
}

std::optional<word> containment_counterexample(const automaton& a,
                                               const automaton& b) {
    return shortest_accepted_word(difference(a, b));
}

double count_words(const automaton& a, std::size_t length) {
    bdd_manager& mgr = a.manager();
    const automaton d = is_deterministic(a) ? trim_unreachable(a)
                                            : trim_unreachable(determinize(a));
    const auto nbits = static_cast<std::uint32_t>(d.label_vars().size());
    // backward dynamic program: words[s] = accepted words of the remaining
    // length from s; one letter costs sat_count(label) ways per transition
    std::vector<double> words(d.num_states());
    for (std::uint32_t s = 0; s < d.num_states(); ++s) {
        words[s] = d.accepting(s) ? 1.0 : 0.0;
    }
    for (std::size_t step = 0; step < length; ++step) {
        std::vector<double> next(d.num_states(), 0.0);
        for (std::uint32_t s = 0; s < d.num_states(); ++s) {
            for (const transition& t : d.transitions(s)) {
                if (words[t.dest] == 0.0) { continue; }
                next[s] += mgr.sat_count(t.label, nbits) * words[t.dest];
            }
        }
        words = std::move(next);
    }
    return words[d.initial()];
}

std::vector<word> sample_accepted_words(const automaton& a, std::size_t count,
                                        std::size_t max_len,
                                        std::uint32_t seed) {
    bdd_manager& mgr = a.manager();
    std::mt19937 rng(seed);
    std::set<word> found;
    // each attempt: random walk from the initial state, recording the word
    // whenever the current state subset contains an accepting state
    const std::size_t attempts = count * 8 + 16;
    for (std::size_t k = 0; k < attempts && found.size() < count; ++k) {
        std::uint32_t s = a.initial();
        word w;
        if (a.accepting(s)) { found.insert(w); }
        for (std::size_t step = 0; step < max_len; ++step) {
            const auto& ts = a.transitions(s);
            std::vector<const transition*> enabled;
            for (const transition& t : ts) {
                if (!t.label.is_zero()) { enabled.push_back(&t); }
            }
            if (enabled.empty()) { break; }
            const transition* t =
                enabled[std::uniform_int_distribution<std::size_t>(
                    0, enabled.size() - 1)(rng)];
            w.push_back(pick_letter(mgr, t->label, a.label_vars()));
            s = t->dest;
            if (a.accepting(s)) { found.insert(w); }
        }
    }
    return {found.begin(), found.end()};
}

} // namespace leq
