/// \file kiss.cpp
/// \brief KISS2 serialization.

#include "automata/kiss.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace leq {

void write_kiss(std::ostream& out, const automaton& aut,
                const std::vector<std::uint32_t>& input_vars,
                const std::vector<std::uint32_t>& output_vars) {
    bdd_manager& mgr = aut.manager();
    std::vector<std::uint32_t> all_vars = input_vars;
    all_vars.insert(all_vars.end(), output_vars.begin(), output_vars.end());

    // collect rows first to report .p
    struct row {
        std::string in, st, nx, outv;
    };
    std::vector<row> rows;
    for (std::uint32_t s = 0; s < aut.num_states(); ++s) {
        for (const transition& t : aut.transitions(s)) {
            mgr.foreach_cube(t.label, all_vars,
                             [&](const std::vector<int>& values) {
                std::string icube(input_vars.size(), '-');
                std::string ocube(output_vars.size(), '-');
                for (std::size_t k = 0; k < input_vars.size(); ++k) {
                    if (values[k] != 2) {
                        icube[k] = static_cast<char>('0' + values[k]);
                    }
                }
                for (std::size_t k = 0; k < output_vars.size(); ++k) {
                    const int v = values[input_vars.size() + k];
                    if (v != 2) { ocube[k] = static_cast<char>('0' + v); }
                }
                rows.push_back({icube, "s" + std::to_string(s),
                                "s" + std::to_string(t.dest), ocube});
            });
        }
    }
    out << ".i " << input_vars.size() << "\n.o " << output_vars.size()
        << "\n.s " << aut.num_states() << "\n.p " << rows.size() << "\n.r s"
        << aut.initial() << "\n";
    for (const row& r : rows) {
        out << r.in << " " << r.st << " " << r.nx << " " << r.outv << "\n";
    }
    out << ".e\n";
}

std::string write_kiss_string(const automaton& aut,
                              const std::vector<std::uint32_t>& input_vars,
                              const std::vector<std::uint32_t>& output_vars) {
    std::ostringstream out;
    write_kiss(out, aut, input_vars, output_vars);
    return out.str();
}

automaton read_kiss(std::istream& in, bdd_manager& mgr,
                    const std::vector<std::uint32_t>& input_vars,
                    const std::vector<std::uint32_t>& output_vars) {
    std::vector<std::uint32_t> label_vars = input_vars;
    label_vars.insert(label_vars.end(), output_vars.begin(),
                      output_vars.end());
    automaton aut(mgr, label_vars);

    std::map<std::string, std::uint32_t> ids;
    const auto intern = [&](const std::string& name) {
        const auto it = ids.find(name);
        if (it != ids.end()) { return it->second; }
        const std::uint32_t id = aut.add_state(true);
        ids.emplace(name, id);
        return id;
    };

    std::string reset_name;
    bool have_rows = false;
    bool have_i = false, have_o = false;
    std::string line;
    std::size_t line_no = 0;
    const auto fail = [&](const std::string& message) {
        throw std::runtime_error("kiss:" + std::to_string(line_no) + ": " +
                                 message);
    };
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) { line.erase(hash); }
        std::istringstream ss(line);
        std::string tok;
        if (!(ss >> tok)) { continue; }
        if (tok == ".i") {
            std::size_t n = 0;
            ss >> n;
            if (n != input_vars.size()) { fail(".i mismatch"); }
            have_i = true;
        } else if (tok == ".o") {
            std::size_t n = 0;
            ss >> n;
            if (n != output_vars.size()) { fail(".o mismatch"); }
            have_o = true;
        } else if (tok == ".s" || tok == ".p") {
            // advisory counts
        } else if (tok == ".r") {
            ss >> reset_name;
        } else if (tok == ".e") {
            break;
        } else if (tok[0] == '.') {
            fail("unsupported construct '" + tok + "'");
        } else {
            if (!have_i || !have_o) { fail("missing .i/.o header"); }
            std::string st, nx, ocube;
            if (!(ss >> st >> nx >> ocube)) { fail("bad transition row"); }
            if (tok.size() != input_vars.size() ||
                ocube.size() != output_vars.size()) {
                fail("cube width mismatch");
            }
            if (reset_name.empty()) { reset_name = st; }
            bdd label = mgr.one();
            const auto apply = [&](const std::string& cube,
                                   const std::vector<std::uint32_t>& vars) {
                for (std::size_t k = 0; k < cube.size(); ++k) {
                    if (cube[k] == '0') {
                        label &= mgr.nvar(vars[k]);
                    } else if (cube[k] == '1') {
                        label &= mgr.var(vars[k]);
                    } else if (cube[k] != '-') {
                        fail("bad cube character");
                    }
                }
            };
            apply(tok, input_vars);
            apply(ocube, output_vars);
            aut.add_transition(intern(st), intern(nx), label);
            have_rows = true;
        }
    }
    if (!have_rows) { throw std::runtime_error("kiss: no transitions"); }
    aut.set_initial(ids.at(reset_name));
    return aut;
}

automaton read_kiss_string(const std::string& text, bdd_manager& mgr,
                           const std::vector<std::uint32_t>& input_vars,
                           const std::vector<std::uint32_t>& output_vars) {
    std::istringstream in(text);
    return read_kiss(in, mgr, input_vars, output_vars);
}

kiss_header read_kiss_header(const std::string& text) {
    std::istringstream in(text);
    kiss_header h;
    bool have_i = false, have_o = false;
    std::string line;
    while (std::getline(in, line) && !(have_i && have_o)) {
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        if (tok == ".i") {
            ls >> h.num_inputs;
            have_i = true;
        } else if (tok == ".o") {
            ls >> h.num_outputs;
            have_o = true;
        }
    }
    if (!have_i || !have_o) {
        throw std::runtime_error("kiss: missing .i/.o header");
    }
    return h;
}

} // namespace leq
