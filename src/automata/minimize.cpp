/// \file minimize.cpp
/// \brief DFA minimization by partition refinement over BDD-labelled edges.

#include "automata/automaton.hpp"

#include <map>
#include <stdexcept>

namespace leq {

automaton minimize(const automaton& input) {
    if (!is_deterministic(input)) {
        throw std::logic_error("minimize: automaton must be deterministic");
    }
    const automaton a = trim_unreachable(input);
    bdd_manager& mgr = a.manager();
    const std::size_t n = a.num_states();

    // initial partition: accepting vs non-accepting
    std::vector<std::uint32_t> block(n);
    for (std::uint32_t s = 0; s < n; ++s) {
        block[s] = a.accepting(s) ? 0 : 1;
    }

    // refine: the signature of a state is, per current block, the union of
    // guards leading to it (plus the implicit "undefined" region); states in
    // the same block with different signatures split.  Iterate until the
    // canonical (first-occurrence-numbered) partition is stable.
    std::uint32_t num_blocks = 0;
    while (true) {
        // signature: sorted (block, guard BDD index) pairs
        std::map<std::pair<std::uint32_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>>,
                 std::uint32_t>
            classes;
        std::vector<std::uint32_t> next_block(n);
        std::uint32_t next_count = 0;
        for (std::uint32_t s = 0; s < n; ++s) {
            std::map<std::uint32_t, bdd> guards; // target block -> region
            for (const transition& t : a.transitions(s)) {
                const auto [it, fresh] =
                    guards.emplace(block[t.dest], t.label);
                if (!fresh) { it->second |= t.label; }
            }
            std::vector<std::pair<std::uint32_t, std::uint32_t>> sig;
            sig.reserve(guards.size());
            for (const auto& [b, g] : guards) {
                sig.emplace_back(b, g.index()); // canonical: BDD node index
            }
            const auto key = std::make_pair(block[s], std::move(sig));
            const auto [it, fresh] = classes.emplace(key, next_count);
            if (fresh) { ++next_count; }
            next_block[s] = it->second;
        }
        const bool stable = next_block == block;
        num_blocks = next_count;
        block = std::move(next_block);
        if (stable) { break; }
    }

    automaton result(mgr, a.label_vars());
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
        result.add_state(false);
    }
    for (std::uint32_t s = 0; s < n; ++s) {
        result.set_accepting(block[s], a.accepting(s));
    }
    result.set_initial(block[a.initial()]);
    std::vector<bool> done(num_blocks, false);
    for (std::uint32_t s = 0; s < n; ++s) {
        if (done[block[s]]) { continue; } // one representative per block
        done[block[s]] = true;
        for (const transition& t : a.transitions(s)) {
            result.add_transition(block[s], block[t.dest], t.label);
        }
    }
    return trim_unreachable(result);
}

} // namespace leq
