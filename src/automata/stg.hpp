/// \file stg.hpp
/// \brief Extract the state transition graph of a sequential network as an
/// explicit automaton.
///
/// Per the paper (Section 2): the automaton of a network is obtained by
/// taking the union of the network's inputs and outputs as the automaton's
/// input alphabet; every reachable state is accepting (the network is an FSM
/// and hence prefix-closed).  The result is deterministic and, in general,
/// incomplete: in a state, the only defined (i,o) combinations are those
/// where o equals the network's output under i.
///
/// Exhaustive over the 2^|i| input combinations per state; intended for the
/// explicit oracle on small circuits.
#pragma once

#include "automata/automaton.hpp"
#include "net/network.hpp"

#include <vector>

namespace leq {

/// \param input_vars  label variable per network input
/// \param output_vars label variable per network output
/// \param max_states  safety cap; throws std::runtime_error beyond it
[[nodiscard]] automaton
network_to_automaton(bdd_manager& mgr, const network& net,
                     const std::vector<std::uint32_t>& input_vars,
                     const std::vector<std::uint32_t>& output_vars,
                     std::size_t max_states = 1u << 20);

} // namespace leq
