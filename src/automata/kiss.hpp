/// \file kiss.hpp
/// \brief KISS2 import/export for automata.
///
/// KISS2 is the FSM exchange format of the MCNC/SIS/MVSIS/BALM toolchain
/// the paper's implementation lived in.  A line `ICUBE CURRENT NEXT OCUBE`
/// gives one transition; we map the input cube onto the u variables and the
/// output cube onto the v variables of an automaton label (matching how the
/// paper turns FSMs into automata: inputs and outputs are not
/// distinguished).  The reserved next-state name `*` is not supported; all
/// states are accepting (FSMs are prefix-closed).
#pragma once

#include "automata/automaton.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace leq {

/// Serialize as KISS2.  Each transition's label is expanded into
/// (u-cube, v-cube) pairs.  Only deterministic Mealy-style automata (as
/// produced by extract_fsm) round-trip exactly; arbitrary label BDDs are
/// emitted cube by cube.
void write_kiss(std::ostream& out, const automaton& aut,
                const std::vector<std::uint32_t>& input_vars,
                const std::vector<std::uint32_t>& output_vars);

[[nodiscard]] std::string write_kiss_string(
    const automaton& aut, const std::vector<std::uint32_t>& input_vars,
    const std::vector<std::uint32_t>& output_vars);

/// Parse KISS2 into an automaton over the given label variables.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] automaton read_kiss(std::istream& in, bdd_manager& mgr,
                                  const std::vector<std::uint32_t>& input_vars,
                                  const std::vector<std::uint32_t>& output_vars);

[[nodiscard]] automaton
read_kiss_string(const std::string& text, bdd_manager& mgr,
                 const std::vector<std::uint32_t>& input_vars,
                 const std::vector<std::uint32_t>& output_vars);

/// Interface dimensions scanned from a KISS2 header (.i / .o lines), used
/// to allocate label variables before the full parse.  Throws
/// std::runtime_error when either line is missing.
struct kiss_header {
    std::size_t num_inputs = 0;
    std::size_t num_outputs = 0;
};
[[nodiscard]] kiss_header read_kiss_header(const std::string& text);

} // namespace leq
