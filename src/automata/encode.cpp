/// \file encode.cpp
/// \brief FSM-to-network encoding.

#include "automata/encode.hpp"

#include <cmath>
#include <stdexcept>

namespace leq {

network automaton_to_network(const automaton& fsm,
                             const std::vector<std::uint32_t>& u_vars,
                             const std::vector<std::uint32_t>& v_vars,
                             const std::vector<std::string>& input_names,
                             const std::vector<std::string>& output_names,
                             const std::string& model_name) {
    if (input_names.size() != u_vars.size() ||
        output_names.size() != v_vars.size()) {
        throw std::invalid_argument("automaton_to_network: name counts");
    }
    if (!is_deterministic(fsm)) {
        throw std::invalid_argument(
            "automaton_to_network: FSM must be deterministic");
    }
    bdd_manager& mgr = fsm.manager();
    const std::size_t n = fsm.num_states();
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < n) { ++bits; }
    bits = std::max<std::size_t>(bits, 1);

    // state codes: initial state must be the all-zero code (latch reset)
    std::vector<std::uint32_t> code(n);
    std::uint32_t next_code = 1;
    for (std::uint32_t s = 0; s < n; ++s) {
        code[s] = s == fsm.initial() ? 0 : next_code++;
    }

    network net(model_name);
    for (const std::string& name : input_names) { net.add_input(name); }
    for (const std::string& name : output_names) { net.add_output(name); }
    for (std::size_t b = 0; b < bits; ++b) {
        net.add_latch("st_n" + std::to_string(b), "st" + std::to_string(b),
                      false);
    }

    // covers over fanins (st..., u...)
    std::vector<std::string> fanins;
    for (std::size_t b = 0; b < bits; ++b) {
        fanins.push_back("st" + std::to_string(b));
    }
    for (const std::string& name : input_names) { fanins.push_back(name); }

    // Moore detection: when every state commits to a single v assignment
    // (independent of u), the output nodes can be driven by the state bits
    // alone.  This removes the syntactic u -> v path, which is what lets
    // compose_networks accept the result in a u = f(..., v) feedback loop
    // (the combinational-cycle caveat of the paper's footnote 5).
    const bdd u_cube = mgr.cube(u_vars);
    const bdd v_cube = mgr.cube(v_vars);
    std::vector<bdd> state_v(n);
    bool moore = true;
    for (std::uint32_t s = 0; s < n && moore; ++s) {
        const bdd vs = mgr.exists(fsm.domain(s), u_cube);
        if (mgr.sat_count(vs, static_cast<std::uint32_t>(v_vars.size())) !=
            1.0) {
            moore = false;
            break;
        }
        for (const transition& t : fsm.transitions(s)) {
            if (t.label != (mgr.exists(t.label, v_cube) & vs)) {
                moore = false;
                break;
            }
        }
        state_v[s] = vs;
    }

    std::vector<std::vector<std::string>> ns_cubes(bits);
    std::vector<std::vector<std::string>> out_cubes(output_names.size());

    // label variables in the cube order we ask foreach_cube for
    std::vector<std::uint32_t> label_vars = u_vars;
    label_vars.insert(label_vars.end(), v_vars.begin(), v_vars.end());

    for (std::uint32_t s = 0; s < n; ++s) {
        std::string state_part(bits, '0');
        for (std::size_t b = 0; b < bits; ++b) {
            if ((code[s] >> b) & 1) { state_part[b] = '1'; }
        }
        if (moore) {
            // output covers over the state bits only
            for (std::size_t m = 0; m < v_vars.size(); ++m) {
                if (!(state_v[s] & mgr.var(v_vars[m])).is_zero()) {
                    out_cubes[m].push_back(state_part);
                }
            }
        }
        for (const transition& t : fsm.transitions(s)) {
            mgr.foreach_cube(t.label, label_vars,
                             [&](const std::vector<int>& values) {
                std::string u_part(u_vars.size(), '-');
                for (std::size_t m = 0; m < u_vars.size(); ++m) {
                    if (values[m] != 2) {
                        u_part[m] = static_cast<char>('0' + values[m]);
                    }
                }
                const std::string row = state_part + u_part;
                // next-state bits of the destination code
                for (std::size_t b = 0; b < bits; ++b) {
                    if ((code[t.dest] >> b) & 1) {
                        ns_cubes[b].push_back(row);
                    }
                }
                // output bits: v values of this cube (don't-care -> 0);
                // in Moore form they were emitted per state above
                if (!moore) {
                    for (std::size_t m = 0; m < v_vars.size(); ++m) {
                        if (values[u_vars.size() + m] == 1) {
                            out_cubes[m].push_back(row);
                        }
                    }
                }
            });
        }
    }

    for (std::size_t b = 0; b < bits; ++b) {
        net.add_node("st_n" + std::to_string(b), fanins, ns_cubes[b]);
    }
    std::vector<std::string> out_fanins = fanins;
    if (moore) {
        out_fanins.assign(fanins.begin(),
                          fanins.begin() + static_cast<std::ptrdiff_t>(bits));
    }
    for (std::size_t m = 0; m < output_names.size(); ++m) {
        net.add_node(output_names[m], out_fanins, out_cubes[m]);
    }
    net.validate();
    return net;
}

} // namespace leq
