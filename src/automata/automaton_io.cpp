/// \file automaton_io.cpp
/// \brief Automaton rendering.

#include "automata/automaton_io.hpp"

#include <ostream>

namespace leq {

void var_names::label(const std::vector<std::uint32_t>& vars,
                      const std::string& prefix) {
    for (std::size_t k = 0; k < vars.size(); ++k) {
        names_[vars[k]] = prefix + std::to_string(k);
    }
}

void print_automaton(std::ostream& out, const automaton& aut,
                     const std::vector<std::string>& var_names) {
    out << "automaton: " << aut.num_states() << " states, "
        << aut.num_transitions() << " transitions, initial "
        << aut.initial() << "\n";
    for (std::uint32_t s = 0; s < aut.num_states(); ++s) {
        out << "  state " << s << (aut.accepting(s) ? " (accepting)" : "")
            << (s == aut.initial() ? " (initial)" : "") << "\n";
        for (const transition& t : aut.transitions(s)) {
            out << "    --[" << aut.manager().to_string(t.label, var_names)
                << "]--> " << t.dest << "\n";
        }
    }
}

void write_dot(std::ostream& out, const automaton& aut,
               const std::vector<std::string>& var_names,
               const std::string& graph_name) {
    out << "digraph " << graph_name << " {\n  rankdir=LR;\n"
        << "  init [shape=point];\n";
    for (std::uint32_t s = 0; s < aut.num_states(); ++s) {
        out << "  s" << s << " [shape="
            << (aut.accepting(s) ? "doublecircle" : "circle") << "];\n";
    }
    out << "  init -> s" << aut.initial() << ";\n";
    for (std::uint32_t s = 0; s < aut.num_states(); ++s) {
        for (const transition& t : aut.transitions(s)) {
            out << "  s" << s << " -> s" << t.dest << " [label=\""
                << aut.manager().to_string(t.label, var_names) << "\"];\n";
        }
    }
    out << "}\n";
}

} // namespace leq
