/// \file automaton_io.hpp
/// \brief Text and Graphviz rendering of explicit automata.
#pragma once

#include "automata/automaton.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace leq {

/// Human-readable listing: one line per transition with labels rendered as
/// sum-of-cubes over `var_names` (indexed by BDD variable id).
void print_automaton(std::ostream& out, const automaton& aut,
                     const std::vector<std::string>& var_names);

/// Graphviz dot output (accepting states doubly circled).
void write_dot(std::ostream& out, const automaton& aut,
               const std::vector<std::string>& var_names,
               const std::string& graph_name = "automaton");

/// Variable-name table for a manager: names[id] for the ids in each group.
class var_names {
public:
    explicit var_names(std::size_t num_vars) : names_(num_vars) {}
    void label(const std::vector<std::uint32_t>& vars,
               const std::string& prefix);
    [[nodiscard]] const std::vector<std::string>& get() const { return names_; }

private:
    std::vector<std::string> names_;
};

} // namespace leq
