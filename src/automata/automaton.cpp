/// \file automaton.cpp
/// \brief Explicit automaton storage and the elementary operations.

#include "automata/automaton.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

namespace leq {

std::uint32_t automaton::add_state(bool accepting) {
    accepting_.push_back(accepting);
    edges_.emplace_back();
    return static_cast<std::uint32_t>(accepting_.size() - 1);
}

void automaton::add_transition(std::uint32_t src, std::uint32_t dest,
                               const bdd& label) {
    if (label.is_zero()) { return; }
    for (transition& t : edges_[src]) {
        if (t.dest == dest) {
            t.label |= label;
            return;
        }
    }
    edges_[src].push_back({dest, label});
}

bdd automaton::domain(std::uint32_t state) const {
    bdd d = mgr_->zero();
    for (const transition& t : edges_[state]) { d |= t.label; }
    return d;
}

std::size_t automaton::num_transitions() const {
    std::size_t n = 0;
    for (const auto& e : edges_) { n += e.size(); }
    return n;
}

// ---------------------------------------------------------------------------

bool is_deterministic(const automaton& a) {
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        const auto& edges = a.transitions(s);
        for (std::size_t i = 0; i < edges.size(); ++i) {
            for (std::size_t j = i + 1; j < edges.size(); ++j) {
                if (!(edges[i].label & edges[j].label).is_zero()) {
                    return false;
                }
            }
        }
    }
    return true;
}

bool is_complete(const automaton& a) {
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        if (!a.domain(s).is_one()) { return false; }
    }
    return true;
}

automaton complete(const automaton& a) {
    automaton r = a;
    bool needed = false;
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        if (!a.domain(s).is_one()) { needed = true; break; }
    }
    if (!needed) { return r; }
    const std::uint32_t dc = r.add_state(false);
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        const bdd undefined = !a.domain(s);
        r.add_transition(s, dc, undefined);
    }
    r.add_transition(dc, dc, a.manager().one());
    return r;
}

automaton complement(const automaton& a) {
    if (!is_deterministic(a) || !is_complete(a)) {
        throw std::logic_error(
            "complement: automaton must be deterministic and complete");
    }
    automaton r = a;
    for (std::uint32_t s = 0; s < r.num_states(); ++s) {
        r.set_accepting(s, !a.accepting(s));
    }
    return r;
}

namespace {

using state_set = std::vector<std::uint32_t>; // sorted member list

/// Partition the label space by the outgoing edges of a subset of states:
/// returns disjoint (region, successor subset) pairs covering exactly the
/// assignments on which some member state moves.
std::vector<std::pair<bdd, state_set>>
split_regions(const automaton& a, const state_set& members) {
    bdd_manager& mgr = a.manager();
    std::vector<std::pair<bdd, std::set<std::uint32_t>>> regions;
    regions.emplace_back(mgr.one(), std::set<std::uint32_t>{});
    for (const std::uint32_t s : members) {
        for (const transition& t : a.transitions(s)) {
            std::vector<std::pair<bdd, std::set<std::uint32_t>>> next;
            next.reserve(regions.size() * 2);
            for (auto& [space, dests] : regions) {
                const bdd hit = space & t.label;
                const bdd miss = space & !t.label;
                if (!hit.is_zero()) {
                    auto with = dests;
                    with.insert(t.dest);
                    next.emplace_back(hit, std::move(with));
                }
                if (!miss.is_zero()) {
                    next.emplace_back(miss, std::move(dests));
                }
            }
            regions = std::move(next);
        }
    }
    std::vector<std::pair<bdd, state_set>> result;
    for (auto& [space, dests] : regions) {
        if (dests.empty()) { continue; } // no transition here
        result.emplace_back(space, state_set(dests.begin(), dests.end()));
    }
    return result;
}

} // namespace

automaton determinize(const automaton& a) {
    bdd_manager& mgr = a.manager();
    automaton r(mgr, a.label_vars());
    std::map<state_set, std::uint32_t> ids;
    std::queue<state_set> work;

    const auto subset_accepting = [&](const state_set& members) {
        return std::any_of(members.begin(), members.end(),
                           [&](std::uint32_t s) { return a.accepting(s); });
    };
    const auto intern = [&](const state_set& members) {
        const auto it = ids.find(members);
        if (it != ids.end()) { return it->second; }
        const std::uint32_t id = r.add_state(subset_accepting(members));
        ids.emplace(members, id);
        work.push(members);
        return id;
    };

    const state_set init{a.initial()};
    r.set_initial(intern(init));
    while (!work.empty()) {
        const state_set members = work.front();
        work.pop();
        const std::uint32_t src = ids.at(members);
        for (const auto& [region, dests] : split_regions(a, members)) {
            r.add_transition(src, intern(dests), region);
        }
    }
    return r;
}

automaton product(const automaton& a, const automaton& b) {
    if (&a.manager() != &b.manager()) {
        throw std::logic_error("product: different BDD managers");
    }
    bdd_manager& mgr = a.manager();
    // union of supports
    std::vector<std::uint32_t> vars = a.label_vars();
    for (const std::uint32_t v : b.label_vars()) {
        if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
            vars.push_back(v);
        }
    }
    automaton r(mgr, vars);
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> ids;
    std::queue<std::pair<std::uint32_t, std::uint32_t>> work;
    const auto intern = [&](std::uint32_t sa, std::uint32_t sb) {
        const auto key = std::make_pair(sa, sb);
        const auto it = ids.find(key);
        if (it != ids.end()) { return it->second; }
        const std::uint32_t id =
            r.add_state(a.accepting(sa) && b.accepting(sb));
        ids.emplace(key, id);
        work.push(key);
        return id;
    };
    r.set_initial(intern(a.initial(), b.initial()));
    while (!work.empty()) {
        const auto [sa, sb] = work.front();
        work.pop();
        const std::uint32_t src = ids.at({sa, sb});
        for (const transition& ta : a.transitions(sa)) {
            for (const transition& tb : b.transitions(sb)) {
                const bdd label = ta.label & tb.label;
                if (label.is_zero()) { continue; }
                r.add_transition(src, intern(ta.dest, tb.dest), label);
            }
        }
    }
    return r;
}

automaton change_support(const automaton& a,
                         const std::vector<std::uint32_t>& vars) {
    bdd_manager& mgr = a.manager();
    // variables to hide: in the current support but not in the new one
    std::vector<std::uint32_t> hidden;
    for (const std::uint32_t v : a.label_vars()) {
        if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
            hidden.push_back(v);
        }
    }
    const bdd cube = mgr.cube(hidden);
    automaton r(mgr, vars);
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        r.add_state(a.accepting(s));
    }
    r.set_initial(a.initial());
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        for (const transition& t : a.transitions(s)) {
            r.add_transition(s, t.dest, mgr.exists(t.label, cube));
        }
    }
    return r;
}

automaton trim_unreachable(const automaton& a) {
    std::vector<bool> reachable(a.num_states(), false);
    std::queue<std::uint32_t> work;
    reachable[a.initial()] = true;
    work.push(a.initial());
    while (!work.empty()) {
        const std::uint32_t s = work.front();
        work.pop();
        for (const transition& t : a.transitions(s)) {
            if (!reachable[t.dest]) {
                reachable[t.dest] = true;
                work.push(t.dest);
            }
        }
    }
    automaton r(a.manager(), a.label_vars());
    std::vector<std::uint32_t> remap(a.num_states(), 0);
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        if (reachable[s]) { remap[s] = r.add_state(a.accepting(s)); }
    }
    r.set_initial(remap[a.initial()]);
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        if (!reachable[s]) { continue; }
        for (const transition& t : a.transitions(s)) {
            if (reachable[t.dest]) {
                r.add_transition(remap[s], remap[t.dest], t.label);
            }
        }
    }
    return r;
}

namespace {

/// Keep only the states in `keep` (which must include the initial state);
/// drop transitions touching removed states.
automaton restrict_states(const automaton& a, const std::vector<bool>& keep) {
    automaton r(a.manager(), a.label_vars());
    std::vector<std::uint32_t> remap(a.num_states(), 0);
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        if (keep[s]) { remap[s] = r.add_state(a.accepting(s)); }
    }
    r.set_initial(remap[a.initial()]);
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        if (!keep[s]) { continue; }
        for (const transition& t : a.transitions(s)) {
            if (keep[t.dest]) {
                r.add_transition(remap[s], remap[t.dest], t.label);
            }
        }
    }
    return trim_unreachable(r);
}

/// The empty-language automaton: a single non-accepting state, no moves.
automaton empty_language(bdd_manager& mgr,
                         const std::vector<std::uint32_t>& vars) {
    automaton r(mgr, vars);
    r.set_initial(r.add_state(false));
    return r;
}

} // namespace

automaton prefix_close(const automaton& a) {
    if (!a.accepting(a.initial())) {
        return empty_language(a.manager(), a.label_vars());
    }
    std::vector<bool> keep(a.num_states());
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        keep[s] = a.accepting(s);
    }
    return restrict_states(a, keep);
}

automaton progressive(const automaton& a,
                      const std::vector<std::uint32_t>& input_vars) {
    bdd_manager& mgr = a.manager();
    // variables to abstract when checking input coverage: support \ inputs
    std::vector<std::uint32_t> others;
    for (const std::uint32_t v : a.label_vars()) {
        if (std::find(input_vars.begin(), input_vars.end(), v) ==
            input_vars.end()) {
            others.push_back(v);
        }
    }
    const bdd other_cube = mgr.cube(others);

    std::vector<bool> alive(a.num_states(), true);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t s = 0; s < a.num_states(); ++s) {
            if (!alive[s]) { continue; }
            bdd dom = mgr.zero();
            for (const transition& t : a.transitions(s)) {
                if (alive[t.dest]) { dom |= t.label; }
            }
            // every input assignment must be enabled for some other-var value
            if (!mgr.exists(dom, other_cube).is_one()) {
                alive[s] = false;
                changed = true;
            }
        }
    }
    if (!alive[a.initial()]) {
        return empty_language(mgr, a.label_vars());
    }
    return restrict_states(a, alive);
}

// ---------------------------------------------------------------------------
// language queries
// ---------------------------------------------------------------------------

bool language_empty(const automaton& a) {
    const automaton t = trim_unreachable(a);
    for (std::uint32_t s = 0; s < t.num_states(); ++s) {
        if (t.accepting(s)) { return false; }
    }
    return true;
}

bool accepts(const automaton& a, const std::vector<std::vector<bool>>& word) {
    bdd_manager& mgr = a.manager();
    std::set<std::uint32_t> current{a.initial()};
    for (const std::vector<bool>& letter : word) {
        std::set<std::uint32_t> next;
        for (const std::uint32_t s : current) {
            for (const transition& t : a.transitions(s)) {
                if (mgr.eval(t.label, letter)) { next.insert(t.dest); }
            }
        }
        if (next.empty()) { return false; }
        current = std::move(next);
    }
    for (const std::uint32_t s : current) {
        if (a.accepting(s)) { return true; }
    }
    return false;
}

bool language_contained(const automaton& a, const automaton& b) {
    if (a.label_vars() != b.label_vars()) {
        throw std::logic_error("language_contained: support mismatch");
    }
    // a (subset) b  iff  L(a) & complement(L(b)) empty
    const automaton bc = complement(complete(determinize(b)));
    const automaton p = product(a, bc);
    return language_empty(p);
}

bool language_equivalent(const automaton& a, const automaton& b) {
    return language_contained(a, b) && language_contained(b, a);
}

} // namespace leq
