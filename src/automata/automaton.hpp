/// \file automaton.hpp
/// \brief Explicit-state finite automata with BDD-labelled transitions.
///
/// The solver's symbolic flows manipulate automata implicitly; this module
/// provides the same objects explicitly.  It serves three purposes: it is the
/// output format of the solver (the CSF is returned as an explicit automaton
/// over the (u,v) alphabet), the oracle implementation of Algorithm 1 for
/// cross-validation, and the substrate for the paper's verification checks.
///
/// Transition labels are BDDs over a fixed list of label variables (the
/// automaton's support, in the paper's terminology).  A word is a sequence
/// of assignments to the label variables; it is accepted if some run over it
/// ends in an accepting state.  All automata here are over finite words.
#pragma once

#include "bdd/bdd.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace leq {

/// One labelled transition.
struct transition {
    std::uint32_t dest = 0;
    bdd label; ///< set of label-variable assignments enabling the move
};

/// Explicit automaton; states are dense ids.
class automaton {
public:
    automaton(bdd_manager& mgr, std::vector<std::uint32_t> label_vars)
        : mgr_(&mgr), label_vars_(std::move(label_vars)) {}

    std::uint32_t add_state(bool accepting);
    /// Add (or extend, by disjunction) the transition src -> dest.
    void add_transition(std::uint32_t src, std::uint32_t dest, const bdd& label);
    void set_initial(std::uint32_t state) { initial_ = state; }

    [[nodiscard]] bdd_manager& manager() const { return *mgr_; }
    [[nodiscard]] const std::vector<std::uint32_t>& label_vars() const {
        return label_vars_;
    }
    [[nodiscard]] std::uint32_t initial() const { return initial_; }
    [[nodiscard]] std::size_t num_states() const { return accepting_.size(); }
    [[nodiscard]] bool accepting(std::uint32_t state) const {
        return accepting_[state];
    }
    void set_accepting(std::uint32_t state, bool accepting) {
        accepting_[state] = accepting;
    }
    [[nodiscard]] const std::vector<transition>&
    transitions(std::uint32_t state) const {
        return edges_[state];
    }
    /// Union of outgoing labels (the domain on which the state is defined).
    [[nodiscard]] bdd domain(std::uint32_t state) const;

    [[nodiscard]] std::size_t num_transitions() const;

private:
    bdd_manager* mgr_;
    std::vector<std::uint32_t> label_vars_;
    std::vector<std::vector<transition>> edges_;
    std::vector<bool> accepting_;
    std::uint32_t initial_ = 0;
};

// ---------------------------------------------------------------------------
// elementary operations of language-equation solving (paper, Section 3)
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_deterministic(const automaton& a);
[[nodiscard]] bool is_complete(const automaton& a);

/// Add a non-accepting DC state with a universal self-loop and direct every
/// undefined input combination to it (paper: Complete).
[[nodiscard]] automaton complete(const automaton& a);

/// Swap accepting and non-accepting states.  Requires a deterministic,
/// complete automaton (determinize/complete first otherwise).
[[nodiscard]] automaton complement(const automaton& a);

/// Subset construction.  A subset state is accepting iff it contains an
/// accepting member.
[[nodiscard]] automaton determinize(const automaton& a);

/// Direct product; defined over the union of supports, a pair state is
/// accepting iff both components are.
[[nodiscard]] automaton product(const automaton& a, const automaton& b);

/// Change of support (paper: Support): `vars` is the new label-variable
/// list.  Variables currently in the support but absent from `vars` are
/// hidden (existentially quantified from every label); fresh variables are
/// added as unconstrained.  Hiding typically makes the result
/// non-deterministic.
[[nodiscard]] automaton change_support(const automaton& a,
                                       const std::vector<std::uint32_t>& vars);

/// Remove all non-accepting states and every transition touching them
/// (paper: PrefixClose), then trim unreachable states.
[[nodiscard]] automaton prefix_close(const automaton& a);

/// Largest sub-automaton whose every state accepts all `input_vars`
/// assignments for some assignment of the remaining label variables
/// (paper: Progressive, over the inputs u of the unknown component).
/// Returns an empty-language automaton if the initial state is trimmed.
[[nodiscard]] automaton progressive(const automaton& a,
                                    const std::vector<std::uint32_t>& input_vars);

/// Drop states unreachable from the initial state.
[[nodiscard]] automaton trim_unreachable(const automaton& a);

/// Minimize a deterministic automaton by partition refinement (Moore's
/// algorithm over BDD-labelled edges).  The input need not be complete;
/// "no transition" is treated as a distinct sink behaviour.  The result
/// accepts the same language with the minimum number of states.
[[nodiscard]] automaton minimize(const automaton& a);

// ---------------------------------------------------------------------------
// language queries
// ---------------------------------------------------------------------------

/// L(a) subset-of L(b)?  Supports arbitrary a; b is determinized/completed
/// internally.  Both must share the label variable list.
[[nodiscard]] bool language_contained(const automaton& a, const automaton& b);

[[nodiscard]] bool language_equivalent(const automaton& a, const automaton& b);

/// Does the automaton accept any word (including the empty word)?
[[nodiscard]] bool language_empty(const automaton& a);

/// Word membership.  Each letter assigns every label variable (indexed by
/// variable id, like bdd_manager::eval).  Handles non-deterministic
/// automata by tracking the reachable state subset.
[[nodiscard]] bool accepts(const automaton& a,
                           const std::vector<std::vector<bool>>& word);

// ---------------------------------------------------------------------------
// derived language operations (language_ops.cpp)
// ---------------------------------------------------------------------------

/// A word over the label variables: one full assignment per letter, indexed
/// by variable id (the representation bdd_manager::eval consumes).
using word = std::vector<std::vector<bool>>;

/// L(a) union L(b).  Both arguments must share the label variable list; the
/// result is non-deterministic in general.
[[nodiscard]] automaton union_automata(const automaton& a, const automaton& b);

/// L(a) \ L(b): the product of a with the complemented determinization of b.
[[nodiscard]] automaton difference(const automaton& a, const automaton& b);

/// Is L(a) prefix-closed?  (Every prefix of an accepted word is accepted.
/// Networks always induce prefix-closed automata — paper, Section 2; the
/// solver's CSF is prefix-closed by construction.)
[[nodiscard]] bool is_prefix_closed(const automaton& a);

/// A shortest accepted word, or std::nullopt when the language is empty.
/// Don't-care label bits in the chosen transitions default to false.
[[nodiscard]] std::optional<word> shortest_accepted_word(const automaton& a);

/// A shortest word in L(a) \ L(b) — the witness that containment fails —
/// or std::nullopt when L(a) is contained in L(b).
[[nodiscard]] std::optional<word>
containment_counterexample(const automaton& a, const automaton& b);

/// Sample up to `count` accepted words of length <= max_len by seeded random
/// walks (duplicates removed).  Cheap probabilistic cross-checks: every
/// sampled word of one automaton must be accepted by an equivalent one.
[[nodiscard]] std::vector<word> sample_accepted_words(const automaton& a,
                                                      std::size_t count,
                                                      std::size_t max_len,
                                                      std::uint32_t seed);

/// Number of accepted words of exactly the given length (as a double — the
/// count is exponential in the length).  Determinizes internally so runs
/// and words coincide.  A quantitative view of flexibility: the CSF's word
/// count versus an implementation's measures how much freedom a commitment
/// gives up.
[[nodiscard]] double count_words(const automaton& a, std::size_t length);

} // namespace leq
