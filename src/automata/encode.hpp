/// \file encode.hpp
/// \brief Turn an extracted FSM automaton back into a sequential network.
///
/// Closes the synthesis loop: latch-split a circuit, compute the CSF,
/// extract an implementation FSM, and re-encode it as a multi-level network
/// that can be written to BLIF and dropped into a netlist.  States get a
/// dense binary encoding (initial state = code 0); the next-state and
/// output covers are read off the transition guards cube by cube.
#pragma once

#include "automata/automaton.hpp"
#include "net/network.hpp"

#include <string>
#include <vector>

namespace leq {

/// \param fsm deterministic Mealy automaton over (u,v) as produced by
///        extract_fsm: in every state, each u assignment enables exactly
///        one transition and determines the v outputs.
/// \param u_vars,v_vars the label variables playing input/output roles
/// \param input_names,output_names port names for the network (sized like
///        u_vars / v_vars)
[[nodiscard]] network
automaton_to_network(const automaton& fsm,
                     const std::vector<std::uint32_t>& u_vars,
                     const std::vector<std::uint32_t>& v_vars,
                     const std::vector<std::string>& input_names,
                     const std::vector<std::string>& output_names,
                     const std::string& model_name = "extracted_fsm");

} // namespace leq
