/// \file differential.hpp
/// \brief Differential oracle: cross-examine the three solver flows on one
/// scenario and check the metamorphic closure properties of the CSF.
///
/// The paper's correctness story (Corollary 1 plus Algorithm 1) says all
/// flows compute the same largest solution; this module turns that into an
/// executable oracle.  For a scenario it runs `solve_partitioned` across an
/// option matrix (strategy x early-quantification x cluster policy),
/// `solve_monolithic`, and — when the instance is small enough for the
/// exponential oracle — `solve_explicit`, then checks:
///
///   * every flow/option agrees on the CSF language and emptiness;
///   * the CSF is deterministic and prefix-closed;
///   * the composition F . X refines S (`verify_composition_contained`);
///   * the largest solution contains every sub-solution (a greedily
///     extracted FSM is language-contained in the CSF);
///   * split-derived scenarios: X_P is contained in the CSF;
///   * mutant scenarios: when X_P stops verifying, `diagnose` must return a
///     *real* difference word — the trace's input sequence replays on the
///     baseline and mutated spec networks with disagreeing outputs.
///
/// A failure is reported as text (never an abort): the fuzz driver shrinks
/// the instance and writes a reproducer instead of dying on an assertion.
#pragma once

#include "gen/scenario.hpp"
#include "img/image.hpp"

#include <functional>
#include <string>
#include <vector>

namespace leq {

class equation_problem;

struct differential_options {
    /// Partitioned-flow option matrix; empty selects
    /// `default_option_matrix()`.  Entry 0 is the reference configuration.
    std::vector<image_options> matrix;
    /// Called after the equation problem is built and before solving, so a
    /// caller can tune per-problem option fields (the fault-injection
    /// self-tests set `fault_suppress_var` to a live variable id here).
    std::function<void(const equation_problem&, std::vector<image_options>&)>
        tune_matrix;
    /// Run the explicit Algorithm-1 oracle when the instance is small.
    bool with_explicit = true;
    std::size_t explicit_max_latches = 6; ///< fixed+spec latch cap
    std::size_t explicit_max_label_bits = 7; ///< i+o+u+v+w cap
    /// Run the closure/verification property checks on the reference CSF.
    bool with_verification = true;
    /// Per-solve limits; a scenario that blows them is a finding, not a hang.
    double time_limit_seconds = 60.0;
    std::size_t max_subset_states = 50000;
};

/// The sweep the differential runs by default: reference options, an
/// unclustered naive-quantification BFS, a chaining/affinity configuration,
/// a tightly clustered affinity frontier, default saturation, and a tightly
/// clustered affinity saturation.
[[nodiscard]] std::vector<image_options> default_option_matrix();

/// Compact rendering of an option matrix ("[frontier/greedy/limit2500/early,
/// ...]") for failure messages and reproducer headers.
[[nodiscard]] std::string
describe_option_matrix(const std::vector<image_options>& matrix);

struct differential_outcome {
    bool ok = true;
    std::string failure; ///< empty when ok; human-readable otherwise
    bool empty_solution = false;
    std::size_t csf_states = 0;
    std::size_t flows_run = 0; ///< solver invocations that completed
    bool oracle_run = false;   ///< explicit flow participated
};

/// Differential core over raw networks — what the shrinker re-runs on every
/// candidate reduction.  Checks flow agreement and the generic closure
/// properties; knows nothing about families.
[[nodiscard]] differential_outcome
run_differential(const network& fixed, const network& spec,
                 std::size_t num_choice_inputs,
                 const differential_options& options = {});

/// Full scenario check: the core plus the family-specific metamorphic
/// checks (X_P containment, mutant diagnose replay).
[[nodiscard]] differential_outcome
run_differential(const scenario& s, const differential_options& options = {});

} // namespace leq
