/// \file shrink.hpp
/// \brief Automatic shrinking of failing equation instances to minimal
/// reproducers.
///
/// A fuzz failure on a 5-latch random machine is an opaque artifact; the
/// same failure on a 2-state KISS pair is a bug report.  The shrinker takes
/// a failing (F, S) instance and a predicate ("does the failure still
/// reproduce?") and greedily deletes structure while the predicate stays
/// true, delta-debugging style:
///
///   phase 1 (netlist): tie spec/fixed latches to their reset values (each
///     tied latch removes one partitioned relation part), drop u outputs,
///     tie v/w/i inputs to 0, drop o output pairs;
///   phase 2 (explicit states): re-derive each machine's STG, delete one
///     state at a time (in-edges redirected to the initial state), and
///     re-encode the survivor — this is what gets a reproducer under a
///     handful of states rather than a handful of latches.
///
/// The result is 1-minimal: no single remaining move keeps the predicate
/// true.  `write_reproducer` then renders the shrunk pair as BLIF and KISS
/// plus the exact seed and option set, so a nightly CI failure replays from
/// one small text artifact.
#pragma once

#include "net/network.hpp"

#include <cstdint>
#include <functional>
#include <string>

namespace leq {

/// A shrinkable instance: the networks plus the choice-input count that
/// together define the equation problem.
struct shrink_instance_desc {
    network fixed;
    network spec;
    std::size_t num_choice_inputs = 0;
};

/// Returns true when the failure still reproduces on the candidate.
/// Exceptions thrown by the predicate reject the candidate (a reduction
/// that makes the instance unbuildable is not a smaller failure).
using shrink_predicate = std::function<bool(const shrink_instance_desc&)>;

struct shrink_options {
    /// Run the explicit state-deletion pass after the netlist pass.
    bool state_pass = true;
    /// Skip the state pass for machines beyond this many explicit states.
    std::size_t state_pass_max_states = 64;
    /// Safety valve on accepted reductions (the loop is finite anyway:
    /// every acceptance strictly removes structure).
    std::size_t max_accepted = 512;
};

struct shrink_result {
    shrink_instance_desc inst; ///< the minimal failing instance
    std::size_t accepted = 0;        ///< reductions that kept the failure
    std::size_t predicate_runs = 0;  ///< total predicate evaluations
    /// Reachable explicit states of the shrunk machines (0 = not computed,
    /// machine larger than `state_pass_max_states`).
    std::size_t spec_states = 0;
    std::size_t fixed_states = 0;
};

/// Greedily shrink `start` while `still_failing` holds.  `still_failing` is
/// expected to be true for `start` itself; if it is not, the result is
/// simply `start` unshrunk.
[[nodiscard]] shrink_result shrink_instance(shrink_instance_desc start,
                                            const shrink_predicate& still_failing,
                                            const shrink_options& options = {});

// ---------------------------------------------------------------------------
// reproducer emission
// ---------------------------------------------------------------------------

/// Everything needed to replay a shrunk failure offline.
struct reproducer {
    std::string family;     ///< scenario family name
    std::uint32_t seed = 0; ///< scenario seed
    std::string option_set; ///< option matrix / harness configuration
    std::string failure;    ///< the differential's failure text
    shrink_instance_desc inst;
    std::size_t spec_states = 0;
    std::size_t fixed_states = 0;
};

/// One self-contained text artifact: a commented header (family, seed,
/// options, failure), both machines as BLIF, and both as KISS state tables
/// (KISS is skipped, with a note, for machines beyond ~256 states).
[[nodiscard]] std::string reproducer_to_string(const reproducer& repro);

/// Write `<stem>.repro.txt` (the artifact above) plus `<stem>_f.blif` /
/// `<stem>_s.blif` / `<stem>_f.kiss` / `<stem>_s.kiss` for direct tool
/// consumption.  Throws std::runtime_error when a file cannot be opened.
void write_reproducer(const reproducer& repro, const std::string& stem);

/// KISS2 text of a network's state transition graph (the representation
/// the reproducers embed).  Throws std::runtime_error when the machine
/// exceeds `max_states`.
[[nodiscard]] std::string network_to_kiss(const network& net,
                                          std::size_t max_states = 256);

} // namespace leq
