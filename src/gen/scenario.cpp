/// \file scenario.cpp
/// \brief Seeded construction of the scenario families.

#include "gen/scenario.hpp"

#include "gen/mutate.hpp"
#include "net/compose.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <stdexcept>

namespace leq {

namespace {

/// Deterministic per-(family, seed) stream, decorrelated across families.
std::mt19937 scenario_rng(scenario_family family, std::uint32_t seed) {
    return std::mt19937(seed * 2654435761u +
                        static_cast<std::uint32_t>(family) * 40503u + 1u);
}

std::size_t pick(std::mt19937& rng, std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(rng() % (hi - lo + 1));
}

/// Extra state bits a scale factor buys: floor(log2(max(scale, 1))).
/// Applied *after* the rng draws so scaling widens a family without
/// reshuffling its structure.
std::size_t scale_bits(std::uint32_t scale) {
    std::size_t bits = 0;
    while ((scale >> (bits + 1)) != 0) { ++bits; }
    return bits;
}

/// Latch-split scaffold shared by every split-derived family.
void fill_from_split(scenario& s, const network& original,
                     std::size_t x_latches) {
    const split_result split = split_last_latches(original, x_latches);
    s.fixed = split.fixed;
    s.spec = original;
    s.part = split.part;
    s.has_part = true;
}

scenario make_random_scenario(std::uint32_t seed, std::size_t extra) {
    scenario s;
    std::mt19937 rng = scenario_rng(scenario_family::random, seed);
    random_spec spec;
    spec.num_inputs = pick(rng, 2, 3);
    spec.num_outputs = 2;
    spec.num_latches = pick(rng, 3, 5) + extra;
    spec.max_fanin = 3;
    spec.seed = static_cast<std::uint32_t>(rng());
    const network net = make_random_sequential(spec);
    fill_from_split(s, net, pick(rng, 1, 2)); // num_latches >= 3
    return s;
}

scenario make_counter_scenario(std::uint32_t seed, std::size_t extra) {
    scenario s;
    std::mt19937 rng = scenario_rng(scenario_family::counter, seed);
    network net;
    switch (rng() % 3) {
    case 0: net = make_counter(pick(rng, 3, 5) + extra); break;
    case 1: net = make_shift_xor(pick(rng, 3, 5) + extra); break;
    default:
        net = make_lfsr(pick(rng, 4, 5) + extra, {pick(rng, 1, 2)});
        break;
    }
    const std::size_t xl =
        std::min<std::size_t>(pick(rng, 1, 2), net.num_latches());
    fill_from_split(s, net, xl);
    return s;
}

/// Two-request arbiter: token latch alternates priority on contention.
network make_arbiter(bool token_init) {
    network net("arbiter2");
    net.add_input("r0");
    net.add_input("r1");
    net.add_output("g0");
    net.add_output("g1");
    net.add_output("ack");
    net.add_latch("tn", "tok", token_init);
    net.add_latch("bn", "bsy", false);
    net.add_node("g0", {"r0", "r1", "tok"}, {"10-", "1-0"});
    net.add_node("g1", {"r1", "r0", "tok"}, {"10-", "1-1"});
    net.add_node("both", {"r0", "r1"}, {"11"});
    net.add_node("tn", {"tok", "both"}, {"10", "01"});
    net.add_node("bn", {"r0", "r1"}, {"1-", "-1"});
    net.add_node("ack", {"bsy"}, {"1"});
    net.validate();
    return net;
}

/// Request/done handshake controller with a phase bit.
network make_handshake(bool phase_init) {
    network net("handshake");
    net.add_input("req");
    net.add_input("done");
    net.add_output("ack");
    net.add_output("phase");
    net.add_latch("bn", "bsy", false);
    net.add_latch("pn", "ph", phase_init);
    net.add_node("bn", {"req", "done", "bsy"}, {"1-0", "-01"});
    net.add_node("pn", {"ph", "req"}, {"10", "01"});
    net.add_node("ack", {"bsy"}, {"1"});
    net.add_node("phase", {"ph"}, {"1"});
    net.validate();
    return net;
}

/// Chain of `stages` handshake controllers: stage k+1's request line is
/// stage k's busy bit, so work ripples down the chain.  2*stages latches,
/// deep-but-tractable reachable structure — the scaled arbiter family.
network make_handshake_chain(std::size_t stages, bool phase_init) {
    network net("handshake_chain");
    net.add_input("req");
    net.add_input("done");
    net.add_output("ack");
    net.add_output("phase");
    for (std::size_t k = 0; k < stages; ++k) {
        const std::string n = std::to_string(k);
        net.add_latch("bn" + n, "bsy" + n, false);
        net.add_latch("pn" + n, "ph" + n, phase_init && k == 0);
        const std::string req_k =
            k == 0 ? "req" : "bsy" + std::to_string(k - 1);
        net.add_node("bn" + n, {req_k, "done", "bsy" + n}, {"1-0", "-01"});
        net.add_node("pn" + n, {"ph" + n, req_k}, {"10", "01"});
    }
    net.add_node("ack", {"bsy" + std::to_string(stages - 1)}, {"1"});
    net.add_node("phase", {"ph" + std::to_string(stages - 1)}, {"1"});
    net.validate();
    return net;
}

scenario make_arbiter_scenario(std::uint32_t seed, std::size_t extra) {
    scenario s;
    std::mt19937 rng = scenario_rng(scenario_family::arbiter, seed);
    const bool arbiter = (rng() % 2) == 0;
    const bool init = (rng() & 1) != 0;
    const network net = extra > 0 ? make_handshake_chain(1 + extra, init)
                        : arbiter ? make_arbiter(init)
                                  : make_handshake(init);
    fill_from_split(s, net, pick(rng, 1, 2));
    return s;
}

scenario make_pipeline_scenario(std::uint32_t seed, std::size_t extra) {
    scenario s;
    std::mt19937 rng = scenario_rng(scenario_family::pipeline, seed);
    network stage;
    switch (rng() % 3) {
    case 0: stage = make_counter(pick(rng, 3, 4) + extra); break;
    case 1: stage = make_shift_xor(pick(rng, 3, 4) + extra); break;
    default:
        // the paper example has no width knob; the scaled variant widens a
        // shifter instead
        stage = extra == 0 ? make_paper_example() : make_shift_xor(4 + extra);
        break;
    }
    // flatten a split back through the composition builder: the flat netlist
    // is behaviourally the stage machine, but with the pass-through u/v
    // wiring and latch layout real composed pipelines have
    const split_result inner =
        split_last_latches(stage, pick(rng, 1, stage.num_latches()));
    network flat = compose_networks(inner.fixed, inner.part, inner.u_names,
                                    inner.v_names);
    flat.set_name(stage.name() + "_pipe");
    const std::size_t xl =
        std::min<std::size_t>(pick(rng, 1, 2), flat.num_latches());
    fill_from_split(s, flat, xl);
    return s;
}

scenario make_nondet_scenario(std::uint32_t seed, std::size_t extra) {
    scenario s;
    std::mt19937 rng = scenario_rng(scenario_family::nondet, seed);
    // F's trailing input becomes the choice input w; F and S share the
    // remaining i ports and all o ports by the generator's positional names
    random_spec f_spec;
    f_spec.num_inputs = 3; // i0, i1, w
    f_spec.num_outputs = 2;
    f_spec.num_latches = pick(rng, 2, 3) + extra;
    f_spec.max_fanin = 3;
    f_spec.seed = static_cast<std::uint32_t>(rng());
    random_spec s_spec;
    s_spec.num_inputs = 2;
    s_spec.num_outputs = 2;
    s_spec.num_latches = 2 + extra / 2;
    s_spec.max_fanin = 3;
    s_spec.seed = static_cast<std::uint32_t>(rng());
    s.fixed = make_random_sequential(f_spec);
    s.spec = make_random_sequential(s_spec);
    s.num_choice_inputs = 1;
    return s;
}

} // namespace

/// Ripple counter with `gate` injected into the carry chain every
/// `gate_every` cells: a long combinational dependency chain where low bits
/// flip every enabled step and high bits move only when every lower carry
/// and every gate line up — the deep-sequential, high-event-locality shape
/// the saturation strategy targets.
network make_chain_counter(std::size_t cells, std::size_t gate_every) {
    network net("chaincounter" + std::to_string(cells));
    net.add_input("en");
    net.add_input("gate");
    net.add_output("tick");
    for (std::size_t k = 0; k < cells; ++k) {
        const std::string n = std::to_string(k);
        net.add_latch("n" + n, "q" + n, false);
    }
    // ripple carry: c0 = en, ck = c(k-1) & q(k-1) [& gate at gated cells]
    net.add_node("c0", {"en"}, {"1"});
    for (std::size_t k = 1; k < cells; ++k) {
        const std::string ck = "c" + std::to_string(k);
        const std::string pc = "c" + std::to_string(k - 1);
        const std::string pq = "q" + std::to_string(k - 1);
        if (k % gate_every == 0) {
            net.add_node(ck, {pc, pq, "gate"}, {"111"});
        } else {
            net.add_node(ck, {pc, pq}, {"11"});
        }
    }
    // nk = qk ^ ck
    for (std::size_t k = 0; k < cells; ++k) {
        const std::string n = std::to_string(k);
        net.add_node("n" + n, {"q" + n, "c" + n}, {"10", "01"});
    }
    net.add_node("tick",
                 {"c" + std::to_string(cells - 1),
                  "q" + std::to_string(cells - 1)},
                 {"11"});
    net.validate();
    return net;
}

namespace {

scenario make_chaincounter_scenario(std::uint32_t seed, std::size_t extra) {
    scenario s;
    std::mt19937 rng = scenario_rng(scenario_family::chaincounter, seed);
    const std::size_t cells = pick(rng, 4, 6) + extra;
    const std::size_t gate_every = pick(rng, 2, 3);
    const std::size_t xl = pick(rng, 1, 2);
    fill_from_split(s, make_chain_counter(cells, gate_every), xl);
    return s;
}

scenario make_mutant_scenario(std::uint32_t seed, std::size_t extra) {
    // start from a known-good split pair, then flip one spec bit
    scenario s = (seed % 2) == 0 ? make_counter_scenario(seed / 2, extra)
                                 : make_random_scenario(seed / 2, extra);
    std::mt19937 rng = scenario_rng(scenario_family::mutant, seed);
    const std::vector<mutation> all = enumerate_mutations(s.spec);
    if (all.empty()) {
        throw std::logic_error("make_mutant_scenario: nothing to mutate");
    }
    const mutation& m = all[rng() % all.size()];
    s.baseline_spec = s.spec;
    s.mutation_desc = describe(m, s.spec);
    s.spec = apply_mutation(s.spec, m);
    s.is_mutant = true;
    return s;
}

} // namespace

const char* to_string(scenario_family family) {
    switch (family) {
    case scenario_family::random: return "random";
    case scenario_family::counter: return "counter";
    case scenario_family::arbiter: return "arbiter";
    case scenario_family::pipeline: return "pipeline";
    case scenario_family::nondet: return "nondet";
    case scenario_family::mutant: return "mutant";
    case scenario_family::chaincounter: return "chaincounter";
    }
    return "?";
}

std::optional<scenario_family>
scenario_family_from_string(const std::string& name) {
    for (const scenario_family f : all_scenario_families) {
        if (name == to_string(f)) { return f; }
    }
    return std::nullopt;
}

scenario make_scenario(scenario_family family, std::uint32_t seed,
                       std::uint32_t scale) {
    const std::size_t extra = scale_bits(scale);
    scenario s;
    switch (family) {
    case scenario_family::random:
        s = make_random_scenario(seed, extra);
        break;
    case scenario_family::counter:
        s = make_counter_scenario(seed, extra);
        break;
    case scenario_family::arbiter:
        s = make_arbiter_scenario(seed, extra);
        break;
    case scenario_family::pipeline:
        s = make_pipeline_scenario(seed, extra);
        break;
    case scenario_family::nondet:
        s = make_nondet_scenario(seed, extra);
        break;
    case scenario_family::mutant:
        s = make_mutant_scenario(seed, extra);
        break;
    case scenario_family::chaincounter:
        s = make_chaincounter_scenario(seed, extra);
        break;
    }
    s.family = family;
    s.seed = seed;
    s.scale = scale < 1 ? 1 : scale;
    s.name = std::string(to_string(family)) + ":" + std::to_string(seed);
    if (s.scale > 1) { s.name += ":" + std::to_string(s.scale); }
    return s;
}

network make_menu_circuit(int id, std::uint32_t salt) {
    switch (id) {
    case 0: return make_paper_example();
    case 1: return make_counter(4);
    case 2: return make_lfsr(5, {2});
    case 3: return make_shift_xor(5);
    case 4: return make_traffic_controller();
    case 5: {
        structured_spec spec;
        spec.num_latches = 8;
        spec.seed = 5 + salt;
        return make_structured_mix(spec);
    }
    default: {
        const auto uid = static_cast<std::size_t>(id);
        random_spec spec;
        spec.num_inputs = 1 + uid % 3;
        spec.num_outputs = 1 + uid % 2;
        spec.num_latches = 4 + uid % 4;
        spec.max_fanin = 2 + uid % 3;
        spec.seed = salt * 1009u + 7000u + 13u * static_cast<std::uint32_t>(id);
        return make_random_sequential(spec);
    }
    }
}

network make_random_net(std::uint32_t seed, std::size_t num_inputs,
                        std::size_t num_outputs, std::size_t num_latches,
                        std::size_t max_fanin) {
    random_spec spec;
    spec.num_inputs = num_inputs;
    spec.num_outputs = num_outputs;
    spec.num_latches = num_latches;
    spec.max_fanin = max_fanin;
    spec.seed = seed;
    return make_random_sequential(spec);
}

std::uint32_t test_seed(std::uint32_t fallback) {
    const char* env = std::getenv("LEQ_TEST_SEED");
    static bool announced = false;
    if (env == nullptr || *env == '\0') { return fallback; }
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end == env || (end != nullptr && *end != '\0')) { return fallback; }
    if (!announced) {
        announced = true;
        std::fprintf(stderr,
                     "leq: LEQ_TEST_SEED=%lu overrides randomized-suite "
                     "seeds\n",
                     value);
    }
    return static_cast<std::uint32_t>(value);
}

} // namespace leq
