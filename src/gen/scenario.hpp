/// \file scenario.hpp
/// \brief Scenario families for the differential fuzz harness.
///
/// The paper's central claim is observational: the partitioned flow computes
/// the *same* largest solution as the monolithic and explicit flows, only
/// faster.  The strongest test asset is therefore a generator that
/// manufactures diverse, reproducible equation instances and hands them to a
/// differential oracle (gen/differential.hpp).  Uniform random machines
/// alone exercise a narrow slice of the solver — random next-state logic has
/// high per-state fanout and shallow reachable structure — so the kit adds
/// structured families: counters/shifters with feedback, arbiter/handshake
/// controllers, pipelined compositions built through net/compose, machines
/// with nondeterministic choice inputs (the paper's footnote-2 w variables),
/// and near-miss mutants of known-good fixed/spec pairs where one flipped
/// transition or output bit makes the equation shrink or become unsolvable.
///
/// Everything is seeded: the same (family, seed) pair reproduces the same
/// instance bit for bit, which is what lets a nightly fuzz failure replay
/// locally from two integers.
#pragma once

#include "net/network.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace leq {

enum class scenario_family : std::uint8_t {
    random,   ///< uniform random machine, latch-split
    counter,  ///< counter / shift register / LFSR with feedback, latch-split
    arbiter,  ///< two-request arbiter or req/done handshake controller
    pipeline, ///< latch-split of a compose_networks-built flat pipeline
    nondet,   ///< F carries a choice input w (footnote-2 nondeterminism)
    mutant,   ///< near-miss: solvable pair with one flipped spec bit
    /// Gated ripple counter with a long carry dependency chain: low bits
    /// churn every step while high bits move rarely — maximal event
    /// locality, the deep-sequential stress case the saturation strategy
    /// targets.  Appended after mutant so historical (family, seed)
    /// reproducers keep their meaning.
    chaincounter,
};

/// All families, in a fixed order (sweeps, CLI).
inline constexpr scenario_family all_scenario_families[] = {
    scenario_family::random,  scenario_family::counter,
    scenario_family::arbiter, scenario_family::pipeline,
    scenario_family::nondet,  scenario_family::mutant,
    scenario_family::chaincounter,
};

[[nodiscard]] const char* to_string(scenario_family family);
[[nodiscard]] std::optional<scenario_family>
scenario_family_from_string(const std::string& name);

/// One generated equation instance F . X <= S.  `fixed` has inputs
/// (i..., v..., w...) and outputs (o..., u...) as equation_problem expects;
/// `spec` is S.  When the instance came from a latch split, `part` holds the
/// particular solution X_P (the extracted latches) and `has_part` is true.
/// Mutant scenarios additionally carry the unmutated spec in `baseline_spec`
/// and a description of the injected fault.
struct scenario {
    scenario_family family = scenario_family::random;
    std::uint32_t seed = 0;
    std::uint32_t scale = 1; ///< state-space multiplier (see make_scenario)
    std::string name; ///< "family:seed[:scale]", for logs and reproducers

    network fixed;
    network spec;
    std::size_t num_choice_inputs = 0;

    bool has_part = false;
    network part; ///< X_P; valid when has_part

    bool is_mutant = false;
    network baseline_spec;     ///< pre-mutation S; valid when is_mutant
    std::string mutation_desc; ///< the flipped bit; valid when is_mutant
};

/// Build the (family, seed) instance.  Deterministic: equal arguments yield
/// structurally identical networks.
///
/// `scale` multiplies the target state space: each doubling adds one state
/// bit to the family's machine (counters/shifters get wider, arbiters chain
/// more handshake stages, random machines gain latches), so `scale = 1024`
/// asks for instances roughly a thousand times larger than the fuzz-sized
/// defaults.  Only the floor power of two matters.  `scale = 1` is
/// bit-for-bit identical to the historical two-argument call — shrunk fuzz
/// reproducers stay valid — and every scale draws the same rng sequence, so
/// scaling never reshuffles a family's structure, it only widens it.
[[nodiscard]] scenario make_scenario(scenario_family family,
                                     std::uint32_t seed,
                                     std::uint32_t scale = 1);

/// The raw chaincounter network behind `gen:chaincounter` scenarios: a
/// ripple counter with `gate` injected into the carry chain every
/// `gate_every` cells.  Exposed so the bench harness can run reachability
/// on a deterministic deep-sequential machine (the `saturation/reach_chain`
/// rows) with exactly the shape the chaincounter family generates.
[[nodiscard]] network make_chain_counter(std::size_t cells,
                                         std::size_t gate_every);

// ---------------------------------------------------------------------------
// shared helpers for the randomized test suites
// ---------------------------------------------------------------------------

/// Canonical small-circuit menu for property suites (consolidates the
/// near-identical per-file `circuit_for` switches): 0 paper example,
/// 1 counter, 2 LFSR, 3 shift-xor, 4 traffic controller, 5 structured mix;
/// ids >= 6 are seeded random machines with id-varied dimensions.  `salt`
/// decorrelates suites that iterate the same id range.
[[nodiscard]] network make_menu_circuit(int id, std::uint32_t salt = 0);

/// Seeded uniform random machine — the one-liner the suites use instead of
/// spelling out a random_spec block per file.
[[nodiscard]] network make_random_net(std::uint32_t seed,
                                      std::size_t num_inputs = 2,
                                      std::size_t num_outputs = 2,
                                      std::size_t num_latches = 4,
                                      std::size_t max_fanin = 3);

/// Effective seed for one randomized test case: the LEQ_TEST_SEED
/// environment variable when set (announced once on stderr), otherwise
/// `fallback`.  Suites fold the returned value into every failure message,
/// so any CI red replays locally with
///     LEQ_TEST_SEED=<printed seed> ctest -R <suite>
[[nodiscard]] std::uint32_t test_seed(std::uint32_t fallback);

} // namespace leq
