/// \file mutate.cpp
/// \brief Copy-with-edit implementations over the network builder API.

#include "gen/mutate.hpp"

#include <functional>
#include <stdexcept>

namespace leq {

namespace {

std::vector<std::string> cube_strings(const sop_cube& cube) {
    std::string row;
    row.reserve(cube.literals.size());
    for (const std::uint8_t lit : cube.literals) {
        row.push_back(lit == 2 ? '-' : static_cast<char>('0' + lit));
    }
    return {row};
}

std::vector<std::string> cover_strings(const logic_node& node) {
    std::vector<std::string> rows;
    rows.reserve(node.cubes.size());
    for (const sop_cube& cube : node.cubes) {
        rows.push_back(cube_strings(cube)[0]);
    }
    return rows;
}

std::vector<std::string> fanin_names(const network& net,
                                     const logic_node& node) {
    std::vector<std::string> names;
    names.reserve(node.fanins.size());
    for (const std::uint32_t f : node.fanins) {
        names.push_back(net.signal_name(f));
    }
    return names;
}

/// Rebuild `net` with per-element hooks.  `skip_input(k)` drops input k from
/// the port list, `skip_latch(k)` drops latch k, `skip_output(k)` drops
/// output k, and `emit_node(k)` may emit a replacement cover (returning true
/// when it handled the node).  `epilogue` runs before validation, for
/// injected constant drivers.
struct rebuild_hooks {
    std::function<bool(std::size_t)> skip_input;
    std::function<bool(std::size_t)> skip_output;
    std::function<bool(std::size_t)> skip_latch;
    std::function<bool(network&, std::size_t)> emit_node;
    std::function<void(network&)> epilogue;
};

network rebuild(const network& net, const rebuild_hooks& hooks) {
    network out(net.name());
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        if (hooks.skip_input && hooks.skip_input(k)) { continue; }
        out.add_input(net.signal_name(net.inputs()[k]));
    }
    for (std::size_t k = 0; k < net.num_outputs(); ++k) {
        if (hooks.skip_output && hooks.skip_output(k)) { continue; }
        out.add_output(net.signal_name(net.outputs()[k]));
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        if (hooks.skip_latch && hooks.skip_latch(k)) { continue; }
        const latch& l = net.latches()[k];
        out.add_latch(net.signal_name(l.input), net.signal_name(l.output),
                      l.init);
    }
    for (std::size_t k = 0; k < net.nodes().size(); ++k) {
        if (hooks.emit_node && hooks.emit_node(out, k)) { continue; }
        const logic_node& node = net.nodes()[k];
        out.add_node(net.signal_name(node.output), fanin_names(net, node),
                     cover_strings(node), node.complemented);
    }
    if (hooks.epilogue) { hooks.epilogue(out); }
    out.validate();
    return out;
}

/// Constant driver: an empty cover is constant 0, complemented constant 1.
void add_constant(network& net, const std::string& signal, bool value) {
    net.add_node(signal, {}, {}, value);
}

} // namespace

network copy_network(const network& net) { return rebuild(net, {}); }

network tie_input(const network& net, std::size_t index, bool value) {
    if (index >= net.num_inputs()) {
        throw std::out_of_range("tie_input: index");
    }
    const std::string name = net.signal_name(net.inputs()[index]);
    rebuild_hooks hooks;
    hooks.skip_input = [index](std::size_t k) { return k == index; };
    hooks.epilogue = [&name, value](network& out) {
        add_constant(out, name, value);
    };
    return rebuild(net, hooks);
}

network tie_latch(const network& net, std::size_t index) {
    if (index >= net.num_latches()) {
        throw std::out_of_range("tie_latch: index");
    }
    const latch& l = net.latches()[index];
    const std::string name = net.signal_name(l.output);
    const bool value = l.init;
    rebuild_hooks hooks;
    hooks.skip_latch = [index](std::size_t k) { return k == index; };
    hooks.epilogue = [&name, value](network& out) {
        add_constant(out, name, value);
    };
    return rebuild(net, hooks);
}

network drop_output(const network& net, std::size_t index) {
    if (index >= net.num_outputs()) {
        throw std::out_of_range("drop_output: index");
    }
    rebuild_hooks hooks;
    hooks.skip_output = [index](std::size_t k) { return k == index; };
    return rebuild(net, hooks);
}

std::string describe(const mutation& m, const network& net) {
    switch (m.kind) {
    case mutation_kind::flip_literal:
        return "flip node '" + net.signal_name(net.nodes()[m.node].output) +
               "' cube " + std::to_string(m.cube) + " literal " +
               std::to_string(m.literal);
    case mutation_kind::drop_cube:
        return "drop node '" + net.signal_name(net.nodes()[m.node].output) +
               "' cube " + std::to_string(m.cube);
    case mutation_kind::complement:
        return "complement node '" +
               net.signal_name(net.nodes()[m.node].output) + "'";
    case mutation_kind::flip_init:
        return "flip latch " + std::to_string(m.node) + " init";
    }
    return "?";
}

std::vector<mutation> enumerate_mutations(const network& net) {
    std::vector<mutation> all;
    for (std::size_t n = 0; n < net.nodes().size(); ++n) {
        const logic_node& node = net.nodes()[n];
        for (std::size_t c = 0; c < node.cubes.size(); ++c) {
            for (std::size_t l = 0; l < node.cubes[c].literals.size(); ++l) {
                all.push_back({mutation_kind::flip_literal, n, c, l});
            }
            if (node.cubes.size() > 1) {
                all.push_back({mutation_kind::drop_cube, n, c, 0});
            }
        }
        if (!node.cubes.empty()) {
            all.push_back({mutation_kind::complement, n, 0, 0});
        }
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        all.push_back({mutation_kind::flip_init, k, 0, 0});
    }
    return all;
}

network apply_mutation(const network& net, const mutation& m) {
    if (m.kind == mutation_kind::flip_init) {
        if (m.node >= net.num_latches()) {
            throw std::out_of_range("apply_mutation: latch index");
        }
        rebuild_hooks hooks;
        hooks.skip_latch = [&](std::size_t k) { return k == m.node; };
        hooks.epilogue = [&](network& out) {
            const latch& l = net.latches()[m.node];
            out.add_latch(net.signal_name(l.input),
                          net.signal_name(l.output), !l.init);
        };
        return rebuild(net, hooks);
    }
    if (m.node >= net.nodes().size()) {
        throw std::out_of_range("apply_mutation: node index");
    }
    rebuild_hooks hooks;
    hooks.emit_node = [&](network& out, std::size_t k) {
        if (k != m.node) { return false; }
        const logic_node& node = net.nodes()[k];
        std::vector<std::string> rows = cover_strings(node);
        bool complemented = node.complemented;
        switch (m.kind) {
        case mutation_kind::flip_literal: {
            if (m.cube >= rows.size() || m.literal >= rows[m.cube].size()) {
                throw std::out_of_range("apply_mutation: cube position");
            }
            char& lit = rows[m.cube][m.literal];
            lit = lit == '0' ? '1' : lit == '1' ? '0' : '1';
            break;
        }
        case mutation_kind::drop_cube:
            if (m.cube >= rows.size()) {
                throw std::out_of_range("apply_mutation: cube index");
            }
            rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(m.cube));
            break;
        case mutation_kind::complement:
            complemented = !complemented;
            break;
        case mutation_kind::flip_init: break; // handled above
        }
        out.add_node(net.signal_name(node.output), fanin_names(net, node),
                     rows, complemented);
        return true;
    };
    return rebuild(net, hooks);
}

} // namespace leq
