/// \file differential.cpp
/// \brief Cross-flow differential checks and metamorphic properties.

#include "gen/differential.hpp"

#include "automata/stg.hpp"
#include "eq/extract.hpp"
#include "eq/problem.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"

#include <sstream>

namespace leq {

namespace {

std::string describe(const image_options& o) {
    std::ostringstream text;
    text << to_string(o.strategy) << "/" << to_string(o.policy) << "/limit"
         << o.cluster_limit << (o.early_quantification ? "/early" : "/naive");
    if (o.solve_jobs > 0) { text << "/jobs" << o.solve_jobs; }
    if (o.fault_suppress_var != image_options::no_fault) {
        text << "/FAULT@" << o.fault_suppress_var;
    }
    return text.str();
}


/// Number of label bits of the instance's (u,v,i,o,w) alphabet.  F's ports
/// already carry everything: inputs (i..., v..., w...), outputs (o..., u...).
std::size_t label_bits(const network& fixed) {
    return fixed.num_inputs() + fixed.num_outputs();
}

differential_outcome fail(differential_outcome out, std::string why) {
    out.ok = false;
    out.failure = std::move(why);
    return out;
}

/// Replay a composition-counterexample trace on two spec candidates: the
/// input sequence must drive them to disagreeing outputs at the final step.
bool trace_is_real_difference(const std::vector<trace_step>& trace,
                              const network& baseline,
                              const network& mutant) {
    if (trace.empty()) { return false; }
    std::vector<bool> base_state = baseline.initial_state();
    std::vector<bool> mut_state = mutant.initial_state();
    std::vector<bool> base_out, mut_out;
    for (const trace_step& step : trace) {
        const network::cycle_result b = baseline.simulate(base_state, step.i);
        const network::cycle_result m = mutant.simulate(mut_state, step.i);
        base_state = b.next_state;
        mut_state = m.next_state;
        base_out = b.outputs;
        mut_out = m.outputs;
    }
    return base_out != mut_out;
}

differential_outcome
run_differential_impl(const network& fixed, const network& spec,
                      std::size_t num_choice, const scenario* sc,
                      const differential_options& options) {
    differential_outcome out;
    std::vector<image_options> matrix =
        options.matrix.empty() ? default_option_matrix() : options.matrix;

    const equation_problem problem(fixed, spec, num_choice);
    if (options.tune_matrix) { options.tune_matrix(problem, matrix); }

    solve_options solve;
    solve.time_limit_seconds = options.time_limit_seconds;
    solve.max_subset_states = options.max_subset_states;

    // partitioned flow across the option matrix; entry 0 is the reference
    std::vector<solve_result> part;
    for (std::size_t k = 0; k < matrix.size(); ++k) {
        solve.img = matrix[k];
        part.push_back(solve_partitioned(problem, solve));
        if (part.back().status != solve_status::ok) {
            return fail(std::move(out), "partitioned(" + describe(matrix[k]) +
                                            ") did not complete");
        }
        ++out.flows_run;
    }
    const solve_result& ref = part.front();
    out.empty_solution = ref.empty_solution;
    out.csf_states = ref.csf_states;
    for (std::size_t k = 1; k < matrix.size(); ++k) {
        if (part[k].empty_solution != ref.empty_solution ||
            !language_equivalent(*part[k].csf, *ref.csf)) {
            return fail(std::move(out),
                        "partitioned option matrix disagrees: " +
                            describe(matrix[k]) + " vs reference " +
                            describe(matrix[0]));
        }
    }

    // monolithic flow (reference options)
    solve.img = matrix[0];
    const solve_result mono = solve_monolithic(problem, solve);
    if (mono.status != solve_status::ok) {
        return fail(std::move(out), "monolithic flow did not complete");
    }
    ++out.flows_run;
    if (mono.empty_solution != ref.empty_solution ||
        !language_equivalent(*mono.csf, *ref.csf)) {
        return fail(std::move(out),
                    "monolithic flow disagrees with partitioned reference");
    }

    // explicit Algorithm-1 oracle on small instances
    if (options.with_explicit &&
        fixed.num_latches() + spec.num_latches() <=
            options.explicit_max_latches &&
        label_bits(fixed) <= options.explicit_max_label_bits) {
        const solve_result oracle = solve_explicit(problem, fixed, spec);
        if (oracle.status != solve_status::ok) {
            return fail(std::move(out), "explicit oracle did not complete");
        }
        ++out.flows_run;
        out.oracle_run = true;
        if (oracle.empty_solution != ref.empty_solution ||
            !language_equivalent(*oracle.csf, *ref.csf)) {
            return fail(std::move(out),
                        "explicit Algorithm-1 oracle disagrees with the "
                        "symbolic flows");
        }
    }

    if (options.with_verification) {
        if (!is_deterministic(*ref.csf)) {
            return fail(std::move(out), "CSF is not deterministic");
        }
        if (!is_prefix_closed(*ref.csf)) {
            return fail(std::move(out), "CSF is not prefix-closed");
        }
        if (!ref.empty_solution) {
            if (!verify_composition_contained(problem, *ref.csf)) {
                return fail(std::move(out),
                            "composition check failed: F . X is not "
                            "contained in S");
            }
            // the largest solution contains every sub-solution
            if (!problem.u_vars.empty()) {
                const automaton sub = extract_fsm(*ref.csf, problem.u_vars,
                                                  problem.v_vars);
                if (!language_contained(sub, *ref.csf)) {
                    return fail(std::move(out),
                                "extracted sub-solution escapes the CSF");
                }
                if (!verify_composition_contained(problem, sub)) {
                    return fail(std::move(out),
                                "extracted sub-solution fails the "
                                "composition check");
                }
            }
        }
    }

    // family-specific metamorphic checks
    if (sc != nullptr && sc->has_part) {
        if (!sc->is_mutant) {
            // a latch split always admits X_P itself
            if (ref.empty_solution) {
                return fail(std::move(out),
                            "split instance reported unsolvable, but X_P "
                            "is a solution");
            }
            if (!verify_particular_contained(problem, *ref.csf,
                                             sc->part.initial_state())) {
                return fail(std::move(out),
                            "X_P is not contained in the CSF");
            }
        } else {
            // near-miss mutant: if X_P stopped verifying, the diagnosis
            // must be a real difference word between baseline and mutant
            const automaton xp = network_to_automaton(
                problem.mgr(), sc->part, problem.u_vars, problem.v_vars);
            const verify_diagnosis d =
                diagnose_composition_contained(problem, xp);
            if (!d.ok && !trace_is_real_difference(d.trace, sc->baseline_spec,
                                                   spec)) {
                return fail(std::move(out),
                            "mutant diagnosis trace is not a real "
                            "difference word (" + sc->mutation_desc + ")");
            }
        }
    }

    return out;
}

} // namespace

std::string
describe_option_matrix(const std::vector<image_options>& matrix) {
    std::string text;
    for (std::size_t k = 0; k < matrix.size(); ++k) {
        text += (k == 0 ? "[" : ", ") + describe(matrix[k]);
    }
    return text + "]";
}

std::vector<image_options> default_option_matrix() {
    std::vector<image_options> matrix(6);
    // matrix[0]: the defaults (frontier, early quantification, greedy)
    matrix[1].strategy = reach_strategy::bfs;
    matrix[1].early_quantification = false;
    matrix[1].cluster_limit = 0;
    matrix[2].strategy = reach_strategy::chaining;
    matrix[2].policy = cluster_policy::affinity;
    matrix[3].strategy = reach_strategy::frontier;
    matrix[3].policy = cluster_policy::affinity;
    matrix[3].cluster_limit = 600;
    matrix[4].strategy = reach_strategy::saturation;
    matrix[5].strategy = reach_strategy::saturation;
    matrix[5].policy = cluster_policy::affinity;
    matrix[5].cluster_limit = 600;
    // parallel image engine at default options: must agree byte-for-byte
    // with matrix[0] (the sequential reference)
    matrix.emplace_back();
    matrix.back().solve_jobs = 2;
    return matrix;
}

differential_outcome run_differential(const network& fixed,
                                      const network& spec,
                                      std::size_t num_choice_inputs,
                                      const differential_options& options) {
    return run_differential_impl(fixed, spec, num_choice_inputs, nullptr,
                                 options);
}

differential_outcome run_differential(const scenario& s,
                                      const differential_options& options) {
    return run_differential_impl(s.fixed, s.spec, s.num_choice_inputs, &s,
                                 options);
}

} // namespace leq
