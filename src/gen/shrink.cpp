/// \file shrink.cpp
/// \brief Greedy delta-debugging over netlist and explicit-state moves.

#include "gen/shrink.hpp"

#include "automata/encode.hpp"
#include "automata/kiss.hpp"
#include "automata/stg.hpp"
#include "gen/mutate.hpp"
#include "net/blif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leq {

namespace {

/// Predicate wrapper: an exception while building/solving a candidate means
/// the candidate is not a smaller instance of the same failure.
bool still_fails(const shrink_predicate& pred,
                 const shrink_instance_desc& desc, std::size_t& runs) {
    ++runs;
    try {
        return pred(desc);
    } catch (const std::exception&) {
        return false;
    }
}

// ---- netlist pass ---------------------------------------------------------

/// One candidate reduction of the instance.  Enumeration order is the
/// priority order: state-carrying structure first.
struct move {
    enum class kind : std::uint8_t {
        spec_latch,   ///< tie spec latch to reset
        fixed_latch,  ///< tie fixed latch to reset
        u_output,     ///< drop one u output of F
        v_input,      ///< tie one v input of F to 0
        shared_output,///< drop o_j from both machines
        shared_input, ///< tie i_k to 0 in both machines
        choice_input, ///< tie one w input of F to 0
    } what;
    std::size_t index;
};

std::vector<move> enumerate_moves(const shrink_instance_desc& d) {
    const std::size_t ni = d.spec.num_inputs();
    const std::size_t no = d.spec.num_outputs();
    const std::size_t nw = d.num_choice_inputs;
    const std::size_t nv = d.fixed.num_inputs() - ni - nw;
    const std::size_t nu = d.fixed.num_outputs() - no;
    std::vector<move> moves;
    for (std::size_t k = 0; k < d.spec.num_latches(); ++k) {
        moves.push_back({move::kind::spec_latch, k});
    }
    for (std::size_t k = 0; k < d.fixed.num_latches(); ++k) {
        moves.push_back({move::kind::fixed_latch, k});
    }
    for (std::size_t m = 0; m < nu; ++m) {
        moves.push_back({move::kind::u_output, m});
    }
    for (std::size_t m = 0; m < nv; ++m) {
        moves.push_back({move::kind::v_input, m});
    }
    for (std::size_t j = 0; j < no; ++j) {
        moves.push_back({move::kind::shared_output, j});
    }
    for (std::size_t k = 0; k < ni; ++k) {
        moves.push_back({move::kind::shared_input, k});
    }
    for (std::size_t k = 0; k < nw; ++k) {
        moves.push_back({move::kind::choice_input, k});
    }
    return moves;
}

shrink_instance_desc apply_move(const shrink_instance_desc& d,
                                const move& m) {
    const std::size_t ni = d.spec.num_inputs();
    const std::size_t no = d.spec.num_outputs();
    const std::size_t nw = d.num_choice_inputs;
    const std::size_t nv = d.fixed.num_inputs() - ni - nw;
    shrink_instance_desc out = d;
    switch (m.what) {
    case move::kind::spec_latch:
        out.spec = tie_latch(d.spec, m.index);
        break;
    case move::kind::fixed_latch:
        out.fixed = tie_latch(d.fixed, m.index);
        break;
    case move::kind::u_output:
        out.fixed = drop_output(d.fixed, no + m.index);
        break;
    case move::kind::v_input:
        out.fixed = tie_input(d.fixed, ni + m.index, false);
        break;
    case move::kind::shared_output:
        out.fixed = drop_output(d.fixed, m.index);
        out.spec = drop_output(d.spec, m.index);
        break;
    case move::kind::shared_input:
        out.fixed = tie_input(d.fixed, m.index, false);
        out.spec = tie_input(d.spec, m.index, false);
        break;
    case move::kind::choice_input:
        out.fixed = tie_input(d.fixed, ni + nv + m.index, false);
        out.num_choice_inputs = nw - 1;
        break;
    }
    return out;
}

// ---- explicit-state pass --------------------------------------------------

struct stg_view {
    bdd_manager mgr;
    std::vector<std::uint32_t> in_vars, out_vars;
    std::vector<std::string> in_names, out_names;
};

automaton network_stg(stg_view& view, const network& net,
                      std::size_t max_states) {
    for (const std::uint32_t s : net.inputs()) {
        view.in_vars.push_back(view.mgr.new_var());
        view.in_names.push_back(net.signal_name(s));
    }
    for (const std::uint32_t s : net.outputs()) {
        view.out_vars.push_back(view.mgr.new_var());
        view.out_names.push_back(net.signal_name(s));
    }
    return network_to_automaton(view.mgr, net, view.in_vars, view.out_vars,
                                max_states);
}

/// Copy `aut` without state `victim`: its out-edges vanish, its in-edges
/// are redirected — to the initial state (`to_source` false) or back to
/// their own source state (`to_source` true; the two variants escape
/// different greedy local minima).  Determinism is preserved — merged
/// redirected edges had disjoint input cubes in the source state.
automaton delete_state(const automaton& aut, std::uint32_t victim,
                       bool to_source) {
    automaton out(aut.manager(), aut.label_vars());
    std::vector<std::uint32_t> remap(aut.num_states());
    for (std::uint32_t q = 0; q < aut.num_states(); ++q) {
        if (q == victim) { continue; }
        remap[q] = out.add_state(aut.accepting(q));
    }
    const std::uint32_t init = remap[aut.initial()];
    for (std::uint32_t q = 0; q < aut.num_states(); ++q) {
        if (q == victim) { continue; }
        for (const transition& t : aut.transitions(q)) {
            const std::uint32_t dest = t.dest == victim
                                           ? (to_source ? remap[q] : init)
                                           : remap[t.dest];
            out.add_transition(remap[q], dest, t.label);
        }
    }
    out.set_initial(init);
    return out;
}

/// Try to delete explicit states of one machine (spec or fixed) while the
/// failure reproduces.  `swap_in` substitutes a candidate machine into the
/// instance.
template <typename swap_fn>
void state_pass_one_machine(shrink_instance_desc& desc, const network& which,
                            const swap_fn& swap_in,
                            const shrink_predicate& pred,
                            const shrink_options& options,
                            shrink_result& result) {
    network current = which;
    bool improved = true;
    while (improved && result.accepted < options.max_accepted) {
        improved = false;
        stg_view view;
        automaton aut(view.mgr, {});
        try {
            aut = network_stg(view, current, options.state_pass_max_states);
        } catch (const std::exception&) {
            return; // machine too large for the explicit pass
        }
        for (std::uint32_t s = 0; s < aut.num_states() && !improved; ++s) {
            if (s == aut.initial()) { continue; }
            for (const bool to_source : {false, true}) {
                network candidate_net;
                try {
                    candidate_net = automaton_to_network(
                        delete_state(aut, s, to_source), view.in_vars,
                        view.out_vars, view.in_names, view.out_names,
                        current.name());
                } catch (const std::exception&) {
                    continue;
                }
                shrink_instance_desc candidate = swap_in(desc, candidate_net);
                if (still_fails(pred, candidate, result.predicate_runs)) {
                    desc = std::move(candidate);
                    current = std::move(candidate_net);
                    ++result.accepted;
                    improved = true;
                    break;
                }
            }
        }
    }
}

std::size_t explicit_state_count(const network& net, std::size_t cap) {
    try {
        stg_view view;
        return network_stg(view, net, cap).num_states();
    } catch (const std::exception&) {
        return 0;
    }
}

void netlist_pass(shrink_instance_desc& desc, const shrink_predicate& pred,
                  const shrink_options& options, shrink_result& result) {
    bool progress = true;
    while (progress && result.accepted < options.max_accepted) {
        progress = false;
        for (const move& m : enumerate_moves(desc)) {
            shrink_instance_desc candidate;
            try {
                candidate = apply_move(desc, m);
            } catch (const std::exception&) {
                continue;
            }
            if (still_fails(pred, candidate, result.predicate_runs)) {
                desc = std::move(candidate);
                ++result.accepted;
                progress = true;
                break;
            }
        }
    }
}

} // namespace

shrink_result shrink_instance(shrink_instance_desc start,
                              const shrink_predicate& still_failing,
                              const shrink_options& options) {
    shrink_result result;
    result.inst = std::move(start);
    if (!still_fails(still_failing, result.inst, result.predicate_runs)) {
        // nothing to shrink: the caller's predicate does not hold at the
        // start — return it untouched rather than "shrinking" a passing
        // instance to nothing
        return result;
    }

    netlist_pass(result.inst, still_failing, options, result);
    if (options.state_pass) {
        state_pass_one_machine(
            result.inst, result.inst.spec,
            [](const shrink_instance_desc& d, const network& m) {
                shrink_instance_desc out = d;
                out.spec = m;
                return out;
            },
            still_failing, options, result);
        state_pass_one_machine(
            result.inst, result.inst.fixed,
            [](const shrink_instance_desc& d, const network& m) {
                shrink_instance_desc out = d;
                out.fixed = m;
                return out;
            },
            still_failing, options, result);
        // the state pass may have freed netlist-level moves (e.g. an input
        // that became irrelevant); one more sweep keeps 1-minimality
        netlist_pass(result.inst, still_failing, options, result);
    }

    const std::size_t cap = options.state_pass_max_states < 1024
                                ? 1024
                                : options.state_pass_max_states;
    result.spec_states = explicit_state_count(result.inst.spec, cap);
    result.fixed_states = explicit_state_count(result.inst.fixed, cap);
    return result;
}

std::string network_to_kiss(const network& net, std::size_t max_states) {
    stg_view view;
    const automaton aut = network_stg(view, net, max_states);
    return write_kiss_string(aut, view.in_vars, view.out_vars);
}

std::string reproducer_to_string(const reproducer& repro) {
    std::ostringstream out;
    out << "# leq_fuzz reproducer\n"
        << "# family: " << repro.family << "\n"
        << "# seed: " << repro.seed << "\n"
        << "# options: " << repro.option_set << "\n"
        << "# failure: " << repro.failure << "\n"
        << "# choice inputs: " << repro.inst.num_choice_inputs << "\n"
        << "# spec states: " << repro.spec_states
        << ", fixed states: " << repro.fixed_states << "\n";
    out << "# ---- F (BLIF) ----\n" << write_blif_string(repro.inst.fixed);
    out << "# ---- S (BLIF) ----\n" << write_blif_string(repro.inst.spec);
    for (const bool fixed_side : {true, false}) {
        const network& net = fixed_side ? repro.inst.fixed : repro.inst.spec;
        out << "# ---- " << (fixed_side ? "F" : "S") << " (KISS) ----\n";
        try {
            out << network_to_kiss(net);
        } catch (const std::exception& e) {
            out << "# (no KISS rendering: " << e.what() << ")\n";
        }
    }
    return out.str();
}

void write_reproducer(const reproducer& repro, const std::string& stem) {
    const auto spill = [](const std::string& path, const std::string& text) {
        std::ofstream out(path);
        if (!out) {
            throw std::runtime_error("write_reproducer: cannot open " + path);
        }
        out << text;
    };
    spill(stem + ".repro.txt", reproducer_to_string(repro));
    spill(stem + "_f.blif", write_blif_string(repro.inst.fixed));
    spill(stem + "_s.blif", write_blif_string(repro.inst.spec));
    try {
        spill(stem + "_f.kiss", network_to_kiss(repro.inst.fixed));
        spill(stem + "_s.kiss", network_to_kiss(repro.inst.spec));
    } catch (const std::exception&) {
        // KISS requires an enumerable STG; BLIF is always written
    }
}

} // namespace leq
