/// \file fuzz.cpp
/// \brief Campaign loop: generate, differential-check, shrink, package.

#include "gen/fuzz.hpp"

#include <ostream>

namespace leq {

namespace {

reproducer package(const scenario& sc, const std::string& failure,
                   const differential_options& diff,
                   const shrink_instance_desc& inst, std::size_t spec_states,
                   std::size_t fixed_states) {
    reproducer repro;
    repro.family = to_string(sc.family);
    repro.seed = sc.seed;
    repro.option_set = describe_option_matrix(
        diff.matrix.empty() ? default_option_matrix() : diff.matrix);
    if (sc.is_mutant) {
        repro.option_set += " mutation: " + sc.mutation_desc;
    }
    repro.failure = failure;
    repro.inst = inst;
    repro.spec_states = spec_states;
    repro.fixed_states = fixed_states;
    return repro;
}

} // namespace

fuzz_report run_fuzz(const fuzz_options& options) {
    fuzz_report report;
    const std::vector<scenario_family> families =
        options.families.empty()
            ? std::vector<scenario_family>(std::begin(all_scenario_families),
                                           std::end(all_scenario_families))
            : options.families;

    for (const scenario_family family : families) {
        std::size_t family_failures = 0;
        for (std::size_t k = 0; k < options.seeds; ++k) {
            const std::uint32_t seed =
                options.seed_base + static_cast<std::uint32_t>(k);
            const scenario sc = make_scenario(family, seed);
            const differential_outcome out = run_differential(sc, options.diff);
            ++report.scenarios_run;
            if (out.ok) { continue; }

            ++family_failures;
            if (options.log != nullptr) {
                *options.log << "FAIL " << sc.name << ": " << out.failure
                             << "\n";
            }
            fuzz_failure record;
            record.family = family;
            record.seed = seed;
            record.failure = out.failure;

            shrink_instance_desc inst{sc.fixed, sc.spec,
                                      sc.num_choice_inputs};
            if (options.shrink_failures) {
                // the shrink predicate is the family-agnostic differential
                // core: scenario-specific checks (X_P containment, mutant
                // diagnosis) need generation metadata a reduced instance no
                // longer has, so failures only they catch stay unshrunk
                const differential_options diff = options.diff;
                const shrink_result shrunk = shrink_instance(
                    std::move(inst),
                    [&diff](const shrink_instance_desc& d) {
                        return !run_differential(d.fixed, d.spec,
                                                 d.num_choice_inputs, diff)
                                    .ok;
                    },
                    options.shrink);
                record.shrunk = shrunk.accepted > 0;
                record.repro =
                    package(sc, out.failure, options.diff, shrunk.inst,
                            shrunk.spec_states, shrunk.fixed_states);
                if (options.log != nullptr) {
                    *options.log << "  shrunk by " << shrunk.accepted
                                 << " reductions to spec "
                                 << shrunk.spec_states << " / fixed "
                                 << shrunk.fixed_states << " states ("
                                 << shrunk.predicate_runs
                                 << " predicate runs)\n";
                }
            } else {
                record.repro = package(sc, out.failure, options.diff,
                                       std::move(inst), 0, 0);
            }
            if (!options.reproducer_stem.empty()) {
                const std::string stem = options.reproducer_stem + "-" +
                                         to_string(family) + "-" +
                                         std::to_string(seed);
                write_reproducer(record.repro, stem);
                if (options.log != nullptr) {
                    *options.log << "  wrote " << stem << ".repro.txt\n";
                }
            }
            report.failures.push_back(std::move(record));
            if (options.max_failures != 0 &&
                report.failures.size() >= options.max_failures) {
                if (options.log != nullptr) {
                    *options.log << "stopping: " << report.failures.size()
                                 << " failures\n";
                }
                return report;
            }
        }
        if (options.log != nullptr) {
            *options.log << to_string(family) << ": " << options.seeds
                         << " seeds, " << family_failures << " failure(s)\n";
        }
    }
    return report;
}

} // namespace leq
