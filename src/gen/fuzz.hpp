/// \file fuzz.hpp
/// \brief The fuzz campaign driver: families x seeds -> differential ->
/// shrink -> reproducer.
///
/// One call runs the whole loop the `leq_fuzz` CLI and the nightly CI job
/// are built on: generate each (family, seed) scenario, cross-examine the
/// flows with the differential oracle, and on failure shrink the instance
/// and package a reproducer.  The report is data, not an exit code, so the
/// test suite can drive campaigns in-process.
///
/// Ownership and thread-safety: `run_fuzz` is self-contained — every
/// scenario builds (and destroys) its own equation problem and BDD
/// manager, and the returned report is plain data.  A single call runs on
/// the calling thread; concurrent campaigns are fine as long as each call
/// gets its own `fuzz_options` (the usual one-manager-per-thread rule,
/// upheld here because nothing manager-backed crosses the call boundary).
/// `diff.time_limit_seconds` bounds each solver invocation via the
/// relation-layer deadline; a scenario that exceeds it is reported as a
/// finding, not a hang.
#pragma once

#include "gen/differential.hpp"
#include "gen/scenario.hpp"
#include "gen/shrink.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace leq {

struct fuzz_options {
    /// Families to run; empty = all of `all_scenario_families`.
    std::vector<scenario_family> families;
    /// Seeds per family: seed_base, seed_base+1, ..., seed_base+seeds-1.
    std::size_t seeds = 20;
    std::uint32_t seed_base = 1;
    /// Shrink failing scenarios to minimal reproducers.
    bool shrink_failures = true;
    differential_options diff;
    shrink_options shrink;
    /// When non-empty, every failure writes reproducer files under
    /// `<stem>-<family>-<seed>*` (see write_reproducer).
    std::string reproducer_stem;
    /// Progress / failure log; null = silent.
    std::ostream* log = nullptr;
    /// Stop the campaign after this many failures (0 = never stop early).
    std::size_t max_failures = 10;
};

struct fuzz_failure {
    scenario_family family = scenario_family::random;
    std::uint32_t seed = 0;
    std::string failure;
    reproducer repro; ///< shrunk when `shrunk`, otherwise the raw instance
    bool shrunk = false;
};

struct fuzz_report {
    std::size_t scenarios_run = 0;
    std::vector<fuzz_failure> failures;
    [[nodiscard]] bool ok() const { return failures.empty(); }
};

[[nodiscard]] fuzz_report run_fuzz(const fuzz_options& options = {});

} // namespace leq
