/// \file mutate.hpp
/// \brief Structure-preserving netlist edits: reductions and mutations.
///
/// The scenario kit and the shrinker both need to produce a *new* network
/// that differs from an existing one by a single localized edit.  Reductions
/// (tie an input or latch to a constant, drop an output) monotonically
/// simplify an instance and are the shrinker's move set; mutations (flip one
/// cube literal, drop one cube, complement a cover, flip a latch init) are
/// the near-miss generators: a known-good fixed/spec pair plus one flipped
/// transition or output bit yields an equation whose solution shrinks or
/// vanishes.  Every edit returns a fresh, validated network and leaves the
/// argument untouched.
#pragma once

#include "net/network.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace leq {

/// Exact structural copy (ports, latches, nodes, name).  The base of every
/// edit below, exposed for its own sake too.
[[nodiscard]] network copy_network(const network& net);

// ---------------------------------------------------------------------------
// reductions (the shrinker's move set)
// ---------------------------------------------------------------------------

/// Remove primary input `index`, driving its signal with the constant
/// `value` instead.  Later inputs shift down by one.
[[nodiscard]] network tie_input(const network& net, std::size_t index,
                                bool value);

/// Remove latch `index`, driving its output signal with the latch's init
/// value (frozen state: the machine behaves as if that latch never left
/// reset).  The next-state cone may become dangling logic; it is kept —
/// dead-logic removal is the sweep pass's job, not a semantic edit.
[[nodiscard]] network tie_latch(const network& net, std::size_t index);

/// Remove primary output `index` from the output list (the driving logic
/// stays; it simply stops being observed).  Later outputs shift down.
[[nodiscard]] network drop_output(const network& net, std::size_t index);

// ---------------------------------------------------------------------------
// mutations (near-miss generators)
// ---------------------------------------------------------------------------

/// One localized fault.  `node` indexes network::nodes(); `cube` / `literal`
/// address the flipped position inside that node's cover.
enum class mutation_kind : std::uint8_t {
    flip_literal, ///< toggle one cube literal: 0 -> 1, 1 -> 0, '-' -> 1
    drop_cube,    ///< delete one cube from a cover (shrinks the on-set)
    complement,   ///< toggle the node's complemented flag (on-set <-> off-set)
    flip_init,    ///< toggle latch `node`'s reset value
};

struct mutation {
    mutation_kind kind = mutation_kind::flip_literal;
    std::size_t node = 0;    ///< node index (flip_init: latch index)
    std::size_t cube = 0;    ///< cube row (flip_literal / drop_cube)
    std::size_t literal = 0; ///< literal column (flip_literal)
};

/// Human-readable description ("flip node 'ns1' cube 0 literal 2", ...),
/// for reproducer headers.
[[nodiscard]] std::string describe(const mutation& m, const network& net);

/// All well-formed single-fault mutations of `net`.  drop_cube skips
/// single-cube covers (deleting the only cube makes a constant — legal but a
/// much bigger behavioural step than one flipped bit).
[[nodiscard]] std::vector<mutation> enumerate_mutations(const network& net);

/// Apply one mutation; throws std::out_of_range on a stale index.
[[nodiscard]] network apply_mutation(const network& net, const mutation& m);

} // namespace leq
