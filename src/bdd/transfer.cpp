/// \file transfer.cpp
/// \brief Cross-manager DAG copy (see transfer.hpp for the contract).

#include "bdd/transfer.hpp"

#include <stdexcept>
#include <unordered_map>

namespace leq {

/// The one friend of bdd_manager that may read a foreign arena: it needs
/// the raw tagged-edge accessors on the source and `mk()` on the
/// destination.  Everything stays inside this translation unit.
class bdd_transfer_access {
public:
    static bdd transfer(bdd_manager& src, const bdd& handle,
                        bdd_manager& dst, std::size_t& transferred_nodes) {
        dst.checked_thread_guard("bdd_transfer");
        if (!handle.valid() || handle.manager() != &src) {
            throw std::invalid_argument(
                "bdd_transfer: handle does not belong to the source manager");
        }
        if (&src == &dst) {
            transferred_nodes = 0;
            return handle;
        }
        if (src.num_vars() != dst.num_vars()) {
            throw std::invalid_argument(
                "bdd_transfer: managers disagree on num_vars");
        }
        for (std::uint32_t v = 0; v < src.num_vars(); ++v) {
            if (src.level_of(v) != dst.level_of(v)) {
                throw std::invalid_argument(
                    "bdd_transfer: managers disagree on the variable order");
            }
        }
        // let the destination grow/collect now: mk() below never GCs, so
        // the memoized intermediate references cannot be swept mid-copy
        dst.maybe_gc_or_grow();
        std::unordered_map<std::uint32_t, std::uint32_t> memo;
        const std::uint32_t root = handle.index();
        const std::uint32_t out =
            copy_rec(src, bdd_manager::regular(root), dst, memo) ^
            bdd_manager::comp_of(root);
        transferred_nodes = memo.size();
        return dst.make(out);
    }

private:
    /// Copy the node addressed by the *regular* reference `r`, returning a
    /// regular destination reference.  Regularity is inductive: the stored
    /// then-edge is regular in the source (canonical form), its copy is
    /// regular by induction, and `mk()` hoists any then-complement — so no
    /// hoist ever happens and the invariant transfers verbatim.  Recursion
    /// depth is bounded by the number of levels (the source is ordered).
    static std::uint32_t copy_rec(
        bdd_manager& src, std::uint32_t r, bdd_manager& dst,
        std::unordered_map<std::uint32_t, std::uint32_t>& memo) {
        if (r == 0) { return 0; } // the terminal, FALSE as a regular ref
        const std::uint32_t idx = bdd_manager::node_of(r);
        const auto it = memo.find(idx);
        if (it != memo.end()) { return it->second; }
        const std::uint32_t lo = src.lo_of(r);
        const std::uint32_t hi = src.hi_of(r);
        const std::uint32_t lo_copy =
            copy_rec(src, bdd_manager::regular(lo), dst, memo) ^
            bdd_manager::comp_of(lo);
        const std::uint32_t hi_copy = copy_rec(src, hi, dst, memo);
        const std::uint32_t out = dst.mk(src.var_of(r), lo_copy, hi_copy);
        memo.emplace(idx, out);
        return out;
    }
};

bdd bdd_transfer(bdd_manager& src, const bdd& handle, bdd_manager& dst) {
    std::size_t ignored = 0;
    return bdd_transfer_access::transfer(src, handle, dst, ignored);
}

bdd bdd_transfer(bdd_manager& src, const bdd& handle, bdd_manager& dst,
                 std::size_t& transferred_nodes) {
    return bdd_transfer_access::transfer(src, handle, dst,
                                         transferred_nodes);
}

} // namespace leq
