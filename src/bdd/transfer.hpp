/// \file transfer.hpp
/// \brief Deterministic cross-manager BDD DAG copy.
///
/// `bdd_transfer` is the **only sanctioned way a function crosses
/// managers** (docs/ARCHITECTURE.md "Concurrency model").  Raw handle
/// reuse against a foreign manager indexes the wrong arena and silently
/// corrupts the unique table — LEQ_CHECKED builds abort on it, and
/// `.leq_lint` confines every concurrency seam that would need it to the
/// two sanctioned pools.  The transfer walks the source DAG once with a
/// per-call node memo, rebuilding each node through the destination's
/// unique table, so:
///
///  * shared subgraphs stay shared (one destination node per source node),
///  * complement-edge canonicity is preserved — regular references map to
///    regular references, and the complement bit of the root travels on
///    the returned handle, exactly as `mk()` hoists it everywhere else,
///  * the result is canonical in the destination: transferring the same
///    function twice yields the same reference, and a round trip
///    src -> dst -> src returns the original handle.
///
/// Threading contract: call on the **destination manager's owner thread**
/// (checked builds enforce it).  The source manager is only read, but it
/// must be quiescent for the duration — no thread may be mutating it.  The
/// image pool (src/img/parallel.cpp) guarantees this with its fork/join
/// barriers: workers read the coordinator's manager only while the
/// coordinator blocks, and vice versa.
#pragma once

#include "bdd/bdd.hpp"

#include <cstddef>

namespace leq {

/// Copy `handle` (a function owned by `src`) into `dst` and return the
/// destination handle.  `src` and `dst` must agree on num_vars and on the
/// variable order (the copy is level-by-level; a different order would
/// require a full reordering pass, which this deliberately is not).
/// Throws std::invalid_argument on an invalid handle, a handle foreign to
/// `src`, or a variable-order mismatch.  `src == dst` returns a plain
/// copy of the handle.
[[nodiscard]] bdd bdd_transfer(bdd_manager& src, const bdd& handle,
                               bdd_manager& dst);

/// As above, also reporting the number of nonterminal source nodes the
/// copy visited (== the per-call memo size).  Deterministic: depends only
/// on the function's DAG, not on destination state — the transfer_nodes
/// counters in solve_stats sum these.
[[nodiscard]] bdd bdd_transfer(bdd_manager& src, const bdd& handle,
                               bdd_manager& dst,
                               std::size_t& transferred_nodes);

} // namespace leq
