/// \file bdd_quant.cpp
/// \brief Quantification: exists, forall, and the fused and-exists
/// (relational product), the workhorse of partitioned image computation.
///
/// Quantifier cubes are positive products of the variables to eliminate;
/// traversal follows the hi-edges of the cube.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

namespace leq {

bdd bdd_manager::exists(const bdd& f, const bdd& cube) {
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    return make(exists_rec(f.index(), cube.index()));
}

bdd bdd_manager::forall(const bdd& f, const bdd& cube) {
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    return make(forall_rec(f.index(), cube.index()));
}

bdd bdd_manager::and_exists(const bdd& f, const bdd& g, const bdd& cube) {
    assert(f.manager() == this && g.manager() == this &&
           cube.manager() == this);
    maybe_gc_or_grow();
    return make(and_exists_rec(f.index(), g.index(), cube.index()));
}

std::uint32_t bdd_manager::exists_rec(std::uint32_t f, std::uint32_t cube) {
    if (f <= 1) { return f; }
    // skip quantified variables above f's top: they do not occur in f
    const std::uint32_t f_level = var2level_[nodes_[f].var];
    while (cube != 1 && var2level_[nodes_[cube].var] < f_level) {
        cube = nodes_[cube].hi;
    }
    if (cube == 1) { return f; }
    std::uint32_t result = 0;
    if (cache_lookup(op::exists_op, f, cube, 0, result)) { return result; }
    const node nf = nodes_[f];
    if (nodes_[cube].var == nf.var) {
        const std::uint32_t rest = nodes_[cube].hi;
        const std::uint32_t r0 = exists_rec(nf.lo, rest);
        if (r0 == 1) {
            result = 1;
        } else {
            result = or_rec(r0, exists_rec(nf.hi, rest));
        }
    } else {
        const std::uint32_t r0 = exists_rec(nf.lo, cube);
        const std::uint32_t r1 = exists_rec(nf.hi, cube);
        result = mk(nf.var, r0, r1);
    }
    cache_store(op::exists_op, f, cube, 0, result);
    return result;
}

std::uint32_t bdd_manager::forall_rec(std::uint32_t f, std::uint32_t cube) {
    if (f <= 1) { return f; }
    const std::uint32_t f_level = var2level_[nodes_[f].var];
    while (cube != 1 && var2level_[nodes_[cube].var] < f_level) {
        cube = nodes_[cube].hi;
    }
    if (cube == 1) { return f; }
    std::uint32_t result = 0;
    if (cache_lookup(op::forall_op, f, cube, 0, result)) { return result; }
    const node nf = nodes_[f];
    if (nodes_[cube].var == nf.var) {
        const std::uint32_t rest = nodes_[cube].hi;
        const std::uint32_t r0 = forall_rec(nf.lo, rest);
        if (r0 == 0) {
            result = 0;
        } else {
            result = and_rec(r0, forall_rec(nf.hi, rest));
        }
    } else {
        const std::uint32_t r0 = forall_rec(nf.lo, cube);
        const std::uint32_t r1 = forall_rec(nf.hi, cube);
        result = mk(nf.var, r0, r1);
    }
    cache_store(op::forall_op, f, cube, 0, result);
    return result;
}

std::uint32_t bdd_manager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                          std::uint32_t cube) {
    if (f == 0 || g == 0) { return 0; }
    if (f == 1 && g == 1) { return 1; }
    if (f > g) { std::swap(f, g); }
    // top level among the two operands (terminals have no level)
    std::uint32_t top_level = var_nil;
    if (f > 1) { top_level = var2level_[nodes_[f].var]; }
    if (g > 1) { top_level = std::min(top_level, var2level_[nodes_[g].var]); }
    // skip quantified variables above the top: absent from both operands
    while (cube != 1 && var2level_[nodes_[cube].var] < top_level) {
        cube = nodes_[cube].hi;
    }
    if (cube == 1) { return and_rec(f, g); }
    std::uint32_t result = 0;
    if (cache_lookup(op::and_exists_op, f, g, cube, result)) { return result; }
    const std::uint32_t top_var = level2var_[top_level];
    std::uint32_t f0 = f, f1 = f, g0 = g, g1 = g;
    if (f > 1 && nodes_[f].var == top_var) { f0 = nodes_[f].lo; f1 = nodes_[f].hi; }
    if (g > 1 && nodes_[g].var == top_var) { g0 = nodes_[g].lo; g1 = nodes_[g].hi; }
    if (nodes_[cube].var == top_var) {
        const std::uint32_t rest = nodes_[cube].hi;
        const std::uint32_t r0 = and_exists_rec(f0, g0, rest);
        if (r0 == 1) {
            result = 1;
        } else {
            result = or_rec(r0, and_exists_rec(f1, g1, rest));
        }
    } else {
        const std::uint32_t r0 = and_exists_rec(f0, g0, cube);
        const std::uint32_t r1 = and_exists_rec(f1, g1, cube);
        result = mk(top_var, r0, r1);
    }
    cache_store(op::and_exists_op, f, g, cube, result);
    return result;
}

} // namespace leq
