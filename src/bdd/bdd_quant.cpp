/// \file bdd_quant.cpp
/// \brief Quantification: exists, forall, and the fused and-exists
/// (relational product), the workhorse of partitioned image computation.
///
/// Quantifier cubes are positive products of the variables to eliminate;
/// traversal follows the hi-edges of the cube.  With complement edges
/// forall needs no recursion of its own: it is the dual !exists(!f, cube),
/// and both negations are free bit flips, so exists and forall share one
/// cache.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

namespace leq {

bdd bdd_manager::exists(const bdd& f, const bdd& cube) {
    checked_guard("exists", f, cube);
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    return make(exists_rec(f.index(), cube.index()));
}

bdd bdd_manager::forall(const bdd& f, const bdd& cube) {
    checked_guard("forall", f, cube);
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    return make(exists_rec(f.index() ^ 1u, cube.index()) ^ 1u);
}

bdd bdd_manager::and_exists(const bdd& f, const bdd& g, const bdd& cube) {
    checked_guard("and_exists", f, g, cube);
    assert(f.manager() == this && g.manager() == this &&
           cube.manager() == this);
    maybe_gc_or_grow();
    return make(and_exists_rec(f.index(), g.index(), cube.index()));
}

bdd bdd_manager::and_exists(const std::vector<bdd>& operands,
                            const bdd& cube) {
    checked_guard("and_exists", operands);
    checked_guard("and_exists", cube);
    assert(cube.manager() == this);
    maybe_gc_or_grow();
    std::vector<std::uint32_t> ops;
    ops.reserve(operands.size());
    for (const bdd& f : operands) {
        assert(f.manager() == this);
        ops.push_back(f.index());
    }
    nary_memo memo;
    return make(and_exists_nary_rec(std::move(ops), cube.index(), memo));
}

std::uint32_t bdd_manager::and_exists_nary_rec(std::vector<std::uint32_t> ops,
                                               std::uint32_t cube,
                                               nary_memo& memo) {
    // normalize the span: sort + dedupe, drop TRUE, detect FALSE and
    // complementary pairs (a reference and its complement differ only in the
    // low bit, so after sorting they sit adjacent)
    std::sort(ops.begin(), ops.end());
    ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
    if (!ops.empty() && ops.front() == 0) { return 0; }
    ops.erase(std::remove(ops.begin(), ops.end(), 1u), ops.end());
    for (std::size_t k = 0; k + 1 < ops.size(); ++k) {
        if (ops[k + 1] == (ops[k] ^ 1u)) { return 0; } // f & !f
    }
    if (ops.empty()) { return 1; }
    if (ops.size() == 1) { return exists_rec(ops[0], cube); }
    if (ops.size() == 2) { return and_exists_rec(ops[0], ops[1], cube); }

    // top level across the span (all operands non-terminal here)
    std::uint32_t top_level = var2level_[var_of(ops[0])];
    for (std::size_t k = 1; k < ops.size(); ++k) {
        top_level = std::min(top_level, var2level_[var_of(ops[k])]);
    }
    // skip quantified variables above the top: absent from every operand
    while (cube != 1 && var2level_[var_of(cube)] < top_level) {
        cube = hi_of(cube);
    }
    if (cube == 1) {
        // nothing left to quantify: plain conjunction (pairwise, so the
        // global AND cache amortizes shared sub-conjunctions)
        std::uint32_t acc = ops[0];
        for (std::size_t k = 1; k < ops.size() && acc != 0; ++k) {
            acc = and_rec(acc, ops[k]);
        }
        return acc;
    }

    std::vector<std::uint32_t> key = ops;
    key.push_back(cube);
    const auto it = memo.find(key);
    if (it != memo.end()) { return it->second; }

    const std::uint32_t top_var = level2var_[top_level];
    std::vector<std::uint32_t> lo_ops, hi_ops;
    lo_ops.reserve(ops.size());
    hi_ops.reserve(ops.size());
    for (const std::uint32_t f : ops) {
        lo_ops.push_back(var_of(f) == top_var ? lo_of(f) : f);
        hi_ops.push_back(var_of(f) == top_var ? hi_of(f) : f);
    }
    std::uint32_t result = 0;
    if (var_of(cube) == top_var) {
        const std::uint32_t rest = hi_of(cube);
        const std::uint32_t r0 =
            and_exists_nary_rec(std::move(lo_ops), rest, memo);
        if (r0 == 1) {
            result = 1;
        } else {
            result =
                or_rec(r0, and_exists_nary_rec(std::move(hi_ops), rest, memo));
        }
    } else {
        const std::uint32_t r0 =
            and_exists_nary_rec(std::move(lo_ops), cube, memo);
        const std::uint32_t r1 =
            and_exists_nary_rec(std::move(hi_ops), cube, memo);
        result = mk(top_var, r0, r1);
    }
    memo.emplace(std::move(key), result);
    return result;
}

std::uint32_t bdd_manager::exists_rec(std::uint32_t f, std::uint32_t cube) {
    if (is_terminal(f)) { return f; }
    // skip quantified variables above f's top: they do not occur in f
    const std::uint32_t f_level = var2level_[var_of(f)];
    while (cube != 1 && var2level_[var_of(cube)] < f_level) {
        cube = hi_of(cube);
    }
    if (cube == 1) { return f; }
    std::uint32_t result = 0;
    if (cache_lookup(op::exists_op, f, cube, 0, result)) { return result; }
    const std::uint32_t f0 = lo_of(f);
    const std::uint32_t f1 = hi_of(f);
    if (var_of(cube) == var_of(f)) {
        const std::uint32_t rest = hi_of(cube);
        const std::uint32_t r0 = exists_rec(f0, rest);
        if (r0 == 1) {
            result = 1;
        } else {
            result = or_rec(r0, exists_rec(f1, rest));
        }
    } else {
        const std::uint32_t r0 = exists_rec(f0, cube);
        const std::uint32_t r1 = exists_rec(f1, cube);
        result = mk(var_of(f), r0, r1);
    }
    cache_store(op::exists_op, f, cube, 0, result);
    return result;
}

std::uint32_t bdd_manager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                          std::uint32_t cube) {
    if (f == 0 || g == 0 || f == (g ^ 1u)) { return 0; }
    if (f == 1 && g == 1) { return 1; }
    if (f == 1 || f == g) { return exists_rec(g, cube); }
    if (g == 1) { return exists_rec(f, cube); }
    if (f > g) { std::swap(f, g); }
    // top level among the two operands (both non-terminal here)
    const std::uint32_t top_level =
        std::min(var2level_[var_of(f)], var2level_[var_of(g)]);
    // skip quantified variables above the top: absent from both operands
    while (cube != 1 && var2level_[var_of(cube)] < top_level) {
        cube = hi_of(cube);
    }
    if (cube == 1) { return and_rec(f, g); }
    std::uint32_t result = 0;
    if (cache_lookup(op::and_exists_op, f, g, cube, result)) { return result; }
    const std::uint32_t top_var = level2var_[top_level];
    std::uint32_t f0 = f, f1 = f, g0 = g, g1 = g;
    if (var_of(f) == top_var) { f0 = lo_of(f); f1 = hi_of(f); }
    if (var_of(g) == top_var) { g0 = lo_of(g); g1 = hi_of(g); }
    if (var_of(cube) == top_var) {
        const std::uint32_t rest = hi_of(cube);
        const std::uint32_t r0 = and_exists_rec(f0, g0, rest);
        if (r0 == 1) {
            result = 1;
        } else {
            result = or_rec(r0, and_exists_rec(f1, g1, rest));
        }
    } else {
        const std::uint32_t r0 = and_exists_rec(f0, g0, cube);
        const std::uint32_t r1 = and_exists_rec(f1, g1, cube);
        result = mk(top_var, r0, r1);
    }
    cache_store(op::and_exists_op, f, g, cube, result);
    return result;
}

} // namespace leq
