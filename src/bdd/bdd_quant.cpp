/// \file bdd_quant.cpp
/// \brief Quantification: exists, forall, and the fused and-exists
/// (relational product), the workhorse of partitioned image computation.
///
/// Quantifier cubes are positive products of the variables to eliminate;
/// traversal follows the hi-edges of the cube.  With complement edges
/// forall needs no recursion of its own: it is the dual !exists(!f, cube),
/// and both negations are free bit flips, so exists and forall share one
/// cache.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

namespace leq {

bdd bdd_manager::exists(const bdd& f, const bdd& cube) {
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    return make(exists_rec(f.index(), cube.index()));
}

bdd bdd_manager::forall(const bdd& f, const bdd& cube) {
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    return make(exists_rec(f.index() ^ 1u, cube.index()) ^ 1u);
}

bdd bdd_manager::and_exists(const bdd& f, const bdd& g, const bdd& cube) {
    assert(f.manager() == this && g.manager() == this &&
           cube.manager() == this);
    maybe_gc_or_grow();
    return make(and_exists_rec(f.index(), g.index(), cube.index()));
}

std::uint32_t bdd_manager::exists_rec(std::uint32_t f, std::uint32_t cube) {
    if (is_terminal(f)) { return f; }
    // skip quantified variables above f's top: they do not occur in f
    const std::uint32_t f_level = var2level_[var_of(f)];
    while (cube != 1 && var2level_[var_of(cube)] < f_level) {
        cube = hi_of(cube);
    }
    if (cube == 1) { return f; }
    std::uint32_t result = 0;
    if (cache_lookup(op::exists_op, f, cube, 0, result)) { return result; }
    const std::uint32_t f0 = lo_of(f);
    const std::uint32_t f1 = hi_of(f);
    if (var_of(cube) == var_of(f)) {
        const std::uint32_t rest = hi_of(cube);
        const std::uint32_t r0 = exists_rec(f0, rest);
        if (r0 == 1) {
            result = 1;
        } else {
            result = or_rec(r0, exists_rec(f1, rest));
        }
    } else {
        const std::uint32_t r0 = exists_rec(f0, cube);
        const std::uint32_t r1 = exists_rec(f1, cube);
        result = mk(var_of(f), r0, r1);
    }
    cache_store(op::exists_op, f, cube, 0, result);
    return result;
}

std::uint32_t bdd_manager::and_exists_rec(std::uint32_t f, std::uint32_t g,
                                          std::uint32_t cube) {
    if (f == 0 || g == 0 || f == (g ^ 1u)) { return 0; }
    if (f == 1 && g == 1) { return 1; }
    if (f == 1 || f == g) { return exists_rec(g, cube); }
    if (g == 1) { return exists_rec(f, cube); }
    if (f > g) { std::swap(f, g); }
    // top level among the two operands (both non-terminal here)
    const std::uint32_t top_level =
        std::min(var2level_[var_of(f)], var2level_[var_of(g)]);
    // skip quantified variables above the top: absent from both operands
    while (cube != 1 && var2level_[var_of(cube)] < top_level) {
        cube = hi_of(cube);
    }
    if (cube == 1) { return and_rec(f, g); }
    std::uint32_t result = 0;
    if (cache_lookup(op::and_exists_op, f, g, cube, result)) { return result; }
    const std::uint32_t top_var = level2var_[top_level];
    std::uint32_t f0 = f, f1 = f, g0 = g, g1 = g;
    if (var_of(f) == top_var) { f0 = lo_of(f); f1 = hi_of(f); }
    if (var_of(g) == top_var) { g0 = lo_of(g); g1 = hi_of(g); }
    if (var_of(cube) == top_var) {
        const std::uint32_t rest = hi_of(cube);
        const std::uint32_t r0 = and_exists_rec(f0, g0, rest);
        if (r0 == 1) {
            result = 1;
        } else {
            result = or_rec(r0, and_exists_rec(f1, g1, rest));
        }
    } else {
        const std::uint32_t r0 = and_exists_rec(f0, g0, cube);
        const std::uint32_t r1 = and_exists_rec(f1, g1, cube);
        result = mk(top_var, r0, r1);
    }
    cache_store(op::and_exists_op, f, g, cube, result);
    return result;
}

} // namespace leq
