/// \file bdd.hpp
/// \brief A self-contained ROBDD package with complement edges (substitute
/// for CUDD in this build).
///
/// The package implements reduced ordered binary decision diagrams with
/// complement edges, a unique table, a set-associative computed cache that
/// grows geometrically with the unique table (see bdd_manager_options),
/// mark-and-sweep garbage collection driven by externally held handles,
/// quantification, relational-product (and-exists), variable permutation,
/// composition and in-place dynamic reordering.
///
/// Design notes:
///  * **Handles are tagged edges.**  A reference is a 32-bit word
///    `(node_index << 1) | complement`: the low bit is the complement
///    ("NOT") mark, the upper 31 bits address a node in the arena.  Node 0
///    is the single terminal and denotes FALSE as a regular (untagged)
///    reference, so reference 0 is the constant FALSE and reference 1
///    (terminal + complement bit) is TRUE — the same two handle values the
///    package exposed before complement edges.  `bdd::index()` returns the
///    tagged reference; it remains a canonical key: two handles denote the
///    same function iff their references are equal.
///  * **Canonical form: the then-edge is regular.**  `(var, lo, hi)` and
///    `(var, ~lo, ~hi)` denote complementary functions; to keep references
///    canonical exactly one of the pair may exist.  The unique table only
///    stores nodes whose then (hi) edge carries no complement bit; building
///    the other phase returns the stored node with the complement bit set
///    on the reference instead.  Consequently a function and its negation
///    always share every node, and negation (`bdd_not`) is a constant-time
///    bit flip — no cache lookup, no allocation.
///  * **ITE standard triples.**  `ite(f,g,h)` is normalized before the
///    computed-cache lookup: repeated/complementary operands are reduced,
///    constant-branch cases are delegated to AND/XOR (OR is `~(~f & ~g)`
///    and shares the AND cache line), the predicate is made regular via
///    `ite(f,g,h) = ite(~f,h,g)`, and a complement bit on the then-branch
///    is hoisted out via `ite(f,g,h) = ~ite(f,~g,~h)`.  Thus `f & g`,
///    `~(~f | ~g)`, `ite(g,f,0)` … all resolve to one cache entry.
///  * **GC.**  Handles (`leq::bdd`) are RAII wrappers maintaining an
///    external reference count per node (the complement bit does not matter
///    for liveness).  Mark-and-sweep runs between public operations only,
///    so raw references inside recursive cores never escape a GC.
///  * Variables are identified by a stable id; the manager maps ids to
///    levels so the order can differ from creation order.  The
///    language-equation solver pins the (u,v) block at the top of the order
///    and chooses it up front with set_var_order(); sifting-based dynamic
///    reordering (reorder_sift and friends) is offered for the substrate
///    benchmarks and standalone use.  Reordering rewrites node *contents*
///    in place, preserving the regular-then-edge invariant, so indices — and
///    therefore all outstanding handles — stay valid.
///  * **Checked builds (-DLEQ_CHECKED=ON).**  The manager is single-threaded
///    by design, and handles must never cross managers — a foreign reference
///    indexes the wrong arena and silently corrupts the unique table.  In a
///    checked build every public operation verifies both preconditions:
///    each manager records a process-wide serial number and the id of the
///    thread that constructed it, and each `bdd` handle already carries its
///    manager; a cross-manager handle or an off-thread call aborts with a
///    diagnostic naming the operation and both parties.  The guards compile
///    to nothing in normal builds.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#ifdef LEQ_CHECKED
#include <thread>
#endif

namespace leq {

class bdd_manager;

/// RAII handle to a BDD node.  Copying/destroying maintains the external
/// reference count that protects the node from garbage collection.
class bdd {
public:
    bdd() = default;
    bdd(const bdd& other);
    bdd(bdd&& other) noexcept;
    bdd& operator=(const bdd& other);
    bdd& operator=(bdd&& other) noexcept;
    ~bdd();

    /// True if the handle points into a manager (even the constant nodes).
    [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
    [[nodiscard]] bool is_zero() const;
    [[nodiscard]] bool is_one() const;
    [[nodiscard]] bool is_const() const { return is_zero() || is_one(); }

    /// Structural equality: canonical BDDs are equal iff the references
    /// (node index + complement bit) match.
    friend bool operator==(const bdd& a, const bdd& b) {
        return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
    }
    friend bool operator!=(const bdd& a, const bdd& b) { return !(a == b); }

    bdd operator&(const bdd& other) const;
    bdd operator|(const bdd& other) const;
    bdd operator^(const bdd& other) const;
    /// Negation: O(1) complement-bit flip (no cache lookup, no allocation).
    bdd operator!() const;
    bdd& operator&=(const bdd& other);
    bdd& operator|=(const bdd& other);
    bdd& operator^=(const bdd& other);

    /// Boolean implication (f -> g), i.e. !f | g.
    [[nodiscard]] bdd implies(const bdd& other) const;
    /// Boolean equivalence (f <-> g), i.e. !(f ^ g).
    [[nodiscard]] bdd iff(const bdd& other) const;

    /// True iff this function is contained in `other` (f & !g == 0).
    [[nodiscard]] bool leq(const bdd& other) const;

    /// Top variable id; only valid on non-constant nodes.
    [[nodiscard]] std::uint32_t top_var() const;
    /// Positive/negative cofactor with respect to the top variable (the
    /// complement bit of this reference is pushed into the result).
    [[nodiscard]] bdd high() const;
    [[nodiscard]] bdd low() const;

    [[nodiscard]] bdd_manager* manager() const { return mgr_; }
    /// Raw tagged reference: (node index << 1) | complement bit.  Stable
    /// across GC and reordering; canonical, so usable as a hash/map key.
    [[nodiscard]] std::uint32_t index() const { return idx_; }

private:
    friend class bdd_manager;
    bdd(bdd_manager* mgr, std::uint32_t idx);
    void release();

    bdd_manager* mgr_ = nullptr;
    std::uint32_t idx_ = 0;
};

/// Thrown from inside a recursive BDD operation when the manager's op
/// deadline (set_op_deadline) has passed.  The operation's partial results
/// become ordinary garbage — no manager state needs unwinding beyond the
/// exception itself — so callers may catch, translate and keep using the
/// manager.  The relation layer translates this into
/// relation_deadline_exceeded (src/rel/deadline.hpp).
struct bdd_deadline_exceeded : std::runtime_error {
    bdd_deadline_exceeded()
        : std::runtime_error("bdd operation deadline exceeded") {}
};

/// Number of distinct cached operation kinds; indexes the per-op counters
/// in bdd_stats (and_op, xor_op, ite_op, exists_op, and_exists_op,
/// support_op, cofactor_op, constrain_op, restrict_op — in that order).
inline constexpr std::size_t bdd_num_ops = 9;

/// Stable short name of cached operation kind k ("and", "xor", "ite",
/// "exists", "and_exists", "support", "cofactor", "constrain", "restrict");
/// "?" for out-of-range k.
[[nodiscard]] const char* bdd_op_name(std::size_t k);

/// Statistics snapshot for diagnostics and benchmarking.
struct bdd_stats {
    std::size_t live_nodes = 0;     ///< nodes reachable from external roots
    std::size_t allocated_nodes = 0;///< nodes in the arena (live + garbage)
    std::size_t num_vars = 0;
    std::size_t gc_runs = 0;
    std::size_t cache_lookups = 0;
    std::size_t cache_hits = 0;
    std::size_t reorderings = 0;
    std::size_t cache_entries = 0;  ///< current computed-cache slots
    std::size_t cache_resizes = 0;  ///< computed-cache growth events
    std::size_t gc_threshold = 0;   ///< current allocated-node GC trigger
    std::size_t cache_ways = 0;     ///< computed-cache associativity
    /// Per-operation split of cache_lookups/cache_hits (indexed by the
    /// bdd_op_name order): which recursion is thrashing the cache.
    std::array<std::size_t, bdd_num_ops> op_lookups{};
    std::array<std::size_t, bdd_num_ops> op_hits{};
};

/// Construction-time tuning of a manager's memory discipline: computed-cache
/// sizing and the garbage-collection trigger.  The defaults fit unit-test
/// workloads; the equation solver overrides them (problem_manager_defaults()
/// in eq/problem.hpp) and the `leq` CLI exposes all three knobs as
/// --cache-bits / --max-cache-bits / --gc-threshold.
struct bdd_manager_options {
    /// log2 of the initial computed-cache size.
    unsigned cache_bits = 18;
    /// log2 ceiling for computed-cache growth.  The cache tracks the unique
    /// table geometrically — at least two slots per table bucket, doubling
    /// whenever the table outgrows it (surviving entries are rehash-migrated
    /// into the larger geometry, not discarded) — until it reaches
    /// 2^max_cache_bits.  max_cache_bits == cache_bits pins the historical
    /// fixed-size cache that never resized after construction.
    unsigned max_cache_bits = 24;
    /// Computed-cache associativity: slots per set-associative bucket.
    /// Clamped to a power of two in 1..16 (rounded down); 1 reproduces the
    /// historical direct-mapped cache.  Replacement is deterministic
    /// move-to-front LRU (same-key overwrite, else first empty slot, else
    /// the least recently touched entry), with GC-epoch age stamps deciding
    /// staleness across collections.
    unsigned cache_ways = 4;
    /// Age the computed cache across garbage collections (purge only the
    /// entries whose key or result references a swept node; everything else
    /// survives with an older age stamp).  When false every collection
    /// clears the whole cache — the historical discipline, kept
    /// reconstructible so the bench's before/after rows can measure what
    /// aging buys.
    bool cache_age_on_gc = true;
    /// Allocated-node count that triggers the first garbage collection;
    /// also the floor the adaptive trigger never drops below.
    std::size_t gc_threshold = std::size_t{1} << 14;
    /// Drive the GC trigger by the live-node ratio each collection measures
    /// (next trigger = max(gc_threshold, 2 * live nodes)): a collection that
    /// finds everything live raises the bar exactly as far as the survivors
    /// demand, and a productive one lowers it back toward the floor.  When
    /// false the historical fixed-doubling policy applies: the trigger
    /// doubles whenever a collection frees less than a quarter of the arena
    /// and can never come back down.
    bool adaptive_gc = true;
};

/// The BDD manager: node arena, unique table, computed cache and the
/// recursive algorithms.  All `bdd` handles stay valid across garbage
/// collection and dynamic reordering (references are stable; reordering
/// rewrites node contents in place).
class bdd_manager {
public:
    /// \param num_vars   initial number of variables (ids 0..num_vars-1)
    /// \param cache_bits log2 of the *initial* computed-cache size; the
    ///        cache grows with the unique table up to the default ceiling
    ///        (bdd_manager_options::max_cache_bits)
    explicit bdd_manager(std::uint32_t num_vars = 0, unsigned cache_bits = 18);
    /// Full memory tuning (cache sizing, GC trigger policy).
    bdd_manager(std::uint32_t num_vars, const bdd_manager_options& options);
    ~bdd_manager();

    bdd_manager(const bdd_manager&) = delete;
    bdd_manager& operator=(const bdd_manager&) = delete;

    // ---- variables -------------------------------------------------------
    /// Append a fresh variable at the bottom of the order; returns its id.
    std::uint32_t new_var();
    [[nodiscard]] std::uint32_t num_vars() const {
        return static_cast<std::uint32_t>(var2level_.size());
    }
    [[nodiscard]] std::uint32_t level_of(std::uint32_t var) const {
        return var2level_[var];
    }
    [[nodiscard]] std::uint32_t var_at_level(std::uint32_t level) const {
        return level2var_[level];
    }
    /// Install a new order given as a permutation: order[k] = variable id at
    /// level k.  Must be called before any BDDs are built (only constant
    /// handles may be live); the typical pattern is to create all variables,
    /// choose an interleaved order, then build.
    void set_var_order(const std::vector<std::uint32_t>& order);

    // ---- constants and literals -----------------------------------------
    [[nodiscard]] bdd zero() { return make(0); }
    [[nodiscard]] bdd one() { return make(1); }
    [[nodiscard]] bdd var(std::uint32_t v);
    [[nodiscard]] bdd nvar(std::uint32_t v);
    /// Literal: var v if phase is true else its negation.
    [[nodiscard]] bdd literal(std::uint32_t v, bool phase) {
        return phase ? var(v) : nvar(v);
    }

    // ---- core operations -------------------------------------------------
    [[nodiscard]] bdd apply_and(const bdd& f, const bdd& g);
    [[nodiscard]] bdd apply_or(const bdd& f, const bdd& g);
    [[nodiscard]] bdd apply_xor(const bdd& f, const bdd& g);
    /// O(1): flips the complement bit of the reference.
    [[nodiscard]] bdd apply_not(const bdd& f);
    [[nodiscard]] bdd ite(const bdd& f, const bdd& g, const bdd& h);

    /// Existential quantification of all variables in `cube` (a positive
    /// product of the variables to eliminate).
    [[nodiscard]] bdd exists(const bdd& f, const bdd& cube);
    /// Universal quantification: the complement-edge dual !exists(!f, cube).
    [[nodiscard]] bdd forall(const bdd& f, const bdd& cube);
    /// Relational product: exists(cube, f & g) computed in one pass.
    [[nodiscard]] bdd and_exists(const bdd& f, const bdd& g, const bdd& cube);
    /// N-ary relational product: exists(cube, f_1 & ... & f_n) in one fused
    /// pass over the whole operand span — no intermediate pairwise products
    /// are materialized.  The relation layer applies a cluster span through
    /// this instead of chaining binary calls.  An empty span yields
    /// exists(cube, 1) = 1.
    [[nodiscard]] bdd and_exists(const std::vector<bdd>& operands,
                                 const bdd& cube);

    /// Rename variables: result(x) = f(x with var v replaced by perm[v]).
    /// `perm` must be defined for every variable in the support of f.
    [[nodiscard]] bdd permute(const bdd& f,
                              const std::vector<std::uint32_t>& perm);
    /// Functional composition: substitute g for variable v in f.
    [[nodiscard]] bdd compose(const bdd& f, std::uint32_t v, const bdd& g);
    /// Simultaneous composition: substitute every listed (variable,
    /// function) pair at once.  Unlike chained compose() calls the
    /// substituted functions never see each other's variables.
    [[nodiscard]] bdd compose_vector(
        const bdd& f,
        const std::vector<std::pair<std::uint32_t, bdd>>& substitutions);
    /// Cofactor with respect to a (possibly negative-literal) cube.
    [[nodiscard]] bdd cofactor(const bdd& f, const bdd& cube);

    /// Coudert-Madre constrain (generalized cofactor): a function agreeing
    /// with f on the care set c (c != 0), with image property
    /// constrain(f,c) & c == f & c.
    [[nodiscard]] bdd constrain(const bdd& f, const bdd& c);
    /// Coudert-Madre restrict: like constrain but prunes variables absent
    /// from f's support at each level, usually giving a smaller result;
    /// restrict(f,c) & c == f & c.
    [[nodiscard]] bdd restrict_dc(const bdd& f, const bdd& c);

    // ---- structural queries ----------------------------------------------
    /// Support of f as a positive cube.
    [[nodiscard]] bdd support_cube(const bdd& f);
    /// Support of f as a sorted list of variable ids.
    [[nodiscard]] std::vector<std::uint32_t> support(const bdd& f);
    /// Number of DAG nodes (including the terminal) reachable from f.  With
    /// complement edges f and !f have identical size by construction.
    [[nodiscard]] std::size_t dag_size(const bdd& f);
    /// `dag_size(f) >= n`, without computing the full size: the walk stops
    /// as soon as `n` distinct nodes are seen, and visited marks live in a
    /// reusable epoch-stamped scratch instead of a hash set.  The parallel
    /// image engine probes every operand against its fan-out floor with
    /// this — small operands (the common case in the subset solvers) cost
    /// one short traversal and no allocation.
    [[nodiscard]] bool dag_size_at_least(const bdd& f, std::size_t n);
    /// Number of satisfying assignments over `nvars` variables.
    [[nodiscard]] double sat_count(const bdd& f, std::uint32_t nvars);
    /// Evaluate under a full assignment indexed by variable id.
    [[nodiscard]] bool eval(const bdd& f, const std::vector<bool>& assignment);
    /// One satisfying cube (literals over the support of f); f must be != 0.
    [[nodiscard]] bdd pick_cube(const bdd& f);
    /// Enumerate all satisfying cubes of f over the listed variables; the
    /// callback receives value 0/1/2 (2 = don't care) per listed variable.
    void foreach_cube(const bdd& f, const std::vector<std::uint32_t>& vars,
                      const std::function<void(const std::vector<int>&)>& fn);

    /// Build the positive cube of a set of variables.
    [[nodiscard]] bdd cube(const std::vector<std::uint32_t>& vars);

    // ---- dynamic reordering ------------------------------------------------
    // Reordering rewrites nodes in place (references keep denoting the same
    // function), so every live `bdd` handle stays valid.  The solver pins the
    // (u,v) block at the top of its orders and therefore never calls these;
    // they are offered for the substrate benchmarks and for standalone use of
    // the package.  The computed cache survives: references keep their
    // denotation, and dead nodes are only reclaimed by the final collection,
    // which purges exactly the entries that referenced them.

    /// One full sifting pass (Rudell): each variable, in decreasing order of
    /// node count, is moved through all levels by adjacent swaps and left at
    /// the position minimizing the live node count.  A direction is abandoned
    /// when the graph grows past `max_growth` times the best size seen.
    /// Returns the live node count after the pass.
    std::size_t reorder_sift(double max_growth = 1.2);

    /// Sift a single variable to its locally optimal level.
    /// Returns the live node count after.
    std::size_t sift_one(std::uint32_t var, double max_growth = 1.2);

    /// Reorder the live graph to the exact given order (order[k] = variable
    /// id at level k) by adjacent swaps.  Unlike set_var_order this may be
    /// called with live BDDs.
    void reorder_to(const std::vector<std::uint32_t>& order);

    /// Sifting over variable *groups*: each group's variables are first
    /// gathered into an adjacent block (preserving the listed intra-group
    /// order) and then whole blocks are sifted as units.  The natural use
    /// here is keeping cs/ns latch pairs interleaved while searching for a
    /// good latch order.  `groups` must partition all variables (use
    /// singleton groups for ungrouped variables).  Returns the live node
    /// count after the pass.
    std::size_t reorder_sift_groups(
        const std::vector<std::vector<std::uint32_t>>& groups,
        double max_growth = 1.2);

    /// Exhaustive structural check of the unique table and the canonicity
    /// invariants (children below parents, no lo==hi nodes, no duplicate
    /// (var,lo,hi) keys, every stored then-edge regular — which is what
    /// guarantees a node and its complement can never both sit in the
    /// table).  Throws std::logic_error on violation; for tests.
    void check_consistency() const;

    // ---- cooperative op deadline ----------------------------------------
    /// Arm a deadline checked *inside* the recursive operation cores: once
    /// `when` passes, the next computed-cache probe (checked every ~1024
    /// lookups to keep the hot path cheap) throws bdd_deadline_exceeded.
    /// This is what lets a caller bound one monolithic and_exists run
    /// instead of only noticing a blown budget between operations.  The
    /// deadline stays armed until clear_op_deadline().
    void set_op_deadline(std::chrono::steady_clock::time_point when) {
        op_deadline_ = when;
        op_deadline_armed_ = true;
        op_deadline_countdown_ = op_deadline_stride;
    }
    void clear_op_deadline() { op_deadline_armed_ = false; }

    // ---- maintenance -----------------------------------------------------
    /// Run mark-and-sweep garbage collection now.
    void collect_garbage();
    [[nodiscard]] const bdd_stats& stats() const { return stats_; }
    [[nodiscard]] std::size_t live_node_count();

#ifdef LEQ_CHECKED
    /// Checked build only: process-wide serial of this manager (1-based,
    /// construction order) — names managers in violation diagnostics.
    [[nodiscard]] std::uint64_t checked_serial() const {
        return checked_serial_;
    }
#endif

    /// Render f as a sum-of-cubes string over the given variable names
    /// (diagnostics; exponential in the worst case).
    [[nodiscard]] std::string to_string(const bdd& f,
                                        const std::vector<std::string>& names);

private:
    friend class bdd;
    // Cross-manager DAG copy (src/bdd/transfer.cpp) — the one sanctioned
    // way a function crosses managers.  It needs the raw edge accessors and
    // mk(); everything else goes through the public surface.
    friend class bdd_transfer_access;

    // ---- checked-build provenance guards (LEQ_CHECKED) -------------------
    // The one-manager-per-thread rule and the no-cross-manager-handles rule
    // are the two preconditions every future parallel-image design leans on
    // (docs/ARCHITECTURE.md "Concurrency model").  Checked builds turn both
    // from prose into executable aborts; normal builds compile the guards
    // to nothing.  Every public entry point calls checked_guard() first.
#ifdef LEQ_CHECKED
    void checked_thread_guard(const char* operation) const;
    void checked_handle_guard(const char* operation, const bdd& handle) const;
#else
    void checked_thread_guard(const char*) const {}
    void checked_handle_guard(const char*, const bdd&) const {}
#endif
    template <typename... Handles>
    void checked_guard(const char* operation,
                       const Handles&... handles) const {
        checked_thread_guard(operation);
        (checked_handle_guard(operation, handles), ...);
    }
    void checked_guard(const char* operation,
                       const std::vector<bdd>& handles) const {
        checked_thread_guard(operation);
        for (const bdd& h : handles) { checked_handle_guard(operation, h); }
    }

    /// Arena node.  `lo`/`hi` are tagged references; the canonical-form
    /// invariant keeps `hi` regular (complement bit clear) for every node
    /// stored in the unique table.  The unique-table chain link lives in the
    /// parallel `chain_` array so the traversal-hot triple stays 12 bytes —
    /// recursion cores touch `{var, lo, hi}` constantly and the chain link
    /// only on unique-table probes.
    struct node {
        std::uint32_t var;  ///< variable id; var_nil for the terminal
        std::uint32_t lo;   ///< else-edge reference (var = 0)
        std::uint32_t hi;   ///< then-edge reference (var = 1), always regular
    };
    static constexpr std::uint32_t var_nil = 0xffffffffu;
    static constexpr std::uint32_t idx_nil = 0xffffffffu;

    enum class op : std::uint8_t {
        and_op, xor_op, ite_op, exists_op, and_exists_op, support_op,
        cofactor_op, constrain_op, restrict_op
    };
    static_assert(static_cast<std::size_t>(op::restrict_op) + 1 == bdd_num_ops,
                  "bdd_num_ops must match the cached-op enum");

    /// One computed-cache slot.  Slots are grouped into `cache_ways_`-entry
    /// set-associative buckets stored contiguously, so a 4-way bucket spans
    /// at most two cache lines.  `o == 0xff` marks an empty slot; `age` is
    /// the GC epoch the entry was stored (or last hit) in — replacement
    /// evicts the slot with the largest epoch distance.
    struct cache_entry {
        std::uint32_t f = idx_nil;
        std::uint32_t g = idx_nil;
        std::uint32_t h = idx_nil;
        std::uint32_t result = idx_nil;
        std::uint8_t o = 0xff;
        std::uint8_t age = 0;
    };

    /// Hint the hardware prefetcher at a probe target (no-op off GCC/Clang).
    static inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(p);
#else
        (void)p;
#endif
    }

    // ---- tagged-reference helpers ---------------------------------------
    /// Node index addressed by a reference.
    [[nodiscard]] static constexpr std::uint32_t node_of(std::uint32_t r) {
        return r >> 1;
    }
    /// Complement bit of a reference (0 or 1).
    [[nodiscard]] static constexpr std::uint32_t comp_of(std::uint32_t r) {
        return r & 1u;
    }
    [[nodiscard]] static constexpr bool is_comp(std::uint32_t r) {
        return (r & 1u) != 0;
    }
    /// Regular (untagged) version of a reference.
    [[nodiscard]] static constexpr std::uint32_t regular(std::uint32_t r) {
        return r & ~1u;
    }
    /// Terminal test: references 0 (FALSE) and 1 (TRUE) address node 0.
    [[nodiscard]] static constexpr bool is_terminal(std::uint32_t r) {
        return r <= 1;
    }
    /// Else-cofactor of a reference: the stored edge with the reference's
    /// complement bit pushed through.
    [[nodiscard]] std::uint32_t lo_of(std::uint32_t r) const {
        return nodes_[r >> 1].lo ^ (r & 1u);
    }
    /// Then-cofactor of a reference.
    [[nodiscard]] std::uint32_t hi_of(std::uint32_t r) const {
        return nodes_[r >> 1].hi ^ (r & 1u);
    }
    [[nodiscard]] std::uint32_t var_of(std::uint32_t r) const {
        return nodes_[r >> 1].var;
    }
    [[nodiscard]] std::uint32_t level(std::uint32_t r) const {
        const node& n = nodes_[r >> 1];
        return n.var == var_nil ? var_nil : var2level_[n.var];
    }

    /// Shared hash for the unique table and the computed cache.
    static std::uint64_t node_hash(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) {
        std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
        h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h ^= c + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return h;
    }

    /// Find-or-create the node (var, lo, hi) and return its reference.  The
    /// complement bit of `hi` is hoisted onto the returned reference so the
    /// stored then-edge stays regular.
    std::uint32_t mk(std::uint32_t var, std::uint32_t lo, std::uint32_t hi);
    std::uint32_t alloc_node();
    void unique_insert(std::uint32_t idx);
    void unique_remove(std::uint32_t idx);
    void rehash(std::size_t new_size);
    void maybe_gc_or_grow();
    void maybe_grow_cache();

    // reordering internals (bdd_reorder.cpp); rc_ / var_nodes_ are only
    // populated between reorder_begin and reorder_end
    void reorder_begin();
    void reorder_end();
    void rc_incref(std::uint32_t ref);
    void rc_deref(std::uint32_t ref);
    std::uint32_t reorder_mk(std::uint32_t var, std::uint32_t lo,
                             std::uint32_t hi);
    std::size_t swap_levels(std::uint32_t level);
    void sift_core(std::uint32_t var, double max_growth);
    [[nodiscard]] std::size_t var_node_count(std::uint32_t var) const;

    // external reference counting used as GC roots (per node; the complement
    // bit of the held reference is irrelevant for liveness)
    void inc_ext_ref(std::uint32_t ref);
    void dec_ext_ref(std::uint32_t ref);

    /// Countdown slow path for the op deadline: reads the clock and throws
    /// bdd_deadline_exceeded when past.  Called from cache_lookup every
    /// `op_deadline_stride` probes while a deadline is armed.
    void op_deadline_check();

    // computed cache (set-associative, age-stamped)
    bool cache_lookup(op o, std::uint32_t f, std::uint32_t g, std::uint32_t h,
                      std::uint32_t& result);
    void cache_store(op o, std::uint32_t f, std::uint32_t g, std::uint32_t h,
                     std::uint32_t result);
    void cache_clear();
    /// First slot of the bucket the (o,f,g,h) key hashes to.
    [[nodiscard]] cache_entry* cache_bucket(op o, std::uint32_t f,
                                            std::uint32_t g, std::uint32_t h);
    /// Deterministic replacement with move-to-front recency: overwrite a
    /// same-key slot, else fill the first empty slot, else evict the entry
    /// touched the most GC epochs ago (highest way on ties — under
    /// move-to-front, way order *is* recency order within an epoch), then
    /// rotate the written entry to way 0.
    void cache_insert(cache_entry* bucket, const cache_entry& entry);
    /// GC epilogue: advance the age epoch and purge only the entries that
    /// reference swept nodes (their indices are about to be recycled via
    /// free_list_, so a stale entry would alias a future unrelated node).
    /// Entries over live nodes survive — that is what buys cross-GC hits.
    void cache_age_and_purge();

    // recursive cores (tagged references; protected from GC because GC only
    // runs between public operations)
    std::uint32_t and_rec(std::uint32_t f, std::uint32_t g);
    /// De Morgan wrapper: shares the AND cache.
    std::uint32_t or_rec(std::uint32_t f, std::uint32_t g) {
        return and_rec(f ^ 1u, g ^ 1u) ^ 1u;
    }
    std::uint32_t xor_rec(std::uint32_t f, std::uint32_t g);
    std::uint32_t ite_rec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
    std::uint32_t exists_rec(std::uint32_t f, std::uint32_t cube);
    std::uint32_t and_exists_rec(std::uint32_t f, std::uint32_t g,
                                 std::uint32_t cube);
    /// Hash map keyed by a normalized operand list (plus the cube) for the
    /// n-ary relational product.  Per call: unlike the computed table it
    /// cannot be recycled across operations, since entries pin arbitrary
    /// operand lists; the unary/binary degenerations below still ride the
    /// global caches, which is where cross-call sharing lives.
    struct nary_key_hash {
        std::size_t operator()(const std::vector<std::uint32_t>& key) const {
            std::uint64_t h = 0x9e3779b97f4a7c15ull;
            for (const std::uint32_t r : key) {
                h = node_hash(h, r, key.size());
            }
            return static_cast<std::size_t>(h);
        }
    };
    using nary_memo = std::unordered_map<std::vector<std::uint32_t>,
                                         std::uint32_t, nary_key_hash>;
    /// N-ary core; memoized per call, degenerating to the cached
    /// unary/binary cores once the span shrinks.
    std::uint32_t and_exists_nary_rec(std::vector<std::uint32_t> operands,
                                      std::uint32_t cube, nary_memo& memo);
    std::uint32_t support_rec(std::uint32_t f);
    std::uint32_t constrain_rec(std::uint32_t f, std::uint32_t c);
    std::uint32_t restrict_rec(std::uint32_t f, std::uint32_t c);
    std::uint32_t permute_rec(std::uint32_t f,
                              const std::vector<std::uint32_t>& perm,
                              std::vector<std::uint32_t>& memo);
    std::uint32_t compose_rec(std::uint32_t f, std::uint32_t v,
                              std::uint32_t g,
                              std::vector<std::uint32_t>& memo);
    std::uint32_t compose_vec_rec(std::uint32_t f,
                                  const std::vector<std::uint32_t>& sub,
                                  std::uint32_t deepest_level,
                                  std::vector<std::uint32_t>& memo);

    [[nodiscard]] bdd make(std::uint32_t idx) { return bdd(this, idx); }

    // data
    std::vector<node> nodes_;              ///< arena; node 0 is the terminal
    std::vector<std::uint32_t> chain_;     ///< unique-table chain per node
    std::vector<std::uint32_t> ext_ref_;   ///< external refs per node
    std::vector<std::uint32_t> free_list_;
    std::vector<std::uint32_t> buckets_;   ///< unique table (power of two)
    std::vector<cache_entry> cache_;       ///< ways-entry buckets, contiguous
    std::uint64_t cache_bucket_mask_ = 0;  ///< bucket count - 1
    std::uint32_t cache_ways_ = 4;         ///< clamped associativity
    std::uint8_t cache_epoch_ = 0;         ///< age epoch; advances per GC
    std::vector<std::uint32_t> var2level_;
    std::vector<std::uint32_t> level2var_;
    bdd_manager_options opts_;
    std::size_t gc_threshold_ = std::size_t{1} << 14;
    /// Cache probes between op-deadline clock reads: rare enough that the
    /// hot path only pays a decrement, frequent enough that one and_exists
    /// cannot overshoot its budget by more than a few thousand probes.
    static constexpr std::size_t op_deadline_stride = 1024;
    bool op_deadline_armed_ = false;
    std::chrono::steady_clock::time_point op_deadline_{};
    std::size_t op_deadline_countdown_ = 0;
    bdd_stats stats_;
    std::vector<char> mark_; ///< scratch for GC / traversals
    std::vector<std::uint32_t> gc_worklist_; ///< reused GC mark worklist
    /// Epoch-stamped visited marks + DFS stack for dag_size_at_least: the
    /// probe runs on every parallel-image operand, so it reuses these
    /// instead of building a hash set per call.
    std::vector<std::uint32_t> size_probe_stamp_;
    std::vector<std::uint32_t> size_probe_stack_;
    std::uint32_t size_probe_epoch_ = 0;

    // live only during a reordering call
    std::vector<std::uint32_t> rc_;                    ///< internal ref counts
    std::vector<std::vector<std::uint32_t>> var_nodes_;///< nodes per variable
    std::size_t alive_ = 0;                            ///< rc_-tracked live count

#ifdef LEQ_CHECKED
    std::uint64_t checked_serial_ = 0;  ///< process-wide construction serial
    std::thread::id checked_owner_;     ///< the one thread allowed to call in
#endif
};

} // namespace leq
