/// \file bdd_reorder.cpp
/// \brief Dynamic variable reordering: adjacent-level swaps, Rudell sifting,
/// and exact-order reordering on a live graph.
///
/// The package addresses nodes by stable indices, so reordering rewrites
/// nodes *in place*: after a swap every node index still denotes the same
/// Boolean function (as a regular reference), which keeps all external
/// handles (and the computed cache) valid.  Complement edges add one
/// obligation — the rewritten node's then-edge must stay regular — and one
/// gift: it does so automatically.  The classic argument that the in-place
/// rewrite cannot collide with an existing unique-table entry is spelled
/// out at swap_levels below.
///
/// Bookkeeping during a reorder uses a dedicated internal reference count
/// (`rc_`, per node; the complement bit of an edge is irrelevant for
/// liveness): external roots contribute one reference, live parents one
/// each.  Nodes whose count drops to zero are left physically in the arena
/// and in the unique table — they may be resurrected by a later swap
/// requesting the same (var,lo,hi) triple — and are reclaimed by the
/// mark-and-sweep collection that ends the reorder.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>

namespace leq {

// ---------------------------------------------------------------------------
// unique-table removal (bucket chains are singly linked)
// ---------------------------------------------------------------------------

void bdd_manager::unique_remove(std::uint32_t idx) {
    const node& n = nodes_[idx];
    const std::uint64_t hh = node_hash(n.var, n.lo, n.hi);
    std::uint32_t* link = &buckets_[hh & (buckets_.size() - 1)];
    while (*link != idx_nil) {
        if (*link == idx) {
            *link = chain_[idx];
            return;
        }
        link = &chain_[*link];
    }
    assert(false && "unique_remove: node not in table");
}

// ---------------------------------------------------------------------------
// reorder-scoped reference counting
// ---------------------------------------------------------------------------

void bdd_manager::rc_incref(std::uint32_t ref) {
    const std::uint32_t n = node_of(ref);
    if (n == 0) { return; }
    if (rc_[n]++ == 0) {
        // fresh or resurrected: its children regain one reference each
        ++alive_;
        rc_incref(nodes_[n].lo);
        rc_incref(nodes_[n].hi);
    }
}

void bdd_manager::rc_deref(std::uint32_t ref) {
    const std::uint32_t n = node_of(ref);
    if (n == 0) { return; }
    assert(rc_[n] > 0);
    if (--rc_[n] == 0) {
        --alive_;
        rc_deref(nodes_[n].lo);
        rc_deref(nodes_[n].hi);
    }
}

std::uint32_t bdd_manager::reorder_mk(std::uint32_t var, std::uint32_t lo,
                                      std::uint32_t hi) {
    const std::uint32_t ref = mk(var, lo, hi);
    const std::uint32_t n = node_of(ref);
    if (rc_.size() < nodes_.size()) { rc_.resize(nodes_.size(), 0); }
    // track fresh nodes for future swaps of this variable; duplicates in the
    // list are harmless (iteration re-checks var and rc)
    if (n != 0 && rc_[n] == 0 && nodes_[n].var == var) {
        var_nodes_[var].push_back(n);
    }
    return ref;
}

void bdd_manager::reorder_begin() {
    collect_garbage(); // start from live-only arena; ages/purges the cache
    rc_.assign(nodes_.size(), 0);
    var_nodes_.assign(num_vars(), {});
    alive_ = 0;
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
        if (ext_ref_[i] > 0) { rc_incref(i << 1); }
    }
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
        if (rc_[i] > 0) { var_nodes_[nodes_[i].var].push_back(i); }
    }
}

void bdd_manager::reorder_end() {
    rc_.clear();
    var_nodes_.clear();
    collect_garbage(); // reclaim reorder garbage; rebuilds table, purges the
                       // cache entries that referenced it
    ++stats_.reorderings;
}

std::size_t bdd_manager::var_node_count(std::uint32_t var) const {
    std::size_t count = 0;
    for (const std::uint32_t idx : var_nodes_[var]) {
        if (nodes_[idx].var == var && rc_[idx] > 0) { ++count; }
    }
    return count;
}

// ---------------------------------------------------------------------------
// adjacent-level swap
// ---------------------------------------------------------------------------

std::size_t bdd_manager::swap_levels(std::uint32_t level) {
    assert(level + 1 < num_vars());
    const std::uint32_t x = level2var_[level];
    const std::uint32_t y = level2var_[level + 1];

    // Swap the level maps first so mk() creates x-nodes below y.
    std::swap(level2var_[level], level2var_[level + 1]);
    std::swap(var2level_[x], var2level_[y]);

    // Only x-nodes with a y-child change representation; x-nodes without one
    // simply sink a level unchanged.  The in-place rewrite of such a node to
    // (y, A, B) can never collide with an existing table entry:
    //  * a pre-swap y-node cannot have an x-node child (x was above y), while
    //    the rewrite always produces at least one x-child: were both new
    //    children below x, the node's two original cofactors would have been
    //    equal — impossible for a canonical node;
    //  * two rewrites in the same sweep mapping to the same (y, A, B) would
    //    have to start from identical (x, F0, F1) keys — the table held at
    //    most one.
    // Complement-edge invariant: the node's stored then-edge F1 is regular
    // and (being canonical) F1's own then-edge F11 is regular, so the new
    // then-child B = mk(x, F01, F11) — whose then-operand is F11 — comes
    // back regular, and the rewritten (y, A, B) node is canonical as-is.
    const std::vector<std::uint32_t> snapshot = var_nodes_[x];
    for (const std::uint32_t idx : snapshot) {
        if (nodes_[idx].var != x || rc_[idx] == 0) { continue; }
        const std::uint32_t f0 = nodes_[idx].lo; // may carry a complement bit
        const std::uint32_t f1 = nodes_[idx].hi; // regular by the invariant
        const bool d0 = !is_terminal(f0) && nodes_[node_of(f0)].var == y;
        const bool d1 = !is_terminal(f1) && nodes_[node_of(f1)].var == y;
        if (!d0 && !d1) { continue; }
        const std::uint32_t f00 = d0 ? lo_of(f0) : f0;
        const std::uint32_t f01 = d0 ? hi_of(f0) : f0;
        const std::uint32_t f10 = d1 ? lo_of(f1) : f1;
        const std::uint32_t f11 = d1 ? hi_of(f1) : f1;
        const std::uint32_t a = reorder_mk(x, f00, f10); // y = 0 branch
        rc_incref(a); // protect while building the other branch
        const std::uint32_t b = reorder_mk(x, f01, f11); // y = 1 branch
        rc_incref(b);
        assert(!is_comp(b) && "swap must keep the then-edge regular");
        unique_remove(idx);
        rc_deref(f0);
        rc_deref(f1);
        nodes_[idx].var = y;
        nodes_[idx].lo = a;
        nodes_[idx].hi = b;
        unique_insert(idx);
        var_nodes_[y].push_back(idx);
    }
    return alive_;
}

// ---------------------------------------------------------------------------
// sifting
// ---------------------------------------------------------------------------

void bdd_manager::sift_core(std::uint32_t var, double max_growth) {
    const std::uint32_t levels = num_vars();
    if (levels < 2) { return; }
    std::size_t best_size = alive_;
    std::uint32_t best_level = var2level_[var];

    const auto track = [&] {
        if (alive_ < best_size) {
            best_size = alive_;
            best_level = var2level_[var];
        }
    };
    const auto go_down = [&] {
        while (var2level_[var] + 1 < levels) {
            swap_levels(var2level_[var]);
            track();
            if (static_cast<double>(alive_) >
                max_growth * static_cast<double>(best_size)) {
                break;
            }
        }
    };
    const auto go_up = [&] {
        while (var2level_[var] > 0) {
            swap_levels(var2level_[var] - 1);
            track();
            if (static_cast<double>(alive_) >
                max_growth * static_cast<double>(best_size)) {
                break;
            }
        }
    };

    // explore the nearer end first, then sweep to the other
    if (var2level_[var] * 2 > levels) {
        go_down();
        go_up();
    } else {
        go_up();
        go_down();
    }
    // settle at the best level seen
    while (var2level_[var] > best_level) { swap_levels(var2level_[var] - 1); }
    while (var2level_[var] < best_level) { swap_levels(var2level_[var]); }
}

std::size_t bdd_manager::reorder_sift(double max_growth) {
    checked_guard("reorder_sift");
    reorder_begin();
    // sift variables in decreasing order of node count (Rudell's heuristic)
    std::vector<std::uint32_t> vars(num_vars());
    std::iota(vars.begin(), vars.end(), 0u);
    std::vector<std::size_t> counts(num_vars());
    for (const std::uint32_t v : vars) { counts[v] = var_node_count(v); }
    std::sort(vars.begin(), vars.end(), [&](std::uint32_t a, std::uint32_t b) {
        return counts[a] > counts[b];
    });
    for (const std::uint32_t v : vars) {
        if (counts[v] == 0) { continue; } // variable absent from all supports
        sift_core(v, max_growth);
    }
    reorder_end();
    return stats_.live_nodes;
}

std::size_t bdd_manager::sift_one(std::uint32_t var, double max_growth) {
    checked_guard("sift_one");
    assert(var < num_vars());
    reorder_begin();
    sift_core(var, max_growth);
    reorder_end();
    return stats_.live_nodes;
}

void bdd_manager::reorder_to(const std::vector<std::uint32_t>& order) {
    checked_guard("reorder_to");
    if (order.size() != num_vars()) {
        throw std::invalid_argument("reorder_to: order size mismatch");
    }
    std::vector<char> seen(num_vars(), 0);
    for (const std::uint32_t v : order) {
        if (v >= num_vars() || seen[v]) {
            throw std::invalid_argument("reorder_to: not a permutation");
        }
        seen[v] = 1;
    }
    reorder_begin();
    // selection sort on levels: bubble each variable up to its target level;
    // levels above k are already final, so only upward swaps are needed
    for (std::uint32_t k = 0; k < order.size(); ++k) {
        const std::uint32_t v = order[k];
        assert(var2level_[v] >= k);
        while (var2level_[v] > k) { swap_levels(var2level_[v] - 1); }
    }
    reorder_end();
}

// ---------------------------------------------------------------------------
// group sifting
// ---------------------------------------------------------------------------

std::size_t bdd_manager::reorder_sift_groups(
    const std::vector<std::vector<std::uint32_t>>& groups, double max_growth) {
    checked_guard("reorder_sift_groups");
    // validate: a partition of all variables
    std::vector<char> seen(num_vars(), 0);
    std::size_t covered = 0;
    for (const auto& group : groups) {
        if (group.empty()) {
            throw std::invalid_argument("reorder_sift_groups: empty group");
        }
        for (const std::uint32_t v : group) {
            if (v >= num_vars() || seen[v]) {
                throw std::invalid_argument(
                    "reorder_sift_groups: groups must partition the "
                    "variables");
            }
            seen[v] = 1;
            ++covered;
        }
    }
    if (covered != num_vars()) {
        throw std::invalid_argument(
            "reorder_sift_groups: groups must cover every variable");
    }

    reorder_begin();

    // arrangement: group indices ordered by current topmost member; gather
    // each group into an adjacent block in that order (one reorder_to-style
    // bubbling pass)
    std::vector<std::size_t> arrangement(groups.size());
    std::iota(arrangement.begin(), arrangement.end(), std::size_t{0});
    std::sort(arrangement.begin(), arrangement.end(),
              [&](std::size_t a, std::size_t b) {
                  std::uint32_t la = num_vars(), lb = num_vars();
                  for (const std::uint32_t v : groups[a]) {
                      la = std::min(la, var2level_[v]);
                  }
                  for (const std::uint32_t v : groups[b]) {
                      lb = std::min(lb, var2level_[v]);
                  }
                  return la < lb;
              });
    {
        std::uint32_t level = 0;
        for (const std::size_t g : arrangement) {
            for (const std::uint32_t v : groups[g]) {
                assert(var2level_[v] >= level);
                while (var2level_[v] > level) {
                    swap_levels(var2level_[v] - 1);
                }
                ++level;
            }
        }
    }

    // block boundaries: position -> (group, top level); recomputed on the
    // fly from sizes since blocks stay contiguous from here on
    const auto block_size = [&](std::size_t pos) {
        return groups[arrangement[pos]].size();
    };
    const auto block_top = [&](std::size_t pos) {
        std::uint32_t level = 0;
        for (std::size_t k = 0; k < pos; ++k) {
            level += static_cast<std::uint32_t>(block_size(k));
        }
        return level;
    };
    // swap adjacent blocks at positions pos, pos+1 by bubbling each variable
    // of the lower block up past the upper block
    const auto block_swap = [&](std::size_t pos) {
        const std::uint32_t top = block_top(pos);
        const auto a = static_cast<std::uint32_t>(block_size(pos));
        const auto b = static_cast<std::uint32_t>(block_size(pos + 1));
        for (std::uint32_t k = 0; k < b; ++k) {
            // the k-th variable of the lower block sits at level top+a+k
            // and must rise to level top+k
            for (std::uint32_t step = 0; step < a; ++step) {
                swap_levels(top + a + k - step - 1);
            }
        }
        std::swap(arrangement[pos], arrangement[pos + 1]);
    };

    // sift blocks in decreasing node-count order
    std::vector<std::size_t> order(groups.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<std::size_t> weight(groups.size(), 0);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (const std::uint32_t v : groups[g]) {
            weight[g] += var_node_count(v);
        }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return weight[a] > weight[b];
    });

    for (const std::size_t g : order) {
        if (weight[g] == 0 || groups.size() < 2) { continue; }
        const auto position_of = [&] {
            for (std::size_t pos = 0; pos < arrangement.size(); ++pos) {
                if (arrangement[pos] == g) { return pos; }
            }
            assert(false);
            return std::size_t{0};
        };
        std::size_t best_size = alive_;
        std::size_t best_pos = position_of();
        const auto track = [&] {
            if (alive_ < best_size) {
                best_size = alive_;
                best_pos = position_of();
            }
        };
        const auto go_down = [&] {
            while (position_of() + 1 < arrangement.size()) {
                block_swap(position_of());
                track();
                if (static_cast<double>(alive_) >
                    max_growth * static_cast<double>(best_size)) {
                    break;
                }
            }
        };
        const auto go_up = [&] {
            while (position_of() > 0) {
                block_swap(position_of() - 1);
                track();
                if (static_cast<double>(alive_) >
                    max_growth * static_cast<double>(best_size)) {
                    break;
                }
            }
        };
        if (position_of() * 2 > arrangement.size()) {
            go_down();
            go_up();
        } else {
            go_up();
            go_down();
        }
        while (position_of() > best_pos) { block_swap(position_of() - 1); }
        while (position_of() < best_pos) { block_swap(position_of()); }
    }

    reorder_end();
    return stats_.live_nodes;
}

// ---------------------------------------------------------------------------
// structural consistency check (tests)
// ---------------------------------------------------------------------------

void bdd_manager::check_consistency() const {
    checked_guard("check_consistency");
    std::set<std::array<std::uint32_t, 3>> keys;
    std::vector<char> in_table(nodes_.size(), 0);
    // unique-table health: bucket-chain length histogram.  The table never
    // exceeds load factor 1 (the arena rehashes before outgrowing the
    // buckets), so with a healthy hash the longest chain stays logarithmic;
    // a pathological chain means the hash or the split chain_ array
    // regressed — catch it here before it shows up as bench noise.
    std::vector<std::size_t> chain_histogram;
    std::size_t max_chain = 0;
    for (const std::uint32_t head : buckets_) {
        std::size_t chain_len = 0;
        for (std::uint32_t i = head; i != idx_nil; i = chain_[i]) {
            ++chain_len;
            const node& n = nodes_[i];
            if (in_table[i]) {
                throw std::logic_error("bdd: node linked twice in table");
            }
            in_table[i] = 1;
            if (n.var == var_nil) {
                throw std::logic_error("bdd: terminal in unique table");
            }
            if (n.lo == n.hi) {
                throw std::logic_error("bdd: unreduced node (lo == hi)");
            }
            if (is_comp(n.hi)) {
                // this is also what forbids a node and its complement from
                // both sitting in the table: the complemented twin of a
                // canonical node necessarily has a complemented then-edge
                throw std::logic_error("bdd: complemented then-edge in table");
            }
            for (const std::uint32_t c : {n.lo, n.hi}) {
                if (node_of(c) >= nodes_.size()) {
                    throw std::logic_error("bdd: child out of range");
                }
                if (!is_terminal(c) &&
                    var2level_[nodes_[node_of(c)].var] <= var2level_[n.var]) {
                    throw std::logic_error("bdd: child level not below parent");
                }
            }
            if (!keys.insert({n.var, n.lo, n.hi}).second) {
                throw std::logic_error("bdd: duplicate (var,lo,hi) in table");
            }
        }
        if (chain_len >= chain_histogram.size()) {
            chain_histogram.resize(chain_len + 1, 0);
        }
        ++chain_histogram[chain_len];
        max_chain = std::max(max_chain, chain_len);
    }
    // at load factor <= 1 a uniform hash keeps the expected longest chain
    // around ln(n)/ln(ln(n)); 32 is far above that for any table this
    // manager can hold, so tripping it means node_hash degraded
    constexpr std::size_t max_healthy_chain = 32;
    if (max_chain > max_healthy_chain) {
        throw std::logic_error("bdd: unique-table chain exceeds health bound (" +
                               std::to_string(max_chain) + " > " +
                               std::to_string(max_healthy_chain) +
                               "), hash quality regressed");
    }
    // every node reachable from an externally referenced root must be
    // findable through the table — this is what catches bucket-chain
    // corruption (an orphaned node would let mk() mint a duplicate and
    // silently break reference canonicity)
    std::vector<char> reach(nodes_.size(), 0);
    std::vector<std::uint32_t> stack;
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
        if (ext_ref_[i] > 0 && !reach[i]) {
            reach[i] = 1;
            stack.push_back(i);
        }
    }
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        for (const std::uint32_t edge : {nodes_[n].lo, nodes_[n].hi}) {
            const std::uint32_t c = node_of(edge);
            if (c != 0 && !reach[c]) {
                reach[c] = 1;
                stack.push_back(c);
            }
        }
    }
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
        if (reach[i] && !in_table[i]) {
            throw std::logic_error("bdd: live node missing from unique table");
        }
    }
}

} // namespace leq
