/// \file bdd_util.cpp
/// \brief Structural queries: support, sizes, counting, cube enumeration.
///
/// Traversals walk tagged references: a node's stored edges are XOR-ed with
/// the incoming reference's complement bit, so every helper sees the true
/// cofactor functions.  Node-keyed memos (sat_count, dag_size) key on the
/// node index alone — f and !f share one entry.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace leq {

void bdd_manager::set_var_order(const std::vector<std::uint32_t>& order) {
    checked_guard("set_var_order");
    if (order.size() != var2level_.size()) {
        throw std::invalid_argument("set_var_order: wrong permutation size");
    }
    // the order may only change while no user BDDs exist: check that nothing
    // beyond the terminal is externally referenced
    for (std::uint32_t i = 1; i < ext_ref_.size(); ++i) {
        if (ext_ref_[i] != 0) {
            throw std::logic_error(
                "set_var_order: live BDD handles exist; choose the order "
                "before building");
        }
    }
    collect_garbage();
    std::vector<char> seen(order.size(), 0);
    for (std::size_t lvl = 0; lvl < order.size(); ++lvl) {
        const std::uint32_t v = order[lvl];
        if (v >= order.size() || seen[v]) {
            throw std::invalid_argument("set_var_order: not a permutation");
        }
        seen[v] = 1;
        level2var_[lvl] = v;
        var2level_[v] = static_cast<std::uint32_t>(lvl);
    }
    cache_clear();
}

bdd bdd_manager::support_cube(const bdd& f) {
    checked_guard("support_cube", f);
    assert(f.manager() == this);
    maybe_gc_or_grow();
    return make(support_rec(f.index()));
}

std::uint32_t bdd_manager::support_rec(std::uint32_t f) {
    f &= ~1u; // support(f) == support(!f): cache on the regular reference
    if (f == 0) { return 1; }
    std::uint32_t result = 0;
    if (cache_lookup(op::support_op, f, 0, 0, result)) { return result; }
    const node nf = nodes_[node_of(f)];
    const std::uint32_t s_children =
        and_rec(support_rec(nf.lo), support_rec(nf.hi));
    result = and_rec(mk(nf.var, 0, 1), s_children);
    cache_store(op::support_op, f, 0, 0, result);
    return result;
}

std::vector<std::uint32_t> bdd_manager::support(const bdd& f) {
    checked_guard("support", f);
    std::vector<std::uint32_t> vars;
    for (bdd c = support_cube(f); !c.is_const(); c = c.high()) {
        vars.push_back(c.top_var());
    }
    return vars;
}

std::size_t bdd_manager::dag_size(const bdd& f) {
    checked_guard("dag_size", f);
    assert(f.manager() == this);
    std::unordered_set<std::uint32_t> seen; // node indices
    std::vector<std::uint32_t> stack{node_of(f.index())};
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second || n == 0) { continue; }
        stack.push_back(node_of(nodes_[n].lo));
        stack.push_back(node_of(nodes_[n].hi));
    }
    return seen.size();
}

bool bdd_manager::dag_size_at_least(const bdd& f, std::size_t n) {
    checked_guard("dag_size_at_least", f);
    assert(f.manager() == this);
    if (n <= 1) { return true; } // the terminal alone reaches size 1
    if (size_probe_stamp_.size() < nodes_.size()) {
        size_probe_stamp_.resize(nodes_.size(), 0);
    }
    if (++size_probe_epoch_ == 0) {
        // stamp wrap: stale marks from 2^32 probes ago become ambiguous
        std::fill(size_probe_stamp_.begin(), size_probe_stamp_.end(), 0);
        size_probe_epoch_ = 1;
    }
    std::size_t count = 0;
    size_probe_stack_.clear();
    size_probe_stack_.push_back(node_of(f.index()));
    while (!size_probe_stack_.empty()) {
        const std::uint32_t idx = size_probe_stack_.back();
        size_probe_stack_.pop_back();
        if (size_probe_stamp_[idx] == size_probe_epoch_) { continue; }
        size_probe_stamp_[idx] = size_probe_epoch_;
        if (++count >= n) { return true; }
        if (idx == 0) { continue; } // the terminal has no children
        size_probe_stack_.push_back(node_of(nodes_[idx].lo));
        size_probe_stack_.push_back(node_of(nodes_[idx].hi));
    }
    return false;
}

double bdd_manager::sat_count(const bdd& f, std::uint32_t nvars) {
    checked_guard("sat_count", f);
    assert(f.manager() == this);
    // fraction-style recursion: density(f) = fraction of assignments mapped
    // to 1; the count is density * 2^nvars.  Memoized per node; a
    // complemented reference reads 1 - density.
    std::unordered_map<std::uint32_t, double> memo;
    const std::function<double(std::uint32_t)> density =
        [&](std::uint32_t r) -> double {
        if (r == 0) { return 0.0; }
        if (r == 1) { return 1.0; }
        const std::uint32_t n = node_of(r);
        double d = 0.0;
        const auto it = memo.find(n);
        if (it != memo.end()) {
            d = it->second;
        } else {
            d = 0.5 * (density(nodes_[n].lo) + density(nodes_[n].hi));
            memo.emplace(n, d);
        }
        return is_comp(r) ? 1.0 - d : d;
    };
    return density(f.index()) * std::pow(2.0, static_cast<double>(nvars));
}

bool bdd_manager::eval(const bdd& f, const std::vector<bool>& assignment) {
    checked_guard("eval", f);
    assert(f.manager() == this);
    std::uint32_t r = f.index();
    while (r > 1) {
        const node& nd = nodes_[node_of(r)];
        assert(nd.var < assignment.size());
        r = (assignment[nd.var] ? nd.hi : nd.lo) ^ comp_of(r);
    }
    return r == 1;
}

bdd bdd_manager::pick_cube(const bdd& f) {
    checked_guard("pick_cube", f);
    assert(f.manager() == this && !f.is_zero());
    maybe_gc_or_grow();
    // walk down preferring the else-branch, collecting literals
    std::vector<std::pair<std::uint32_t, bool>> literals;
    std::uint32_t r = f.index();
    while (r > 1) {
        const std::uint32_t v = var_of(r);
        const std::uint32_t lo = lo_of(r);
        if (lo != 0) {
            literals.emplace_back(v, false);
            r = lo;
        } else {
            literals.emplace_back(v, true);
            r = hi_of(r);
        }
    }
    // build the cube bottom-up in descending level order (literals collected
    // top-down are already in ascending level order)
    std::uint32_t c = 1;
    for (auto it = literals.rbegin(); it != literals.rend(); ++it) {
        c = it->second ? mk(it->first, 0, c) : mk(it->first, c, 0);
    }
    return make(c);
}

void bdd_manager::foreach_cube(
    const bdd& f, const std::vector<std::uint32_t>& vars,
    const std::function<void(const std::vector<int>&)>& fn) {
    checked_guard("foreach_cube", f);
    assert(f.manager() == this);
    // variables sorted by level so the walk matches the BDD order
    std::vector<std::uint32_t> sorted = vars;
    std::sort(sorted.begin(), sorted.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return var2level_[a] < var2level_[b];
              });
    std::vector<int> values(vars.size(), 2);
    // map variable id -> position in the caller's vars list
    std::unordered_map<std::uint32_t, std::size_t> pos;
    for (std::size_t k = 0; k < vars.size(); ++k) { pos.emplace(vars[k], k); }

    const std::function<void(std::uint32_t, std::size_t)> walk =
        [&](std::uint32_t r, std::size_t k) {
        if (r == 0) { return; }
        if (k == sorted.size()) {
            assert(r == 1 && "foreach_cube: support exceeds the listed vars");
            fn(values);
            return;
        }
        const std::uint32_t v = sorted[k];
        const std::size_t slot = pos.at(v);
        if (r > 1 && var_of(r) == v) {
            const std::uint32_t lo = lo_of(r);
            const std::uint32_t hi = hi_of(r);
            values[slot] = 0;
            walk(lo, k + 1);
            values[slot] = 1;
            walk(hi, k + 1);
        } else {
            // r is independent of v (r's top is below v, or r is constant)
            values[slot] = 2;
            walk(r, k + 1);
        }
        values[slot] = 2;
    };
    walk(f.index(), 0);
}

bdd bdd_manager::cube(const std::vector<std::uint32_t>& vars) {
    checked_guard("cube");
    maybe_gc_or_grow();
    std::vector<std::uint32_t> sorted = vars;
    std::sort(sorted.begin(), sorted.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return var2level_[a] > var2level_[b]; // deepest first
              });
    std::uint32_t c = 1;
    for (const std::uint32_t v : sorted) { c = mk(v, 0, c); }
    return make(c);
}

std::string bdd_manager::to_string(const bdd& f,
                                   const std::vector<std::string>& names) {
    checked_guard("to_string", f);
    if (f.is_zero()) { return "0"; }
    if (f.is_one()) { return "1"; }
    const std::vector<std::uint32_t> vars = support(f);
    std::string out;
    foreach_cube(f, vars, [&](const std::vector<int>& values) {
        if (!out.empty()) { out += " | "; }
        std::string term;
        for (std::size_t k = 0; k < vars.size(); ++k) {
            if (values[k] == 2) { continue; }
            if (!term.empty()) { term += " & "; }
            if (values[k] == 0) { term += "!"; }
            term += vars[k] < names.size() ? names[vars[k]]
                                           : "x" + std::to_string(vars[k]);
        }
        out += term.empty() ? "1" : term;
    });
    return out;
}

} // namespace leq
