/// \file bdd_subst.cpp
/// \brief Variable renaming (permute), functional composition and cofactors.
///
/// All of these commute with complementation, so the recursions memoize on
/// the *regular* reference only and XOR the caller's complement bit back
/// into the result — halving memo pressure and making f / !f renames share
/// all work.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

namespace leq {

bdd bdd_manager::permute(const bdd& f, const std::vector<std::uint32_t>& perm) {
    checked_guard("permute", f);
    assert(f.manager() == this);
    maybe_gc_or_grow();
    std::vector<std::uint32_t> memo(nodes_.size(), idx_nil);
    return make(permute_rec(f.index(), perm, memo));
}

std::uint32_t bdd_manager::permute_rec(std::uint32_t f,
                                       const std::vector<std::uint32_t>& perm,
                                       std::vector<std::uint32_t>& memo) {
    if (is_terminal(f)) { return f; }
    const std::uint32_t out = comp_of(f);
    const std::uint32_t n = node_of(f);
    if (n < memo.size() && memo[n] != idx_nil) { return memo[n] ^ out; }
    const node nf = nodes_[n];
    const std::uint32_t r0 = permute_rec(nf.lo, perm, memo);
    const std::uint32_t r1 = permute_rec(nf.hi, perm, memo);
    assert(nf.var < perm.size());
    const std::uint32_t new_var = perm[nf.var];
    // the renamed variable may land anywhere in the order, so rebuild with a
    // full ITE rather than a bottom-up mk
    const std::uint32_t result = ite_rec(mk(new_var, 0, 1), r1, r0);
    if (n < memo.size()) { memo[n] = result; }
    return result ^ out;
}

bdd bdd_manager::compose(const bdd& f, std::uint32_t v, const bdd& g) {
    checked_guard("compose", f, g);
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    std::vector<std::uint32_t> memo(nodes_.size(), idx_nil);
    return make(compose_rec(f.index(), v, g.index(), memo));
}

std::uint32_t bdd_manager::compose_rec(std::uint32_t f, std::uint32_t v,
                                       std::uint32_t g,
                                       std::vector<std::uint32_t>& memo) {
    if (is_terminal(f)) { return f; }
    const node nf = nodes_[node_of(f)];
    // below the level of v the variable cannot occur
    if (var2level_[nf.var] > var2level_[v]) { return f; }
    const std::uint32_t out = comp_of(f);
    const std::uint32_t n = node_of(f);
    if (n < memo.size() && memo[n] != idx_nil) { return memo[n] ^ out; }
    std::uint32_t result = 0;
    if (nf.var == v) {
        result = ite_rec(g, nf.hi, nf.lo);
    } else {
        const std::uint32_t r0 = compose_rec(nf.lo, v, g, memo);
        const std::uint32_t r1 = compose_rec(nf.hi, v, g, memo);
        result = ite_rec(mk(nf.var, 0, 1), r1, r0);
    }
    if (n < memo.size()) { memo[n] = result; }
    return result ^ out;
}

bdd bdd_manager::compose_vector(
    const bdd& f,
    const std::vector<std::pair<std::uint32_t, bdd>>& substitutions) {
    checked_guard("compose_vector", f);
    assert(f.manager() == this);
    maybe_gc_or_grow();
    std::vector<std::uint32_t> sub(num_vars(), idx_nil);
    std::uint32_t deepest = 0;
    for (const auto& [v, g] : substitutions) {
        checked_handle_guard("compose_vector", g);
        assert(g.manager() == this);
        assert(v < num_vars());
        sub[v] = g.index();
        deepest = std::max(deepest, var2level_[v]);
    }
    std::vector<std::uint32_t> memo(nodes_.size(), idx_nil);
    return make(compose_vec_rec(f.index(), sub, deepest, memo));
}

std::uint32_t bdd_manager::compose_vec_rec(
    std::uint32_t f, const std::vector<std::uint32_t>& sub,
    std::uint32_t deepest_level, std::vector<std::uint32_t>& memo) {
    if (is_terminal(f)) { return f; }
    const node nf = nodes_[node_of(f)];
    // no substituted variable can occur below the deepest one
    if (var2level_[nf.var] > deepest_level) { return f; }
    const std::uint32_t out = comp_of(f);
    const std::uint32_t n = node_of(f);
    if (n < memo.size() && memo[n] != idx_nil) { return memo[n] ^ out; }
    const std::uint32_t r0 = compose_vec_rec(nf.lo, sub, deepest_level, memo);
    const std::uint32_t r1 = compose_vec_rec(nf.hi, sub, deepest_level, memo);
    const std::uint32_t g =
        sub[nf.var] != idx_nil ? sub[nf.var] : mk(nf.var, 0, 1);
    const std::uint32_t result = ite_rec(g, r1, r0);
    if (n < memo.size()) { memo[n] = result; }
    return result ^ out;
}

bdd bdd_manager::cofactor(const bdd& f, const bdd& cube) {
    checked_guard("cofactor", f, cube);
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    const std::uint32_t c = cube.index();
    assert(c != 0 && "cofactor by the empty cube is undefined");
    // generalized cofactor by a cube: walk f, branching as the cube dictates
    struct restrictor {
        bdd_manager* m;
        std::uint32_t run(std::uint32_t f, std::uint32_t c) {
            if (is_terminal(f) || c == 1) { return f; }
            // cofactoring commutes with complement (the cube steers by c
            // alone): hoist f's bit so f / !f share the cache line
            const std::uint32_t out = comp_of(f);
            f ^= out;
            std::uint32_t result = 0;
            if (m->cache_lookup(op::cofactor_op, f, c, 0, result)) {
                return result ^ out;
            }
            const std::uint32_t lf = m->var2level_[m->var_of(f)];
            const std::uint32_t lc = m->var2level_[m->var_of(c)];
            if (lc < lf) {
                // cube literal above f: skip it
                result = run(f, m->lo_of(c) == 0 ? m->hi_of(c) : m->lo_of(c));
            } else if (lc == lf) {
                // take the branch selected by the literal's phase
                result = m->lo_of(c) == 0 ? run(m->hi_of(f), m->hi_of(c))
                                          : run(m->lo_of(f), m->lo_of(c));
            } else {
                const std::uint32_t r0 = run(m->lo_of(f), c);
                const std::uint32_t r1 = run(m->hi_of(f), c);
                result = m->mk(m->var_of(f), r0, r1);
            }
            m->cache_store(op::cofactor_op, f, c, 0, result);
            return result ^ out;
        }
    };
    return make(restrictor{this}.run(f.index(), c));
}

} // namespace leq


namespace leq {

bdd bdd_manager::constrain(const bdd& f, const bdd& c) {
    checked_guard("constrain", f, c);
    assert(f.manager() == this && c.manager() == this);
    assert(!c.is_zero() && "constrain: empty care set");
    maybe_gc_or_grow();
    return make(constrain_rec(f.index(), c.index()));
}

std::uint32_t bdd_manager::constrain_rec(std::uint32_t f, std::uint32_t c) {
    if (c == 1 || is_terminal(f)) { return f; }
    if (c == f) { return 1; }
    if (c == (f ^ 1u)) { return 0; }
    // constrain commutes with complement (the care-set steering ignores f's
    // phase): hoist f's bit so f / !f share the cache line
    const std::uint32_t out = comp_of(f);
    f ^= out;
    std::uint32_t result = 0;
    if (cache_lookup(op::constrain_op, f, c, 0, result)) { return result ^ out; }
    const std::uint32_t lc = var2level_[var_of(c)];
    const std::uint32_t lf = var2level_[var_of(f)];
    if (lc < lf) {
        // f independent of c's top variable
        const std::uint32_t c0 = lo_of(c);
        const std::uint32_t c1 = hi_of(c);
        if (c0 == 0) {
            result = constrain_rec(f, c1);
        } else if (c1 == 0) {
            result = constrain_rec(f, c0);
        } else {
            result = mk(var_of(c), constrain_rec(f, c0), constrain_rec(f, c1));
        }
    } else {
        const std::uint32_t f0 = lf <= lc ? lo_of(f) : f;
        const std::uint32_t f1 = lf <= lc ? hi_of(f) : f;
        const std::uint32_t c0 = lc <= lf ? lo_of(c) : c;
        const std::uint32_t c1 = lc <= lf ? hi_of(c) : c;
        if (c0 == 0) {
            result = constrain_rec(f1, c1);
        } else if (c1 == 0) {
            result = constrain_rec(f0, c0);
        } else {
            const std::uint32_t top = lf <= lc ? var_of(f) : var_of(c);
            const std::uint32_t r0 = constrain_rec(f0, c0);
            const std::uint32_t r1 = constrain_rec(f1, c1);
            result = mk(top, r0, r1);
        }
    }
    cache_store(op::constrain_op, f, c, 0, result);
    return result ^ out;
}

bdd bdd_manager::restrict_dc(const bdd& f, const bdd& c) {
    checked_guard("restrict_dc", f, c);
    assert(f.manager() == this && c.manager() == this);
    assert(!c.is_zero() && "restrict: empty care set");
    maybe_gc_or_grow();
    return make(restrict_rec(f.index(), c.index()));
}

std::uint32_t bdd_manager::restrict_rec(std::uint32_t f, std::uint32_t c) {
    if (c == 1 || is_terminal(f)) { return f; }
    if (c == f) { return 1; }
    if (c == (f ^ 1u)) { return 0; }
    const std::uint32_t out = comp_of(f);
    f ^= out;
    std::uint32_t result = 0;
    if (cache_lookup(op::restrict_op, f, c, 0, result)) { return result ^ out; }
    const std::uint32_t lc = var2level_[var_of(c)];
    const std::uint32_t lf = var2level_[var_of(f)];
    if (lc < lf) {
        // f does not depend on c's top variable: drop it from the care set
        // (this is the difference from constrain)
        result = restrict_rec(f, or_rec(lo_of(c), hi_of(c)));
    } else {
        const std::uint32_t f0 = lo_of(f);
        const std::uint32_t f1 = hi_of(f);
        const std::uint32_t c0 = lc == lf ? lo_of(c) : c;
        const std::uint32_t c1 = lc == lf ? hi_of(c) : c;
        if (c0 == 0) {
            result = restrict_rec(f1, c1);
        } else if (c1 == 0) {
            result = restrict_rec(f0, c0);
        } else {
            const std::uint32_t r0 = restrict_rec(f0, c0);
            const std::uint32_t r1 = restrict_rec(f1, c1);
            result = mk(var_of(f), r0, r1);
        }
    }
    cache_store(op::restrict_op, f, c, 0, result);
    return result ^ out;
}

} // namespace leq
