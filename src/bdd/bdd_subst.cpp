/// \file bdd_subst.cpp
/// \brief Variable renaming (permute), functional composition and cofactors.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

namespace leq {

bdd bdd_manager::permute(const bdd& f, const std::vector<std::uint32_t>& perm) {
    assert(f.manager() == this);
    maybe_gc_or_grow();
    std::vector<std::uint32_t> memo(nodes_.size(), idx_nil);
    return make(permute_rec(f.index(), perm, memo));
}

std::uint32_t bdd_manager::permute_rec(std::uint32_t f,
                                       const std::vector<std::uint32_t>& perm,
                                       std::vector<std::uint32_t>& memo) {
    if (f <= 1) { return f; }
    if (f < memo.size() && memo[f] != idx_nil) { return memo[f]; }
    const node nf = nodes_[f];
    const std::uint32_t r0 = permute_rec(nf.lo, perm, memo);
    const std::uint32_t r1 = permute_rec(nf.hi, perm, memo);
    assert(nf.var < perm.size());
    const std::uint32_t new_var = perm[nf.var];
    // the renamed variable may land anywhere in the order, so rebuild with a
    // full ITE rather than a bottom-up mk
    const std::uint32_t result = ite_rec(mk(new_var, 0, 1), r1, r0);
    if (f < memo.size()) { memo[f] = result; }
    return result;
}

bdd bdd_manager::compose(const bdd& f, std::uint32_t v, const bdd& g) {
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    std::vector<std::uint32_t> memo(nodes_.size(), idx_nil);
    return make(compose_rec(f.index(), v, g.index(), memo));
}

std::uint32_t bdd_manager::compose_rec(std::uint32_t f, std::uint32_t v,
                                       std::uint32_t g,
                                       std::vector<std::uint32_t>& memo) {
    if (f <= 1) { return f; }
    const node nf = nodes_[f];
    // below the level of v the variable cannot occur
    if (var2level_[nf.var] > var2level_[v]) { return f; }
    if (f < memo.size() && memo[f] != idx_nil) { return memo[f]; }
    std::uint32_t result = 0;
    if (nf.var == v) {
        result = ite_rec(g, nf.hi, nf.lo);
    } else {
        const std::uint32_t r0 = compose_rec(nf.lo, v, g, memo);
        const std::uint32_t r1 = compose_rec(nf.hi, v, g, memo);
        result = ite_rec(mk(nf.var, 0, 1), r1, r0);
    }
    if (f < memo.size()) { memo[f] = result; }
    return result;
}

bdd bdd_manager::compose_vector(
    const bdd& f,
    const std::vector<std::pair<std::uint32_t, bdd>>& substitutions) {
    assert(f.manager() == this);
    maybe_gc_or_grow();
    std::vector<std::uint32_t> sub(num_vars(), idx_nil);
    std::uint32_t deepest = 0;
    for (const auto& [v, g] : substitutions) {
        assert(g.manager() == this);
        assert(v < num_vars());
        sub[v] = g.index();
        deepest = std::max(deepest, var2level_[v]);
    }
    std::vector<std::uint32_t> memo(nodes_.size(), idx_nil);
    return make(compose_vec_rec(f.index(), sub, deepest, memo));
}

std::uint32_t bdd_manager::compose_vec_rec(
    std::uint32_t f, const std::vector<std::uint32_t>& sub,
    std::uint32_t deepest_level, std::vector<std::uint32_t>& memo) {
    if (f <= 1) { return f; }
    const node nf = nodes_[f];
    // no substituted variable can occur below the deepest one
    if (var2level_[nf.var] > deepest_level) { return f; }
    if (f < memo.size() && memo[f] != idx_nil) { return memo[f]; }
    const std::uint32_t r0 = compose_vec_rec(nf.lo, sub, deepest_level, memo);
    const std::uint32_t r1 = compose_vec_rec(nf.hi, sub, deepest_level, memo);
    const std::uint32_t g =
        sub[nf.var] != idx_nil ? sub[nf.var] : mk(nf.var, 0, 1);
    const std::uint32_t result = ite_rec(g, r1, r0);
    if (f < memo.size()) { memo[f] = result; }
    return result;
}

bdd bdd_manager::cofactor(const bdd& f, const bdd& cube) {
    assert(f.manager() == this && cube.manager() == this);
    maybe_gc_or_grow();
    // iterative over the cube: restrict one literal at a time via the cache
    std::uint32_t r = f.index();
    std::uint32_t c = cube.index();
    assert(c != 0 && "cofactor by the empty cube is undefined");
    // generalized cofactor by a cube: walk f, branching as the cube dictates
    struct restrictor {
        bdd_manager* m;
        std::uint32_t run(std::uint32_t f, std::uint32_t c) {
            if (f <= 1 || c == 1) { return f; }
            std::uint32_t result = 0;
            if (m->cache_lookup(op::cofactor_op, f, c, 0, result)) {
                return result;
            }
            const node nf = m->nodes_[f];
            const node nc = m->nodes_[c];
            const std::uint32_t lf = m->var2level_[nf.var];
            const std::uint32_t lc = m->var2level_[nc.var];
            if (lc < lf) {
                // cube literal above f: skip it
                result = run(f, nc.lo == 0 ? nc.hi : nc.lo);
            } else if (lc == lf) {
                // take the branch selected by the literal's phase
                result = nc.lo == 0 ? run(nf.hi, nc.hi) : run(nf.lo, nc.lo);
            } else {
                const std::uint32_t r0 = run(nf.lo, c);
                const std::uint32_t r1 = run(nf.hi, c);
                result = m->mk(nf.var, r0, r1);
            }
            m->cache_store(op::cofactor_op, f, c, 0, result);
            return result;
        }
    };
    return make(restrictor{this}.run(r, c));
}

} // namespace leq


namespace leq {

bdd bdd_manager::constrain(const bdd& f, const bdd& c) {
    assert(f.manager() == this && c.manager() == this);
    assert(!c.is_zero() && "constrain: empty care set");
    maybe_gc_or_grow();
    return make(constrain_rec(f.index(), c.index()));
}

std::uint32_t bdd_manager::constrain_rec(std::uint32_t f, std::uint32_t c) {
    if (c == 1 || f <= 1) { return f; }
    if (c == f) { return 1; }
    std::uint32_t result = 0;
    if (cache_lookup(op::constrain_op, f, c, 0, result)) { return result; }
    const node nc = nodes_[c];
    const node nf = nodes_[f];
    const std::uint32_t lc = var2level_[nc.var];
    const std::uint32_t lf = var2level_[nf.var];
    if (lc < lf) {
        // f independent of c's top variable
        if (nc.lo == 0) {
            result = constrain_rec(f, nc.hi);
        } else if (nc.hi == 0) {
            result = constrain_rec(f, nc.lo);
        } else {
            const std::uint32_t r0 = constrain_rec(f, nc.lo);
            const std::uint32_t r1 = constrain_rec(f, nc.hi);
            result = mk(nc.var, r0, r1);
        }
    } else {
        const std::uint32_t f0 = lf <= lc ? nf.lo : f;
        const std::uint32_t f1 = lf <= lc ? nf.hi : f;
        const std::uint32_t c0 = lc <= lf ? nc.lo : c;
        const std::uint32_t c1 = lc <= lf ? nc.hi : c;
        if (c0 == 0) {
            result = constrain_rec(f1, c1);
        } else if (c1 == 0) {
            result = constrain_rec(f0, c0);
        } else {
            const std::uint32_t top =
                lf <= lc ? nf.var : nc.var;
            const std::uint32_t r0 = constrain_rec(f0, c0);
            const std::uint32_t r1 = constrain_rec(f1, c1);
            result = mk(top, r0, r1);
        }
    }
    cache_store(op::constrain_op, f, c, 0, result);
    return result;
}

bdd bdd_manager::restrict_dc(const bdd& f, const bdd& c) {
    assert(f.manager() == this && c.manager() == this);
    assert(!c.is_zero() && "restrict: empty care set");
    maybe_gc_or_grow();
    return make(restrict_rec(f.index(), c.index()));
}

std::uint32_t bdd_manager::restrict_rec(std::uint32_t f, std::uint32_t c) {
    if (c == 1 || f <= 1) { return f; }
    if (c == f) { return 1; }
    std::uint32_t result = 0;
    if (cache_lookup(op::restrict_op, f, c, 0, result)) { return result; }
    const node nc = nodes_[c];
    const node nf = nodes_[f];
    const std::uint32_t lc = var2level_[nc.var];
    const std::uint32_t lf = var2level_[nf.var];
    if (lc < lf) {
        // f does not depend on c's top variable: drop it from the care set
        // (this is the difference from constrain)
        result = restrict_rec(f, or_rec(nc.lo, nc.hi));
    } else {
        const std::uint32_t f0 = nf.lo;
        const std::uint32_t f1 = nf.hi;
        const std::uint32_t c0 = lc == lf ? nc.lo : c;
        const std::uint32_t c1 = lc == lf ? nc.hi : c;
        if (c0 == 0) {
            result = restrict_rec(f1, c1);
        } else if (c1 == 0) {
            result = restrict_rec(f0, c0);
        } else {
            const std::uint32_t r0 = restrict_rec(f0, c0);
            const std::uint32_t r1 = restrict_rec(f1, c1);
            result = mk(nf.var, r0, r1);
        }
    }
    cache_store(op::restrict_op, f, c, 0, result);
    return result;
}

} // namespace leq
