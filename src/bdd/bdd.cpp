/// \file bdd.cpp
/// \brief Manager core: node arena, unique table, handles, garbage collection.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#ifdef LEQ_CHECKED
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#endif

namespace leq {

const char* bdd_op_name(std::size_t k) {
    static const char* const names[bdd_num_ops] = {
        "and",     "xor",      "ite",       "exists", "and_exists",
        "support", "cofactor", "constrain", "restrict"};
    return k < bdd_num_ops ? names[k] : "?";
}

// ---------------------------------------------------------------------------
// checked-build provenance (LEQ_CHECKED)
// ---------------------------------------------------------------------------

#ifdef LEQ_CHECKED

namespace {

// construction order across the whole process; the counter (not the
// managers) is the only shared state, so it is the one atomic here
std::atomic<std::uint64_t> checked_next_serial{0};

[[noreturn]] void checked_abort(const std::string& diagnostic) {
    std::fprintf(stderr, "%s\n", diagnostic.c_str());
    std::fflush(stderr);
    std::abort();
}

} // namespace

void bdd_manager::checked_thread_guard(const char* operation) const {
    if (std::this_thread::get_id() == checked_owner_) { return; }
    std::ostringstream os;
    os << "leq checked build: off-thread bdd_manager call: operation '"
       << operation << "' on manager #" << checked_serial_
       << " (owner thread " << checked_owner_ << ", calling thread "
       << std::this_thread::get_id()
       << "); a bdd_manager belongs to exactly one thread from construction "
          "to destruction (docs/ARCHITECTURE.md, Concurrency model)";
    checked_abort(os.str());
}

void bdd_manager::checked_handle_guard(const char* operation,
                                       const bdd& handle) const {
    if (handle.mgr_ == nullptr || handle.mgr_ == this) { return; }
    std::ostringstream os;
    os << "leq checked build: cross-manager bdd handle: operation '"
       << operation << "' on manager #" << checked_serial_
       << " received a handle owned by manager #"
       << handle.mgr_->checked_serial_
       << "; handles must never cross bdd_manager instances — a foreign "
          "reference indexes the wrong arena and corrupts the unique table";
    checked_abort(os.str());
}

#endif // LEQ_CHECKED

// ---------------------------------------------------------------------------
// bdd handle
// ---------------------------------------------------------------------------

bdd::bdd(bdd_manager* mgr, std::uint32_t idx) : mgr_(mgr), idx_(idx) {
    mgr_->inc_ext_ref(idx_);
}

bdd::bdd(const bdd& other) : mgr_(other.mgr_), idx_(other.idx_) {
    if (mgr_ != nullptr) { mgr_->inc_ext_ref(idx_); }
}

bdd::bdd(bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
    other.mgr_ = nullptr;
    other.idx_ = 0;
}

bdd& bdd::operator=(const bdd& other) {
    if (this == &other) { return *this; }
    if (other.mgr_ != nullptr) { other.mgr_->inc_ext_ref(other.idx_); }
    release();
    mgr_ = other.mgr_;
    idx_ = other.idx_;
    return *this;
}

bdd& bdd::operator=(bdd&& other) noexcept {
    if (this == &other) { return *this; }
    release();
    mgr_ = other.mgr_;
    idx_ = other.idx_;
    other.mgr_ = nullptr;
    other.idx_ = 0;
    return *this;
}

bdd::~bdd() { release(); }

void bdd::release() {
    if (mgr_ != nullptr) {
        mgr_->dec_ext_ref(idx_);
        mgr_ = nullptr;
        idx_ = 0;
    }
}

bool bdd::is_zero() const { return mgr_ != nullptr && idx_ == 0; }
bool bdd::is_one() const { return mgr_ != nullptr && idx_ == 1; }

bdd bdd::operator&(const bdd& other) const { return mgr_->apply_and(*this, other); }
bdd bdd::operator|(const bdd& other) const { return mgr_->apply_or(*this, other); }
bdd bdd::operator^(const bdd& other) const { return mgr_->apply_xor(*this, other); }
bdd bdd::operator!() const { return mgr_->apply_not(*this); }

bdd& bdd::operator&=(const bdd& other) { return *this = *this & other; }
bdd& bdd::operator|=(const bdd& other) { return *this = *this | other; }
bdd& bdd::operator^=(const bdd& other) { return *this = *this ^ other; }

bdd bdd::implies(const bdd& other) const { return (!*this) | other; }
bdd bdd::iff(const bdd& other) const { return !(*this ^ other); }

bool bdd::leq(const bdd& other) const {
    return (*this & !other).is_zero();
}

std::uint32_t bdd::top_var() const {
    assert(mgr_ != nullptr && idx_ > 1);
    return mgr_->var_of(idx_);
}

bdd bdd::high() const {
    assert(mgr_ != nullptr && idx_ > 1);
    return bdd(mgr_, mgr_->hi_of(idx_));
}

bdd bdd::low() const {
    assert(mgr_ != nullptr && idx_ > 1);
    return bdd(mgr_, mgr_->lo_of(idx_));
}

// ---------------------------------------------------------------------------
// manager construction
// ---------------------------------------------------------------------------

bdd_manager::bdd_manager(std::uint32_t num_vars, unsigned cache_bits)
    : bdd_manager(num_vars, [cache_bits] {
          bdd_manager_options options;
          options.cache_bits = cache_bits;
          return options;
      }()) {}

bdd_manager::bdd_manager(std::uint32_t num_vars,
                         const bdd_manager_options& options) {
#ifdef LEQ_CHECKED
    checked_serial_ = ++checked_next_serial;
    checked_owner_ = std::this_thread::get_id();
#endif
    // sanitize the tuning: cache sizes must stay addressable powers of two
    // and the ceiling can never undercut the initial size
    opts_ = options;
    opts_.cache_bits = std::min(std::max(opts_.cache_bits, 8u), 30u);
    opts_.max_cache_bits =
        std::min(std::max(opts_.max_cache_bits, opts_.cache_bits), 30u);
    opts_.gc_threshold = std::max<std::size_t>(opts_.gc_threshold, 1u << 10);
    // associativity: a power of two in 1..16 (round down); the 8-bit floor
    // on cache_bits guarantees at least 2^8/16 = 16 buckets
    opts_.cache_ways = std::min(std::max(opts_.cache_ways, 1u), 16u);
    while ((opts_.cache_ways & (opts_.cache_ways - 1)) != 0) {
        opts_.cache_ways &= opts_.cache_ways - 1;
    }
    cache_ways_ = opts_.cache_ways;
    gc_threshold_ = opts_.gc_threshold;
    nodes_.reserve(1u << 12);
    // node 0: the single terminal, denoting FALSE as a regular reference
    // (reference 0 = FALSE, reference 1 = TRUE)
    nodes_.push_back({var_nil, 0, 0});
    chain_.assign(1, idx_nil);
    ext_ref_.assign(1, 1); // the terminal is permanently live
    buckets_.assign(1u << 12, idx_nil);
    cache_.assign(std::size_t{1} << opts_.cache_bits, cache_entry{});
    cache_bucket_mask_ = cache_.size() / cache_ways_ - 1;
    stats_.cache_entries = cache_.size();
    stats_.cache_ways = cache_ways_;
    stats_.gc_threshold = gc_threshold_;
    for (std::uint32_t v = 0; v < num_vars; ++v) { new_var(); }
}

bdd_manager::~bdd_manager() = default;

std::uint32_t bdd_manager::new_var() {
    checked_guard("new_var");
    const auto v = static_cast<std::uint32_t>(var2level_.size());
    var2level_.push_back(v);
    level2var_.push_back(v);
    stats_.num_vars = var2level_.size();
    return v;
}

bdd bdd_manager::var(std::uint32_t v) {
    checked_guard("var");
    assert(v < num_vars());
    return make(mk(v, 0, 1));
}

bdd bdd_manager::nvar(std::uint32_t v) {
    checked_guard("nvar");
    assert(v < num_vars());
    return make(mk(v, 1, 0));
}

// ---------------------------------------------------------------------------
// unique table
// ---------------------------------------------------------------------------

std::uint32_t bdd_manager::mk(std::uint32_t var, std::uint32_t lo,
                              std::uint32_t hi) {
    if (lo == hi) { return lo; }
    // canonical form: hoist the then-edge's complement bit onto the result
    const std::uint32_t out = hi & 1u;
    lo ^= out;
    hi ^= out;
    const std::uint64_t h = node_hash(var, lo, hi) & (buckets_.size() - 1);
    for (std::uint32_t i = buckets_[h]; i != idx_nil; i = chain_[i]) {
        const node& n = nodes_[i];
        // overlap the next link's node fetch with this key comparison: chain
        // hops are the data-dependent loads this loop stalls on
        const std::uint32_t next = chain_[i];
        if (next != idx_nil) { prefetch(&nodes_[next]); }
        if (n.var == var && n.lo == lo && n.hi == hi) { return (i << 1) | out; }
    }
    const std::uint32_t idx = alloc_node();
    // alloc_node may have rehashed (grown) the table: recompute the bucket
    const std::uint64_t h2 = node_hash(var, lo, hi) & (buckets_.size() - 1);
    nodes_[idx] = {var, lo, hi};
    chain_[idx] = buckets_[h2];
    buckets_[h2] = idx;
    return (idx << 1) | out;
}

std::uint32_t bdd_manager::alloc_node() {
    if (!free_list_.empty()) {
        const std::uint32_t idx = free_list_.back();
        free_list_.pop_back();
        return idx;
    }
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    if (idx >= (1u << 31) - 1) {
        // node indices must leave room for the complement bit, and index
        // 2^31-1 is excluded outright: its complemented reference would be
        // 0xffffffff, aliasing the idx_nil sentinel the memo tables use
        throw std::length_error("bdd_manager: node arena full");
    }
    // grow the table before pushing the fresh node: rehash() reinserts every
    // arena node, and the caller has not filled this one in yet — inserting
    // it with garbage content would chain-corrupt a bucket once the caller
    // overwrites its `next` pointer
    if (nodes_.size() + 1 > buckets_.size()) { rehash(buckets_.size() * 2); }
    nodes_.push_back({});
    chain_.push_back(idx_nil);
    ext_ref_.push_back(0);
    return idx;
}

void bdd_manager::unique_insert(std::uint32_t idx) {
    const node& n = nodes_[idx];
    const std::uint64_t h = node_hash(n.var, n.lo, n.hi) & (buckets_.size() - 1);
    chain_[idx] = buckets_[h];
    buckets_[h] = idx;
}

void bdd_manager::rehash(std::size_t new_size) {
    // only called while growing the arena, i.e. with an empty free list, so
    // every node in the arena belongs in the table (dead ones are culled by
    // the next GC)
    assert(free_list_.empty());
    buckets_.assign(new_size, idx_nil);
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) { unique_insert(i); }
    // the computed cache scales with the unique table: a direct-mapped
    // cache sized for unit tests thrashes once the arena holds millions of
    // nodes, so every table growth re-checks the cache budget
    maybe_grow_cache();
}

void bdd_manager::maybe_grow_cache() {
    const std::size_t limit = std::size_t{1} << opts_.max_cache_bits;
    std::size_t target = cache_.size();
    // keep at least two cache slots per table bucket, up to the ceiling
    while (target < 2 * buckets_.size() && target < limit) { target *= 2; }
    if (target == cache_.size()) { return; }
    // rehash-migrate: a bucket index depends on the mask, so every surviving
    // entry is re-slotted under the new geometry.  Growth happens right when
    // the workload is deepest — discarding the memo there (the historical
    // clear-on-grow) forced exactly the recomputation the bigger cache was
    // bought to avoid.  Entries keep their age stamps; only same-bucket
    // collisions beyond the ways can drop entries, deterministically.
    std::vector<cache_entry> old;
    old.swap(cache_);
    cache_.assign(target, cache_entry{});
    cache_bucket_mask_ = static_cast<std::uint64_t>(target / cache_ways_) - 1;
    // walk each old bucket's ways in reverse so move-to-front insertion
    // reconstructs the same recency order in the new geometry
    for (std::size_t b = 0; b < old.size(); b += cache_ways_) {
        for (std::uint32_t w = cache_ways_; w > 0; --w) {
            const cache_entry& e = old[b + w - 1];
            if (e.o == 0xff) { continue; }
            cache_insert(cache_bucket(static_cast<op>(e.o), e.f, e.g, e.h),
                         e);
        }
    }
    ++stats_.cache_resizes;
    stats_.cache_entries = target;
}

// ---------------------------------------------------------------------------
// external references and garbage collection
// ---------------------------------------------------------------------------

void bdd_manager::inc_ext_ref(std::uint32_t ref) {
    // handle copies count as manager calls too: catching an off-thread
    // handle copy/destroy is the point of the owner-thread rule
    checked_thread_guard("bdd handle copy");
    ++ext_ref_[node_of(ref)];
}

void bdd_manager::dec_ext_ref(std::uint32_t ref) {
    checked_thread_guard("bdd handle release");
#ifdef LEQ_CHECKED
    if (ext_ref_[node_of(ref)] == 0) {
        std::ostringstream os;
        os << "leq checked build: bdd handle release underflow: node "
           << node_of(ref) << " of manager #" << checked_serial_
           << " has no outstanding external references; a handle was "
              "released twice (double destroy, or a bitwise handle copy "
              "that bypassed bdd's reference counting) — in a release "
              "build this wraps the count and the next garbage collection "
              "frees a live node";
        checked_abort(os.str());
    }
#endif
    assert(ext_ref_[node_of(ref)] > 0);
    --ext_ref_[node_of(ref)];
}

void bdd_manager::maybe_gc_or_grow() {
    if (nodes_.size() - free_list_.size() < gc_threshold_) { return; }
    collect_garbage();
    if (opts_.adaptive_gc) {
        // scale-aware trigger: let the live set double before the next
        // collection, but never collect before the dead fraction is worth
        // the sweep — each GC walks the whole arena and ages the computed
        // cache, so firing every `floor` allocations on a 100k+
        // node arena churns the memo for nothing.  An unproductive GC
        // (everything survived) raises the bar exactly as far as the
        // survivors demand; a productive one drops it back toward
        // max(floor, arena/2) — the historical fixed doubling ratcheted
        // up and never came down
        gc_threshold_ = std::max({opts_.gc_threshold,
                                  stats_.live_nodes * 2,
                                  nodes_.size() / 2});
    } else if (nodes_.size() - free_list_.size() > gc_threshold_ / 4 * 3) {
        // historical policy: if GC freed less than a quarter, double
        gc_threshold_ *= 2;
    }
    stats_.gc_threshold = gc_threshold_;
}

void bdd_manager::collect_garbage() {
    checked_guard("collect_garbage");
    ++stats_.gc_runs;
    // mark: one explicit worklist over all roots at once.  The ext-ref roots
    // are seeded in arena order in a single linear sweep before any marking,
    // so the root scan streams through ext_ref_ instead of alternating
    // between the root array and pointer-chasing DFS per root; the worklist
    // (a member, so its capacity is reused across collections) bounds the
    // traversal depth by the arena, never by the C++ stack.
    mark_.assign(nodes_.size(), 0);
    mark_[0] = 1;
    gc_worklist_.clear();
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
        if (ext_ref_[i] > 0) {
            mark_[i] = 1;
            gc_worklist_.push_back(i);
        }
    }
    while (!gc_worklist_.empty()) {
        const std::uint32_t n = gc_worklist_.back();
        gc_worklist_.pop_back();
        for (const std::uint32_t edge : {nodes_[n].lo, nodes_[n].hi}) {
            const std::uint32_t c = node_of(edge);
            if (!mark_[c]) {
                mark_[c] = 1;
                gc_worklist_.push_back(c);
            }
        }
    }
    // sweep: rebuild unique table with only live nodes
    free_list_.clear();
    for (auto& b : buckets_) { b = idx_nil; }
    std::size_t live = 1;
    for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
        if (mark_[i]) {
            unique_insert(i);
            ++live;
        } else {
            free_list_.push_back(i);
        }
    }
    stats_.live_nodes = live;
    stats_.allocated_nodes = nodes_.size();
    if (opts_.cache_age_on_gc) {
        cache_age_and_purge();
    } else {
        cache_clear();
    }
}

std::size_t bdd_manager::live_node_count() {
    checked_guard("live_node_count");
    collect_garbage();
    return stats_.live_nodes;
}

// ---------------------------------------------------------------------------
// computed cache
// ---------------------------------------------------------------------------

bdd_manager::cache_entry* bdd_manager::cache_bucket(op o, std::uint32_t f,
                                                    std::uint32_t g,
                                                    std::uint32_t h) {
    const std::uint64_t bucket =
        node_hash((static_cast<std::uint64_t>(o) << 32) | f, g, h) &
        cache_bucket_mask_;
    cache_entry* e = &cache_[bucket * cache_ways_];
    if (cache_ways_ * sizeof(cache_entry) > 64) {
        // a 4-way bucket spans two cache lines: start the second line's
        // fetch while the first ways are compared
        prefetch(reinterpret_cast<const char*>(e) + 64);
    }
    return e;
}

void bdd_manager::cache_insert(cache_entry* bucket,
                               const cache_entry& entry) {
    // pick the slot: same key first (keeps a bucket duplicate-free), else
    // the first empty way, else evict by age.  Between collections every
    // live entry carries the current epoch, so the age distance alone
    // cannot rank them — move-to-front keeps way order as recency order,
    // making "highest way among the oldest" exactly the LRU victim.  All
    // choices are functions of bucket state only: fully deterministic.
    std::uint32_t target = cache_ways_ - 1;
    std::uint8_t oldest_distance = 0;
    for (std::uint32_t w = 0; w < cache_ways_; ++w) {
        cache_entry& e = bucket[w];
        if (e.o == entry.o && e.f == entry.f && e.g == entry.g &&
            e.h == entry.h) {
            target = w;
            break;
        }
        if (e.o == 0xff) {
            target = w;
            break;
        }
        const auto distance = static_cast<std::uint8_t>(cache_epoch_ - e.age);
        if (distance >= oldest_distance) {
            oldest_distance = distance;
            target = w;
        }
    }
    // rotate the prefix down one way and put the new entry in front
    for (std::uint32_t w = target; w > 0; --w) { bucket[w] = bucket[w - 1]; }
    bucket[0] = entry;
}

void bdd_manager::op_deadline_check() {
    op_deadline_countdown_ = op_deadline_stride;
    if (std::chrono::steady_clock::now() > op_deadline_) {
        throw bdd_deadline_exceeded{};
    }
}

bool bdd_manager::cache_lookup(op o, std::uint32_t f, std::uint32_t g,
                               std::uint32_t h, std::uint32_t& result) {
    // every recursive core probes the cache, so this is the one place a
    // cooperative deadline can interrupt a long-running operation from the
    // inside; the countdown keeps the clock read off the hot path
    if (op_deadline_armed_ && --op_deadline_countdown_ == 0) {
        op_deadline_check();
    }
    ++stats_.cache_lookups;
    ++stats_.op_lookups[static_cast<std::size_t>(o)];
    cache_entry* bucket = cache_bucket(o, f, g, h);
    for (std::uint32_t w = 0; w < cache_ways_; ++w) {
        if (bucket[w].f == f && bucket[w].g == g && bucket[w].h == h &&
            bucket[w].o == static_cast<std::uint8_t>(o)) {
            // a hit entry is earning its slot: refresh the age stamp and
            // rotate it to the front so way order tracks recency
            cache_entry hit = bucket[w];
            hit.age = cache_epoch_;
            for (std::uint32_t v = w; v > 0; --v) {
                bucket[v] = bucket[v - 1];
            }
            bucket[0] = hit;
            result = hit.result;
            ++stats_.cache_hits;
            ++stats_.op_hits[static_cast<std::size_t>(o)];
            return true;
        }
    }
    return false;
}

void bdd_manager::cache_store(op o, std::uint32_t f, std::uint32_t g,
                              std::uint32_t h, std::uint32_t result) {
    cache_insert(cache_bucket(o, f, g, h),
                 {f, g, h, result, static_cast<std::uint8_t>(o),
                  cache_epoch_});
}

void bdd_manager::cache_age_and_purge() {
    // advance the epoch so pre-GC entries age relative to post-GC stores,
    // then purge exactly the entries that reference a swept node: those
    // indices return through free_list_, and a surviving entry would alias
    // whatever unrelated node is allocated there next.  Everything keyed on
    // live nodes stays — results are canonical references, so the memo is
    // still correct after the sweep.
    ++cache_epoch_;
    for (std::size_t b = 0; b < cache_.size(); b += cache_ways_) {
        // compact each bucket's survivors toward way 0 (preserving their
        // order) so the move-to-front invariant — way order is recency
        // order, empties at the tail — holds across the purge
        std::uint32_t keep = 0;
        for (std::uint32_t w = 0; w < cache_ways_; ++w) {
            const cache_entry e = cache_[b + w];
            if (e.o == 0xff) { continue; }
            if (!mark_[node_of(e.f)] || !mark_[node_of(e.g)] ||
                !mark_[node_of(e.h)] || !mark_[node_of(e.result)]) {
                continue;
            }
            cache_[b + keep] = e;
            ++keep;
        }
        for (; keep < cache_ways_; ++keep) {
            cache_[b + keep] = cache_entry{};
        }
    }
}

void bdd_manager::cache_clear() {
    for (auto& e : cache_) { e = cache_entry{}; }
}

} // namespace leq
