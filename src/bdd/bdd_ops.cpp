/// \file bdd_ops.cpp
/// \brief Boolean connectives: AND, OR, XOR, NOT and the general ITE.
///
/// Each operation is a standard Shannon-expansion recursion memoized in the
/// manager's computed cache.  Public entry points run GC housekeeping first;
/// recursive cores never trigger GC, so intermediate results (reachable only
/// from the C++ call stack) are safe.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

namespace leq {

namespace {
/// Order commutative operands canonically to double the cache hit rate.
inline void canonize(std::uint32_t& f, std::uint32_t& g) {
    if (f > g) { std::swap(f, g); }
}
} // namespace

// ---------------------------------------------------------------------------
// public entry points
// ---------------------------------------------------------------------------

bdd bdd_manager::apply_and(const bdd& f, const bdd& g) {
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    return make(and_rec(f.index(), g.index()));
}

bdd bdd_manager::apply_or(const bdd& f, const bdd& g) {
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    return make(or_rec(f.index(), g.index()));
}

bdd bdd_manager::apply_xor(const bdd& f, const bdd& g) {
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    return make(xor_rec(f.index(), g.index()));
}

bdd bdd_manager::apply_not(const bdd& f) {
    assert(f.manager() == this);
    maybe_gc_or_grow();
    return make(not_rec(f.index()));
}

bdd bdd_manager::ite(const bdd& f, const bdd& g, const bdd& h) {
    assert(f.manager() == this && g.manager() == this && h.manager() == this);
    maybe_gc_or_grow();
    return make(ite_rec(f.index(), g.index(), h.index()));
}

// ---------------------------------------------------------------------------
// recursive cores
// ---------------------------------------------------------------------------

std::uint32_t bdd_manager::and_rec(std::uint32_t f, std::uint32_t g) {
    if (f == 0 || g == 0) { return 0; }
    if (f == 1) { return g; }
    if (g == 1 || f == g) { return f; }
    canonize(f, g);
    std::uint32_t result = 0;
    if (cache_lookup(op::and_op, f, g, 0, result)) { return result; }
    const node nf = nodes_[f];
    const node ng = nodes_[g];
    const std::uint32_t lf = var2level_[nf.var];
    const std::uint32_t lg = var2level_[ng.var];
    std::uint32_t top_var = 0, f0 = 0, f1 = 0, g0 = 0, g1 = 0;
    if (lf <= lg) { top_var = nf.var; f0 = nf.lo; f1 = nf.hi; } else { f0 = f1 = f; }
    if (lg <= lf) { top_var = ng.var; g0 = ng.lo; g1 = ng.hi; } else { g0 = g1 = g; }
    const std::uint32_t r0 = and_rec(f0, g0);
    const std::uint32_t r1 = and_rec(f1, g1);
    result = mk(top_var, r0, r1);
    cache_store(op::and_op, f, g, 0, result);
    return result;
}

std::uint32_t bdd_manager::or_rec(std::uint32_t f, std::uint32_t g) {
    if (f == 1 || g == 1) { return 1; }
    if (f == 0) { return g; }
    if (g == 0 || f == g) { return f; }
    canonize(f, g);
    std::uint32_t result = 0;
    if (cache_lookup(op::or_op, f, g, 0, result)) { return result; }
    const node nf = nodes_[f];
    const node ng = nodes_[g];
    const std::uint32_t lf = var2level_[nf.var];
    const std::uint32_t lg = var2level_[ng.var];
    std::uint32_t top_var = 0, f0 = 0, f1 = 0, g0 = 0, g1 = 0;
    if (lf <= lg) { top_var = nf.var; f0 = nf.lo; f1 = nf.hi; } else { f0 = f1 = f; }
    if (lg <= lf) { top_var = ng.var; g0 = ng.lo; g1 = ng.hi; } else { g0 = g1 = g; }
    const std::uint32_t r0 = or_rec(f0, g0);
    const std::uint32_t r1 = or_rec(f1, g1);
    result = mk(top_var, r0, r1);
    cache_store(op::or_op, f, g, 0, result);
    return result;
}

std::uint32_t bdd_manager::xor_rec(std::uint32_t f, std::uint32_t g) {
    if (f == g) { return 0; }
    if (f == 0) { return g; }
    if (g == 0) { return f; }
    if (f == 1) { return not_rec(g); }
    if (g == 1) { return not_rec(f); }
    canonize(f, g);
    std::uint32_t result = 0;
    if (cache_lookup(op::xor_op, f, g, 0, result)) { return result; }
    const node nf = nodes_[f];
    const node ng = nodes_[g];
    const std::uint32_t lf = var2level_[nf.var];
    const std::uint32_t lg = var2level_[ng.var];
    std::uint32_t top_var = 0, f0 = 0, f1 = 0, g0 = 0, g1 = 0;
    if (lf <= lg) { top_var = nf.var; f0 = nf.lo; f1 = nf.hi; } else { f0 = f1 = f; }
    if (lg <= lf) { top_var = ng.var; g0 = ng.lo; g1 = ng.hi; } else { g0 = g1 = g; }
    const std::uint32_t r0 = xor_rec(f0, g0);
    const std::uint32_t r1 = xor_rec(f1, g1);
    result = mk(top_var, r0, r1);
    cache_store(op::xor_op, f, g, 0, result);
    return result;
}

std::uint32_t bdd_manager::not_rec(std::uint32_t f) {
    if (f == 0) { return 1; }
    if (f == 1) { return 0; }
    std::uint32_t result = 0;
    if (cache_lookup(op::not_op, f, 0, 0, result)) { return result; }
    const node nf = nodes_[f];
    result = mk(nf.var, not_rec(nf.lo), not_rec(nf.hi));
    cache_store(op::not_op, f, 0, 0, result);
    return result;
}

std::uint32_t bdd_manager::ite_rec(std::uint32_t f, std::uint32_t g,
                                   std::uint32_t h) {
    // terminal cases
    if (f == 1) { return g; }
    if (f == 0) { return h; }
    if (g == h) { return g; }
    if (g == 1 && h == 0) { return f; }
    if (g == 0 && h == 1) { return not_rec(f); }
    if (g == 1) { return or_rec(f, h); }
    if (h == 0) { return and_rec(f, g); }
    if (g == 0) { return and_rec(not_rec(f), h); }
    if (h == 1) { return or_rec(not_rec(f), g); }
    if (f == g) { return or_rec(f, h); }   // ite(f,f,h) = f | h
    if (f == h) { return and_rec(f, g); }  // ite(f,g,f) = f & g
    std::uint32_t result = 0;
    if (cache_lookup(op::ite_op, f, g, h, result)) { return result; }
    const node nf = nodes_[f];
    const node ng = nodes_[g];
    const node nh = nodes_[h];
    std::uint32_t top_level = var2level_[nf.var];
    if (g > 1) { top_level = std::min(top_level, var2level_[ng.var]); }
    if (h > 1) { top_level = std::min(top_level, var2level_[nh.var]); }
    const std::uint32_t top_var = level2var_[top_level];
    const auto cof = [&](std::uint32_t x, const node& nx, bool hi) {
        if (x <= 1 || nx.var != top_var) { return x; }
        return hi ? nx.hi : nx.lo;
    };
    const std::uint32_t r0 =
        ite_rec(cof(f, nf, false), cof(g, ng, false), cof(h, nh, false));
    const std::uint32_t r1 =
        ite_rec(cof(f, nf, true), cof(g, ng, true), cof(h, nh, true));
    result = mk(top_var, r0, r1);
    cache_store(op::ite_op, f, g, h, result);
    return result;
}

} // namespace leq
