/// \file bdd_ops.cpp
/// \brief Boolean connectives: AND (OR rides it via De Morgan), XOR with
/// complement-bit hoisting, O(1) NOT, and the general ITE with standard
/// triples.
///
/// Each operation is a standard Shannon-expansion recursion memoized in the
/// manager's computed cache.  Complement edges collapse the op set: OR is
/// `~(~f & ~g)` on the same AND cache line, NOT never recurses at all, and
/// ITE normalizes its triple (regular predicate, regular then-branch) before
/// every cache access so all De Morgan variants of a query share one entry.
/// Public entry points run GC housekeeping first; recursive cores never
/// trigger GC, so intermediate results (reachable only from the C++ call
/// stack) are safe.

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

namespace leq {

namespace {
/// Order commutative operands canonically to double the cache hit rate.
inline void canonize(std::uint32_t& f, std::uint32_t& g) {
    if (f > g) { std::swap(f, g); }
}
} // namespace

// ---------------------------------------------------------------------------
// public entry points
// ---------------------------------------------------------------------------

bdd bdd_manager::apply_and(const bdd& f, const bdd& g) {
    checked_guard("apply_and", f, g);
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    return make(and_rec(f.index(), g.index()));
}

bdd bdd_manager::apply_or(const bdd& f, const bdd& g) {
    checked_guard("apply_or", f, g);
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    return make(or_rec(f.index(), g.index()));
}

bdd bdd_manager::apply_xor(const bdd& f, const bdd& g) {
    checked_guard("apply_xor", f, g);
    assert(f.manager() == this && g.manager() == this);
    maybe_gc_or_grow();
    return make(xor_rec(f.index(), g.index()));
}

bdd bdd_manager::apply_not(const bdd& f) {
    checked_guard("apply_not", f);
    assert(f.manager() == this);
    // complement edges: negation is a bit flip — no GC, no cache, no nodes
    return make(f.index() ^ 1u);
}

bdd bdd_manager::ite(const bdd& f, const bdd& g, const bdd& h) {
    checked_guard("ite", f, g, h);
    assert(f.manager() == this && g.manager() == this && h.manager() == this);
    maybe_gc_or_grow();
    return make(ite_rec(f.index(), g.index(), h.index()));
}

// ---------------------------------------------------------------------------
// recursive cores
// ---------------------------------------------------------------------------

std::uint32_t bdd_manager::and_rec(std::uint32_t f, std::uint32_t g) {
    if (f == g) { return f; }
    if (f == (g ^ 1u)) { return 0; } // f & ~f
    if (f == 0 || g == 0) { return 0; }
    if (f == 1) { return g; }
    if (g == 1) { return f; }
    canonize(f, g);
    std::uint32_t result = 0;
    if (cache_lookup(op::and_op, f, g, 0, result)) { return result; }
    const node nf = nodes_[node_of(f)];
    const node ng = nodes_[node_of(g)];
    const std::uint32_t lf = var2level_[nf.var];
    const std::uint32_t lg = var2level_[ng.var];
    const std::uint32_t cf = comp_of(f);
    const std::uint32_t cg = comp_of(g);
    std::uint32_t top_var = 0, f0 = f, f1 = f, g0 = g, g1 = g;
    if (lf <= lg) { top_var = nf.var; f0 = nf.lo ^ cf; f1 = nf.hi ^ cf; }
    if (lg <= lf) { top_var = ng.var; g0 = ng.lo ^ cg; g1 = ng.hi ^ cg; }
    const std::uint32_t r0 = and_rec(f0, g0);
    const std::uint32_t r1 = and_rec(f1, g1);
    result = mk(top_var, r0, r1);
    cache_store(op::and_op, f, g, 0, result);
    return result;
}

std::uint32_t bdd_manager::xor_rec(std::uint32_t f, std::uint32_t g) {
    // hoist both complement bits: f ^ g == regular(f) ^ regular(g) ^ c
    const std::uint32_t c = (f ^ g) & 1u;
    f &= ~1u;
    g &= ~1u;
    if (f == g) { return c; }
    if (f == 0) { return g ^ c; } // regular(FALSE/TRUE) is reference 0
    if (g == 0) { return f ^ c; }
    canonize(f, g);
    std::uint32_t result = 0;
    if (cache_lookup(op::xor_op, f, g, 0, result)) { return result ^ c; }
    const node nf = nodes_[node_of(f)];
    const node ng = nodes_[node_of(g)];
    const std::uint32_t lf = var2level_[nf.var];
    const std::uint32_t lg = var2level_[ng.var];
    std::uint32_t top_var = 0, f0 = f, f1 = f, g0 = g, g1 = g;
    if (lf <= lg) { top_var = nf.var; f0 = nf.lo; f1 = nf.hi; }
    if (lg <= lf) { top_var = ng.var; g0 = ng.lo; g1 = ng.hi; }
    const std::uint32_t r0 = xor_rec(f0, g0);
    const std::uint32_t r1 = xor_rec(f1, g1);
    result = mk(top_var, r0, r1);
    cache_store(op::xor_op, f, g, 0, result);
    return result ^ c;
}

std::uint32_t bdd_manager::ite_rec(std::uint32_t f, std::uint32_t g,
                                   std::uint32_t h) {
    // terminal predicate
    if (f == 1) { return g; }
    if (f == 0) { return h; }
    // reduce repeated / complementary operands (standard triples)
    if (g == f) { g = 1; } else if (g == (f ^ 1u)) { g = 0; }
    if (h == f) { h = 0; } else if (h == (f ^ 1u)) { h = 1; }
    if (g == h) { return g; }
    if (g == 1 && h == 0) { return f; }
    if (g == 0 && h == 1) { return f ^ 1u; }
    // delegate constant-branch and complementary-branch cases to the
    // two-operand ops so they share those cache lines
    if (h == 0) { return and_rec(f, g); }
    if (g == 0) { return and_rec(f ^ 1u, h); }
    if (g == 1) { return or_rec(f, h); }
    if (h == 1) { return or_rec(f ^ 1u, g); } // ite(f,g,1) = f -> g
    if (g == (h ^ 1u)) { return xor_rec(f, h); } // ite(f,~h,h) = f ^ h
    // normalize: regular predicate, then regular then-branch
    if (is_comp(f)) {
        f ^= 1u;
        std::swap(g, h);
    }
    std::uint32_t out = 0;
    if (is_comp(g)) {
        g ^= 1u;
        h ^= 1u;
        out = 1u;
    }
    std::uint32_t result = 0;
    if (cache_lookup(op::ite_op, f, g, h, result)) { return result ^ out; }
    const std::uint32_t lf = var2level_[var_of(f)];
    std::uint32_t top_level = lf;
    top_level = std::min(top_level, var2level_[var_of(g)]);
    top_level = std::min(top_level, var2level_[var_of(h)]);
    const std::uint32_t top_var = level2var_[top_level];
    const auto cof = [&](std::uint32_t x, bool hi_side) {
        if (is_terminal(x) || var_of(x) != top_var) { return x; }
        return (hi_side ? nodes_[node_of(x)].hi : nodes_[node_of(x)].lo) ^
               comp_of(x);
    };
    const std::uint32_t r0 = ite_rec(cof(f, false), cof(g, false), cof(h, false));
    const std::uint32_t r1 = ite_rec(cof(f, true), cof(g, true), cof(h, true));
    result = mk(top_var, r0, r1);
    cache_store(op::ite_op, f, g, h, result);
    return result ^ out;
}

} // namespace leq
