/// \file test_relation.cpp
/// \brief Oracle suite for the shared transition-relation subsystem
/// (src/rel/): image/preimage over random partitions must equal the naive
/// monolithic conjunction across the full {clustering policy x cluster_limit
/// x strategy x early-quantification} option matrix, affinity clustering
/// must respect its node bound, and relation-layer deadlines must interrupt
/// image chains, reachability fixpoints and both solver flows.

#include "eq/solver.hpp"
#include "gen/scenario.hpp"
#include "img/image.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"
#include "rel/relation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <vector>

namespace {

using namespace leq;

struct circuit_vars {
    std::vector<std::uint32_t> in, cs, ns;
};

std::pair<net_bdds, circuit_vars> setup(bdd_manager& mgr, const network& net) {
    circuit_vars vars;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        vars.in.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        vars.cs.push_back(mgr.new_var());
        vars.ns.push_back(mgr.new_var());
    }
    net_bdds fns = build_net_bdds(mgr, net, vars.in, vars.cs);
    return {std::move(fns), std::move(vars)};
}

/// Relation parts ns_k == T_k for a compiled network.
std::vector<bdd> next_state_parts(bdd_manager& mgr, const net_bdds& fns,
                                  const circuit_vars& vars) {
    std::vector<bdd> parts;
    for (std::size_t k = 0; k < fns.next_state.size(); ++k) {
        parts.push_back(mgr.var(vars.ns[k]).iff(fns.next_state[k]));
    }
    return parts;
}

/// The full option matrix of the relation layer.
std::vector<image_options> option_matrix() {
    std::vector<image_options> matrix;
    for (const cluster_policy policy : all_cluster_policies) {
        for (const std::size_t limit :
             {std::size_t{0}, std::size_t{60}, std::size_t{2500}}) {
            for (const reach_strategy strategy : all_reach_strategies) {
                for (const bool early : {true, false}) {
                    image_options o;
                    o.policy = policy;
                    o.cluster_limit = limit;
                    o.strategy = strategy;
                    o.early_quantification = early;
                    matrix.push_back(o);
                }
            }
        }
    }
    return matrix;
}

network machine_for(int id) { return make_menu_circuit(id, /*salt=*/4); }

/// A few interesting from/to sets over the cs variables: the initial state,
/// a random union of states, and a random function of the cs variables.
std::vector<bdd> sample_state_sets(bdd_manager& mgr, const network& net,
                                   const circuit_vars& vars,
                                   std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::vector<bdd> sets;
    sets.push_back(state_cube(mgr, vars.cs, net.initial_state()));
    bdd some = sets.back();
    for (int k = 0; k < 3; ++k) {
        std::vector<bool> s(vars.cs.size());
        for (std::size_t b = 0; b < s.size(); ++b) { s[b] = (rng() & 1) != 0; }
        some |= state_cube(mgr, vars.cs, s);
    }
    sets.push_back(some);
    bdd fn = mgr.zero();
    for (std::size_t k = 0; k < vars.cs.size(); ++k) {
        const bdd lit = mgr.literal(vars.cs[k], (rng() & 1) != 0);
        fn = (rng() & 1) != 0 ? (fn | lit) : (fn ^ lit);
    }
    sets.push_back(fn);
    return sets;
}

class relation_oracle : public ::testing::TestWithParam<int> {};

TEST_P(relation_oracle, image_matches_naive_monolithic_conjunction) {
    const network net = machine_for(GetParam());
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const std::vector<bdd> parts = next_state_parts(mgr, fns, vars);
    std::vector<std::uint32_t> quantify = vars.in;
    quantify.insert(quantify.end(), vars.cs.begin(), vars.cs.end());

    // the oracle: conjoin everything, then quantify
    bdd product = mgr.one();
    for (const bdd& p : parts) { product &= p; }
    const bdd qcube = mgr.cube(quantify);

    const std::vector<bdd> from_sets =
        sample_state_sets(mgr, net, vars, 1000u + GetParam());
    for (const image_options& options : option_matrix()) {
        const transition_relation rel(mgr, parts, quantify, options);
        for (const bdd& from : from_sets) {
            const bdd reference = mgr.exists(product & from, qcube);
            EXPECT_EQ(rel.image(from), reference)
                << "machine " << GetParam() << " policy "
                << to_string(options.policy) << " limit "
                << options.cluster_limit << " strategy "
                << to_string(options.strategy) << " early "
                << options.early_quantification;
        }
    }
}

TEST_P(relation_oracle, preimage_matches_naive_monolithic_conjunction) {
    const network net = machine_for(GetParam());
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const std::vector<bdd> parts = next_state_parts(mgr, fns, vars);

    bdd product = mgr.one();
    for (const bdd& p : parts) { product &= p; }
    std::vector<std::uint32_t> pre_quantify = vars.in;
    pre_quantify.insert(pre_quantify.end(), vars.ns.begin(), vars.ns.end());
    const bdd pre_cube = mgr.cube(pre_quantify);
    std::vector<std::uint32_t> swap(mgr.num_vars());
    for (std::uint32_t v = 0; v < swap.size(); ++v) { swap[v] = v; }
    for (std::size_t k = 0; k < vars.cs.size(); ++k) {
        swap[vars.ns[k]] = vars.cs[k];
        swap[vars.cs[k]] = vars.ns[k];
    }

    const std::vector<bdd> to_sets =
        sample_state_sets(mgr, net, vars, 2000u + GetParam());
    for (const image_options& options : option_matrix()) {
        const transition_relation rel = transition_relation::next_state(
            mgr, fns.next_state, vars.cs, vars.ns, vars.in, options);
        ASSERT_TRUE(rel.has_preimage());
        for (const bdd& to : to_sets) {
            const bdd reference =
                mgr.exists(product & mgr.permute(to, swap), pre_cube);
            EXPECT_EQ(rel.preimage(to), reference)
                << "machine " << GetParam() << " policy "
                << to_string(options.policy) << " limit "
                << options.cluster_limit << " strategy "
                << to_string(options.strategy) << " early "
                << options.early_quantification;
        }
    }
}

TEST_P(relation_oracle, constrained_image_fuses_the_extra_conjunct) {
    // image(from, c) fuses c into the quantification chain; the result must
    // equal the materialized image(from & c) for any extra conjunct
    const network net = machine_for(GetParam());
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const std::vector<bdd> parts = next_state_parts(mgr, fns, vars);
    std::vector<std::uint32_t> quantify = vars.in;
    quantify.insert(quantify.end(), vars.cs.begin(), vars.cs.end());

    const std::vector<bdd> sets =
        sample_state_sets(mgr, net, vars, 3000u + GetParam());
    const bdd& from = sets[1];
    for (const bdd& constraint : sets) {
        for (const cluster_policy policy : all_cluster_policies) {
            image_options options;
            options.policy = policy;
            const transition_relation rel(mgr, parts, quantify, options);
            EXPECT_EQ(rel.image(from, constraint),
                      rel.image(from & constraint))
                << "machine " << GetParam() << " policy "
                << to_string(policy);
        }
        // also through a no-part relation (the X_P walker shape), where the
        // constraint rides the leading quantification
        const transition_relation empty(mgr, {}, vars.cs);
        EXPECT_EQ(empty.image(from, constraint),
                  empty.image(from & constraint));
    }
}

TEST_P(relation_oracle, preimage_closes_over_reachable_states) {
    // sanity beyond the algebraic oracle: network relations are total and
    // the reachable set is successor-closed, so every reachable state has a
    // successor inside the reachable set — reached <= preimage(reached)
    const network net = machine_for(GetParam());
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const bdd reached = reachable_states(mgr, fns.next_state, vars.cs,
                                         vars.ns, vars.in, init);
    const transition_relation rel = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in);
    EXPECT_TRUE(reached.leq(rel.preimage(reached)));
    // and the preimage of the empty set is empty
    EXPECT_TRUE(rel.preimage(mgr.zero()).is_zero());
}

INSTANTIATE_TEST_SUITE_P(machines, relation_oracle, ::testing::Range(0, 10));

TEST(relation_clustering, affinity_never_exceeds_cluster_limit) {
    // pinned regression for the affinity policy's node bound: every cluster
    // it returns either respects the limit or is a single unmerged part
    for (int id = 0; id < 10; ++id) {
        const network net = machine_for(id);
        bdd_manager mgr;
        auto [fns, vars] = setup(mgr, net);
        const std::vector<bdd> parts = next_state_parts(mgr, fns, vars);
        for (const std::size_t limit :
             {std::size_t{30}, std::size_t{120}, std::size_t{2500}}) {
            const std::vector<bdd> clusters =
                cluster_parts(mgr, parts, cluster_policy::affinity, limit);
            ASSERT_LE(clusters.size(), parts.size());
            for (const bdd& c : clusters) {
                if (mgr.dag_size(c) <= limit) { continue; }
                // oversized clusters must be original (unmergeable) parts
                EXPECT_NE(std::find(parts.begin(), parts.end(), c),
                          parts.end())
                    << "machine " << id << " limit " << limit;
            }
        }
    }
}

TEST(relation_clustering, affinity_merges_coupled_parts_first) {
    // two decoupled 3-bit counters interleaved in declaration order: greedy
    // adjacent merging mixes the blocks, affinity groups each counter
    bdd_manager mgr;
    std::vector<std::uint32_t> a_cs, a_ns, b_cs, b_ns;
    for (int k = 0; k < 3; ++k) {
        a_cs.push_back(mgr.new_var());
        a_ns.push_back(mgr.new_var());
        b_cs.push_back(mgr.new_var());
        b_ns.push_back(mgr.new_var());
    }
    const auto counter_part = [&](const std::vector<std::uint32_t>& cs,
                                  const std::vector<std::uint32_t>& ns,
                                  int k) {
        bdd carry = mgr.one();
        for (int j = 0; j < k; ++j) { carry &= mgr.var(cs[j]); }
        return mgr.var(ns[k]).iff(mgr.var(cs[k]) ^ carry);
    };
    // interleave the two counters' parts: a0 b0 a1 b1 a2 b2
    std::vector<bdd> parts;
    for (int k = 0; k < 3; ++k) {
        parts.push_back(counter_part(a_cs, a_ns, k));
        parts.push_back(counter_part(b_cs, b_ns, k));
    }
    const std::vector<bdd> clusters =
        cluster_parts(mgr, parts, cluster_policy::affinity, 4000);
    ASSERT_EQ(clusters.size(), 2u);
    // each cluster's support stays inside one counter's variables
    for (const bdd& c : clusters) {
        const std::vector<std::uint32_t> support = mgr.support(c);
        bool in_a = false, in_b = false;
        for (const std::uint32_t v : support) {
            if (std::find(a_cs.begin(), a_cs.end(), v) != a_cs.end() ||
                std::find(a_ns.begin(), a_ns.end(), v) != a_ns.end()) {
                in_a = true;
            } else {
                in_b = true;
            }
        }
        EXPECT_NE(in_a, in_b) << "cluster mixes the decoupled counters";
    }
}

TEST(relation_stats, schedule_shape_and_per_call_counters) {
    const network net = make_counter(6);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    image_options options;
    options.collect_stats = true;
    options.cluster_limit = 0; // keep every part its own cluster
    const transition_relation rel = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, options);

    const relation_stats& stats = rel.stats();
    ASSERT_EQ(stats.cluster_sizes.size(), rel.num_clusters());
    ASSERT_EQ(stats.quantified_per_cluster.size(), rel.num_clusters());
    EXPECT_EQ(rel.num_clusters(), fns.next_state.size());
    // every quantified variable dies somewhere (counter: all cs vars occur;
    // the input occurs too), so nothing is quantified out of `from` alone
    std::size_t total_quantified = stats.leading_quantified;
    for (const std::size_t n : stats.quantified_per_cluster) {
        total_quantified += n;
    }
    EXPECT_EQ(total_quantified, vars.in.size() + vars.cs.size());

    EXPECT_EQ(stats.images, 0u);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    (void)rel.image(init);
    (void)rel.image(init);
    (void)rel.preimage(init);
    EXPECT_EQ(rel.stats().images, 2u);
    EXPECT_EQ(rel.stats().preimages, 1u);
    EXPECT_GT(rel.stats().peak_intermediate, 0u);
}

TEST(relation_deadline, construction_throws_past_deadline) {
    // clustering is real BDD work: an armed deadline interrupts it before
    // the first image is ever computed
    const network net = make_counter(8);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    image_options options;
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::seconds(1);
    EXPECT_THROW((void)transition_relation::next_state(
                     mgr, fns.next_state, vars.cs, vars.ns, vars.in, options),
                 relation_deadline_exceeded);
    options.early_quantification = false; // the naive-mode product fold too
    EXPECT_THROW((void)transition_relation::next_state(
                     mgr, fns.next_state, vars.cs, vars.ns, vars.in, options),
                 relation_deadline_exceeded);
}

TEST(relation_deadline, image_chain_throws_past_deadline) {
    const network net = make_counter(8);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    image_options options;
    options.cluster_limit = 0; // construction merges nothing, so it survives
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::seconds(1);
    const transition_relation rel = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, options);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    EXPECT_THROW((void)rel.image(init), relation_deadline_exceeded);
}

TEST(relation_deadline, reachability_fixpoint_throws_past_deadline) {
    const network net = make_counter(8);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    image_options options;
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::seconds(1);
    EXPECT_THROW((void)reachable_states(mgr, fns.next_state, vars.cs, vars.ns,
                                        vars.in, init, options),
                 relation_deadline_exceeded);
    EXPECT_THROW((void)reachable_states_layered(mgr, fns.next_state, vars.cs,
                                                vars.ns, vars.in, init,
                                                options),
                 relation_deadline_exceeded);
    // a generous deadline changes nothing
    options.deadline = std::chrono::steady_clock::now() +
                       std::chrono::hours(1);
    const bdd limited = reachable_states(mgr, fns.next_state, vars.cs,
                                         vars.ns, vars.in, init, options);
    const bdd reference = reachable_states(mgr, fns.next_state, vars.cs,
                                           vars.ns, vars.in, init);
    EXPECT_EQ(limited, reference);
}

TEST(relation_deadline, op_deadline_interrupts_inside_a_chain_step) {
    // PR-10 regression pin: the budget used to be probed only *between*
    // chain steps, so one long and_exists could overrun it without bound.
    // schedule::apply now arms the manager's op-level deadline (probed
    // every ~1024 computed-cache lookups inside the recursion) for the
    // duration of the chain and translates bdd_deadline_exceeded into the
    // one exception type relation consumers handle.  A deadline armed on
    // the manager directly — no relation deadline at all, so none of the
    // between-step checks can fire — must therefore surface from image()
    // as relation_deadline_exceeded.
    structured_spec spec;
    spec.num_inputs = 4;
    spec.num_latches = 16;
    spec.seed = 5;
    const network net = make_structured_mix(spec);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const transition_relation rel = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, {});
    // an awkward xor-of-products state set drives the cold chain through
    // several thousand cache probes — a one() or cube operand collapses
    // too fast to cross even one ~1024-lookup stride
    bdd from = mgr.zero();
    for (std::size_t k = 0; k + 2 < vars.cs.size(); k += 3) {
        from ^= mgr.var(vars.cs[k]) &
                (mgr.var(vars.cs[k + 1]) | !mgr.var(vars.cs[k + 2]));
    }

    mgr.set_op_deadline(std::chrono::steady_clock::now() -
                        std::chrono::seconds(1));
    EXPECT_THROW((void)rel.image(from), relation_deadline_exceeded);
    mgr.clear_op_deadline();
    // disarmed, the identical call runs to completion and agrees with an
    // independently built relation (the aborted chain left no bad state)
    const bdd result = rel.image(from);
    const transition_relation again = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, {});
    EXPECT_EQ(again.image(from), result);
    EXPECT_FALSE(result.is_zero());
}

TEST(relation_deadline, saturation_fixpoint_throws_past_deadline) {
    // the saturation worklist checks the deadline at every pop, so a deep
    // recursion of chunk fires cannot outlive the budget between images
    const network net = make_counter(8);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    image_options options;
    options.strategy = reach_strategy::saturation;
    options.cluster_limit = 0; // construction merges nothing, so it survives
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::seconds(1);
    transition_relation rel = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, options);
    rel.rename_image_to_current();
    EXPECT_THROW(
        (void)reachable_states_layered(
            rel, init, static_cast<std::uint32_t>(vars.cs.size())),
        relation_deadline_exceeded);
    EXPECT_EQ(rel.stats().saturation_fires, 0u); // unwound before any fire
    EXPECT_THROW((void)reachable_states(mgr, fns.next_state, vars.cs,
                                        vars.ns, vars.in, init, options),
                 relation_deadline_exceeded);
    // a generous deadline changes nothing
    options.deadline = std::chrono::steady_clock::now() +
                       std::chrono::hours(1);
    const bdd limited = reachable_states(mgr, fns.next_state, vars.cs,
                                         vars.ns, vars.in, init, options);
    const bdd reference = reachable_states(mgr, fns.next_state, vars.cs,
                                           vars.ns, vars.in, init);
    EXPECT_EQ(limited, reference);
}

TEST(relation_deadline, solvers_translate_deadline_into_timeout_status) {
    const network original = make_counter(3);
    const split_result split = split_last_latches(original, 1);
    const equation_problem problem(split.fixed, original);

    solve_options options;
    options.img.deadline = std::chrono::steady_clock::now() -
                           std::chrono::seconds(1);
    const solve_result part = solve_partitioned(problem, options);
    EXPECT_EQ(part.status, solve_status::timeout);
    const solve_result mono = solve_monolithic(problem, options);
    EXPECT_EQ(mono.status, solve_status::timeout);

    // and without the deadline the same instances solve
    const solve_result ok = solve_partitioned(problem, {});
    EXPECT_EQ(ok.status, solve_status::ok);
}

TEST(relation_layer, prebuilt_fixpoint_requires_renamed_structured_relation) {
    const network net = make_counter(4);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    transition_relation rel = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in);
    // forgetting rename_image_to_current() must fail fast, not diverge
    EXPECT_THROW((void)reachable_states_layered(rel, init, 4),
                 std::invalid_argument);
    rel.rename_image_to_current();
    const reach_info info = reachable_states_layered(rel, init, 4);
    const reach_info reference = reachable_states_layered(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, init);
    EXPECT_EQ(info.reached, reference.reached);
    EXPECT_EQ(info.depth, reference.depth);
}

TEST(relation_layer, image_engine_is_a_thin_wrapper) {
    // the historical image_engine API serves the same results as the
    // relation it wraps
    const network net = make_lfsr(5, {2});
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const std::vector<bdd> parts = next_state_parts(mgr, fns, vars);
    std::vector<std::uint32_t> quantify = vars.in;
    quantify.insert(quantify.end(), vars.cs.begin(), vars.cs.end());

    const image_engine engine(mgr, parts, quantify);
    const transition_relation rel(mgr, parts, quantify);
    const bdd from = state_cube(mgr, vars.cs, net.initial_state());
    EXPECT_EQ(engine.image(from), rel.image(from));
    EXPECT_EQ(engine.num_clusters(), rel.num_clusters());
    EXPECT_EQ(engine.relation().num_parts(), parts.size());
}

} // namespace
