/// \file test_random_crosscheck.cpp
/// \brief Randomized cross-validation of the three solver flows.
///
/// For a sweep of seeded random sequential circuits, the partitioned flow,
/// the monolithic flow and the explicit Algorithm-1 oracle must agree on
/// the CSF language (Corollary 1 covers partitioned-vs-monolithic; the
/// oracle covers both against a line-by-line execution of the paper's
/// generic algorithm).  Every computed CSF must also pass the paper's two
/// verification checks, and the whole resynthesis pipeline must hold up.
/// Instances are kept small so the exponential oracle stays cheap.

#include "eq/kiss_flow.hpp"
#include "eq/resynth.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "gen/scenario.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

class crosscheck : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(crosscheck, three_flows_agree_and_verify) {
    const std::uint32_t seed = test_seed(GetParam());
    const network original = make_random_net(seed, 2, 2, 4, 3);
    const split_result split = split_last_latches(original, 2);
    const equation_problem problem(split.fixed, original);

    const solve_result part = solve_partitioned(problem);
    const solve_result mono = solve_monolithic(problem);
    const solve_result oracle = solve_explicit(problem, split.fixed, original);
    ASSERT_EQ(part.status, solve_status::ok) << "seed " << seed;
    ASSERT_EQ(mono.status, solve_status::ok) << "seed " << seed;
    ASSERT_EQ(oracle.status, solve_status::ok) << "seed " << seed;

    // Corollary 1 and the oracle
    EXPECT_TRUE(language_equivalent(*part.csf, *mono.csf)) << "seed " << seed;
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf))
        << "seed " << seed;

    // the paper's checks (X_P is always a particular solution)
    EXPECT_FALSE(part.empty_solution) << "seed " << seed;
    EXPECT_TRUE(verify_particular_contained(problem, *part.csf,
                                            split.part.initial_state()))
        << "seed " << seed;
    EXPECT_TRUE(verify_composition_contained(problem, *part.csf))
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(seeds, crosscheck, ::testing::Range(1u, 21u));

class crosscheck_nondet : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(crosscheck_nondet, choice_inputs_keep_flows_in_agreement) {
    const std::uint32_t seed = test_seed(GetParam());
    // F is a random net with 3 inputs whose third becomes the choice input
    const network noisy = make_random_net(seed, 3, 2, 3, 3);

    // spec S: an independent random machine over the two real inputs; the
    // generator names ports positionally (x0, x1, ... / z0, z1, ...), so
    // F's first two inputs and both outputs match S's by construction
    const network s = make_random_net(seed + 1000, 2, 2, 2, 3);
    const network& f = noisy;
    ASSERT_EQ(f.signal_name(f.inputs()[0]), s.signal_name(s.inputs()[0]));
    ASSERT_EQ(f.signal_name(f.outputs()[0]), s.signal_name(s.outputs()[0]));

    // F's third input is the choice input; there are no v/u wires beyond
    // the shared ports, making this a pure containment-under-nondeterminism
    // instance (the unknown is stateless flexibility over an empty alphabet
    // is avoided because u = outputs... keep u empty and v empty: the CSF
    // degenerates to empty-or-universal, which all flows must agree on)
    const equation_problem problem(f, s, 1);
    EXPECT_EQ(problem.v_vars.size(), 0u);
    EXPECT_EQ(problem.w_vars.size(), 1u);

    const solve_result part = solve_partitioned(problem);
    const solve_result mono = solve_monolithic(problem);
    const solve_result oracle = solve_explicit(problem, f, s);
    ASSERT_EQ(part.status, solve_status::ok) << "seed " << seed;
    ASSERT_EQ(mono.status, solve_status::ok) << "seed " << seed;
    ASSERT_EQ(oracle.status, solve_status::ok) << "seed " << seed;
    EXPECT_TRUE(language_equivalent(*part.csf, *mono.csf)) << "seed " << seed;
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf))
        << "seed " << seed;
    EXPECT_EQ(part.empty_solution, oracle.empty_solution) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(seeds, crosscheck_nondet,
                         ::testing::Range(1u, 11u));

// ---------------------------------------------------------------------------
// bundled KISS machines: a differential regression net for the BDD substrate
// ---------------------------------------------------------------------------
//
// The three flows exercise the BDD package very differently (partitioned
// subset construction vs monolithic relations vs explicit automata), so
// agreement on fixed instances pins the solver's language output across
// substrate rewrites — the complement-edge migration landed against exactly
// this check, with the expected state counts below recorded from the
// pre-complement-edge engine.

/// F (Figure-1 form): inputs (i, v), outputs (o, u); o = v combinationally
/// and u is i delayed one cycle.
const char* kiss_f_delay = R"(
.i 2
.o 2
.s 2
.p 8
.r s0
00 s0 s0 00
01 s0 s0 10
10 s0 s1 00
11 s0 s1 10
00 s1 s0 01
01 s1 s0 11
10 s1 s1 01
11 s1 s1 11
.e
)";

/// S: o must be i delayed two cycles.
const char* kiss_s_delay2 = R"(
.i 1
.o 1
.s 4
.p 8
.r s00
0 s00 s00 0
1 s00 s10 0
0 s10 s01 0
1 s10 s11 0
0 s01 s00 1
1 s01 s10 1
0 s11 s01 1
1 s11 s11 1
.e
)";

/// F: o = v, u = i xor state, state accumulates input parity.
const char* kiss_f_parity = R"(
.i 2
.o 2
.s 2
.p 8
.r s0
00 s0 s0 00
01 s0 s0 10
10 s0 s1 01
11 s0 s1 11
00 s1 s1 01
01 s1 s1 11
10 s1 s0 00
11 s1 s0 10
.e
)";

/// S: o is the parity of the inputs seen so far (excluding the current one);
/// X = a one-cycle delay of u solves it, so the CSF is non-empty.
const char* kiss_s_parity = R"(
.i 1
.o 1
.s 2
.p 4
.r p0
0 p0 p0 0
1 p0 p1 0
0 p1 p1 1
1 p1 p0 1
.e
)";

struct kiss_case {
    const char* name;
    const char* f;
    const char* s;
    std::size_t expected_csf_states;
    bool expected_empty;
};

class crosscheck_kiss : public ::testing::TestWithParam<kiss_case> {};

TEST_P(crosscheck_kiss, three_flows_agree_on_bundled_machines) {
    const kiss_case& c = GetParam();
    const kiss_instance inst = build_kiss_instance(c.f, c.s);

    const solve_result part = solve_partitioned(*inst.problem);
    const solve_result mono = solve_monolithic(*inst.problem);
    const solve_result oracle = solve_explicit(*inst.problem, inst.fixed,
                                               inst.spec);
    ASSERT_EQ(part.status, solve_status::ok) << c.name;
    ASSERT_EQ(mono.status, solve_status::ok) << c.name;
    ASSERT_EQ(oracle.status, solve_status::ok) << c.name;

    // identical largest-solution languages across all three flows
    EXPECT_TRUE(language_equivalent(*part.csf, *mono.csf)) << c.name;
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf)) << c.name;
    EXPECT_EQ(part.empty_solution, c.expected_empty) << c.name;
    EXPECT_EQ(mono.empty_solution, c.expected_empty) << c.name;
    EXPECT_EQ(oracle.empty_solution, c.expected_empty) << c.name;

    // regression pin: state counts recorded from the pre-complement-edge
    // engine — the substrate rewrite must not change the language
    EXPECT_EQ(part.csf_states, c.expected_csf_states) << c.name;
    EXPECT_EQ(mono.csf_states, c.expected_csf_states) << c.name;

    // every solution is still a particular solution and composes safely
    EXPECT_TRUE(verify_composition_contained(*inst.problem, *part.csf))
        << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    bundled, crosscheck_kiss,
    ::testing::Values(kiss_case{"delay", kiss_f_delay, kiss_s_delay2, 4, false},
                      kiss_case{"parity", kiss_f_parity, kiss_s_parity, 2,
                                false}));

class crosscheck_resynth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(crosscheck_resynth, pipeline_on_random_circuits) {
    const std::uint32_t seed = test_seed(GetParam());
    const network original = make_random_net(seed + 500, 2, 2, 4, 3);
    const resynth_result r = resynthesize(original, {2, 3});
    ASSERT_TRUE(r.solved) << "seed " << seed;
    if (!r.rebuilt) { GTEST_SKIP() << "no Moore sub-solution reachable"; }
    EXPECT_TRUE(r.verified) << "seed " << seed;
    EXPECT_TRUE(simulation_equivalent(original, r.optimized, 4, 128,
                                      seed * 7 + 1))
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(seeds, crosscheck_resynth,
                         ::testing::Range(1u, 11u));

} // namespace
