/// \file test_reduce.cpp
/// \brief Compatibility-based closed-cover reduction of the CSF.

#include "eq/reduce.hpp"
#include "eq/solver.hpp"
#include "eq/subsolution.hpp"
#include "eq/verify.hpp"
#include "gen/scenario.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

struct solved {
    network original;
    split_result split;
    equation_problem problem;
    solve_result result;

    solved(network net, const std::vector<std::size_t>& cut)
        : original(std::move(net)), split(split_latches(original, cut)),
          problem(split.fixed, original),
          result(solve_partitioned(problem)) {}
};

bool input_progressive_over_u(const equation_problem& p, const automaton& a) {
    const bdd v_cube = p.mgr().cube(p.v_vars);
    for (std::uint32_t q = 0; q < a.num_states(); ++q) {
        if (!p.mgr().exists(a.domain(q), v_cube).is_one()) { return false; }
    }
    return true;
}

TEST(reduce, sound_on_the_paper_example) {
    solved s(make_paper_example(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const auto r =
        reduce_subsolution(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(is_deterministic(*r));
    EXPECT_TRUE(language_contained(*r, *s.result.csf));
    EXPECT_TRUE(input_progressive_over_u(s.problem, *r));
    EXPECT_LE(r->num_states(), s.result.csf->num_states());
}

TEST(reduce, never_worse_than_the_csf_and_verifies) {
    solved s(make_traffic_controller(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const auto r =
        reduce_subsolution(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(verify_composition_contained(s.problem, *r));
}

TEST(reduce, collapses_far_below_the_csf) {
    // counter top-bit cut: the flexibility admits very small machines; the
    // cover reduction must land well under the CSF size (the two heuristic
    // families — policy sweep and cover merging — do not dominate each
    // other, so no cross-comparison is asserted)
    solved s(make_counter(4), {3});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const auto r =
        reduce_subsolution(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    ASSERT_TRUE(r.has_value());
    EXPECT_LE(r->num_states() * 4, s.result.csf->num_states());
    EXPECT_TRUE(verify_composition_contained(s.problem, *r));
}

TEST(reduce, respects_state_limit) {
    solved s(make_counter(3), {2});
    ASSERT_EQ(s.result.status, solve_status::ok);
    reduction_options options;
    options.max_states = 1;
    EXPECT_FALSE(reduce_subsolution(*s.result.csf, s.problem.u_vars,
                                    s.problem.v_vars, options)
                     .has_value());
}

TEST(reduce, respects_alphabet_limit) {
    solved s(make_counter(3), {2});
    ASSERT_EQ(s.result.status, solve_status::ok);
    reduction_options options;
    options.max_alphabet_bits = 1;
    EXPECT_FALSE(reduce_subsolution(*s.result.csf, s.problem.u_vars,
                                    s.problem.v_vars, options)
                     .has_value());
}

TEST(reduce, throws_on_empty_csf) {
    solved s(make_counter(3), {2});
    automaton empty(s.problem.mgr(), s.result.csf->label_vars());
    empty.add_state(false);
    empty.set_initial(0);
    EXPECT_THROW((void)reduce_subsolution(empty, s.problem.u_vars,
                                          s.problem.v_vars),
                 std::invalid_argument);
}

class reduce_families : public ::testing::TestWithParam<int> {};

TEST_P(reduce_families, sound_across_circuits) {
    const int id = GetParam();
    const network net = id == 0   ? make_counter(3)
                        : id == 1 ? make_counter(4)
                        : id == 2 ? make_traffic_controller()
                        : id == 3 ? make_shift_xor(3)
                        : id == 4 ? make_paper_example()
                                  : make_lfsr(4, {1});
    solved s(net, {net.num_latches() - 1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    if (s.result.empty_solution) { GTEST_SKIP(); }
    const auto r =
        reduce_subsolution(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    if (!r.has_value()) { GTEST_SKIP() << "greedy cover failed"; }
    EXPECT_TRUE(is_deterministic(*r)) << net.name();
    EXPECT_TRUE(language_contained(*r, *s.result.csf)) << net.name();
    EXPECT_TRUE(input_progressive_over_u(s.problem, *r)) << net.name();
    EXPECT_TRUE(verify_composition_contained(s.problem, *r)) << net.name();
}

INSTANTIATE_TEST_SUITE_P(families, reduce_families, ::testing::Range(0, 6));

class reduce_random : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(reduce_random, sound_on_random_circuits) {
    const std::uint32_t seed = test_seed(GetParam());
    SCOPED_TRACE("seed " + std::to_string(seed));
    solved s(make_random_net(seed, 2, 2, 4, 3), {2, 3});
    ASSERT_EQ(s.result.status, solve_status::ok);
    if (s.result.empty_solution) { GTEST_SKIP(); }
    const auto r =
        reduce_subsolution(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    if (!r.has_value()) { GTEST_SKIP() << "greedy cover failed"; }
    EXPECT_TRUE(language_contained(*r, *s.result.csf));
    EXPECT_TRUE(verify_composition_contained(s.problem, *r));
    EXPECT_LE(r->num_states(), s.result.csf->num_states())
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(seeds, reduce_random, ::testing::Range(1u, 11u));

} // namespace
