/// \file test_extract_verify.cpp
/// \brief Tests for FSM extraction from a CSF, the verification module's
/// rejection of wrong answers, and automaton rendering.

#include "automata/automaton_io.hpp"
#include "automata/kiss.hpp"
#include "eq/extract.hpp"
#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace leq;

struct solved {
    network original;
    split_result split;
    equation_problem problem;
    solve_result result;

    solved(network net, const std::vector<std::size_t>& cut)
        : original(std::move(net)), split(split_latches(original, cut)),
          problem(split.fixed, original),
          result(solve_partitioned(problem)) {}
};

TEST(extract_fsm_test, extraction_is_deterministic_and_contained) {
    solved s(make_paper_example(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const automaton fsm =
        extract_fsm(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    EXPECT_TRUE(is_deterministic(fsm));
    EXPECT_TRUE(language_contained(fsm, *s.result.csf));
    // input-progressive: every u covered in every state
    const bdd v_cube = s.problem.mgr().cube(s.problem.v_vars);
    for (std::uint32_t q = 0; q < fsm.num_states(); ++q) {
        EXPECT_TRUE(
            s.problem.mgr().exists(fsm.domain(q), v_cube).is_one());
    }
}

TEST(extract_fsm_test, extraction_over_families) {
    for (int id = 0; id < 4; ++id) {
        const network net = id == 0   ? make_counter(3)
                            : id == 1 ? make_lfsr(4, {1})
                            : id == 2 ? make_traffic_controller()
                                      : make_shift_xor(3);
        solved s(net, {net.num_latches() - 1});
        ASSERT_EQ(s.result.status, solve_status::ok) << id;
        if (s.result.empty_solution) { continue; }
        const automaton fsm =
            extract_fsm(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
        EXPECT_TRUE(language_contained(fsm, *s.result.csf)) << id;
        // a valid implementation also satisfies the composition check
        EXPECT_TRUE(verify_composition_contained(s.problem, fsm)) << id;
    }
}

TEST(extract_fsm_test, rejects_empty_csf) {
    bdd_manager mgr(2);
    automaton empty(mgr, {0, 1});
    empty.set_initial(empty.add_state(false));
    EXPECT_THROW(extract_fsm(empty, {0}, {1}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// verification must reject wrong answers, not just accept right ones
// ---------------------------------------------------------------------------

TEST(verify_negative, overgrown_csf_fails_composition_check) {
    solved s(make_paper_example(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    bdd_manager& mgr = s.problem.mgr();
    // the universal automaton over (u,v) allows behaviours that break S
    automaton universal(mgr, s.result.csf->label_vars());
    universal.set_initial(universal.add_state(true));
    universal.add_transition(0, 0, mgr.one());
    EXPECT_FALSE(verify_composition_contained(s.problem, universal));
}

TEST(verify_negative, undersized_csf_fails_particular_check) {
    solved s(make_counter(4), {3});
    ASSERT_EQ(s.result.status, solve_status::ok);
    bdd_manager& mgr = s.problem.mgr();
    // an automaton that forbids every move cannot contain X_P
    automaton mute(mgr, s.result.csf->label_vars());
    mute.set_initial(mute.add_state(true));
    EXPECT_FALSE(verify_particular_contained(s.problem, mute,
                                             s.split.part.initial_state()));
}

TEST(verify_negative, wrong_initial_state_detected) {
    solved s(make_lfsr(4, {1}), {3});
    ASSERT_EQ(s.result.status, solve_status::ok);
    // X_P with a flipped initial bit traces a different language; for the
    // LFSR split this diverges immediately, so the check must not pass
    std::vector<bool> wrong = s.split.part.initial_state();
    wrong[0] = !wrong[0];
    const bool flipped_ok =
        verify_particular_contained(s.problem, *s.result.csf, wrong);
    const bool correct_ok = verify_particular_contained(
        s.problem, *s.result.csf, s.split.part.initial_state());
    EXPECT_TRUE(correct_ok);
    // the flipped start may or may not be flexible; at minimum the checker
    // must be deterministic and must accept the true initial state
    (void)flipped_ok;
}

TEST(verify_negative, truncated_csf_still_contains_xp_but_not_reverse) {
    // dropping DCA-side transitions keeps soundness (F.X <= S) but the
    // particular solution must still fit; verify both directions exercise
    // different logic
    solved s(make_traffic_controller(), {0});
    ASSERT_EQ(s.result.status, solve_status::ok);
    EXPECT_TRUE(verify_particular_contained(s.problem, *s.result.csf,
                                            s.split.part.initial_state()));
    EXPECT_TRUE(verify_composition_contained(s.problem, *s.result.csf));
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

TEST(automaton_io_test, print_and_dot_contain_structure) {
    bdd_manager mgr(2);
    automaton aut(mgr, {0, 1});
    const auto s0 = aut.add_state(true);
    const auto s1 = aut.add_state(false);
    aut.set_initial(s0);
    aut.add_transition(s0, s1, mgr.var(0) & !mgr.var(1));
    var_names names(2);
    names.label({0}, "u");
    names.label({1}, "v");

    std::ostringstream text;
    print_automaton(text, aut, names.get());
    EXPECT_NE(text.str().find("2 states"), std::string::npos);
    EXPECT_NE(text.str().find("u0 & !v0"), std::string::npos);

    std::ostringstream dot;
    write_dot(dot, aut, names.get(), "g");
    EXPECT_NE(dot.str().find("digraph g"), std::string::npos);
    EXPECT_NE(dot.str().find("doublecircle"), std::string::npos);
    EXPECT_NE(dot.str().find("s0 -> s1"), std::string::npos);
}

} // namespace

namespace {

using namespace leq;

TEST(kiss_io, round_trip_extracted_fsm) {
    solved s(make_traffic_controller(), {2});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const automaton fsm =
        extract_fsm(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    const std::string text =
        write_kiss_string(fsm, s.problem.u_vars, s.problem.v_vars);
    EXPECT_NE(text.find(".i 1"), std::string::npos);
    EXPECT_NE(text.find(".r s" + std::to_string(fsm.initial())),
              std::string::npos);
    const automaton back = read_kiss_string(
        text, s.problem.mgr(), s.problem.u_vars, s.problem.v_vars);
    EXPECT_TRUE(language_equivalent(fsm, back));
}

TEST(kiss_io, parses_hand_written_fsm) {
    bdd_manager mgr(2);
    const std::string text =
        "# a comment\n.i 1\n.o 1\n.s 2\n.p 3\n.r a\n"
        "0 a a 0\n1 a b 1\n- b a 0\n.e\n";
    const automaton aut = read_kiss_string(text, mgr, {0}, {1});
    EXPECT_EQ(aut.num_states(), 2u);
    EXPECT_EQ(aut.initial(), 0u);
    EXPECT_TRUE(is_deterministic(aut));
    // word 1/1 then anything/0 returns to a
    EXPECT_TRUE(accepts(aut, {{true, true}, {false, false}}));
    EXPECT_FALSE(accepts(aut, {{true, false}}));
}

TEST(kiss_io, rejects_malformed) {
    bdd_manager mgr(2);
    EXPECT_THROW(read_kiss_string(".i 2\n.o 1\n0 a a 0\n.e\n", mgr, {0}, {1}),
                 std::runtime_error);
    EXPECT_THROW(read_kiss_string(".i 1\n.o 1\n.e\n", mgr, {0}, {1}),
                 std::runtime_error);
    EXPECT_THROW(read_kiss_string("0x a a 0\n.e\n", mgr, {0}, {1}),
                 std::runtime_error);
}

} // namespace
