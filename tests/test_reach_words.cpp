/// \file test_reach_words.cpp
/// \brief Layered reachability statistics and word counting.

#include "eq/extract.hpp"
#include "eq/solver.hpp"
#include "img/image.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace leq;

struct swept_net {
    bdd_manager mgr;
    std::vector<std::uint32_t> in, cs, ns;
    net_bdds fns;
    bdd init;

    explicit swept_net(const network& net) {
        for (std::size_t k = 0; k < net.num_inputs(); ++k) {
            in.push_back(mgr.new_var());
        }
        for (std::size_t k = 0; k < net.num_latches(); ++k) {
            cs.push_back(mgr.new_var());
            ns.push_back(mgr.new_var());
        }
        fns = build_net_bdds(mgr, net, in, cs);
        init = state_cube(mgr, cs, net.initial_state());
    }
};

// ---------------------------------------------------------------------------
// layered reachability
// ---------------------------------------------------------------------------

TEST(reach_layers, counter_has_full_depth) {
    swept_net s(make_counter(4));
    const reach_info info = reachable_states_layered(
        s.mgr, s.fns.next_state, s.cs, s.ns, s.in, s.init);
    // a 4-bit counter with enable walks all 16 states one per layer
    EXPECT_EQ(info.total_states, 16.0);
    EXPECT_EQ(info.depth, 15u);
    ASSERT_EQ(info.layer_states.size(), 16u);
    for (const double states : info.layer_states) {
        EXPECT_EQ(states, 1.0);
    }
}

TEST(reach_layers, agrees_with_plain_reachability) {
    for (int id = 0; id < 3; ++id) {
        const network net = id == 0   ? make_lfsr(5, {1})
                            : id == 1 ? make_shift_xor(4)
                                      : make_traffic_controller();
        swept_net s(net);
        const bdd plain = reachable_states(s.mgr, s.fns.next_state, s.cs,
                                           s.ns, s.in, s.init);
        const reach_info info = reachable_states_layered(
            s.mgr, s.fns.next_state, s.cs, s.ns, s.in, s.init);
        EXPECT_EQ(info.reached, plain) << net.name();
        EXPECT_EQ(info.total_states,
                  s.mgr.sat_count(plain,
                                  static_cast<std::uint32_t>(s.cs.size())))
            << net.name();
        // layer counts sum to the total
        double sum = 0;
        for (const double states : info.layer_states) { sum += states; }
        EXPECT_EQ(sum, info.total_states) << net.name();
    }
}

TEST(reach_layers, depth_zero_when_init_is_closed) {
    // shift register with constant-0 input feed: state stays all-zero only
    // if the input is tied; with a free input this is not closed, so use a
    // 1-latch self-loop instead: next = current
    network net("hold");
    net.add_input("a");
    net.add_latch("h", "h0", false);
    net.add_node("h", {"h0"}, {"1"});
    net.add_node("z", {"h0"}, {"1"});
    net.add_output("z");
    net.validate();
    swept_net s(net);
    const reach_info info = reachable_states_layered(
        s.mgr, s.fns.next_state, s.cs, s.ns, s.in, s.init);
    EXPECT_EQ(info.depth, 0u);
    EXPECT_EQ(info.total_states, 1.0);
}

// ---------------------------------------------------------------------------
// word counting
// ---------------------------------------------------------------------------

TEST(count_words, chain_and_universal) {
    bdd_manager mgr(1);
    // accepts words over one variable where every letter is 1, length <= 3
    automaton ones(mgr, {0});
    for (int k = 0; k <= 3; ++k) { ones.add_state(true); }
    for (std::uint32_t k = 0; k < 3; ++k) {
        ones.add_transition(k, k + 1, mgr.var(0));
    }
    ones.set_initial(0);
    EXPECT_EQ(count_words(ones, 0), 1.0);
    EXPECT_EQ(count_words(ones, 2), 1.0);
    EXPECT_EQ(count_words(ones, 3), 1.0);
    EXPECT_EQ(count_words(ones, 4), 0.0);

    // the universal automaton over two variables: 4^L words
    automaton all(mgr, {0});
    all.add_state(true);
    all.set_initial(0);
    all.add_transition(0, 0, mgr.one());
    EXPECT_EQ(count_words(all, 3), 8.0); // one variable: 2^3
}

TEST(count_words, nondeterminism_counts_words_not_runs) {
    bdd_manager mgr(1);
    // two parallel runs accept the same single word: must count once
    automaton nfa(mgr, {0});
    nfa.add_state(false); // 0
    nfa.add_state(true);  // 1
    nfa.add_state(true);  // 2
    nfa.set_initial(0);
    nfa.add_transition(0, 1, mgr.var(0));
    nfa.add_transition(0, 2, mgr.var(0));
    EXPECT_EQ(count_words(nfa, 1), 1.0);
}

TEST(count_words, csf_flexibility_dominates_any_extraction) {
    const network original = make_counter(3);
    const split_result split = split_latches(original, {2});
    const equation_problem problem(split.fixed, original);
    const solve_result r = solve_partitioned(problem);
    ASSERT_EQ(r.status, solve_status::ok);
    const automaton fsm =
        extract_fsm(*r.csf, problem.u_vars, problem.v_vars);
    for (const std::size_t len : {1u, 3u, 5u}) {
        const double flex = count_words(*r.csf, len);
        const double committed = count_words(fsm, len);
        EXPECT_GE(flex, committed) << "length " << len;
        EXPECT_GT(committed, 0.0) << "length " << len;
    }
}

TEST(count_words, deterministic_word_count_is_exact_for_fsm) {
    // an extracted FSM commits to exactly one v per (state, u): 2^(|u| len)
    const network original = make_counter(3);
    const split_result split = split_latches(original, {2});
    const equation_problem problem(split.fixed, original);
    const solve_result r = solve_partitioned(problem);
    ASSERT_EQ(r.status, solve_status::ok);
    const automaton fsm =
        extract_fsm(*r.csf, problem.u_vars, problem.v_vars);
    const double expected =
        std::pow(2.0, static_cast<double>(problem.u_vars.size()) * 4.0);
    EXPECT_EQ(count_words(fsm, 4), expected);
}

} // namespace
