/// \file test_kiss_flow.cpp
/// \brief FSM-level equation solving from KISS2 text.

#include "automata/kiss.hpp"
#include "eq/extract.hpp"
#include "eq/kiss_flow.hpp"
#include "eq/topology.hpp"
#include "eq/verify.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

/// F in Figure-1 form: inputs (i, v), outputs (o, u); o = v combinationally
/// and u is i delayed one cycle.  Two states remember the last i.
const char* f_delay_kiss = R"(
.i 2
.o 2
.s 2
.p 8
.r s0
00 s0 s0 00
01 s0 s0 10
10 s0 s1 00
11 s0 s1 10
00 s1 s0 01
01 s1 s0 11
10 s1 s1 01
11 s1 s1 11
.e
)";

/// S: o must be i delayed two cycles.  Four states remember the last two.
const char* s_delay2_kiss = R"(
.i 1
.o 1
.s 4
.p 8
.r s00
0 s00 s00 0
1 s00 s10 0
0 s10 s01 0
1 s10 s11 0
0 s01 s00 1
1 s01 s10 1
0 s11 s01 1
1 s11 s11 1
.e
)";

TEST(kiss_flow, builds_figure1_interfaces) {
    const kiss_instance inst =
        build_kiss_instance(f_delay_kiss, s_delay2_kiss);
    EXPECT_EQ(inst.fixed.num_inputs(), 2u);
    EXPECT_EQ(inst.fixed.num_outputs(), 2u);
    EXPECT_EQ(inst.spec.num_inputs(), 1u);
    EXPECT_EQ(inst.spec.num_outputs(), 1u);
    EXPECT_EQ(inst.problem->u_vars.size(), 1u);
    EXPECT_EQ(inst.problem->v_vars.size(), 1u);
}

TEST(kiss_flow, encoded_f_simulates_the_mealy_machine) {
    const kiss_instance inst =
        build_kiss_instance(f_delay_kiss, s_delay2_kiss);
    std::vector<bool> state = inst.fixed.initial_state();
    bool last_i = false;
    std::uint32_t lcg = 11;
    for (int t = 0; t < 40; ++t) {
        lcg = lcg * 1664525u + 1013904223u;
        const bool i = (lcg >> 16) & 1u;
        const bool v = (lcg >> 17) & 1u;
        const auto r = inst.fixed.simulate(state, {i, v});
        ASSERT_EQ(r.outputs.size(), 2u);
        EXPECT_EQ(r.outputs[0], v) << "o = v at t=" << t;
        EXPECT_EQ(r.outputs[1], last_i) << "u = delayed i at t=" << t;
        last_i = i;
        state = r.next_state;
    }
}

TEST(kiss_flow, solves_the_delay_decomposition) {
    const kiss_solution sol = solve_kiss(f_delay_kiss, s_delay2_kiss);
    ASSERT_EQ(sol.result.status, solve_status::ok);
    ASSERT_FALSE(sol.result.empty_solution);
    const equation_problem& problem = *sol.instance.problem;
    // the unknown must be able to behave as a 1-bit delay
    bdd_manager& mgr = problem.mgr();
    const std::uint32_t u0 = problem.u_vars[0];
    const std::uint32_t v0 = problem.v_vars[0];
    automaton xdelay(mgr, sol.result.csf->label_vars());
    xdelay.add_state(true);
    xdelay.add_state(true);
    xdelay.set_initial(0);
    for (std::uint32_t b = 0; b < 2; ++b) {
        for (std::uint32_t u = 0; u < 2; ++u) {
            xdelay.add_transition(b, u,
                                  mgr.literal(v0, b != 0) &
                                      mgr.literal(u0, u != 0));
        }
    }
    EXPECT_TRUE(language_contained(xdelay, *sol.result.csf));
    // any extracted implementation satisfies check (2)
    const automaton fsm =
        extract_fsm(*sol.result.csf, problem.u_vars, problem.v_vars);
    EXPECT_TRUE(verify_composition_contained(problem, fsm));
}

TEST(kiss_flow, agrees_with_the_network_level_topology_flow) {
    // the same decomposition posed at the netlist level (cascade tail with
    // a delay front) must produce a CSF of the same size that also accepts
    // the delay machine
    const kiss_solution kiss = solve_kiss(f_delay_kiss, s_delay2_kiss);
    ASSERT_EQ(kiss.result.status, solve_status::ok);

    network front("delay1");
    front.add_input("a");
    front.add_latch("a", "s0", false);
    front.add_node("d", {"s0"}, {"1"});
    front.add_output("d");
    network spec("delay2");
    spec.add_input("a");
    spec.add_latch("a", "t0", false);
    spec.add_latch("t0", "t1", false);
    spec.add_node("z", {"t1"}, {"1"});
    spec.add_output("z");
    auto net = solve_cascade_tail(front, spec);
    ASSERT_EQ(net.result.status, solve_status::ok);

    EXPECT_EQ(kiss.result.csf_states, net.result.csf_states);
    EXPECT_EQ(kiss.result.empty_solution, net.result.empty_solution);
}

TEST(kiss_flow, rejects_interface_mismatch) {
    // F narrower than S
    EXPECT_THROW((void)build_kiss_instance(s_delay2_kiss, f_delay_kiss),
                 std::invalid_argument);
}

TEST(kiss_flow, rejects_malformed_kiss) {
    EXPECT_THROW((void)build_kiss_instance("garbage", s_delay2_kiss),
                 std::runtime_error);
}

TEST(kiss_flow, header_parser) {
    const kiss_header h = read_kiss_header(f_delay_kiss);
    EXPECT_EQ(h.num_inputs, 2u);
    EXPECT_EQ(h.num_outputs, 2u);
    EXPECT_THROW((void)read_kiss_header(".s 2\n"), std::runtime_error);
}

} // namespace
