/// \file test_bdd_reorder.cpp
/// \brief Dynamic variable reordering: semantics preservation, handle
/// stability, canonicity after reordering, and size behaviour on functions
/// with known good/bad orders.

#include "bdd/bdd.hpp"
#include "bdd_invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

namespace leq {
namespace {

/// Build a pseudo-random function over `nvars` variables as an XOR/AND/OR
/// mix driven by `seed`; deterministic across runs.
bdd random_function(bdd_manager& mgr, std::uint32_t nvars, std::uint32_t seed,
                    std::size_t ops = 40) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::uint32_t> pick_var(0, nvars - 1);
    std::uniform_int_distribution<int> pick_op(0, 2);
    bdd f = mgr.literal(pick_var(rng), (rng() & 1u) != 0);
    for (std::size_t k = 0; k < ops; ++k) {
        const bdd lit = mgr.literal(pick_var(rng), (rng() & 1u) != 0);
        switch (pick_op(rng)) {
            case 0: f = f & lit; break;
            case 1: f = f | lit; break;
            default: f = f ^ lit; break;
        }
    }
    return f;
}

std::vector<std::vector<bool>> random_assignments(std::uint32_t nvars,
                                                  std::size_t count,
                                                  std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::vector<std::vector<bool>> out(count, std::vector<bool>(nvars));
    for (auto& a : out) {
        for (std::uint32_t v = 0; v < nvars; ++v) { a[v] = (rng() & 1u) != 0; }
    }
    return out;
}

/// f = x0&x1 | x2&x3 | ... : linear-size in the paired order, exponential in
/// the order that lists all even variables before all odd ones.
bdd chained_conjunctions(bdd_manager& mgr, std::size_t pairs) {
    bdd f = mgr.zero();
    for (std::size_t p = 0; p < pairs; ++p) {
        f |= mgr.var(static_cast<std::uint32_t>(2 * p)) &
             mgr.var(static_cast<std::uint32_t>(2 * p + 1));
    }
    return f;
}

// ---------------------------------------------------------------------------
// adjacent building blocks through reorder_to
// ---------------------------------------------------------------------------

TEST(bdd_reorder, reorder_to_identity_is_noop_semantically) {
    bdd_manager mgr(6);
    const bdd f = random_function(mgr, 6, 7);
    const std::size_t size_before = mgr.dag_size(f);
    std::vector<std::uint32_t> order(6);
    std::iota(order.begin(), order.end(), 0u);
    mgr.reorder_to(order);
    mgr.check_consistency();
    EXPECT_EQ(mgr.dag_size(f), size_before);
    for (const auto& a : random_assignments(6, 64, 11)) {
        EXPECT_EQ(mgr.eval(f, a), mgr.eval(f, a));
    }
}

TEST(bdd_reorder, reverse_order_preserves_semantics) {
    bdd_manager mgr(8);
    const bdd f = random_function(mgr, 8, 3);
    const bdd g = random_function(mgr, 8, 4);
    const auto assignments = random_assignments(8, 200, 5);
    std::vector<bool> f_vals, g_vals;
    for (const auto& a : assignments) {
        f_vals.push_back(mgr.eval(f, a));
        g_vals.push_back(mgr.eval(g, a));
    }
    std::vector<std::uint32_t> order(8);
    std::iota(order.begin(), order.end(), 0u);
    std::reverse(order.begin(), order.end());
    mgr.reorder_to(order);
    mgr.check_consistency();
    for (std::uint32_t v = 0; v < 8; ++v) {
        EXPECT_EQ(mgr.level_of(v), 7 - v);
    }
    for (std::size_t k = 0; k < assignments.size(); ++k) {
        EXPECT_EQ(mgr.eval(f, assignments[k]), f_vals[k]);
        EXPECT_EQ(mgr.eval(g, assignments[k]), g_vals[k]);
    }
}

TEST(bdd_reorder, reorder_to_rejects_bad_permutations) {
    bdd_manager mgr(4);
    EXPECT_THROW(mgr.reorder_to({0, 1, 2}), std::invalid_argument);
    EXPECT_THROW(mgr.reorder_to({0, 1, 2, 2}), std::invalid_argument);
    EXPECT_THROW(mgr.reorder_to({0, 1, 2, 9}), std::invalid_argument);
}

TEST(bdd_reorder, handles_remain_canonical_after_reorder) {
    bdd_manager mgr(8);
    const bdd f = random_function(mgr, 8, 21);
    const bdd g = random_function(mgr, 8, 22);
    const bdd fg = f & g;
    std::vector<std::uint32_t> order = {3, 1, 7, 0, 6, 2, 5, 4};
    mgr.reorder_to(order);
    mgr.check_consistency();
    // recomputing the conjunction must give the same node: canonicity holds
    EXPECT_EQ(f & g, fg);
    // de Morgan at the node level
    EXPECT_EQ(!(f & g), (!f) | (!g));
}

TEST(bdd_reorder, chained_conjunctions_known_sizes) {
    // 8 variables: x0&x1 | x2&x3 | x4&x5 | x6&x7
    bdd_manager mgr(8);
    const bdd f = chained_conjunctions(mgr, 4);
    const std::size_t paired = mgr.dag_size(f);
    // worst-case order: evens above odds -> exponential blowup
    mgr.reorder_to({0, 2, 4, 6, 1, 3, 5, 7});
    const std::size_t split = mgr.dag_size(f);
    EXPECT_GT(split, paired);
    // back to the paired order restores the linear size
    mgr.reorder_to({0, 1, 2, 3, 4, 5, 6, 7});
    EXPECT_EQ(mgr.dag_size(f), paired);
    mgr.check_consistency();
}

// ---------------------------------------------------------------------------
// sifting
// ---------------------------------------------------------------------------

TEST(bdd_reorder, sifting_recovers_paired_order_size) {
    bdd_manager mgr(12);
    // create in the bad order: f over evens-then-odds levels
    mgr.reorder_to({0, 2, 4, 6, 8, 10, 1, 3, 5, 7, 9, 11});
    const bdd f = chained_conjunctions(mgr, 6);
    const std::size_t bad = mgr.dag_size(f);
    mgr.reorder_sift();
    mgr.check_consistency();
    const std::size_t sifted = mgr.dag_size(f);
    EXPECT_LT(sifted, bad);
    // optimal size for n pairs is 2n inner nodes + 2 constants
    EXPECT_LE(sifted, 2 * 6 + 2);
}

TEST(bdd_reorder, sifting_preserves_semantics_and_handles) {
    bdd_manager mgr(10);
    std::vector<bdd> funcs;
    for (std::uint32_t s = 0; s < 6; ++s) {
        funcs.push_back(random_function(mgr, 10, 100 + s));
    }
    const auto assignments = random_assignments(10, 150, 9);
    std::vector<std::vector<bool>> before(funcs.size());
    for (std::size_t k = 0; k < funcs.size(); ++k) {
        for (const auto& a : assignments) {
            before[k].push_back(mgr.eval(funcs[k], a));
        }
    }
    mgr.reorder_sift();
    mgr.check_consistency();
    for (std::size_t k = 0; k < funcs.size(); ++k) {
        std::size_t j = 0;
        for (const auto& a : assignments) {
            EXPECT_EQ(mgr.eval(funcs[k], a), before[k][j++]);
        }
    }
}

TEST(bdd_reorder, sifting_twice_does_not_grow) {
    bdd_manager mgr(10);
    const bdd f = random_function(mgr, 10, 55, 120);
    const std::size_t first = mgr.reorder_sift();
    const std::size_t second = mgr.reorder_sift();
    EXPECT_LE(second, first);
    mgr.check_consistency();
    EXPECT_FALSE(f.is_const()); // handle still alive and usable
}

TEST(bdd_reorder, sift_one_moves_variable_to_better_level) {
    bdd_manager mgr(8);
    mgr.reorder_to({1, 2, 3, 4, 5, 6, 7, 0}); // x0 at the bottom
    // f couples x0 tightly with x1: x0 wants to sit next to x1
    bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3)) |
            (mgr.var(4) & mgr.var(5)) | (mgr.var(6) & mgr.var(7));
    const std::size_t before = mgr.dag_size(f);
    mgr.sift_one(0);
    mgr.check_consistency();
    EXPECT_LT(mgr.dag_size(f), before);
}

TEST(bdd_reorder, operations_work_after_reordering) {
    bdd_manager mgr(8);
    const bdd f = random_function(mgr, 8, 77);
    const bdd g = random_function(mgr, 8, 78);
    mgr.reorder_sift();
    // quantification, permutation and relational product still behave
    const bdd cube = mgr.cube({0, 1});
    EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
    EXPECT_EQ(mgr.exists(f, cube) | mgr.exists(g, cube),
              mgr.exists(f | g, cube));
    std::vector<std::uint32_t> perm(8);
    std::iota(perm.begin(), perm.end(), 0u);
    std::swap(perm[2], perm[5]);
    const bdd pf = mgr.permute(f, perm);
    EXPECT_EQ(mgr.permute(pf, perm), f);
}

TEST(bdd_reorder, gc_after_reorder_reclaims_garbage) {
    bdd_manager mgr(10);
    {
        const bdd junk = random_function(mgr, 10, 500, 300);
        (void)junk;
    }
    const bdd keep = random_function(mgr, 10, 501, 50);
    mgr.reorder_sift();
    const std::size_t live = mgr.live_node_count();
    EXPECT_GE(live, mgr.dag_size(keep) - 2);
    mgr.check_consistency();
}

TEST(bdd_reorder, empty_manager_and_constants_are_safe) {
    bdd_manager mgr(0);
    EXPECT_NO_THROW(mgr.reorder_sift());
    bdd_manager mgr2(3);
    const bdd one = mgr2.one();
    const bdd zero = mgr2.zero();
    mgr2.reorder_sift();
    EXPECT_TRUE(one.is_one());
    EXPECT_TRUE(zero.is_zero());
}

TEST(bdd_reorder, stats_count_reorder_calls) {
    bdd_manager mgr(6);
    const bdd f = random_function(mgr, 6, 1);
    (void)f;
    const std::size_t before = mgr.stats().reorderings;
    mgr.reorder_sift();
    mgr.sift_one(2);
    EXPECT_EQ(mgr.stats().reorderings, before + 2);
}

// ---------------------------------------------------------------------------
// complement-edge invariants across reordering
// ---------------------------------------------------------------------------

/// FNV-style hash of a function's full truth table: an order-independent
/// semantic fingerprint (the oracle view of a root).
std::uint64_t truth_hash(bdd_manager& mgr, const bdd& f, std::uint32_t nvars) {
    std::uint64_t h = 1469598103934665603ull;
    std::vector<bool> a(nvars);
    for (std::uint32_t r = 0; r < (1u << nvars); ++r) {
        for (std::uint32_t v = 0; v < nvars; ++v) { a[v] = ((r >> v) & 1) != 0; }
        h = (h ^ static_cast<std::uint64_t>(mgr.eval(f, a))) *
            1099511628211ull;
    }
    return h;
}

TEST(bdd_reorder, sifting_preserves_oracle_hashes_and_complement_invariants) {
    constexpr std::uint32_t nvars = 10;
    bdd_manager mgr(nvars);
    std::vector<bdd> roots;
    for (std::uint32_t s = 0; s < 5; ++s) {
        const bdd f = random_function(mgr, nvars, 900 + s, 80);
        roots.push_back(f);
        roots.push_back(!f); // hold both phases across the reorder
    }
    std::vector<std::uint64_t> hashes;
    for (const bdd& f : roots) { hashes.push_back(truth_hash(mgr, f, nvars)); }

    mgr.reorder_sift();
    mgr.check_consistency(); // includes the stored-then-edge-regular check

    for (std::size_t k = 0; k < roots.size(); ++k) {
        EXPECT_EQ(truth_hash(mgr, roots[k], nvars), hashes[k])
            << "root " << k << " changed semantics across sifting";
        ASSERT_NO_FATAL_FAILURE(expect_regular_then_edges(roots[k]));
    }
    // phase pairing survives in-place rewriting: the handles held for f and
    // !f must still be complements of each other, node for node
    for (std::size_t k = 0; k + 1 < roots.size(); k += 2) {
        EXPECT_EQ(roots[k].index() ^ 1u, roots[k + 1].index());
        EXPECT_EQ((!roots[k]), roots[k + 1]);
        EXPECT_EQ(mgr.dag_size(roots[k]), mgr.dag_size(roots[k + 1]));
    }
    // recomputing through complementary routes still hits the same nodes
    const bdd a = roots[0], b = roots[2];
    EXPECT_EQ((!(a & b)).index(), ((!a) | (!b)).index());
}

TEST(bdd_reorder, reorder_to_preserves_complement_pairing) {
    constexpr std::uint32_t nvars = 8;
    bdd_manager mgr(nvars);
    const bdd f = random_function(mgr, nvars, 314, 60);
    const bdd nf = !f;
    const std::uint64_t h_f = truth_hash(mgr, f, nvars);
    const std::uint64_t h_nf = truth_hash(mgr, nf, nvars);
    mgr.reorder_to({7, 5, 3, 1, 0, 2, 4, 6});
    mgr.check_consistency();
    EXPECT_EQ(truth_hash(mgr, f, nvars), h_f);
    EXPECT_EQ(truth_hash(mgr, nf, nvars), h_nf);
    EXPECT_EQ(f.index() ^ 1u, nf.index());
    ASSERT_NO_FATAL_FAILURE(expect_regular_then_edges(f));
}

// ---------------------------------------------------------------------------
// property sweep: random functions, random target orders
// ---------------------------------------------------------------------------

class reorder_property : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(reorder_property, random_reorder_preserves_truth_table) {
    const std::uint32_t seed = GetParam();
    constexpr std::uint32_t nvars = 7;
    bdd_manager mgr(nvars);
    const bdd f = random_function(mgr, nvars, seed, 60);
    const bdd g = random_function(mgr, nvars, seed + 1000, 60);
    const bdd h = mgr.ite(f, g, f ^ g);

    // record full truth tables (128 rows)
    std::vector<bool> tt_f, tt_g, tt_h;
    std::vector<bool> a(nvars);
    for (std::uint32_t m = 0; m < (1u << nvars); ++m) {
        for (std::uint32_t v = 0; v < nvars; ++v) { a[v] = (m >> v) & 1u; }
        tt_f.push_back(mgr.eval(f, a));
        tt_g.push_back(mgr.eval(g, a));
        tt_h.push_back(mgr.eval(h, a));
    }

    std::mt19937 rng(seed ^ 0xdead);
    std::vector<std::uint32_t> order(nvars);
    std::iota(order.begin(), order.end(), 0u);
    std::shuffle(order.begin(), order.end(), rng);
    mgr.reorder_to(order);
    mgr.check_consistency();
    for (std::uint32_t v = 0; v < nvars; ++v) {
        EXPECT_EQ(mgr.var_at_level(mgr.level_of(v)), v);
    }

    for (std::uint32_t m = 0; m < (1u << nvars); ++m) {
        for (std::uint32_t v = 0; v < nvars; ++v) { a[v] = (m >> v) & 1u; }
        ASSERT_EQ(mgr.eval(f, a), tt_f[m]) << "seed " << seed << " m " << m;
        ASSERT_EQ(mgr.eval(g, a), tt_g[m]);
        ASSERT_EQ(mgr.eval(h, a), tt_h[m]);
    }

    // then sift on top of the shuffled order
    mgr.reorder_sift();
    mgr.check_consistency();
    for (std::uint32_t m = 0; m < (1u << nvars); ++m) {
        for (std::uint32_t v = 0; v < nvars; ++v) { a[v] = (m >> v) & 1u; }
        ASSERT_EQ(mgr.eval(h, a), tt_h[m]);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, reorder_property,
                         ::testing::Range(1u, 13u));

} // namespace
} // namespace leq
