/// \file test_problem.cpp
/// \brief Tests for the equation_problem builder: variable layout
/// invariants, partitioned sweep correctness, and input validation.

#include "eq/problem.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace {

using namespace leq;

TEST(problem_builder, variable_layout_uv_block_on_top) {
    const network original = make_counter(5);
    const split_result split = split_latches(original, {2, 4});
    const equation_problem p(split.fixed, original);

    // every u and v variable lies strictly above the boundary; everything
    // else strictly below
    const std::uint32_t boundary = p.uv_boundary_level();
    EXPECT_EQ(boundary, p.u_vars.size() + p.v_vars.size());
    for (const std::uint32_t v : p.u_vars) {
        EXPECT_LT(p.mgr().level_of(v), boundary);
    }
    for (const std::uint32_t v : p.v_vars) {
        EXPECT_LT(p.mgr().level_of(v), boundary);
    }
    for (const auto& group : {p.i_vars, p.o_vars, p.cs_f, p.ns_f, p.cs_s,
                              p.ns_s}) {
        for (const std::uint32_t v : group) {
            EXPECT_GE(p.mgr().level_of(v), boundary);
        }
    }
    EXPECT_GE(p.mgr().level_of(p.dc_cs), boundary);
}

TEST(problem_builder, uv_pairs_interleaved) {
    const network original = make_counter(6);
    const split_result split = split_latches(original, {1, 3, 5});
    const equation_problem p(split.fixed, original);
    for (std::size_t m = 0; m < p.u_vars.size(); ++m) {
        // u_m sits immediately above its v_m partner
        EXPECT_EQ(p.mgr().level_of(p.u_vars[m]) + 1,
                  p.mgr().level_of(p.v_vars[m]));
    }
}

TEST(problem_builder, partitioned_functions_match_network_semantics) {
    const network original = make_lfsr(5, {2});
    const split_result split = split_latches(original, {3, 4});
    const equation_problem p(split.fixed, original);
    bdd_manager& mgr = p.mgr();

    std::mt19937 rng(21);
    for (int trial = 0; trial < 100; ++trial) {
        // random (i, v, cs_f) assignment; compare the swept F functions
        // against the simulator
        std::vector<bool> in(split.fixed.num_inputs());
        std::vector<bool> st(split.fixed.num_latches());
        for (auto&& b : in) { b = (rng() & 1) != 0; }
        for (auto&& b : st) { b = (rng() & 1) != 0; }
        const auto ref = split.fixed.simulate(st, in);

        std::vector<bool> assignment(mgr.num_vars(), false);
        for (std::size_t k = 0; k < p.i_vars.size(); ++k) {
            assignment[p.i_vars[k]] = in[k];
        }
        for (std::size_t k = 0; k < p.v_vars.size(); ++k) {
            assignment[p.v_vars[k]] = in[p.i_vars.size() + k];
        }
        for (std::size_t k = 0; k < p.cs_f.size(); ++k) {
            assignment[p.cs_f[k]] = st[k];
        }
        for (std::size_t j = 0; j < p.f_o.size(); ++j) {
            EXPECT_EQ(mgr.eval(p.f_o[j], assignment), ref.outputs[j]);
        }
        for (std::size_t m = 0; m < p.f_u.size(); ++m) {
            EXPECT_EQ(mgr.eval(p.f_u[m], assignment),
                      ref.outputs[p.f_o.size() + m]);
        }
        for (std::size_t k = 0; k < p.f_next.size(); ++k) {
            EXPECT_EQ(mgr.eval(p.f_next[k], assignment), ref.next_state[k]);
        }
    }
}

TEST(problem_builder, initial_product_state_is_one_minterm) {
    const network original = make_traffic_controller();
    const split_result split = split_latches(original, {0});
    const equation_problem p(split.fixed, original);
    const bdd init = p.initial_product_state();
    const auto nvars =
        static_cast<std::uint32_t>(p.cs_f.size() + p.cs_s.size());
    EXPECT_DOUBLE_EQ(p.mgr().sat_count(init, nvars), 1.0);
}

TEST(problem_builder, ns_to_cs_permutation_is_involution) {
    const network original = make_counter(4);
    const split_result split = split_latches(original, {1});
    const equation_problem p(split.fixed, original);
    const auto perm = p.ns_to_cs_permutation();
    for (std::uint32_t v = 0; v < perm.size(); ++v) {
        EXPECT_EQ(perm[perm[v]], v);
    }
    // cs and ns must map to each other
    for (std::size_t k = 0; k < p.cs_f.size(); ++k) {
        EXPECT_EQ(perm[p.cs_f[k]], p.ns_f[k]);
    }
    // label and input variables stay fixed
    for (const std::uint32_t v : p.u_vars) { EXPECT_EQ(perm[v], v); }
    for (const std::uint32_t v : p.i_vars) { EXPECT_EQ(perm[v], v); }
}

TEST(problem_builder, conformance_is_symmetric_in_structure) {
    const network original = make_shift_xor(4);
    const split_result split = split_latches(original, {2});
    const equation_problem p(split.fixed, original);
    for (std::size_t j = 0; j < p.s_o.size(); ++j) {
        const bdd c = p.conformance(j);
        // conformance holds whenever both outputs agree; spot check by
        // evaluating on assignments where the functions trivially agree
        EXPECT_EQ(c, p.f_o[j].iff(p.s_o[j]));
        EXPECT_EQ(!c, p.f_o[j] ^ p.s_o[j]);
    }
}

TEST(problem_builder, rejects_port_name_mismatch) {
    network f("f");
    f.add_input("wrong_name");
    f.add_input("v0");
    f.add_output("o");
    f.add_output("u0");
    f.add_node("o", {"wrong_name"}, {"1"});
    f.add_node("u0", {"v0"}, {"1"});
    network s("s");
    s.add_input("i");
    s.add_output("o");
    s.add_latch("n", "q", false);
    s.add_node("o", {"i"}, {"1"});
    s.add_node("n", {"q"}, {"1"});
    EXPECT_THROW(equation_problem(f, s), std::invalid_argument);
}

TEST(problem_builder, rejects_f_smaller_than_s) {
    network f("f");
    f.add_input("i");
    f.add_output("o");
    f.add_node("o", {"i"}, {"1"});
    network s("s");
    s.add_input("i");
    s.add_input("j");
    s.add_output("o");
    s.add_latch("n", "q", false);
    s.add_node("o", {"i"}, {"1"});
    s.add_node("n", {"j"}, {"1"});
    EXPECT_THROW(equation_problem(f, s), std::invalid_argument);
}

TEST(problem_builder, all_ns_vars_covers_both_components) {
    const network original = make_counter(4);
    const split_result split = split_latches(original, {0, 3});
    const equation_problem p(split.fixed, original);
    const auto ns = p.all_ns_vars();
    EXPECT_EQ(ns.size(), p.ns_f.size() + p.ns_s.size());
    for (const std::uint32_t v : p.ns_f) {
        EXPECT_NE(std::find(ns.begin(), ns.end(), v), ns.end());
    }
    for (const std::uint32_t v : p.ns_s) {
        EXPECT_NE(std::find(ns.begin(), ns.end(), v), ns.end());
    }
}

} // namespace
