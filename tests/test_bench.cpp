/// \file test_bench.cpp
/// \brief The pinned benchmark trajectory stays trustworthy: workloads are
/// deterministic, the JSON schema round-trips, the compare gate fails on
/// genuine regressions (and only those), the checked-in corpus is
/// byte-identical to what the generators produce, and the checked-in
/// BENCH_PR10.json baseline still parses with its before/after rows.
///
/// Compiled with LEQ_SOURCE_DIR pointing at the repo root so the suite can
/// read bench/corpus/ and BENCH_PR10.json.

#include "cli/bench.hpp"
#include "gen/scenario.hpp"
#include "net/blif.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

namespace {

using namespace leq;

std::string repo_file(const std::string& relative) {
    const std::string path = std::string(LEQ_SOURCE_DIR) + "/" + relative;
    std::ifstream in(path, std::ios::binary);
    if (!in) { return {}; }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/// A small synthetic report exercising one metric of every gated kind.
bench_report make_base_report() {
    bench_report report;
    bench_row row;
    row.workload = "solve/synthetic";
    row.seconds = 1.5;
    row.metrics = {{"cache_lookups", 100000.0},
                   {"cache_hit_rate", 0.5},
                   {"csf_states", 4.0},
                   {"cache_entries", 262144.0}};
    report.rows.push_back(row);
    return report;
}

// ---------------------------------------------------------------------------
// metric policies
// ---------------------------------------------------------------------------

TEST(bench_policy, directions_match_the_documented_gate) {
    EXPECT_EQ(bench_metric_policy("seconds").direction,
              metric_direction::info);
    EXPECT_EQ(bench_metric_policy("cache_entries").direction,
              metric_direction::info);
    EXPECT_EQ(bench_metric_policy("cache_lookups").direction,
              metric_direction::up_bad);
    EXPECT_EQ(bench_metric_policy("gc_runs").direction,
              metric_direction::up_bad);
    EXPECT_EQ(bench_metric_policy("allocated_nodes").direction,
              metric_direction::up_bad);
    EXPECT_EQ(bench_metric_policy("cache_hit_rate").direction,
              metric_direction::down_bad);
    EXPECT_EQ(bench_metric_policy("csf_states").direction,
              metric_direction::exact);
    EXPECT_EQ(bench_metric_policy("reach_states").direction,
              metric_direction::exact);
    EXPECT_EQ(bench_metric_policy("batch_solved").direction,
              metric_direction::exact);
    EXPECT_EQ(bench_metric_policy("saturation_fires").direction,
              metric_direction::exact);
    // unknown names are recorded but never gated
    EXPECT_EQ(bench_metric_policy("some_future_metric").direction,
              metric_direction::info);
}

// ---------------------------------------------------------------------------
// JSON round trip
// ---------------------------------------------------------------------------

TEST(bench_json, report_round_trips_through_json) {
    const bench_report before = make_base_report();
    const std::string json = bench_report_to_json(before);
    const bench_report after = parse_bench_report(json);
    EXPECT_EQ(after.schema, before.schema);
    ASSERT_EQ(after.rows.size(), before.rows.size());
    EXPECT_EQ(after.rows[0].workload, before.rows[0].workload);
    EXPECT_DOUBLE_EQ(after.rows[0].seconds, before.rows[0].seconds);
    ASSERT_EQ(after.rows[0].metrics.size(), before.rows[0].metrics.size());
    for (std::size_t k = 0; k < before.rows[0].metrics.size(); ++k) {
        EXPECT_EQ(after.rows[0].metrics[k].name,
                  before.rows[0].metrics[k].name);
        EXPECT_DOUBLE_EQ(after.rows[0].metrics[k].value,
                         before.rows[0].metrics[k].value);
    }
    // serialization is byte-deterministic
    EXPECT_EQ(bench_report_to_json(after), json);
}

TEST(bench_json, parser_rejects_garbage_and_wrong_schema) {
    EXPECT_THROW((void)parse_bench_report("not json"), std::runtime_error);
    EXPECT_THROW((void)parse_bench_report("{}"), std::runtime_error);
    EXPECT_THROW((void)parse_bench_report(
                     R"({"schema":"something-else","rows":[]})"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// the compare gate
// ---------------------------------------------------------------------------

TEST(bench_compare, identical_reports_pass) {
    const bench_report base = make_base_report();
    const bench_compare_result result = compare_bench_reports(base, base);
    EXPECT_TRUE(result.ok()) << to_string(result);
}

TEST(bench_compare, small_drift_within_budget_passes) {
    const bench_report base = make_base_report();
    bench_report current = base;
    current.rows[0].metrics[0].value = 105000.0; // +5% < 10% budget
    current.rows[0].metrics[1].value = 0.49;     // -0.01 within slack
    const bench_compare_result result = compare_bench_reports(base, current);
    EXPECT_TRUE(result.ok()) << to_string(result);
}

TEST(bench_compare, up_bad_metric_over_budget_fails) {
    const bench_report base = make_base_report();
    bench_report current = base;
    current.rows[0].metrics[0].value = 120000.0; // +20% cache lookups
    const bench_compare_result result = compare_bench_reports(base, current);
    ASSERT_EQ(result.regressions.size(), 1u) << to_string(result);
    EXPECT_EQ(result.regressions[0].workload, "solve/synthetic");
    EXPECT_EQ(result.regressions[0].metric, "cache_lookups");
    EXPECT_NE(to_string(result).find("cache_lookups"), std::string::npos);
}

TEST(bench_compare, down_bad_metric_under_budget_fails) {
    const bench_report base = make_base_report();
    bench_report current = base;
    current.rows[0].metrics[1].value = 0.3; // hit rate collapse
    const bench_compare_result result = compare_bench_reports(base, current);
    ASSERT_EQ(result.regressions.size(), 1u) << to_string(result);
    EXPECT_EQ(result.regressions[0].metric, "cache_hit_rate");
}

TEST(bench_compare, exact_metric_drift_fails) {
    const bench_report base = make_base_report();
    bench_report current = base;
    current.rows[0].metrics[2].value = 5.0; // csf_states is pinned
    const bench_compare_result result = compare_bench_reports(base, current);
    ASSERT_EQ(result.regressions.size(), 1u) << to_string(result);
    EXPECT_EQ(result.regressions[0].metric, "csf_states");
}

TEST(bench_compare, info_metric_drift_is_ignored) {
    const bench_report base = make_base_report();
    bench_report current = base;
    current.rows[0].seconds = 100.0;             // wall clock: never gated
    current.rows[0].metrics[3].value = 1048576.0; // cache geometry: info
    const bench_compare_result result = compare_bench_reports(base, current);
    EXPECT_TRUE(result.ok()) << to_string(result);
}

TEST(bench_compare, lost_workload_coverage_fails) {
    const bench_report base = make_base_report();
    const bench_report current; // empty run
    const bench_compare_result result = compare_bench_reports(base, current);
    EXPECT_FALSE(result.ok());
}

TEST(bench_compare, lost_gated_metric_fails) {
    const bench_report base = make_base_report();
    bench_report current = base;
    current.rows[0].metrics.erase(current.rows[0].metrics.begin()); // drop cache_lookups
    const bench_compare_result result = compare_bench_reports(base, current);
    EXPECT_FALSE(result.ok());
}

TEST(bench_compare, new_workload_is_a_note_not_a_failure) {
    const bench_report base = make_base_report();
    bench_report current = base;
    bench_row extra;
    extra.workload = "solve/new_coverage";
    current.rows.push_back(extra);
    const bench_compare_result result = compare_bench_reports(base, current);
    EXPECT_TRUE(result.ok()) << to_string(result);
    EXPECT_FALSE(result.notes.empty());
}

// ---------------------------------------------------------------------------
// workloads
// ---------------------------------------------------------------------------

TEST(bench_workloads, ids_are_stable_and_unknown_ids_throw) {
    const std::vector<std::string> names = bench_workload_names();
    ASSERT_FALSE(names.empty());
    for (const char* expected :
         {"solve/counter_x256", "reach/mix26", "batch/families",
          "cachefix/reach_mix26/before", "cachefix/reach_mix26/after",
          "cacheways/reach_mix26/before", "cacheways/reach_mix26/after",
          "cacheways/solve_counter_x256/before",
          "cacheways/solve_counter_x256/after",
          "cacheways/batch_families/before",
          "cacheways/batch_families/after",
          "saturation/reach_mix26/before", "saturation/reach_mix26/after",
          "saturation/reach_chain/before", "saturation/reach_chain/after",
          "saturation/reach_lfsr14/before", "saturation/reach_lfsr14/after",
          "saturation/solve_counter_x256/before",
          "saturation/solve_counter_x256/after"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_THROW((void)run_bench_workload("no/such/workload"),
                 std::invalid_argument);
}

TEST(bench_workloads, reach_workload_is_deterministic_across_runs) {
    const bench_row first = run_bench_workload("reach/mix26");
    const bench_row second = run_bench_workload("reach/mix26");
    ASSERT_EQ(first.metrics.size(), second.metrics.size());
    for (std::size_t k = 0; k < first.metrics.size(); ++k) {
        EXPECT_EQ(first.metrics[k].name, second.metrics[k].name);
        EXPECT_DOUBLE_EQ(first.metrics[k].value, second.metrics[k].value)
            << first.metrics[k].name;
    }
}

// ---------------------------------------------------------------------------
// gen scale semantics the workloads rely on
// ---------------------------------------------------------------------------

TEST(bench_gen_scale, scale_one_is_byte_identical_to_legacy_output) {
    // fuzz reproducers and pinned baselines depend on scale=1 being the
    // exact historical generator output, for every family
    for (const scenario_family family : all_scenario_families) {
        const scenario legacy = make_scenario(family, 5);
        const scenario scaled = make_scenario(family, 5, 1);
        EXPECT_EQ(legacy.name, scaled.name);
        EXPECT_EQ(write_blif_string(legacy.fixed),
                  write_blif_string(scaled.fixed))
            << legacy.name;
        EXPECT_EQ(write_blif_string(legacy.spec),
                  write_blif_string(scaled.spec))
            << legacy.name;
    }
}

TEST(bench_gen_scale, scaling_grows_the_state_space) {
    for (const scenario_family family : all_scenario_families) {
        const scenario small = make_scenario(family, 5, 1);
        const scenario big = make_scenario(family, 5, 16); // +4 state bits
        EXPECT_GT(big.fixed.num_latches(), small.fixed.num_latches())
            << small.name;
        EXPECT_NE(big.name, small.name);
    }
}

// ---------------------------------------------------------------------------
// checked-in artifacts
// ---------------------------------------------------------------------------

TEST(bench_artifacts, corpus_files_match_the_generators_byte_for_byte) {
    const std::vector<bench_corpus_file> corpus = bench_corpus_files();
    ASSERT_FALSE(corpus.empty());
    for (const bench_corpus_file& file : corpus) {
        const std::string checked_in = repo_file("bench/corpus/" + file.name);
        ASSERT_FALSE(checked_in.empty())
            << "bench/corpus/" << file.name
            << " missing — regenerate with leq_bench_run --write-corpus";
        EXPECT_EQ(checked_in, file.text)
            << "bench/corpus/" << file.name
            << " drifted — regenerate with leq_bench_run --write-corpus";
    }
}

TEST(bench_artifacts, checked_in_baseline_parses_and_pins_the_wins) {
    const std::string json = repo_file("BENCH_PR10.json");
    ASSERT_FALSE(json.empty()) << "BENCH_PR10.json missing at the repo root";
    const bench_report baseline = parse_bench_report(json);
    EXPECT_EQ(baseline.schema, "leq-bench-v1");

    // every pinned workload is present...
    for (const std::string& name : bench_workload_names()) {
        const auto at = std::find_if(
            baseline.rows.begin(), baseline.rows.end(),
            [&name](const bench_row& row) { return row.workload == name; });
        EXPECT_NE(at, baseline.rows.end()) << name;
    }

    const auto row = [&baseline](const std::string& name) -> const bench_row* {
        const auto at = std::find_if(
            baseline.rows.begin(), baseline.rows.end(),
            [&name](const bench_row& r) { return r.workload == name; });
        return at == baseline.rows.end() ? nullptr : &*at;
    };
    const auto rate = [&row](const std::string& name) {
        const bench_row* r = row(name);
        EXPECT_NE(r, nullptr) << name;
        const bench_metric* m =
            r == nullptr ? nullptr : r->find("cache_hit_rate");
        EXPECT_NE(m, nullptr) << name;
        return m == nullptr ? 0.0 : m->value;
    };

    // ...the cache-sizing before/after rows still show PR 7's win...
    EXPECT_GT(rate("cachefix/reach_mix26/after"),
              rate("cachefix/reach_mix26/before"))
        << "the baseline no longer demonstrates the cache-sizing win";

    // ...and the set-associative aged cache shows its own: at least a
    // 2-point hit-rate gain over the historical clear-on-GC single-slot
    // geometry on two of the three pinned pairs
    int wins = 0;
    for (const char* pair : {"cacheways/reach_mix26",
                             "cacheways/solve_counter_x256",
                             "cacheways/batch_families"}) {
        const double gain = rate(std::string(pair) + "/after") -
                            rate(std::string(pair) + "/before");
        if (gain >= 0.02) { ++wins; }
    }
    EXPECT_GE(wins, 2)
        << "the baseline no longer demonstrates the associativity/aging win";

    // ...and the saturation strategy shows its own.  On every pinned pair
    // the fixpoint is identical (the reached-state count is pinned equal);
    // on the deep-sequential machines — one new state per step, so the
    // textbook bfs baseline re-images the whole growing reached set
    // thousands of times — saturation's frontier chunking must show
    // strictly less cache traffic: a margin on the chain counter (whose
    // compact {0..k} reached sets let the computed cache absorb most of
    // the re-imaging) and an order of magnitude on the LFSR (whose
    // irregular reached set defeats that memoization).  mix26 (wide,
    // shallow layers) is pinned for equivalence only: its honest numbers
    // show the split overhead without a win, which is exactly why the
    // strategy is opt-in.
    const auto metric = [&row](const std::string& name,
                               const std::string& which) {
        const bench_row* r = row(name);
        EXPECT_NE(r, nullptr) << name;
        const bench_metric* m = r == nullptr ? nullptr : r->find(which);
        EXPECT_NE(m, nullptr) << name << " " << which;
        return m == nullptr ? 0.0 : m->value;
    };
    for (const char* pair :
         {"saturation/reach_mix26", "saturation/reach_chain",
          "saturation/reach_lfsr14"}) {
        EXPECT_DOUBLE_EQ(metric(std::string(pair) + "/after", "reach_states"),
                         metric(std::string(pair) + "/before", "reach_states"))
            << pair << ": saturation reached a different fixpoint than bfs";
        EXPECT_GT(metric(std::string(pair) + "/after", "saturation_fires"),
                  0.0)
            << pair;
    }
    for (const char* pair :
         {"saturation/reach_chain", "saturation/reach_lfsr14"}) {
        EXPECT_LT(metric(std::string(pair) + "/after", "cache_lookups"),
                  metric(std::string(pair) + "/before", "cache_lookups"))
            << pair
            << ": the baseline no longer demonstrates the saturation win";
    }
    // the LFSR pair is the order-of-magnitude case: anything under 5x
    // means the strategy stopped exploiting the frontier
    EXPECT_LT(metric("saturation/reach_lfsr14/after", "cache_lookups") * 5.0,
              metric("saturation/reach_lfsr14/before", "cache_lookups"));
}

// ---------------------------------------------------------------------------
// the delta table
// ---------------------------------------------------------------------------

TEST(bench_delta, table_reports_gated_movement_and_coverage_changes) {
    const bench_report base = make_base_report();
    bench_report current = base;
    current.rows[0].metrics[0].value = 90000.0; // -10% cache_lookups
    bench_row extra;
    extra.workload = "solve/new_coverage";
    current.rows.push_back(extra);
    const std::string table = bench_delta_table(base, current);
    // header + the moved metric with a signed percentage
    EXPECT_NE(table.find("| workload | metric | base | current | delta |"),
              std::string::npos)
        << table;
    EXPECT_NE(table.find("| solve/synthetic | cache_lookups | 100000 | "
                         "90000 | -10% |"),
              std::string::npos)
        << table;
    // unchanged gated metrics render "=", info metrics don't render at all
    EXPECT_NE(table.find("| solve/synthetic | cache_hit_rate | 0.5 | 0.5 "
                         "| = |"),
              std::string::npos)
        << table;
    EXPECT_EQ(table.find("cache_entries"), std::string::npos) << table;
    // coverage changes are visible
    EXPECT_NE(table.find("| solve/new_coverage | _new workload_ |"),
              std::string::npos)
        << table;
}

} // namespace
