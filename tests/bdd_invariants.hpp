/// \file bdd_invariants.hpp
/// \brief Shared gtest helpers for the complement-edge canonicity contract.
#pragma once

#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

/// Public-API shadow of the canonical-form invariant: from a regular (even
/// reference) handle the then-cofactor must again be regular, recursively
/// over the whole reachable DAG.  The complement bit of a handle is its
/// reference's low bit; `!f` flips it for free, which is how a complemented
/// root is normalized before descending.
inline void expect_regular_then_edges(const leq::bdd& f) {
    const leq::bdd g = (f.index() & 1u) != 0 ? !f : f;
    if (g.is_const()) { return; }
    ASSERT_EQ(g.high().index() & 1u, 0u)
        << "then-edge of a regular node carries a complement bit";
    expect_regular_then_edges(g.high());
    expect_regular_then_edges(g.low());
}
