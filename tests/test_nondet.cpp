/// \file test_nondet.cpp
/// \brief Non-deterministic relation partitions via choice inputs (paper,
/// footnote 2): F's parts become relations T_k(i,v,cs,ns_k) =
/// exists_w [ns_k == T_k(i,v,w,cs)].

#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

/// F where the choice input w is visible to X (u = w) and corrupts the
/// output o = v XOR w.  The only way to conform to a constant-0 spec is
/// v = u at every step: nondeterminism the unknown must actively track.
network make_observable_chaos_f() {
    network f("chaos_f");
    f.add_input("a");  // external input i (unused by the logic)
    f.add_input("xv"); // X's output v
    f.add_input("w");  // the choice input (last, per the convention)
    // o = xv XOR w
    f.add_node("z", {"xv", "w"}, {"01", "10"});
    f.add_output("z");
    // u = w (X observes the choice)
    f.add_node("xu", {"w"}, {"1"});
    f.add_output("xu");
    // a dummy latch keeps F sequential
    f.add_latch("a", "junk", false);
    f.validate();
    return f;
}

/// spec: output constantly 0, one dummy latch.
network make_zero_spec() {
    network s("zero_spec");
    s.add_input("a");
    s.add_latch("a", "s0", false);
    s.add_node("z", {"s0"}, {}); // empty cover: constant 0
    s.add_output("z");
    s.validate();
    return s;
}

/// F where w corrupts the output invisibly (u carries no information).
network make_hidden_chaos_f() {
    network f("hidden_chaos_f");
    f.add_input("a");
    f.add_input("xv");
    f.add_input("w");
    f.add_node("z", {"xv", "w"}, {"01", "10"}); // o = xv XOR w
    f.add_node("xu", {"a"}, {"1"});             // u = a: no w information
    f.add_output("z");
    f.add_output("xu");
    f.add_latch("a", "junk", false);
    f.validate();
    return f;
}

// ---------------------------------------------------------------------------
// unused choice inputs change nothing
// ---------------------------------------------------------------------------

TEST(nondet, ignored_choice_input_preserves_the_csf) {
    const network original = make_counter(3);
    split_result split = split_latches(original, {2});

    // reference: the deterministic problem
    equation_problem det(split.fixed, original);
    const solve_result det_result = solve_partitioned(det);
    ASSERT_EQ(det_result.status, solve_status::ok);

    // same F plus a dangling choice input
    network f_w = split.fixed;
    f_w.add_input("w_choice");
    equation_problem nd(f_w, original, 1);
    ASSERT_EQ(nd.w_vars.size(), 1u);
    const solve_result nd_result = solve_partitioned(nd);
    ASSERT_EQ(nd_result.status, solve_status::ok);

    EXPECT_EQ(det_result.csf_states, nd_result.csf_states);
    EXPECT_EQ(det_result.empty_solution, nd_result.empty_solution);
    // languages live in different managers; compare state/transition counts
    EXPECT_EQ(det_result.csf->num_transitions(),
              nd_result.csf->num_transitions());
}

TEST(nondet, ignored_choice_input_all_flows_agree) {
    const network original = make_counter(3);
    split_result split = split_latches(original, {2});
    network f_w = split.fixed;
    f_w.add_input("w_choice");
    equation_problem problem(f_w, original, 1);

    const solve_result part = solve_partitioned(problem);
    const solve_result mono = solve_monolithic(problem);
    const solve_result oracle = solve_explicit(problem, f_w, original);
    ASSERT_EQ(part.status, solve_status::ok);
    ASSERT_EQ(mono.status, solve_status::ok);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*part.csf, *mono.csf));
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf));
}

// ---------------------------------------------------------------------------
// observable nondeterminism: X must track the choice
// ---------------------------------------------------------------------------

TEST(nondet, observable_chaos_forces_v_equals_u) {
    const network f = make_observable_chaos_f();
    const network s = make_zero_spec();
    equation_problem problem(f, s, 1);
    const solve_result r = solve_partitioned(problem);
    ASSERT_EQ(r.status, solve_status::ok);
    ASSERT_FALSE(r.empty_solution);
    const automaton& csf = *r.csf;
    bdd_manager& mgr = problem.mgr();
    const std::uint32_t u0 = problem.u_vars[0];
    const std::uint32_t v0 = problem.v_vars[0];

    // the copy machine (v = u, combinational) is a solution...
    automaton copy(mgr, csf.label_vars());
    copy.add_state(true);
    copy.set_initial(0);
    copy.add_transition(0, 0, mgr.var(u0).iff(mgr.var(v0)));
    EXPECT_TRUE(language_contained(copy, csf));

    // ...but any v != u step is not: the single-letter word (u=0, v=1)
    std::vector<std::vector<bool>> word(1,
                                        std::vector<bool>(mgr.num_vars()));
    word[0][u0] = false;
    word[0][v0] = true;
    EXPECT_FALSE(accepts(csf, word));
    word[0][u0] = true;
    word[0][v0] = true;
    EXPECT_TRUE(accepts(csf, word));
}

TEST(nondet, observable_chaos_flows_agree) {
    const network f = make_observable_chaos_f();
    const network s = make_zero_spec();
    equation_problem problem(f, s, 1);
    const solve_result part = solve_partitioned(problem);
    const solve_result mono = solve_monolithic(problem);
    const solve_result oracle = solve_explicit(problem, f, s);
    ASSERT_EQ(part.status, solve_status::ok);
    ASSERT_EQ(mono.status, solve_status::ok);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*part.csf, *mono.csf));
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf));
    EXPECT_FALSE(part.empty_solution);
}

// ---------------------------------------------------------------------------
// hidden nondeterminism: no solution can exist
// ---------------------------------------------------------------------------

TEST(nondet, hidden_chaos_has_no_solution) {
    const network f = make_hidden_chaos_f();
    const network s = make_zero_spec();
    equation_problem problem(f, s, 1);
    const solve_result part = solve_partitioned(problem);
    ASSERT_EQ(part.status, solve_status::ok);
    EXPECT_TRUE(part.empty_solution);

    const solve_result mono = solve_monolithic(problem);
    ASSERT_EQ(mono.status, solve_status::ok);
    EXPECT_TRUE(mono.empty_solution);

    const solve_result oracle = solve_explicit(problem, f, s);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_TRUE(oracle.empty_solution);
}

// ---------------------------------------------------------------------------
// interface validation
// ---------------------------------------------------------------------------

TEST(nondet, problem_rejects_too_many_choice_inputs) {
    const network original = make_counter(3);
    split_result split = split_latches(original, {2});
    // claiming more choice inputs than F has beyond the spec's
    EXPECT_THROW(equation_problem(split.fixed, original,
                                  split.fixed.num_inputs()),
                 std::invalid_argument);
}

TEST(nondet, choice_vars_are_quantified_in_hidden_inputs) {
    const network f = make_observable_chaos_f();
    const network s = make_zero_spec();
    equation_problem problem(f, s, 1);
    const auto hidden = problem.hidden_input_vars();
    EXPECT_EQ(hidden.size(), problem.i_vars.size() + problem.w_vars.size());
    for (const std::uint32_t w : problem.w_vars) {
        EXPECT_NE(std::find(hidden.begin(), hidden.end(), w), hidden.end());
    }
}

// ---------------------------------------------------------------------------
// verification works on nondeterministic instances
// ---------------------------------------------------------------------------

TEST(nondet, composition_check_accepts_the_copy_machine) {
    const network f = make_observable_chaos_f();
    const network s = make_zero_spec();
    equation_problem problem(f, s, 1);
    bdd_manager& mgr = problem.mgr();
    const solve_result r = solve_partitioned(problem);
    ASSERT_EQ(r.status, solve_status::ok);

    automaton copy(mgr, r.csf->label_vars());
    copy.add_state(true);
    copy.set_initial(0);
    copy.add_transition(
        0, 0, mgr.var(problem.u_vars[0]).iff(mgr.var(problem.v_vars[0])));
    EXPECT_TRUE(verify_composition_contained(problem, copy));

    // the anything-goes machine is not a solution, and the diagnosis says so
    automaton anything(mgr, r.csf->label_vars());
    anything.add_state(true);
    anything.set_initial(0);
    anything.add_transition(0, 0, mgr.one());
    EXPECT_FALSE(verify_composition_contained(problem, anything));
    const auto d = diagnose_composition_contained(problem, anything);
    EXPECT_FALSE(d.ok);
    EXPECT_FALSE(d.trace.empty());
}

} // namespace
