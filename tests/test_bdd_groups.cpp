/// \file test_bdd_groups.cpp
/// \brief Group sifting (blocks stay adjacent) and simultaneous composition.

#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

namespace leq {
namespace {

bdd random_function(bdd_manager& mgr, std::uint32_t nvars, std::uint32_t seed,
                    std::size_t ops = 50) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::uint32_t> pick(0, nvars - 1);
    bdd f = mgr.literal(pick(rng), (rng() & 1u) != 0);
    for (std::size_t k = 0; k < ops; ++k) {
        const bdd lit = mgr.literal(pick(rng), (rng() & 1u) != 0);
        switch (rng() % 3) {
            case 0: f = f & lit; break;
            case 1: f = f | lit; break;
            default: f = f ^ lit; break;
        }
    }
    return f;
}

// ---------------------------------------------------------------------------
// group sifting
// ---------------------------------------------------------------------------

TEST(bdd_groups, rejects_bad_partitions) {
    bdd_manager mgr(4);
    EXPECT_THROW(mgr.reorder_sift_groups({{0, 1}, {1, 2, 3}}),
                 std::invalid_argument); // overlap
    EXPECT_THROW(mgr.reorder_sift_groups({{0, 1}}), std::invalid_argument);
    EXPECT_THROW(mgr.reorder_sift_groups({{0, 1}, {}, {2, 3}}),
                 std::invalid_argument);
    EXPECT_THROW(mgr.reorder_sift_groups({{0, 1}, {2, 9}}),
                 std::invalid_argument);
}

TEST(bdd_groups, groups_end_up_adjacent_in_listed_order) {
    bdd_manager mgr(8);
    const bdd f = random_function(mgr, 8, 5);
    (void)f;
    const std::vector<std::vector<std::uint32_t>> groups = {
        {0, 4}, {1, 5}, {2, 6}, {3, 7}};
    mgr.reorder_sift_groups(groups);
    mgr.check_consistency();
    for (const auto& group : groups) {
        for (std::size_t k = 1; k < group.size(); ++k) {
            EXPECT_EQ(mgr.level_of(group[k]), mgr.level_of(group[k - 1]) + 1)
                << "group member " << group[k];
        }
    }
}

TEST(bdd_groups, preserves_semantics) {
    bdd_manager mgr(9);
    std::vector<bdd> funcs;
    for (std::uint32_t s = 0; s < 4; ++s) {
        funcs.push_back(random_function(mgr, 9, 20 + s));
    }
    std::vector<std::vector<bool>> truth(funcs.size());
    std::vector<bool> a(9);
    for (std::uint32_t m = 0; m < (1u << 9); ++m) {
        for (std::uint32_t v = 0; v < 9; ++v) { a[v] = (m >> v) & 1u; }
        for (std::size_t k = 0; k < funcs.size(); ++k) {
            truth[k].push_back(mgr.eval(funcs[k], a));
        }
    }
    mgr.reorder_sift_groups({{0, 1, 2}, {3, 4}, {5}, {6, 7, 8}});
    mgr.check_consistency();
    for (std::uint32_t m = 0; m < (1u << 9); ++m) {
        for (std::uint32_t v = 0; v < 9; ++v) { a[v] = (m >> v) & 1u; }
        for (std::size_t k = 0; k < funcs.size(); ++k) {
            ASSERT_EQ(mgr.eval(funcs[k], a), truth[k][m]) << m;
        }
    }
}

TEST(bdd_groups, paired_blocks_recover_linear_size) {
    // f = (x0 ~ y0) & (x1 ~ y1) & ... with pairs split far apart; group
    // sifting with {x_k, y_k} blocks must recover the linear pairing
    constexpr std::uint32_t pairs = 5;
    bdd_manager mgr(2 * pairs);
    // creation order: all x first, then all y (the bad arrangement)
    bdd f = mgr.one();
    for (std::uint32_t p = 0; p < pairs; ++p) {
        f &= mgr.var(p).iff(mgr.var(pairs + p));
    }
    const std::size_t bad = mgr.dag_size(f);
    std::vector<std::vector<std::uint32_t>> groups;
    for (std::uint32_t p = 0; p < pairs; ++p) {
        groups.push_back({p, pairs + p});
    }
    mgr.reorder_sift_groups(groups);
    mgr.check_consistency();
    const std::size_t good = mgr.dag_size(f);
    EXPECT_LT(good, bad);
    EXPECT_LE(good, 3 * pairs + 2); // linear in the paired order
}

TEST(bdd_groups, singleton_groups_behave_like_plain_sifting) {
    bdd_manager mgr(10);
    const bdd f = random_function(mgr, 10, 77, 120);
    std::vector<std::vector<std::uint32_t>> singletons;
    for (std::uint32_t v = 0; v < 10; ++v) { singletons.push_back({v}); }
    const std::size_t grouped = mgr.reorder_sift_groups(singletons);
    EXPECT_LE(grouped, mgr.dag_size(f) + 16); // sane scale
    mgr.check_consistency();
}

// ---------------------------------------------------------------------------
// compose_vector
// ---------------------------------------------------------------------------

TEST(compose_vector, matches_truth_table_substitution) {
    bdd_manager mgr(6);
    const bdd f = random_function(mgr, 6, 9);
    // substitute x0 <- x2 & x3, x1 <- x4 ^ x5 simultaneously
    const bdd g0 = mgr.var(2) & mgr.var(3);
    const bdd g1 = mgr.var(4) ^ mgr.var(5);
    const bdd composed = mgr.compose_vector(f, {{0, g0}, {1, g1}});
    std::vector<bool> a(6);
    for (std::uint32_t m = 0; m < (1u << 6); ++m) {
        for (std::uint32_t v = 0; v < 6; ++v) { a[v] = (m >> v) & 1u; }
        std::vector<bool> b = a;
        b[0] = mgr.eval(g0, a);
        b[1] = mgr.eval(g1, a);
        ASSERT_EQ(mgr.eval(composed, a), mgr.eval(f, b)) << m;
    }
}

TEST(compose_vector, simultaneous_differs_from_chained) {
    // swap x0 and x1 through composition: simultaneous substitution swaps,
    // chained substitution collapses both onto one variable
    bdd_manager mgr(2);
    const bdd f = mgr.var(0) & !mgr.var(1);
    const bdd swapped =
        mgr.compose_vector(f, {{0, mgr.var(1)}, {1, mgr.var(0)}});
    EXPECT_EQ(swapped, mgr.var(1) & !mgr.var(0));
    const bdd chained =
        mgr.compose(mgr.compose(f, 0, mgr.var(1)), 1, mgr.var(0));
    EXPECT_EQ(chained, mgr.zero()); // x1 & !x1 after the collapse
}

TEST(compose_vector, empty_substitution_is_identity) {
    bdd_manager mgr(4);
    const bdd f = random_function(mgr, 4, 3);
    EXPECT_EQ(mgr.compose_vector(f, {}), f);
}

TEST(compose_vector, agrees_with_single_compose_when_disjoint) {
    bdd_manager mgr(8);
    const bdd f = random_function(mgr, 8, 31);
    const bdd g = mgr.var(6) | mgr.var(7); // fresh variables only
    EXPECT_EQ(mgr.compose_vector(f, {{2, g}}), mgr.compose(f, 2, g));
}

TEST(compose_vector, image_by_substitution_matches_relational_product) {
    // the classic identity: Img(ns) of a state set under next-state
    // functions equals substituting the functions into the set's complement
    // structure — here checked as: for a cube set of states,
    // exists_{cs}(AND_k [ns_k == T_k] & set(cs)) == rename(compose...)
    // simplified to a direct check on a 2-latch system
    bdd_manager mgr(6); // cs0 cs1 i ns0 ns1 (+1 spare)
    const std::uint32_t cs0 = 0, cs1 = 1, in = 2, ns0 = 3, ns1 = 4;
    const bdd t0 = mgr.var(in) & mgr.var(cs1);  // T0(i, cs)
    const bdd t1 = (!mgr.var(in)) | mgr.var(cs0); // T1(i, cs)
    const bdd from = (!mgr.var(cs0)) & (!mgr.var(cs1));
    // relational product
    const bdd rel = (mgr.var(ns0).iff(t0)) & (mgr.var(ns1).iff(t1));
    const bdd img_rel =
        mgr.and_exists(rel, from, mgr.cube({cs0, cs1, in}));
    // substitution: characteristic of image = exists_{cs,i}(from & ns==T)
    // computed via compose on the complement-free form; compare pointwise
    for (std::uint32_t m = 0; m < 4; ++m) {
        std::vector<bool> a(6, false);
        a[ns0] = (m & 1) != 0;
        a[ns1] = (m & 2) != 0;
        // img_rel(ns) true iff exists i: T(i, 00) == ns
        bool expect = false;
        for (int i = 0; i < 2; ++i) {
            std::vector<bool> b(6, false);
            b[in] = i != 0;
            const bool v0 = mgr.eval(t0, b);
            const bool v1 = mgr.eval(t1, b);
            expect = expect || (v0 == a[ns0] && v1 == a[ns1]);
        }
        EXPECT_EQ(mgr.eval(img_rel, a), expect) << m;
    }
}

} // namespace
} // namespace leq
