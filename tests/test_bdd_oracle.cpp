/// \file test_bdd_oracle.cpp
/// \brief Exhaustive truth-table oracle for the complement-edge BDD engine.
///
/// Every BDD operation is cross-checked against independent bit-vector
/// semantics: a function over n <= 12 variables is a 2^n-bit table, each
/// operator a few word-wise instructions.  Random expression DAGs mix
/// and/or/xor/not/ite/exists/forall/relprod (and_exists) and substitution
/// (compose/permute/cofactor), and after every step the new node must agree
/// with the oracle on all 2^n rows.
///
/// On top of pointwise agreement the suite asserts the complement-edge
/// canonicity contract:
///  * double negation restores the exact handle (`!!f == f` by reference);
///  * De Morgan forms are handle-identical, not merely equivalent;
///  * a regular (even-reference) handle's then-cofactor is regular — the
///    public-API shadow of the "stored then-edges carry no complement bit"
///    invariant — checked recursively over the whole reachable DAG;
///  * f and !f have the same dag_size (they share every node);
///  * check_consistency() validates the unique table (no duplicate keys, no
///    complemented then-edge, i.e. no function present in both phases).

#include "bdd/bdd.hpp"
#include "bdd_invariants.hpp"
#include "gen/scenario.hpp" // test_seed

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

namespace {

using leq::bdd;
using leq::bdd_manager;

// ---------------------------------------------------------------------------
// bit-vector truth tables (the oracle)
// ---------------------------------------------------------------------------

using words = std::vector<std::uint64_t>;

std::size_t tt_rows(std::uint32_t nvars) { return std::size_t{1} << nvars; }

std::size_t tt_words(std::uint32_t nvars) {
    return nvars >= 6 ? (std::size_t{1} << (nvars - 6)) : 1;
}

std::uint64_t tt_tail_mask(std::uint32_t nvars) {
    return nvars >= 6 ? ~0ull : ((1ull << (1u << nvars)) - 1);
}

bool tt_bit(const words& t, std::size_t row) {
    return ((t[row >> 6] >> (row & 63)) & 1ull) != 0;
}

void tt_assign(words& t, std::size_t row, bool value) {
    if (value) {
        t[row >> 6] |= 1ull << (row & 63);
    } else {
        t[row >> 6] &= ~(1ull << (row & 63));
    }
}

words tt_const(std::uint32_t nvars, bool value) {
    words t(tt_words(nvars), value ? ~0ull : 0ull);
    if (value) { t.back() &= tt_tail_mask(nvars); }
    return t;
}

words tt_var(std::uint32_t nvars, std::uint32_t v) {
    words t = tt_const(nvars, false);
    for (std::size_t r = 0; r < tt_rows(nvars); ++r) {
        tt_assign(t, r, ((r >> v) & 1) != 0);
    }
    return t;
}

words tt_not(const words& a, std::uint32_t nvars) {
    words t(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) { t[k] = ~a[k]; }
    t.back() &= tt_tail_mask(nvars);
    return t;
}

words tt_bin(const words& a, const words& b, int op) {
    words t(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        t[k] = op == 0 ? (a[k] & b[k]) : op == 1 ? (a[k] | b[k])
                                                 : (a[k] ^ b[k]);
    }
    return t;
}

words tt_ite(const words& f, const words& g, const words& h,
             std::uint32_t nvars) {
    words t(f.size());
    for (std::size_t k = 0; k < f.size(); ++k) {
        t[k] = (f[k] & g[k]) | (~f[k] & h[k]);
    }
    t.back() &= tt_tail_mask(nvars);
    return t;
}

/// Smooth (existential) or consense (universal) over one variable.
words tt_quant1(const words& a, std::uint32_t nvars, std::uint32_t v,
                bool universal) {
    words t = a;
    for (std::size_t r = 0; r < tt_rows(nvars); ++r) {
        const bool b0 = tt_bit(a, r & ~(std::size_t{1} << v));
        const bool b1 = tt_bit(a, r | (std::size_t{1} << v));
        tt_assign(t, r, universal ? (b0 && b1) : (b0 || b1));
    }
    return t;
}

words tt_quant(const words& a, std::uint32_t nvars,
               const std::vector<std::uint32_t>& vars, bool universal) {
    words t = a;
    for (const std::uint32_t v : vars) { t = tt_quant1(t, nvars, v, universal); }
    return t;
}

/// Substitute g for variable v in f.
words tt_compose(const words& f, std::uint32_t v, const words& g,
                 std::uint32_t nvars) {
    words t = tt_const(nvars, false);
    for (std::size_t r = 0; r < tt_rows(nvars); ++r) {
        const std::size_t rr = tt_bit(g, r)
                                   ? (r | (std::size_t{1} << v))
                                   : (r & ~(std::size_t{1} << v));
        tt_assign(t, r, tt_bit(f, rr));
    }
    return t;
}

/// Rename variable v to perm[v] in f: result(x) = f(x[perm[0]], ...).
words tt_permute(const words& f, const std::vector<std::uint32_t>& perm,
                 std::uint32_t nvars) {
    words t = tt_const(nvars, false);
    for (std::size_t r = 0; r < tt_rows(nvars); ++r) {
        std::size_t rr = 0;
        for (std::uint32_t v = 0; v < nvars; ++v) {
            if ((r >> perm[v]) & 1) { rr |= std::size_t{1} << v; }
        }
        tt_assign(t, r, tt_bit(f, rr));
    }
    return t;
}

std::size_t tt_count(const words& a) {
    std::size_t n = 0;
    for (const std::uint64_t w : a) {
        n += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return n;
}

// ---------------------------------------------------------------------------
// agreement + canonicity checks
// ---------------------------------------------------------------------------

/// Pointwise agreement between a BDD and its oracle table.
void expect_matches(bdd_manager& mgr, const bdd& f, const words& t,
                    std::uint32_t nvars, const char* what) {
    std::vector<bool> a(nvars);
    for (std::size_t r = 0; r < tt_rows(nvars); ++r) {
        for (std::uint32_t v = 0; v < nvars; ++v) { a[v] = ((r >> v) & 1) != 0; }
        ASSERT_EQ(mgr.eval(f, a), tt_bit(t, r))
            << what << ": disagrees with the oracle at row " << r;
    }
}

void expect_canonicity(bdd_manager& mgr, const bdd& f, const bdd& g,
                       std::uint32_t nvars) {
    // double negation restores the handle exactly
    ASSERT_EQ((!(!f)).index(), f.index());
    // De Morgan and xor-complement forms are handle-identical
    ASSERT_EQ((!(f & g)).index(), ((!f) | (!g)).index());
    ASSERT_EQ((!(f | g)).index(), ((!f) & (!g)).index());
    ASSERT_EQ((f ^ mgr.one()).index(), (!f).index());
    // f and !f share every node
    ASSERT_EQ(mgr.dag_size(f), mgr.dag_size(!f));
    // complementary sat counts
    ASSERT_DOUBLE_EQ(mgr.sat_count(f, nvars) + mgr.sat_count(!f, nvars),
                     std::pow(2.0, nvars));
    expect_regular_then_edges(f);
}

// ---------------------------------------------------------------------------
// random expression DAGs
// ---------------------------------------------------------------------------

struct oracle_params {
    unsigned seed;
    std::uint32_t min_vars;
    std::uint32_t max_vars;
    std::size_t ops;
};

void run_expression_dag(const oracle_params& p) {
    SCOPED_TRACE("seed " + std::to_string(p.seed) +
                 " (replay: LEQ_TEST_SEED=" + std::to_string(p.seed) + ")");
    std::mt19937 rng(p.seed * 2654435761u + 13);
    std::uniform_int_distribution<std::uint32_t> pick_nvars(p.min_vars,
                                                            p.max_vars);
    const std::uint32_t nvars = pick_nvars(rng);
    bdd_manager mgr(nvars);

    // seed pool: literals of both phases and the constants
    std::vector<std::pair<bdd, words>> pool;
    pool.emplace_back(mgr.zero(), tt_const(nvars, false));
    pool.emplace_back(mgr.one(), tt_const(nvars, true));
    for (std::uint32_t v = 0; v < nvars; ++v) {
        pool.emplace_back(mgr.var(v), tt_var(nvars, v));
        pool.emplace_back(mgr.nvar(v),
                          tt_not(tt_var(nvars, v), nvars));
    }

    const auto pick = [&]() -> const std::pair<bdd, words>& {
        std::uniform_int_distribution<std::size_t> d(0, pool.size() - 1);
        return pool[d(rng)];
    };
    const auto pick_vars = [&](std::size_t count) {
        std::vector<std::uint32_t> vars(nvars);
        std::iota(vars.begin(), vars.end(), 0u);
        std::shuffle(vars.begin(), vars.end(), rng);
        vars.resize(std::min(count, vars.size()));
        return vars;
    };

    for (std::size_t step = 0; step < p.ops; ++step) {
        std::uniform_int_distribution<int> pick_op(0, 9);
        const int op = pick_op(rng);
        bdd f;
        words t;
        switch (op) {
        case 0:
        case 1:
        case 2: { // and / or / xor
            const auto& [af, at] = pick();
            const auto& [bf, bt] = pick();
            f = op == 0 ? (af & bf) : op == 1 ? (af | bf) : (af ^ bf);
            t = tt_bin(at, bt, op);
            break;
        }
        case 3: { // not
            const auto& [af, at] = pick();
            f = !af;
            t = tt_not(at, nvars);
            break;
        }
        case 4: { // ite
            const auto& [af, at] = pick();
            const auto& [bf, bt] = pick();
            const auto& [cf, ct] = pick();
            f = mgr.ite(af, bf, cf);
            t = tt_ite(at, bt, ct, nvars);
            break;
        }
        case 5: { // exists
            const auto& [af, at] = pick();
            const auto vars = pick_vars(1 + rng() % 3);
            f = mgr.exists(af, mgr.cube(vars));
            t = tt_quant(at, nvars, vars, false);
            break;
        }
        case 6: { // forall
            const auto& [af, at] = pick();
            const auto vars = pick_vars(1 + rng() % 3);
            f = mgr.forall(af, mgr.cube(vars));
            t = tt_quant(at, nvars, vars, true);
            break;
        }
        case 7: { // relational product
            const auto& [af, at] = pick();
            const auto& [bf, bt] = pick();
            const auto vars = pick_vars(1 + rng() % 3);
            f = mgr.and_exists(af, bf, mgr.cube(vars));
            t = tt_quant(tt_bin(at, bt, 0), nvars, vars, false);
            // the fused form must equal the two-step form exactly
            ASSERT_EQ(f.index(),
                      mgr.exists(af & bf, mgr.cube(vars)).index());
            break;
        }
        case 8: { // compose (substitution)
            const auto& [af, at] = pick();
            const auto& [bf, bt] = pick();
            const std::uint32_t v = rng() % nvars;
            f = mgr.compose(af, v, bf);
            t = tt_compose(at, v, bt, nvars);
            break;
        }
        default: { // permute: swap two variables
            const auto& [af, at] = pick();
            std::vector<std::uint32_t> perm(nvars);
            std::iota(perm.begin(), perm.end(), 0u);
            const std::uint32_t a = rng() % nvars;
            const std::uint32_t b = rng() % nvars;
            std::swap(perm[a], perm[b]);
            f = mgr.permute(af, perm);
            t = tt_permute(at, perm, nvars);
            break;
        }
        }
        ASSERT_NO_FATAL_FAILURE(
            expect_matches(mgr, f, t, nvars, "dag step"));
        // sat_count against popcount on every step
        ASSERT_DOUBLE_EQ(mgr.sat_count(f, nvars),
                         static_cast<double>(tt_count(t)));
        pool.emplace_back(std::move(f), std::move(t));
    }

    // canonicity sweep over a handful of random pool members
    for (int k = 0; k < 6; ++k) {
        const bdd f = pick().first;
        const bdd g = pick().first;
        ASSERT_NO_FATAL_FAILURE(expect_canonicity(mgr, f, g, nvars));
    }
    mgr.check_consistency();
    mgr.collect_garbage();
    mgr.check_consistency();
}

class oracle_small : public ::testing::TestWithParam<unsigned> {};

/// 160 DAGs over 4..8 variables, 24 operations each.
TEST_P(oracle_small, random_dag_agrees_with_truth_tables) {
    run_expression_dag({leq::test_seed(GetParam()), 4, 8, 24});
}

INSTANTIATE_TEST_SUITE_P(seeds, oracle_small, ::testing::Range(0u, 160u));

class oracle_wide : public ::testing::TestWithParam<unsigned> {};

/// 40 DAGs over 9..12 variables, 12 operations each (4096-row tables).
TEST_P(oracle_wide, random_dag_agrees_with_truth_tables) {
    run_expression_dag({leq::test_seed(GetParam()), 9, 12, 12});
}

INSTANTIATE_TEST_SUITE_P(seeds, oracle_wide, ::testing::Range(1000u, 1040u));

// ---------------------------------------------------------------------------
// directed canonicity cases
// ---------------------------------------------------------------------------

TEST(oracle_canonicity, constants_and_literals) {
    bdd_manager m(6);
    EXPECT_EQ((!m.zero()).index(), m.one().index());
    EXPECT_EQ((!m.one()).index(), m.zero().index());
    for (std::uint32_t v = 0; v < 6; ++v) {
        EXPECT_EQ((!m.var(v)).index(), m.nvar(v).index());
        EXPECT_EQ((!m.nvar(v)).index(), m.var(v).index());
        // a literal and its negation are the same node, opposite phase
        EXPECT_EQ(m.var(v).index() ^ 1u, m.nvar(v).index());
    }
    m.check_consistency();
}

TEST(oracle_canonicity, negation_is_node_free) {
    bdd_manager m(16);
    bdd f = m.one();
    for (std::uint32_t v = 0; v + 1 < 16; v += 2) {
        f &= (m.var(v) | m.var(v + 1));
    }
    const std::size_t before_nodes = m.live_node_count();
    const auto before_lookups = m.stats().cache_lookups;
    std::vector<bdd> negs;
    for (int k = 0; k < 1000; ++k) { negs.push_back(!f); }
    // O(1) contract: no new nodes, no cache traffic
    EXPECT_EQ(m.live_node_count(), before_nodes);
    EXPECT_EQ(m.stats().cache_lookups, before_lookups);
    EXPECT_EQ(negs.front(), negs.back());
}

TEST(oracle_canonicity, unique_table_survives_rehash_growth) {
    // drive the arena through several unique-table rehashes (growth doublings
    // at 4k/8k/16k/... nodes) while holding everything live, and verify after
    // each one that every reachable node is still findable through the table
    // — a chain-corrupting rehash would mint duplicate nodes and break
    // reference canonicity
    // distinct literal cubes build through mk() alone (no computed-cache
    // short-circuit), so a table-orphaned node would deterministically
    // surface as a duplicate — and a different handle — on re-derivation
    bdd_manager m(26);
    const auto build_cube = [&m](std::uint32_t seed) {
        std::mt19937 rng(seed);
        std::vector<std::uint32_t> vars(26);
        std::iota(vars.begin(), vars.end(), 0u);
        std::shuffle(vars.begin(), vars.end(), rng);
        bdd c = m.one();
        for (std::size_t k = 0; k < 8; ++k) {
            c &= m.literal(vars[k], (rng() & 1) != 0);
        }
        return c;
    };
    std::vector<bdd> keep;
    for (std::uint32_t s = 0; s < 3000; ++s) {
        keep.push_back(build_cube(s));
        if (s % 512 == 511) { m.check_consistency(); }
    }
    m.check_consistency();
    for (std::uint32_t s = 0; s < 3000; s += 7) {
        ASSERT_EQ(build_cube(s), keep[s]) << "cube " << s
            << " re-derived to a different handle: canonicity broken";
    }
    m.collect_garbage();
    m.check_consistency();
}

TEST(oracle_canonicity, shared_phases_across_operations) {
    bdd_manager m(8);
    const bdd f = (m.var(0) & m.var(1)) | (m.var(2) ^ m.var(3));
    const bdd g = (m.var(4) | m.var(5)) & (m.var(6) ^ !m.var(7));
    // the same function reached through complementary routes
    EXPECT_EQ(m.ite(f, g, m.zero()).index(), (f & g).index());
    EXPECT_EQ(m.ite(f, m.one(), g).index(), (f | g).index());
    EXPECT_EQ(m.ite(f, !g, g).index(), (f ^ g).index());
    EXPECT_EQ(m.ite(!f, g, !g).index(), (f ^ g).index());
    EXPECT_EQ(f.implies(g).index(), (!(f & !g)).index());
    m.check_consistency();
}

} // namespace
