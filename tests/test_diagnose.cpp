/// \file test_diagnose.cpp
/// \brief Counterexample extraction for the paper's verification checks:
/// diagnoses agree with the plain verdicts, and extracted traces replay on
/// the actual networks.

#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

struct solved {
    network original;
    split_result split;
    equation_problem problem;
    solve_result result;

    solved(network net, const std::vector<std::size_t>& cut)
        : original(std::move(net)), split(split_latches(original, cut)),
          problem(split.fixed, original),
          result(solve_partitioned(problem)) {}

    [[nodiscard]] std::vector<bool> x_init() const {
        return split.part.initial_state();
    }
};

/// Drop every transition of `a` whose (src, index) equals the given pair.
automaton drop_transition(const automaton& a, std::uint32_t src,
                          std::size_t index) {
    automaton out(a.manager(), a.label_vars());
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        out.add_state(a.accepting(s));
    }
    out.set_initial(a.initial());
    for (std::uint32_t s = 0; s < a.num_states(); ++s) {
        const auto& ts = a.transitions(s);
        for (std::size_t k = 0; k < ts.size(); ++k) {
            if (s == src && k == index) { continue; }
            out.add_transition(s, ts[k].dest, ts[k].label);
        }
    }
    return out;
}

/// The anything-goes automaton over the CSF's label variables: one accepting
/// state with a universal self-loop.  Almost never a valid solution.
automaton universal(const automaton& like) {
    automaton out(like.manager(), like.label_vars());
    out.add_state(true);
    out.set_initial(0);
    out.add_transition(0, 0, like.manager().one());
    return out;
}

// ---------------------------------------------------------------------------
// agreement with the plain verdicts on valid CSFs
// ---------------------------------------------------------------------------

TEST(diagnose, ok_on_valid_csf_paper_example) {
    solved s(make_paper_example(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const automaton& csf = *s.result.csf;
    const auto d1 = diagnose_particular_contained(s.problem, csf, s.x_init());
    EXPECT_TRUE(d1.ok);
    EXPECT_TRUE(d1.trace.empty());
    const auto d2 = diagnose_composition_contained(s.problem, csf);
    EXPECT_TRUE(d2.ok);
    EXPECT_EQ(format_diagnosis(d2), "ok: containment holds\n");
}

class diagnose_families : public ::testing::TestWithParam<int> {};

TEST_P(diagnose_families, verdicts_agree_with_plain_checks) {
    const int id = GetParam();
    const network net = id == 0   ? make_counter(3)
                        : id == 1 ? make_lfsr(4, {1})
                        : id == 2 ? make_traffic_controller()
                        : id == 3 ? make_shift_xor(3)
                                  : make_counter(4);
    solved s(net, {net.num_latches() - 1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    if (s.result.empty_solution) { GTEST_SKIP(); }
    const automaton& csf = *s.result.csf;
    EXPECT_EQ(diagnose_particular_contained(s.problem, csf, s.x_init()).ok,
              verify_particular_contained(s.problem, csf, s.x_init()));
    EXPECT_EQ(diagnose_composition_contained(s.problem, csf).ok,
              verify_composition_contained(s.problem, csf));
}

INSTANTIATE_TEST_SUITE_P(families, diagnose_families,
                         ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// failing check (1): damaged CSF misses an X_P move
// ---------------------------------------------------------------------------

TEST(diagnose, damaged_csf_fails_particular_with_replayable_trace) {
    solved s(make_counter(3), {2});
    ASSERT_EQ(s.result.status, solve_status::ok);
    ASSERT_FALSE(s.result.empty_solution);
    const automaton& csf = *s.result.csf;

    // drop transitions until the particular check breaks
    bool produced_failure = false;
    for (std::uint32_t src = 0; src < csf.num_states() && !produced_failure;
         ++src) {
        for (std::size_t k = 0; k < csf.transitions(src).size(); ++k) {
            const automaton damaged = drop_transition(csf, src, k);
            if (verify_particular_contained(s.problem, damaged, s.x_init())) {
                continue;
            }
            produced_failure = true;
            const auto d =
                diagnose_particular_contained(s.problem, damaged, s.x_init());
            ASSERT_FALSE(d.ok);
            ASSERT_FALSE(d.trace.empty());
            // structural replay: X_P's next state is the u it read
            for (std::size_t t = 0; t + 1 < d.trace.size(); ++t) {
                EXPECT_EQ(d.trace[t + 1].v, d.trace[t].u) << "step " << t;
            }
            // first state is X_P's initial state
            EXPECT_EQ(d.trace.front().v, s.x_init());
            // the trace word is rejected by the damaged CSF but allowed by
            // the intact one (X_P is contained in the true CSF)
            std::vector<std::vector<bool>> word;
            for (const trace_step& st : d.trace) {
                std::vector<bool> letter(s.problem.mgr().num_vars(), false);
                for (std::size_t m = 0; m < s.problem.u_vars.size(); ++m) {
                    letter[s.problem.u_vars[m]] = st.u[m];
                }
                for (std::size_t m = 0; m < s.problem.v_vars.size(); ++m) {
                    letter[s.problem.v_vars[m]] = st.v[m];
                }
                word.push_back(std::move(letter));
            }
            EXPECT_FALSE(accepts(damaged, word));
            EXPECT_TRUE(accepts(csf, word));
            // the report mentions the failure
            const std::string text = format_diagnosis(d);
            EXPECT_NE(text.find("FAILED"), std::string::npos);
            EXPECT_NE(text.find("step 0"), std::string::npos);
            break;
        }
    }
    EXPECT_TRUE(produced_failure)
        << "no droppable transition broke check (1); test needs a new case";
}

// ---------------------------------------------------------------------------
// failing check (2): permissive X lets the composition violate S
// ---------------------------------------------------------------------------

TEST(diagnose, universal_x_fails_composition_with_network_replay) {
    solved s(make_traffic_controller(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    ASSERT_FALSE(s.result.empty_solution);
    const automaton anything = universal(*s.result.csf);
    if (verify_composition_contained(s.problem, anything)) {
        GTEST_SKIP() << "universal X happens to be a solution here";
    }
    const auto d = diagnose_composition_contained(s.problem, anything);
    ASSERT_FALSE(d.ok);
    ASSERT_FALSE(d.trace.empty());

    // replay the trace on the actual networks: drive F (the fixed part) with
    // (i, v) and S with i; every step's u and o must match F's outputs, and
    // the final step must expose an output disagreement with S
    const network& fixed = s.split.fixed;
    const network& spec = s.original;
    std::vector<bool> f_state = fixed.initial_state();
    std::vector<bool> s_state = spec.initial_state();
    const std::size_t n_i = s.problem.i_vars.size();
    const std::size_t n_o = s.problem.o_vars.size();
    for (std::size_t t = 0; t < d.trace.size(); ++t) {
        const trace_step& st = d.trace[t];
        std::vector<bool> f_in = st.i;
        f_in.insert(f_in.end(), st.v.begin(), st.v.end());
        const auto f_res = fixed.simulate(f_state, f_in);
        const auto s_res = spec.simulate(s_state, st.i);
        ASSERT_EQ(f_res.outputs.size(), n_o + st.u.size());
        // F's outputs are (o..., u...)
        for (std::size_t j = 0; j < n_o; ++j) {
            EXPECT_EQ(f_res.outputs[j], st.o[j]) << "step " << t;
        }
        for (std::size_t m = 0; m < st.u.size(); ++m) {
            EXPECT_EQ(f_res.outputs[n_o + m], st.u[m]) << "step " << t;
        }
        if (t + 1 == d.trace.size()) {
            // violation step: some composed output differs from S's
            bool differs = false;
            for (std::size_t j = 0; j < n_o; ++j) {
                differs = differs || (st.o[j] != s_res.outputs[j]);
            }
            EXPECT_TRUE(differs) << "final step conforms; bad trace";
        } else {
            // conforming prefix
            for (std::size_t j = 0; j < n_o; ++j) {
                EXPECT_EQ(st.o[j], s_res.outputs[j]) << "step " << t;
            }
        }
        f_state = f_res.next_state;
        s_state = s_res.next_state;
    }
    (void)n_i;
}

TEST(diagnose, shortest_trace_for_immediate_violation) {
    // an X that forces a wrong output in the very first step should yield a
    // one-step trace
    solved s(make_counter(3), {2});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const automaton anything = universal(*s.result.csf);
    if (verify_composition_contained(s.problem, anything)) { GTEST_SKIP(); }
    const auto d = diagnose_composition_contained(s.problem, anything);
    ASSERT_FALSE(d.ok);
    // the plain check scans outputs in the same order, so the diagnosis must
    // find a violation at the earliest possible depth; replaying the prefix
    // (asserted in the other test) pins minimality per state/output order
    EXPECT_GE(d.trace.size(), 1u);
}

} // namespace
